// Capacity planning with the cluster simulator: how many workers does a
// deployment need to sustain a target ingestion rate for a given pattern,
// and what does choosing the single-operator CEP approach cost?
//
// Demonstrates: cost-profile calibration against the real engine, the
// discrete-time cluster simulator, and max-sustainable-throughput search.
//
//   $ ./examples/cluster_planning

#include <cstdio>

#include "cluster/calibration.h"
#include "cluster/sim.h"

using namespace cep2asp;  // NOLINT: example brevity

int main() {
  std::printf("calibrating operator costs against this machine...\n");
  CostProfile costs = CalibrateCostProfile();
  std::printf("  %s\n\n", costs.ToString().c_str());

  // Workload: keyed 3-type sequence over 256 sensors, 15-minute window.
  SimJobSpec job;
  job.pattern_length = 3;
  job.num_streams = 3;
  job.filter_selectivity = 0.2;
  job.step_selectivity = 0.05;
  job.window_ms = 15 * kMillisPerMinute;
  job.slide_ms = kMillisPerMinute;
  job.num_keys = 256;

  const double target_tps = 8e6;
  std::printf("target: sustain %.0fM tuples/s on SEQ(3), 256 keys\n\n",
              target_tps / 1e6);

  for (SimApproach approach :
       {SimApproach::kFcep, SimApproach::kFaspSliding,
        SimApproach::kFaspInterval}) {
    job.approach = approach;
    std::printf("%s:\n", SimApproachToString(approach));
    bool satisfied = false;
    for (int workers = 1; workers <= 16; workers *= 2) {
      ClusterSpec cluster;
      cluster.num_workers = workers;
      cluster.slots_per_worker = 16;
      cluster.memory_per_worker_bytes = 128.0 * 1024 * 1024 * 1024;
      ClusterSimulator sim(cluster, costs);
      double max_tps = sim.FindMaxSustainableTps(job, 256e6);
      std::printf("  %2d worker(s): max sustainable %8.2fM tpl/s%s\n", workers,
                  max_tps / 1e6, max_tps >= target_tps ? "  <- meets target" : "");
      if (max_tps >= target_tps) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      std::printf("  target not reachable within 16 workers\n");
    }
    std::printf("\n");
  }
  return 0;
}
