// Traffic congestion monitoring (the paper's QnV use case, §1/§5.1.3):
// detect road segments where car quantity rises while velocity keeps
// dropping — a keyed pattern combining a sequence with an iteration.
//
// Demonstrates: programmatic PatternBuilder API, Equi-Join key
// partitioning (O3), statistics-driven auto-optimization, CSV round-trip
// of the sensor data.
//
//   $ ./examples/traffic_monitoring

#include <cstdio>

#include "runtime/executor.h"
#include "translator/translator.h"
#include "workload/csv.h"
#include "workload/presets.h"

using namespace cep2asp;  // NOLINT: example brevity

int main() {
  SensorTypes types = SensorTypes::Get();

  // Road network: 64 segments, a reading per minute for three hours.
  PresetOptions preset;
  preset.num_sensors = 64;
  preset.events_per_sensor = 180;
  Workload workload = MakeQnVWorkload(preset);

  // Persist & reload the V stream as CSV, like the paper's file-based
  // sources (§5.1.2).
  const std::string csv_path = "/tmp/cep2asp_traffic_v.csv";
  CEP2ASP_CHECK_OK(WriteEventsCsv(csv_path, workload.events(types.v)));
  auto reloaded = ReadEventsCsv(csv_path);
  CEP2ASP_CHECK(reloaded.ok()) << reloaded.status();
  std::printf("CSV round-trip: %zu V readings via %s\n", reloaded->size(),
              csv_path.c_str());

  // Pattern: on one road segment (same sensor id), a high car count
  // followed by three velocity readings that keep decreasing, within 20
  // minutes — congestion building up.
  Predicate q_high;
  q_high.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kGe, 75.0));

  PatternBuilder builder;
  builder.Seq(PatternBuilder::Atom(types.q, "q1", q_high),
              PatternBuilder::Iter(
                  types.v, "v", 3, Predicate(),
                  ConsecutiveConstraint{Attribute::kValue, CmpOp::kGt}));
  // Equi-Join predicates: all events from the same road segment.
  builder.Where(Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                     {1, Attribute::kId}));
  builder.Where(Comparison::AttrAttr({1, Attribute::kId}, CmpOp::kEq,
                                     {2, Attribute::kId}));
  builder.Where(Comparison::AttrAttr({2, Attribute::kId}, CmpOp::kEq,
                                     {3, Attribute::kId}));
  auto pattern = builder.Within(20 * kMillisPerMinute).Build();
  CEP2ASP_CHECK(pattern.ok()) << pattern.status();
  std::printf("pattern: %s\n", pattern->ToString().c_str());

  // Statistics-driven translation: measured stream rates feed the
  // optimizer, which picks Equi-Join partitioning and per-join windowing
  // automatically (the paper's future-work optimizer).
  TranslatorOptions options;
  options.auto_optimize = true;
  options.use_equi_join_keys = true;
  Translator translator(options, workload.Statistics());
  auto plan = translator.ToLogicalPlan(*pattern);
  CEP2ASP_CHECK(plan.ok()) << plan.status();
  std::printf("\nlogical plan (auto-optimized):\n%s\n",
              plan->ToString().c_str());

  auto query = CompilePlan(*plan, workload.MakeSourceFactory());
  CEP2ASP_CHECK(query.ok()) << query.status();
  ExecutionResult result = RunJob(&query->graph, query->sink);
  CEP2ASP_CHECK(result.ok) << result.error;

  std::printf("detected %lld congestion build-ups on %lld readings "
              "(%.0f tuples/s)\n",
              static_cast<long long>(result.matches_emitted),
              static_cast<long long>(result.tuples_ingested),
              result.throughput_tps());
  for (size_t i = 0; i < query->sink->tuples().size() && i < 5; ++i) {
    const Tuple& match = query->sink->tuples()[i];
    std::printf("  segment %lld: congestion between t=%lldmin and t=%lldmin\n",
                static_cast<long long>(match.event(0).id),
                static_cast<long long>(match.tsb() / kMillisPerMinute),
                static_cast<long long>(match.tse() / kMillisPerMinute));
  }
  return 0;
}
