// Air-quality alerting on AQ-Data-style streams (SDS011 particulate and
// DHT22 climate sensors, paper §5.1.3): a negated sequence — report when
// particulate pollution rises and no rain/humidity spike occurs in
// between that would explain sensor noise.
//
// Demonstrates: NSEQ (negated sequence) via the PSL, the "ats" UDF
// mapping, and duplicate-free output with O1 + dedup.
//
//   $ ./examples/air_quality

#include <cstdio>

#include "runtime/executor.h"
#include "sea/parser.h"
#include "translator/translator.h"
#include "workload/presets.h"

using namespace cep2asp;  // NOLINT: example brevity

int main() {
  // Air-quality deployment: 24 stations, readings every 4 minutes for a
  // day.
  PresetOptions preset;
  preset.num_sensors = 24;
  preset.events_per_sensor = 360;
  Workload workload = MakeAqWorkload(preset);

  // NSEQ(PM10 high, !Hum spike, PM2.5 high) WITHIN 30 MINUTES: coarse
  // particulate rises, fine particulate follows, and no humidity spike in
  // between (which would point to fog, not pollution).
  auto pattern = sea::ParsePattern(
      "PATTERN SEQ(PM10 p1, !Hum h1, PM25 p2) "
      "WHERE p1.value >= 85 AND h1.value >= 95 AND p2.value >= 85 "
      "WITHIN 30 MINUTES");
  CEP2ASP_CHECK(pattern.ok()) << pattern.status();
  std::printf("pattern: %s\n", pattern->ToString().c_str());

  // Translate with O1 (Interval Joins): content-based windows, no
  // duplicate alerts even without a dedup stage.
  TranslatorOptions options;
  options.use_interval_join = true;
  auto query =
      TranslatePattern(*pattern, options, workload.MakeSourceFactory());
  CEP2ASP_CHECK(query.ok()) << query.status();

  ExecutionResult result = RunJob(&query->graph, query->sink);
  CEP2ASP_CHECK(result.ok) << result.error;
  std::printf("%lld pollution alerts from %lld readings (%.0f tuples/s, "
              "mean detection latency %.1f ms)\n",
              static_cast<long long>(result.matches_emitted),
              static_cast<long long>(result.tuples_ingested),
              result.throughput_tps(), result.latency.mean_ms);
  for (size_t i = 0; i < query->sink->tuples().size() && i < 5; ++i) {
    const Tuple& match = query->sink->tuples()[i];
    std::printf(
        "  alert: PM10=%.0f at t=%lldmin, PM2.5=%.0f at t=%lldmin "
        "(no humidity spike in between)\n",
        match.event(0).value,
        static_cast<long long>(match.event(0).ts / kMillisPerMinute),
        match.event(1).value,
        static_cast<long long>(match.event(1).ts / kMillisPerMinute));
  }
  return 0;
}
