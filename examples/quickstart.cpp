// Quickstart: declare a pattern in the SASE+-style PSL, translate it to
// an ASP query with the operator mapping, run it, and compare against the
// single-operator CEP baseline and the formal SEA semantics.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "runtime/executor.h"
#include "sea/parser.h"
#include "sea/semantics.h"
#include "translator/sql_text.h"
#include "translator/translator.h"
#include "workload/presets.h"

using namespace cep2asp;  // NOLINT: example brevity

int main() {
  // 1. Synthesize a small QnV-style workload: two streams (Q = car
  //    quantity, V = average velocity), 32 road segments reporting once
  //    per minute for two hours.
  PresetOptions preset;
  preset.num_sensors = 32;
  preset.events_per_sensor = 120;
  Workload workload = MakeQnVWorkload(preset);
  std::printf("workload: %lld events across Q and V\n",
              static_cast<long long>(workload.TotalEvents()));

  // 2. Declare the pattern of paper Listing 2: a congestion indicator —
  //    high quantity followed by low velocity within 4 minutes.
  auto pattern = sea::ParsePattern(
      "PATTERN SEQ(Q q1, V v1) "
      "WHERE q1.value >= 80 AND v1.value <= 10 "
      "WITHIN 4 MINUTES");
  if (!pattern.ok()) {
    std::fprintf(stderr, "parse error: %s\n", pattern.status().ToString().c_str());
    return 1;
  }
  std::printf("pattern: %s\n", pattern->ToString().c_str());

  // The declarative query the mapping produces (paper Listing 4/8 style).
  auto sql = RenderSqlQuery(*pattern);
  CEP2ASP_CHECK(sql.ok()) << sql.status();
  std::printf("\ntranslates to:\n%s\n", sql->c_str());

  // 3. Translate it into an ASP query plan (Table 1 mapping) and show the
  //    logical plan the optimizer produced.
  TranslatorOptions options;
  options.use_interval_join = true;  // O1: duplicate-free windowing
  Translator translator(options);
  auto plan = translator.ToLogicalPlan(*pattern);
  CEP2ASP_CHECK(plan.ok()) << plan.status();
  std::printf("\nlogical plan:\n%s\n", plan->ToString().c_str());

  // 4. Compile and run it on the embedded engine.
  auto query = CompilePlan(*plan, workload.MakeSourceFactory());
  CEP2ASP_CHECK(query.ok()) << query.status();
  ExecutionResult fasp = RunJob(&query->graph, query->sink);
  CEP2ASP_CHECK(fasp.ok) << fasp.error;
  std::printf("FASP: %lld matches at %.0f tuples/s\n",
              static_cast<long long>(fasp.matches_emitted),
              fasp.throughput_tps());
  for (size_t i = 0; i < query->sink->tuples().size() && i < 3; ++i) {
    std::printf("  match: %s\n", query->sink->tuples()[i].ToString().c_str());
  }

  // 5. The same pattern on the single-operator CEP baseline (FlinkCEP
  //    style): union of both streams into one NFA operator.
  auto cep_query = BuildCepJob(*pattern, workload.MakeSourceFactory());
  CEP2ASP_CHECK(cep_query.ok()) << cep_query.status();
  ExecutionResult fcep = RunJob(&cep_query->graph, cep_query->sink);
  CEP2ASP_CHECK(fcep.ok) << fcep.error;
  std::printf("FCEP: %lld matches at %.0f tuples/s\n",
              static_cast<long long>(fcep.matches_emitted),
              fcep.throughput_tps());

  // 6. Sanity: both engines agree with the formal SEA semantics.
  sea::WindowedEvaluation oracle =
      sea::EvaluateWithWindows(*pattern, workload.MergedEvents());
  std::printf("SEA oracle: %lld distinct matches\n",
              static_cast<long long>(oracle.matches.size()));
  bool equal = oracle.matches.size() ==
                   static_cast<size_t>(fcep.matches_emitted) &&
               oracle.matches.size() == static_cast<size_t>(fasp.matches_emitted);
  std::printf("engines agree with the formal semantics: %s\n",
              equal ? "yes" : "NO (duplicates or mismatch)");
  return equal ? 0 : 1;
}
