#ifndef CEP2ASP_WORKLOAD_PRESETS_H_
#define CEP2ASP_WORKLOAD_PRESETS_H_

#include <string>

#include "workload/generator.h"

namespace cep2asp {

/// \brief Event types of the paper's two data sources (§5.1.3).
///
/// QnV-Data: road-segment sensors reporting car quantity (Q) and average
/// velocity (V) once per minute. AQ-Data: SDS011 particulate sensors
/// (PM10, PM2.5) and DHT22 sensors (Temp, Hum), one reading every three to
/// five minutes. All share the common schema (id, lat, lon, ts, value).
struct SensorTypes {
  EventTypeId q;
  EventTypeId v;
  EventTypeId pm10;
  EventTypeId pm25;
  EventTypeId temp;
  EventTypeId hum;

  /// Registers (or looks up) the six canonical types in the global
  /// registry: "Q", "V", "PM10", "PM25", "Temp", "Hum".
  static SensorTypes Get();
};

/// \brief Parameters shared by the experiment workload presets.
struct PresetOptions {
  int num_sensors = 1;        // distinct sensor ids per stream (keys)
  int events_per_sensor = 0;  // rounds per sensor
  Timestamp qnv_period = kMillisPerMinute;       // QnV: one reading/minute
  Timestamp aq_period = 4 * kMillisPerMinute;    // AQ: every 3-5 minutes
  uint64_t seed = 42;
  /// Aligned sampling (all sensors on the period tick), the behaviour of
  /// the paper's minute-resolution deployments. Allows a slide of one
  /// minute regardless of the sensor count.
  bool align_to_period = true;
};

/// QnV streams only (types Q and V).
Workload MakeQnVWorkload(const PresetOptions& options);

/// AQ streams only (PM10, PM2.5, Temp, Hum).
Workload MakeAqWorkload(const PresetOptions& options);

/// QnV + AQ combined (nested-sequence and NSEQ experiments).
Workload MakeCombinedWorkload(const PresetOptions& options);

}  // namespace cep2asp

#endif  // CEP2ASP_WORKLOAD_PRESETS_H_
