#ifndef CEP2ASP_WORKLOAD_GENERATOR_H_
#define CEP2ASP_WORKLOAD_GENERATOR_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "event/event.h"
#include "runtime/operator.h"
#include "translator/translator.h"

namespace cep2asp {

/// \brief Specification of one synthetic sensor stream.
///
/// The paper's data sets are gone from the public portal (QnV) or large
/// external downloads (AQ), so the workloads are synthesized with the same
/// schema (id, lat, lon, ts, value) and the properties the experiments
/// exploit: per-type emission frequency, number of distinct sensors
/// (keys), and a uniform value distribution so that a threshold filter
/// `value < t` has selectivity t / (value_max - value_min).
struct StreamSpec {
  EventTypeId type = kInvalidEventType;
  int num_sensors = 1;      // distinct producer ids -> partition keys
  int64_t id_offset = 0;    // first sensor id
  Timestamp start_ts = 0;
  Timestamp period = kMillisPerMinute;  // per-sensor emission interval
  int events_per_sensor = 0;
  double value_min = 0.0;
  double value_max = 100.0;
  uint64_t seed = 42;
  /// When set, all sensors report at the same period tick (real QnV/AQ
  /// deployments sample on aligned minute boundaries), so every timestamp
  /// is a multiple of `period` and a pattern slide of one period satisfies
  /// Theorem 2. When unset, sensors are phase-staggered inside the period
  /// and the slide must divide stagger().
  bool align_to_period = false;

  int64_t total_events() const {
    return static_cast<int64_t>(num_sensors) * events_per_sensor;
  }

  /// Offset between consecutive sensors' emissions; all generated
  /// timestamps are multiples of this, so a pattern slide of stagger()
  /// satisfies Theorem 2 (every event timestamp starts a window).
  Timestamp stagger() const {
    return std::max<Timestamp>(1, period / num_sensors);
  }
};

/// Generates the stream, ordered by timestamp. Sensors are phase-staggered
/// within the period so multi-sensor streams interleave like real
/// deployments; each producer's own timestamps strictly increase (§2.1).
std::vector<SimpleEvent> GenerateStream(const StreamSpec& spec);

/// \brief A complete multi-stream workload for one experiment.
class Workload {
 public:
  Workload() = default;

  /// Generates and adds one stream.
  void AddStream(const StreamSpec& spec);

  /// Adds a pre-materialized stream (must be ts-ordered).
  void AddEvents(EventTypeId type, std::vector<SimpleEvent> events);

  const std::vector<SimpleEvent>& events(EventTypeId type) const;
  bool has_type(EventTypeId type) const { return streams_.count(type) > 0; }

  int64_t TotalEvents() const;

  /// All streams merged into one ts-ordered vector (oracle input).
  std::vector<SimpleEvent> MergedEvents() const;

  /// Factory handing each logical scan its own copy of the stream (the
  /// paper's FROM Stream T reads the CSV per occurrence). Returns nullptr
  /// sources for unknown types, which translation reports as NotFound.
  SourceFactory MakeSourceFactory() const;

  /// Measured per-type rates for the statistics-driven optimizer.
  StreamStatistics Statistics() const;

  /// Measured per-type per-attribute [min, max] intervals over the
  /// materialized events — the ground-truth priors for the interval range
  /// pass (analysis/range_rules). Types with no events are omitted (the
  /// analysis treats missing entries as unbounded). Every generated or
  /// ingested value lies inside its derived interval by construction, so
  /// the catalog is sound for the exact streams this workload replays.
  SourceRangeCatalog DeriveRangeCatalog() const;

 private:
  std::unordered_map<EventTypeId, std::vector<SimpleEvent>> streams_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_WORKLOAD_GENERATOR_H_
