#include "workload/presets.h"

namespace cep2asp {

SensorTypes SensorTypes::Get() {
  EventTypeRegistry* registry = EventTypeRegistry::Global();
  SensorTypes types;
  types.q = registry->RegisterOrGet("Q");
  types.v = registry->RegisterOrGet("V");
  types.pm10 = registry->RegisterOrGet("PM10");
  types.pm25 = registry->RegisterOrGet("PM25");
  types.temp = registry->RegisterOrGet("Temp");
  types.hum = registry->RegisterOrGet("Hum");
  return types;
}

namespace {

StreamSpec BaseSpec(EventTypeId type, const PresetOptions& options,
                    Timestamp period, uint64_t salt) {
  StreamSpec spec;
  spec.type = type;
  spec.num_sensors = options.num_sensors;
  spec.events_per_sensor = options.events_per_sensor;
  spec.period = period;
  spec.seed = options.seed + salt;
  spec.value_min = 0.0;
  spec.value_max = 100.0;
  spec.align_to_period = options.align_to_period;
  return spec;
}

}  // namespace

Workload MakeQnVWorkload(const PresetOptions& options) {
  SensorTypes types = SensorTypes::Get();
  Workload workload;
  workload.AddStream(BaseSpec(types.q, options, options.qnv_period, 1));
  workload.AddStream(BaseSpec(types.v, options, options.qnv_period, 2));
  return workload;
}

Workload MakeAqWorkload(const PresetOptions& options) {
  SensorTypes types = SensorTypes::Get();
  Workload workload;
  workload.AddStream(BaseSpec(types.pm10, options, options.aq_period, 3));
  workload.AddStream(BaseSpec(types.pm25, options, options.aq_period, 4));
  workload.AddStream(BaseSpec(types.temp, options, options.aq_period, 5));
  workload.AddStream(BaseSpec(types.hum, options, options.aq_period, 6));
  return workload;
}

Workload MakeCombinedWorkload(const PresetOptions& options) {
  SensorTypes types = SensorTypes::Get();
  Workload workload;
  workload.AddStream(BaseSpec(types.q, options, options.qnv_period, 1));
  workload.AddStream(BaseSpec(types.v, options, options.qnv_period, 2));
  // AQ sensors report less frequently; scale rounds to cover a similar
  // time span as the QnV streams.
  PresetOptions aq = options;
  aq.events_per_sensor = static_cast<int>(
      (static_cast<int64_t>(options.events_per_sensor) * options.qnv_period) /
      options.aq_period);
  if (aq.events_per_sensor < 1) aq.events_per_sensor = 1;
  workload.AddStream(BaseSpec(types.pm10, aq, options.aq_period, 3));
  workload.AddStream(BaseSpec(types.pm25, aq, options.aq_period, 4));
  workload.AddStream(BaseSpec(types.temp, aq, options.aq_period, 5));
  workload.AddStream(BaseSpec(types.hum, aq, options.aq_period, 6));
  return workload;
}

}  // namespace cep2asp
