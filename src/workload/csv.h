#ifndef CEP2ASP_WORKLOAD_CSV_H_
#define CEP2ASP_WORKLOAD_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"

namespace cep2asp {

/// Writes events as CSV with header `type,id,ts,value,lat,lon` (the
/// paper's evaluation extracts fixed time frames as CSV files, §5.1.2).
Status WriteEventsCsv(const std::string& path,
                      const std::vector<SimpleEvent>& events);

/// Reads events back; type names are resolved (and registered if unseen)
/// against the global registry. Events are returned in file order.
Result<std::vector<SimpleEvent>> ReadEventsCsv(const std::string& path);

}  // namespace cep2asp

#endif  // CEP2ASP_WORKLOAD_CSV_H_
