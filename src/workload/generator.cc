#include "workload/generator.h"

#include <algorithm>
#include <random>

#include "common/logging.h"
#include "runtime/vector_source.h"

namespace cep2asp {

std::vector<SimpleEvent> GenerateStream(const StreamSpec& spec) {
  CEP2ASP_CHECK(spec.type != kInvalidEventType);
  CEP2ASP_CHECK(spec.num_sensors >= 1);
  CEP2ASP_CHECK(spec.period >= 1);

  std::mt19937_64 rng(spec.seed ^ (static_cast<uint64_t>(spec.type) << 32));
  std::uniform_real_distribution<double> value_dist(spec.value_min,
                                                    spec.value_max);
  std::uniform_real_distribution<double> coord_dist(-0.05, 0.05);

  std::vector<SimpleEvent> events;
  events.reserve(static_cast<size_t>(spec.total_events()));
  // Phase-stagger sensors inside one period. Every timestamp is a multiple
  // of `stagger`, so a pattern slide of `stagger` (or any divisor) meets
  // Theorem 2's lossless-detection condition: for every event there is a
  // window starting exactly at its timestamp. The effective period is
  // stagger * num_sensors, which rounds the nominal period down slightly
  // when it is not divisible by the sensor count.
  const Timestamp stagger =
      spec.align_to_period
          ? 0
          : std::max<Timestamp>(1, spec.period / spec.num_sensors);
  const Timestamp effective_period =
      spec.align_to_period ? spec.period : stagger * spec.num_sensors;
  for (int round = 0; round < spec.events_per_sensor; ++round) {
    for (int sensor = 0; sensor < spec.num_sensors; ++sensor) {
      SimpleEvent e;
      e.type = spec.type;
      e.id = spec.id_offset + sensor;
      e.ts = spec.start_ts + static_cast<Timestamp>(round) * effective_period +
             static_cast<Timestamp>(sensor) * stagger;
      e.value = value_dist(rng);
      // Stable pseudo-location per sensor around Hessen (QnV's region).
      e.lat = 50.5 + static_cast<double>(sensor % 97) * 0.01 + coord_dist(rng) * 0;
      e.lon = 9.0 + static_cast<double>(sensor % 89) * 0.01;
      events.push_back(e);
    }
  }
  return events;
}

void Workload::AddStream(const StreamSpec& spec) {
  AddEvents(spec.type, GenerateStream(spec));
}

void Workload::AddEvents(EventTypeId type, std::vector<SimpleEvent> events) {
  auto& stream = streams_[type];
  if (stream.empty()) {
    stream = std::move(events);
  } else {
    stream.insert(stream.end(), events.begin(), events.end());
    std::stable_sort(stream.begin(), stream.end(),
                     [](const SimpleEvent& a, const SimpleEvent& b) {
                       return a.ts < b.ts;
                     });
  }
}

const std::vector<SimpleEvent>& Workload::events(EventTypeId type) const {
  static const std::vector<SimpleEvent> kEmpty;
  auto it = streams_.find(type);
  return it == streams_.end() ? kEmpty : it->second;
}

int64_t Workload::TotalEvents() const {
  int64_t total = 0;
  for (const auto& [type, events] : streams_) {
    (void)type;
    total += static_cast<int64_t>(events.size());
  }
  return total;
}

std::vector<SimpleEvent> Workload::MergedEvents() const {
  std::vector<SimpleEvent> merged;
  merged.reserve(static_cast<size_t>(TotalEvents()));
  for (const auto& [type, events] : streams_) {
    (void)type;
    merged.insert(merged.end(), events.begin(), events.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const SimpleEvent& a, const SimpleEvent& b) {
                     return a.ts < b.ts;
                   });
  return merged;
}

SourceFactory Workload::MakeSourceFactory() const {
  // The factory copies the stream per scan; the Workload must outlive the
  // compiled queries' construction (not their execution).
  return [this](EventTypeId type) -> std::unique_ptr<Source> {
    auto it = streams_.find(type);
    if (it == streams_.end()) return nullptr;
    return std::make_unique<VectorSource>(
        EventTypeRegistry::Global()->Name(type), it->second);
  };
}

SourceRangeCatalog Workload::DeriveRangeCatalog() const {
  SourceRangeCatalog catalog;
  for (const auto& [type, events] : streams_) {
    if (events.empty()) continue;
    EventRanges ranges;
    for (int a = 0; a <= static_cast<int>(Attribute::kAuxTs); ++a) {
      const Attribute attr = static_cast<Attribute>(a);
      Interval interval = Interval::Empty();
      for (const SimpleEvent& e : events) {
        interval = interval.Hull(Interval::Point(GetAttribute(e, attr)));
      }
      ranges[attr] = interval;
    }
    catalog.Declare(type, ranges);
  }
  return catalog;
}

StreamStatistics Workload::Statistics() const {
  StreamStatistics stats;
  for (const auto& [type, events] : streams_) {
    if (events.size() < 2) {
      stats.rate_per_minute[type] = static_cast<double>(events.size());
      continue;
    }
    double span_minutes =
        static_cast<double>(events.back().ts - events.front().ts) /
        static_cast<double>(kMillisPerMinute);
    stats.rate_per_minute[type] =
        span_minutes > 0 ? static_cast<double>(events.size()) / span_minutes
                         : static_cast<double>(events.size());
  }
  return stats;
}

}  // namespace cep2asp
