#include "workload/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "event/event_type.h"

namespace cep2asp {

Status WriteEventsCsv(const std::string& path,
                      const std::vector<SimpleEvent>& events) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  EventTypeRegistry* registry = EventTypeRegistry::Global();
  out << "type,id,ts,value,lat,lon\n";
  char buf[256];
  for (const SimpleEvent& e : events) {
    std::snprintf(buf, sizeof(buf), "%s,%lld,%lld,%.9g,%.6f,%.6f\n",
                  registry->Name(e.type).c_str(),
                  static_cast<long long>(e.id), static_cast<long long>(e.ts),
                  e.value, e.lat, e.lon);
    out << buf;
  }
  out.close();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<SimpleEvent>> ReadEventsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  EventTypeRegistry* registry = EventTypeRegistry::Global();
  std::vector<SimpleEvent> events;
  std::string line;
  bool first = true;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (first) {
      first = false;
      if (StartsWith(line, "type,")) continue;  // header
    }
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> fields = SplitString(trimmed, ',');
    if (fields.size() != 6) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected 6 fields, got " +
                                std::to_string(fields.size()));
    }
    SimpleEvent e;
    e.type = registry->RegisterOrGet(fields[0]);
    long long id = 0, ts = 0;
    double value = 0, lat = 0, lon = 0;
    if (!ParseInt64(fields[1], &id) || !ParseInt64(fields[2], &ts) ||
        !ParseDouble(fields[3], &value) || !ParseDouble(fields[4], &lat) ||
        !ParseDouble(fields[5], &lon)) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": malformed field");
    }
    e.id = id;
    e.ts = ts;
    e.value = value;
    e.lat = lat;
    e.lon = lon;
    events.push_back(e);
  }
  return events;
}

}  // namespace cep2asp
