#include "analysis/graph_rules.h"

#include <algorithm>
#include <string>
#include <vector>

#include "event/expr_program.h"
#include "event/expr_verifier.h"

namespace cep2asp {

namespace {

std::string NodeLabel(const JobGraph& graph, NodeId id) {
  const JobGraph::Node& node = graph.node(id);
  std::string name = node.is_source() ? ("source " + node.source->name())
                                      : node.op->name();
  return "node " + std::to_string(id) + " (" + name + ")";
}

/// Per-port edge coverage: every operator input port must be fed by
/// exactly one edge (E301 unfed, E302 multiply fed), and the cached
/// num_input_edges counter must agree with the edges (E309) — the
/// threaded executor picks the lock-free SPSC channel from that counter,
/// so a mismatch would put multiple producers on a single-producer ring.
void CheckPorts(const JobGraph& graph, DiagnosticReport* report) {
  const int n = graph.num_nodes();
  std::vector<std::vector<int>> port_counts(static_cast<size_t>(n));
  std::vector<int> incoming(static_cast<size_t>(n), 0);
  for (NodeId id = 0; id < n; ++id) {
    const JobGraph::Node& node = graph.node(id);
    if (!node.is_source()) {
      port_counts[static_cast<size_t>(id)].assign(
          static_cast<size_t>(node.op->num_inputs()), 0);
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    for (const JobGraph::Edge& edge : graph.node(id).outputs) {
      incoming[static_cast<size_t>(edge.to)]++;
      auto& counts = port_counts[static_cast<size_t>(edge.to)];
      if (edge.input_port >= 0 &&
          static_cast<size_t>(edge.input_port) < counts.size()) {
        counts[static_cast<size_t>(edge.input_port)]++;
      }
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    const JobGraph::Node& node = graph.node(id);
    if (node.is_source()) continue;
    const auto& counts = port_counts[static_cast<size_t>(id)];
    for (size_t port = 0; port < counts.size(); ++port) {
      if (counts[port] == 0) {
        report->Add(DiagnosticCode::kGraphInputPortUnfed,
                    NodeLabel(graph, id),
                    "input port " + std::to_string(port) +
                        " has no incoming edge");
      } else if (counts[port] > 1) {
        report->Add(DiagnosticCode::kGraphInputPortMultiplyFed,
                    NodeLabel(graph, id),
                    "input port " + std::to_string(port) + " has " +
                        std::to_string(counts[port]) + " incoming edges");
      }
    }
    if (node.num_input_edges != incoming[static_cast<size_t>(id)]) {
      report->Add(DiagnosticCode::kGraphFanInAccountingBroken,
                  NodeLabel(graph, id),
                  "num_input_edges records " +
                      std::to_string(node.num_input_edges) + " but " +
                      std::to_string(incoming[static_cast<size_t>(id)]) +
                      " edges arrive");
    }
  }
}

void CheckAcyclic(const JobGraph& graph, DiagnosticReport* report) {
  if (graph.TopologicalOrder().size() !=
      static_cast<size_t>(graph.num_nodes())) {
    report->Add(DiagnosticCode::kGraphCycle, "",
                "job graph contains a cycle");
  }
}

/// Watermark-generation coverage: watermarks originate at sources, so an
/// operator with no source upstream never fires its windows (W306); a
/// graph with no sources at all cannot run (E304); a source feeding
/// nothing is dead weight (W305); a terminal operator that is not a sink
/// silently drops its emissions (W307).
void CheckSourceCoverage(const JobGraph& graph, DiagnosticReport* report) {
  const int n = graph.num_nodes();
  bool any_source = false;
  std::vector<bool> reachable(static_cast<size_t>(n), false);
  std::vector<NodeId> stack;
  for (NodeId id = 0; id < n; ++id) {
    if (graph.node(id).is_source()) {
      any_source = true;
      reachable[static_cast<size_t>(id)] = true;
      stack.push_back(id);
      if (graph.node(id).outputs.empty()) {
        report->Add(DiagnosticCode::kGraphSourceUnconnected,
                    NodeLabel(graph, id), "source has no outgoing edges");
      }
    }
  }
  if (!any_source && n > 0) {
    report->Add(DiagnosticCode::kGraphNoSource, "",
                "job graph has no source nodes");
  }
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    for (const JobGraph::Edge& edge : graph.node(id).outputs) {
      if (!reachable[static_cast<size_t>(edge.to)]) {
        reachable[static_cast<size_t>(edge.to)] = true;
        stack.push_back(edge.to);
      }
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    const JobGraph::Node& node = graph.node(id);
    if (node.is_source()) continue;
    if (!reachable[static_cast<size_t>(id)]) {
      report->Add(DiagnosticCode::kGraphOperatorUnreachable,
                  NodeLabel(graph, id),
                  "no source upstream: the operator never receives tuples "
                  "or watermarks");
    }
    if (node.outputs.empty() && !node.op->Traits().is_sink) {
      report->Add(DiagnosticCode::kGraphTerminalNotSink, NodeLabel(graph, id),
                  "operator has no outgoing edges and is not a sink; its "
                  "emissions are dropped");
    }
  }
}

/// Keyed-state vs. partitioning: an operator whose state is keyed must see
/// a key assignment on every path from a source, otherwise its partitions
/// are the raw event ids and cross-stream matches silently vanish.
void CheckKeying(const JobGraph& graph, DiagnosticReport* report) {
  const int n = graph.num_nodes();
  // keyed_path[id]: every source->id path passes an assigns_key operator
  // strictly before id. Computed over a topological order; nodes on a
  // cycle (reported separately) are skipped.
  std::vector<int> state(static_cast<size_t>(n), -1);  // -1 unknown, 0/1
  for (NodeId id : graph.TopologicalOrder()) {
    const JobGraph::Node& node = graph.node(id);
    if (node.is_source()) {
      state[static_cast<size_t>(id)] = 0;
      continue;
    }
    // AND over all producers: key coverage must hold on every path.
    int covered = 1;
    bool has_producer = false;
    for (NodeId from = 0; from < n; ++from) {
      for (const JobGraph::Edge& edge : graph.node(from).outputs) {
        if (edge.to != id) continue;
        has_producer = true;
        int upstream = state[static_cast<size_t>(from)];
        int provides =
            (upstream == 1 ||
             (!graph.node(from).is_source() &&
              graph.node(from).op->Traits().assigns_key))
                ? 1
                : 0;
        covered = covered && provides;
      }
    }
    state[static_cast<size_t>(id)] = has_producer ? covered : 0;
    OperatorTraits traits = node.op->Traits();
    if (traits.stateful && traits.keyed && has_producer && covered == 0) {
      report->Add(DiagnosticCode::kGraphStatefulUnkeyed, NodeLabel(graph, id),
                  "operator keys its state but some input path assigns no "
                  "partition key (state partitions by raw event id)");
    }
  }
}

/// Window-spec consistency: a translated query gives every sliding
/// operator the pattern's (size, slide); divergent specs mean the plan was
/// corrupted between translation and execution — windows would fire at
/// different boundaries and joins silently drop pairs (E310). Invalid
/// specs can never fire at all (E311).
void CheckWindows(const JobGraph& graph, DiagnosticReport* report) {
  bool have_ref = false;
  Timestamp ref_size = 0;
  Timestamp ref_slide = 0;
  NodeId ref_node = -1;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const JobGraph::Node& node = graph.node(id);
    if (node.is_source()) continue;
    OperatorTraits traits = node.op->Traits();
    if (!traits.windowed) continue;
    if (traits.window_size <= 0 ||
        (traits.window_slide > 0 && traits.window_slide > traits.window_size)) {
      report->Add(DiagnosticCode::kGraphWindowSpecInvalid,
                  NodeLabel(graph, id),
                  "window spec (size " + std::to_string(traits.window_size) +
                      ", slide " + std::to_string(traits.window_slide) +
                      ") is invalid");
      continue;
    }
    if (traits.window_slide <= 0) continue;  // not a sliding window
    if (!have_ref) {
      have_ref = true;
      ref_size = traits.window_size;
      ref_slide = traits.window_slide;
      ref_node = id;
      continue;
    }
    if (traits.window_size != ref_size || traits.window_slide != ref_slide) {
      report->Add(
          DiagnosticCode::kGraphWindowSpanMismatch, NodeLabel(graph, id),
          "sliding window (size " + std::to_string(traits.window_size) +
              ", slide " + std::to_string(traits.window_slide) +
              ") differs from (size " + std::to_string(ref_size) +
              ", slide " + std::to_string(ref_slide) + ") at " +
              NodeLabel(graph, ref_node));
    }
  }
}

/// Keyed data parallelism: a node expanded into parallelism > 1 subtasks
/// must actually be splittable. The operator has to provide subtask clones
/// and, when stateful, partition its state by key (E314). A keyed stateful
/// parallel operator additionally needs every input edge hash-partitioned
/// — under forward/rebalance routing the events of one key would spread
/// over subtasks arbitrarily and cross-stream matches silently vanish
/// (E312). Parallelism beyond the declared key domain leaves subtasks
/// permanently idle, since hash routing can address at most one subtask
/// per key (W313).
void CheckParallelism(const JobGraph& graph, DiagnosticReport* report) {
  const int n = graph.num_nodes();
  for (NodeId id = 0; id < n; ++id) {
    const JobGraph::Node& node = graph.node(id);
    if (node.is_source() || node.parallelism <= 1) continue;
    OperatorTraits traits = node.op->Traits();
    if (node.op->CloneForSubtask() == nullptr) {
      report->Add(DiagnosticCode::kGraphParallelUnsupported,
                  NodeLabel(graph, id),
                  "parallelism " + std::to_string(node.parallelism) +
                      " but the operator provides no subtask clone "
                      "(CloneForSubtask)");
    } else if (traits.stateful && !traits.keyed) {
      report->Add(DiagnosticCode::kGraphParallelUnsupported,
                  NodeLabel(graph, id),
                  "parallelism " + std::to_string(node.parallelism) +
                      " on stateful unkeyed state: the subtasks cannot "
                      "partition it consistently");
    }
    if (traits.stateful && traits.keyed) {
      for (NodeId from = 0; from < n; ++from) {
        for (const JobGraph::Edge& edge : graph.node(from).outputs) {
          if (edge.to != id) continue;
          if (edge.partition != PartitionMode::kHash) {
            report->Add(
                DiagnosticCode::kGraphKeyedParallelNotHashed,
                NodeLabel(graph, id),
                "input port " + std::to_string(edge.input_port) + " from " +
                    NodeLabel(graph, from) + " uses " +
                    PartitionModeToString(edge.partition) +
                    " routing; keyed state with parallelism " +
                    std::to_string(node.parallelism) +
                    " requires hash partitioning");
          }
        }
      }
    }
    if (node.key_domain_hint > 0 &&
        static_cast<int64_t>(node.parallelism) > node.key_domain_hint) {
      report->Add(DiagnosticCode::kGraphParallelismExceedsKeys,
                  NodeLabel(graph, id),
                  "parallelism " + std::to_string(node.parallelism) +
                      " exceeds the declared key domain of " +
                      std::to_string(node.key_domain_hint) +
                      " keys; excess subtasks stay idle");
    }
  }
}

/// E321: every compiled expression an operator exposes must pass the
/// static bytecode verifier. The interpreter's dispatch loop trusts its
/// encoding (release builds bound-check nothing), so executors refusing
/// E-diagnosed graphs makes verification a hard gate, not a debug aid.
void CheckExprPrograms(const JobGraph& graph, DiagnosticReport* report) {
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const JobGraph::Node& node = graph.node(id);
    if (node.is_source()) continue;
    const OperatorTraits traits = node.op->Traits();
    if (traits.program == nullptr) continue;
    const size_t capacity = std::max<size_t>(traits.expr_capacity, 1);
    const Status verdict = ExprVerifier::Verify(*traits.program, capacity);
    if (!verdict.ok()) {
      report->Add(DiagnosticCode::kGraphExprVerifyFailed,
                  NodeLabel(graph, id), verdict.message());
      continue;
    }
    // A columnar-capable operator runs the same bytecode through a second
    // entry point (RunColumnar); E321 covers both execution modes.
    if (traits.columnar_capable) {
      const Status columnar =
          ExprVerifier::VerifyColumnar(*traits.program, capacity);
      if (!columnar.ok()) {
        report->Add(DiagnosticCode::kGraphExprVerifyFailed,
                    NodeLabel(graph, id),
                    "columnar entry point: " + columnar.message());
      }
    }
  }
}

}  // namespace

DiagnosticReport AnalyzeJobGraph(const JobGraph& graph) {
  DiagnosticReport report;
  CheckPorts(graph, &report);
  CheckAcyclic(graph, &report);
  CheckSourceCoverage(graph, &report);
  CheckKeying(graph, &report);
  CheckWindows(graph, &report);
  CheckParallelism(graph, &report);
  CheckExprPrograms(graph, &report);
  return report;
}

}  // namespace cep2asp
