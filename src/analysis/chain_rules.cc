#include "analysis/chain_rules.h"

#include <string>

namespace cep2asp {

namespace {

std::string NodeLabel(const JobGraph& graph, NodeId id) {
  const JobGraph::Node& node = graph.node(id);
  std::string name = node.is_source() ? ("source " + node.source->name())
                                      : node.op->name();
  return "node " + std::to_string(id) + " (" + name + ")";
}

}  // namespace

DiagnosticReport AnalyzeChaining(const JobGraph& graph) {
  DiagnosticReport report;
  const ChainLayout layout = ComputeChainLayout(graph);
  for (NodeId from = 0; from < graph.num_nodes(); ++from) {
    const JobGraph::Node& node = graph.node(from);
    for (size_t out = 0; out < node.outputs.size(); ++out) {
      const ChainBreak verdict = layout.edge_verdict[from][out];
      switch (verdict) {
        case ChainBreak::kChained:
        case ChainBreak::kNotForward:
        case ChainBreak::kSourceProducer:
        case ChainBreak::kDisabled:
          continue;
        case ChainBreak::kProducerOptedOut:
        case ChainBreak::kConsumerOptedOut:
        case ChainBreak::kFanOut:
        case ChainBreak::kFanIn:
        case ChainBreak::kParallelismMismatch:
          break;
      }
      const NodeId to = node.outputs[out].to;
      report.Add(DiagnosticCode::kGraphForwardEdgeNotChained,
                 NodeLabel(graph, from),
                 "forward edge to " + NodeLabel(graph, to) + " not chained: " +
                     ChainBreakToString(verdict));
    }
  }
  return report;
}

DiagnosticReport AnalyzeColumnarLayout(const JobGraph& graph) {
  DiagnosticReport report;
  const ChainLayout layout = ComputeChainLayout(graph);
  for (NodeId from = 0; from < graph.num_nodes(); ++from) {
    const JobGraph::Node& node = graph.node(from);
    const bool producer_columnar =
        !node.is_source() && node.op->Traits().columnar_capable;
    for (size_t out = 0; out < node.outputs.size(); ++out) {
      const JobGraph::Edge& edge = node.outputs[out];
      const JobGraph::Node& consumer = graph.node(edge.to);
      const bool consumer_columnar =
          consumer.op != nullptr && consumer.op->Traits().columnar_capable;
      const std::string to_label = NodeLabel(graph, edge.to);
      if (layout.fused(from, out)) {
        // In-chain hand-off: blocks flow (or scatter) through the
        // ChainedCollector, never a channel. Silent when neither endpoint
        // runs columnar — nothing SoA-related happens on the edge.
        if (producer_columnar && consumer_columnar) {
          report.Add(DiagnosticCode::kGraphColumnarStatus,
                     NodeLabel(graph, from),
                     "fused edge to " + to_label +
                         ": columnar (blocks hand over in-chain)");
        } else if (producer_columnar) {
          report.Add(DiagnosticCode::kGraphColumnarStatus,
                     NodeLabel(graph, from),
                     "fused edge to " + to_label +
                         ": scatter shim (row-major consumer in chain)");
        }
        continue;
      }
      // Channel edge: mirror RoutingCollector's per-edge negotiation.
      // Forward and hash edges into columnar-capable consumers carry
      // blocks (hash via PartitionByKey); broadcast edges and row-major
      // consumers cannot. Blocks travel only when EVERY out-edge of the
      // producer is eligible — one ineligible sibling makes the whole
      // fan-out scatter once.
      std::string reason;
      if (edge.partition == PartitionMode::kBroadcast) {
        reason = "broadcast would deep-copy blocks";
      } else if (!consumer_columnar) {
        reason = "consumer is row-major";
      }
      bool all_eligible = reason.empty();
      if (all_eligible) {
        for (const JobGraph::Edge& sibling : node.outputs) {
          const JobGraph::Node& sib_consumer = graph.node(sibling.to);
          const bool sib_columnar =
              sib_consumer.op != nullptr &&
              sib_consumer.op->Traits().columnar_capable;
          if (sibling.partition == PartitionMode::kBroadcast ||
              !sib_columnar) {
            all_eligible = false;
            reason = "sibling edge cannot carry blocks";
            break;
          }
        }
      }
      if (all_eligible) {
        report.Add(DiagnosticCode::kGraphColumnarStatus,
                   NodeLabel(graph, from),
                   "edge to " + to_label +
                       (edge.partition == PartitionMode::kHash
                            ? ": columnar (hash-partitions blocks per subtask)"
                            : ": columnar (ships column blocks whole)"));
      } else if (producer_columnar) {
        report.Add(DiagnosticCode::kGraphColumnarStatus,
                   NodeLabel(graph, from),
                   "edge to " + to_label + ": scatter shim (" + reason + ")");
      } else {
        report.Add(DiagnosticCode::kGraphColumnarStatus,
                   NodeLabel(graph, from),
                   "edge to " + to_label + ": row-major (" + reason + ")");
      }
    }
  }
  return report;
}

}  // namespace cep2asp
