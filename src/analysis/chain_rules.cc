#include "analysis/chain_rules.h"

#include <string>

namespace cep2asp {

namespace {

std::string NodeLabel(const JobGraph& graph, NodeId id) {
  const JobGraph::Node& node = graph.node(id);
  std::string name = node.is_source() ? ("source " + node.source->name())
                                      : node.op->name();
  return "node " + std::to_string(id) + " (" + name + ")";
}

}  // namespace

DiagnosticReport AnalyzeChaining(const JobGraph& graph) {
  DiagnosticReport report;
  const ChainLayout layout = ComputeChainLayout(graph);
  for (NodeId from = 0; from < graph.num_nodes(); ++from) {
    const JobGraph::Node& node = graph.node(from);
    for (size_t out = 0; out < node.outputs.size(); ++out) {
      const ChainBreak verdict = layout.edge_verdict[from][out];
      switch (verdict) {
        case ChainBreak::kChained:
        case ChainBreak::kNotForward:
        case ChainBreak::kSourceProducer:
        case ChainBreak::kDisabled:
          continue;
        case ChainBreak::kProducerOptedOut:
        case ChainBreak::kConsumerOptedOut:
        case ChainBreak::kFanOut:
        case ChainBreak::kFanIn:
        case ChainBreak::kParallelismMismatch:
          break;
      }
      const NodeId to = node.outputs[out].to;
      report.Add(DiagnosticCode::kGraphForwardEdgeNotChained,
                 NodeLabel(graph, from),
                 "forward edge to " + NodeLabel(graph, to) + " not chained: " +
                     ChainBreakToString(verdict));
    }
  }
  return report;
}

}  // namespace cep2asp
