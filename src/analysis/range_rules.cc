#include "analysis/range_rules.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "event/expr_program.h"
#include "event/expr_verifier.h"
#include "event/predicate.h"

namespace cep2asp {
namespace {

std::string NodeLabel(const JobGraph& graph, NodeId id) {
  const JobGraph::Node& node = graph.node(id);
  const std::string name =
      node.is_source() ? node.source->name() : node.op->name();
  return "node " + std::to_string(id) + " (" + name + ")";
}

/// Distinct integral values inside a finite interval; 0 when unbounded,
/// empty, or implausibly large (no useful hint).
int64_t IntegralDomain(const Interval& iv) {
  if (iv.IsEmpty()) return 0;
  if (!std::isfinite(iv.lo) || !std::isfinite(iv.hi)) return 0;
  const double lo = std::ceil(iv.lo);
  const double hi = std::floor(iv.hi);
  if (lo > hi) return 0;
  const double count = hi - lo + 1.0;
  if (count > 9.0e15) return 0;
  return static_cast<int64_t>(count);
}

/// Truth of one term (lhs cmp rhs) with relational special-casing: when
/// both sides read the *same* attribute of the *same* event slot with no
/// offset, the comparison is decided by reflexivity, which plain interval
/// reasoning cannot see (x <= x holds even when the interval is wide).
Truth TermTruth(const Interval& lhs, CmpOp op, const Interval& rhs,
                bool same_cell, double offset) {
  if (same_cell && offset == 0.0) {
    switch (op) {
      case CmpOp::kLe:
      case CmpOp::kGe:
      case CmpOp::kEq:
        return Truth::kAlways;  // x op x (declared ranges are NaN-free)
      case CmpOp::kLt:
      case CmpOp::kGt:
      case CmpOp::kNe:
        return Truth::kNever;
      }
  }
  return EvalCmpTruth(lhs, op, rhs);
}

/// Mutable per-node abstract state while the pass runs.
struct Cursor {
  NodeRangeFacts* facts;
  bool any_never = false;
  bool all_always = true;
  int terms = 0;

  Interval& Slot(size_t event, Attribute attr) {
    return (*facts).slots[event][attr];
  }

  bool ValidSlot(int event, int attr) const {
    return event >= 0 && static_cast<size_t>(event) < facts->slots.size() &&
           attr >= 0 && attr <= static_cast<int>(Attribute::kAuxTs);
  }

  /// Applies one conjunction term: records its truth and narrows both
  /// sides to the values that can pass (true-branch transfer function).
  void ApplyTerm(int lvar, Attribute lattr, CmpOp op, bool rhs_is_attr,
                 int rvar, Attribute rattr, double rhs_const,
                 double rhs_offset) {
    ++terms;
    if (!ValidSlot(lvar, static_cast<int>(lattr))) {
      all_always = false;
      return;
    }
    Interval& lhs = Slot(static_cast<size_t>(lvar), lattr);
    if (!rhs_is_attr) {
      const Interval rhs = Interval::Point(rhs_const);
      const double bound = SelectivityBound(lhs, op, rhs_const);
      selectivity = selectivity < 0 ? bound : std::min(selectivity, bound);
      const Truth t = TermTruth(lhs, op, rhs, false, 0.0);
      if (t == Truth::kNever) any_never = true;
      if (t != Truth::kAlways) all_always = false;
      lhs = RefineLhs(lhs, op, rhs);
      return;
    }
    if (!ValidSlot(rvar, static_cast<int>(rattr))) {
      all_always = false;
      return;
    }
    Interval& rhs = Slot(static_cast<size_t>(rvar), rattr);
    const bool same_cell = lvar == rvar && lattr == rattr;
    const Interval shifted = rhs.Plus(rhs_offset);
    const Truth t = TermTruth(lhs, op, shifted, same_cell, rhs_offset);
    if (t == Truth::kNever) any_never = true;
    if (t != Truth::kAlways) all_always = false;
    if (t == Truth::kNever) {
      selectivity = 0.0;
    } else if (t == Truth::kAlways && selectivity < 0) {
      selectivity = 1.0;
    }
    if (!same_cell) {
      const Interval new_lhs = RefineLhs(lhs, op, shifted);
      const Interval new_rhs = RefineRhs(lhs, op, shifted).Plus(-rhs_offset);
      lhs = new_lhs;
      rhs = new_rhs;
    }
  }

  double selectivity = -1.0;
};

/// Interprets a compiled program over the abstract state. Returns false
/// when the program contains stack-form instructions the pass does not
/// model (the state is left as the input — sound for a filter, which can
/// only narrow, with the key widened if the program stores one).
bool InterpretProgram(const ExprProgram& program, Cursor* cur) {
  for (const ExprInsn& insn : program.code()) {
    switch (insn.op) {
      case ExprOp::kCmpAttrConstFail:
        cur->ApplyTerm(insn.a, static_cast<Attribute>(insn.b),
                       static_cast<CmpOp>(insn.c), /*rhs_is_attr=*/false, 0,
                       Attribute::kValue, program.const_pool()[insn.imm], 0.0);
        break;
      case ExprOp::kCmpAttrAttrFail:
        cur->ApplyTerm(insn.a, static_cast<Attribute>(insn.b),
                       static_cast<CmpOp>(insn.c), /*rhs_is_attr=*/true,
                       insn.d, static_cast<Attribute>(insn.e), 0.0, 0.0);
        break;
      case ExprOp::kCmpAttrAttrOffFail:
        cur->ApplyTerm(insn.a, static_cast<Attribute>(insn.b),
                       static_cast<CmpOp>(insn.c), /*rhs_is_attr=*/true,
                       insn.d, static_cast<Attribute>(insn.e), 0.0,
                       program.const_pool()[insn.imm]);
        break;
      case ExprOp::kStoreKeyAttr:
        if (cur->ValidSlot(insn.a, insn.b)) {
          cur->facts->key =
              cur->Slot(insn.a, static_cast<Attribute>(insn.b));
        } else {
          cur->facts->key = Interval::All();
        }
        break;
      case ExprOp::kStoreKeyConst:
        cur->facts->key = Interval::Point(
            static_cast<double>(program.key_pool()[insn.imm]));
        break;
      case ExprOp::kHalt:
        return true;
      default:
        // Stack-form encoding: not modeled term-wise.
        if (program.assigns_key()) cur->facts->key = Interval::All();
        return false;
    }
  }
  return true;
}

void ApplyPredicate(const Predicate& pred, bool broadcast, Cursor* cur) {
  for (const Comparison& term : pred.terms()) {
    const int lvar = broadcast ? 0 : term.lhs.var;
    const int rvar = broadcast ? 0 : term.rhs_attr.var;
    cur->ApplyTerm(lvar, term.lhs.attr, term.op, term.rhs_is_attr, rvar,
                   term.rhs_attr.attr, term.rhs_const, term.rhs_offset);
  }
}

EventRanges SeedRanges(const SourceRangeCatalog& catalog, EventTypeId type) {
  if (type != kInvalidEventType) {
    if (const EventRanges* declared = catalog.Find(type)) return *declared;
  }
  return EventRanges{};  // Top in every slot
}

}  // namespace

Truth PredicateTruthOnEvent(const Predicate& pred, const EventRanges& ranges) {
  NodeRangeFacts facts;
  facts.slots.push_back(ranges);
  Cursor cur;
  cur.facts = &facts;
  ApplyPredicate(pred, /*broadcast=*/true, &cur);
  if (cur.any_never) return Truth::kNever;
  if (cur.terms > 0 && cur.all_always) return Truth::kAlways;
  return Truth::kSometimes;
}

RangeAnalysis AnalyzeRanges(const JobGraph& graph,
                            const SourceRangeCatalog& catalog) {
  RangeAnalysis out;
  out.nodes.resize(static_cast<size_t>(graph.num_nodes()));
  const std::vector<NodeId> topo = graph.TopologicalOrder();
  if (static_cast<int>(topo.size()) != graph.num_nodes()) {
    // Cyclic graph: AnalyzeJobGraph reports E303; no range claims here.
    return out;
  }

  // Producer of each (node, input port); -1 when unfed / multiply fed
  // (those are E301/E302 territory — no claims).
  std::vector<std::vector<NodeId>> producer(
      static_cast<size_t>(graph.num_nodes()));
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const JobGraph::Node& node = graph.node(id);
    const int ports = node.is_source() ? 0 : node.op->num_inputs();
    producer[static_cast<size_t>(id)].assign(
        static_cast<size_t>(std::max(ports, 0)), -1);
  }
  for (NodeId from = 0; from < graph.num_nodes(); ++from) {
    for (const JobGraph::Edge& edge : graph.node(from).outputs) {
      auto& ports = producer[static_cast<size_t>(edge.to)];
      const size_t port = static_cast<size_t>(edge.input_port);
      if (port < ports.size()) {
        ports[port] = ports[port] == -1 ? from : -2;  // -2: multiply fed
      }
    }
  }

  for (NodeId id : topo) {
    const JobGraph::Node& node = graph.node(id);
    NodeRangeFacts& facts = out.nodes[static_cast<size_t>(id)];

    if (node.is_source()) {
      facts.computed = true;
      facts.slots.push_back(SeedRanges(catalog, node.source_type));
      // Tuple(event) keys by the raw event id.
      facts.key = facts.slots[0][Attribute::kId];
      facts.derived_key_domain = IntegralDomain(facts.key);
      continue;
    }

    const OperatorTraits traits = node.op->Traits();

    // Gather inputs; any unfed/multiply-fed/uncomputed port → no claims.
    std::vector<const NodeRangeFacts*> inputs;
    bool inputs_ok = true;
    bool all_dead = !producer[static_cast<size_t>(id)].empty();
    for (NodeId from : producer[static_cast<size_t>(id)]) {
      if (from < 0) {
        inputs_ok = false;
        all_dead = false;
        break;
      }
      const NodeRangeFacts& in = out.nodes[static_cast<size_t>(from)];
      if (!in.computed) inputs_ok = false;
      if (!in.dead) all_dead = false;
      inputs.push_back(&in);
    }
    if (all_dead && inputs_ok) {
      facts.dead = true;  // no input can ever arrive
    }
    if (!inputs_ok || inputs.empty()) continue;

    // Verify any compiled program before trusting its encoding.
    if (traits.program != nullptr) {
      const size_t capacity = std::max<size_t>(
          traits.expr_capacity, inputs[0]->slots.empty()
                                    ? 1
                                    : inputs[0]->slots.size());
      const Status verdict = ExprVerifier::Verify(*traits.program, capacity);
      if (!verdict.ok()) {
        out.report.Add(DiagnosticCode::kGraphExprVerifyFailed,
                       NodeLabel(graph, id), verdict.message());
        continue;
      }
    }

    Cursor cur;
    cur.facts = &facts;

    if (traits.program != nullptr) {
      // Compiled stateless stage (possibly fused filter→key).
      facts.slots = inputs[0]->slots;
      facts.key = inputs[0]->key;
      facts.computed = true;
      InterpretProgram(*traits.program, &cur);
    } else if (traits.predicate != nullptr && !traits.stateful) {
      // Interpreted filter.
      facts.slots = inputs[0]->slots;
      facts.key = inputs[0]->key;
      facts.computed = true;
      ApplyPredicate(*traits.predicate, traits.predicate_broadcast, &cur);
    } else if (traits.predicate != nullptr && traits.stateful &&
               node.op->num_inputs() == 2 && inputs.size() == 2) {
      // Join: condition addresses the concatenated tuple positionally.
      facts.slots = inputs[0]->slots;
      facts.slots.insert(facts.slots.end(), inputs[1]->slots.begin(),
                         inputs[1]->slots.end());
      facts.key = inputs[0]->key;  // Concat keeps the left key
      facts.computed = true;
      ApplyPredicate(*traits.predicate, /*broadcast=*/false, &cur);
    } else if (traits.assigns_key &&
               (traits.key_is_constant || traits.key_source_event >= 0)) {
      // Factory key map: tuples pass through, only the key changes.
      facts.slots = inputs[0]->slots;
      facts.computed = true;
      if (traits.key_is_constant) {
        facts.key = Interval::Point(static_cast<double>(traits.key_constant));
      } else if (static_cast<size_t>(traits.key_source_event) <
                 facts.slots.size()) {
        facts.key = facts.slots[static_cast<size_t>(traits.key_source_event)]
                               [traits.key_source_attr];
      }
    } else if (node.op->num_inputs() > 1 && !traits.stateful &&
               static_cast<size_t>(node.op->num_inputs()) == inputs.size()) {
      // Union: the convex hull of all inputs, the lattice join at the
      // merge point (must share arity; mismatches are E211 territory).
      bool arity_ok = true;
      for (const NodeRangeFacts* in : inputs) {
        if (in->slots.size() != inputs[0]->slots.size()) arity_ok = false;
      }
      if (arity_ok) {
        facts.slots = inputs[0]->slots;
        facts.key = inputs[0]->key;
        for (size_t i = 1; i < inputs.size(); ++i) {
          for (size_t s = 0; s < facts.slots.size(); ++s) {
            for (size_t a = 0; a < 6; ++a) {
              facts.slots[s].attrs[a] =
                  facts.slots[s].attrs[a].Hull(inputs[i]->slots[s].attrs[a]);
            }
          }
          facts.key = facts.key.Hull(inputs[i]->key);
        }
        facts.computed = true;
      }
    } else if (traits.is_sink) {
      facts.slots = inputs[0]->slots;
      facts.key = inputs[0]->key;
      facts.computed = true;
    }
    // Everything else (aggregates, NSEQ marking, opaque lambdas) makes no
    // claims: computed stays false, downstream inherits Top.

    // Deadness is a claim in its own right: an opaque operator fed only by
    // dead inputs is still provably dead.
    if (facts.dead) facts.computed = true;
    if (!facts.computed) continue;

    facts.selectivity = cur.selectivity;
    facts.derived_key_domain = IntegralDomain(facts.key);

    if (cur.any_never && !facts.dead) {
      facts.dead = true;
      out.report.Add(DiagnosticCode::kGraphFilterAlwaysFalse,
                     NodeLabel(graph, id),
                     "predicate can never hold for the declared input "
                     "ranges; this node and everything downstream of it "
                     "are dead");
    } else if (cur.terms > 0 && cur.all_always && traits.program == nullptr &&
               traits.predicate != nullptr && !traits.stateful &&
               !traits.assigns_key) {
      out.report.Add(DiagnosticCode::kGraphFilterAlwaysTrue,
                     NodeLabel(graph, id),
                     "predicate holds for every tuple the declared input "
                     "ranges admit; the filter is removable");
    } else if (cur.terms > 0 && cur.all_always && traits.program != nullptr &&
               !traits.program->assigns_key()) {
      out.report.Add(DiagnosticCode::kGraphFilterAlwaysTrue,
                     NodeLabel(graph, id),
                     "compiled filter passes every tuple the declared input "
                     "ranges admit; the operator is removable");
    }
    if (facts.dead) {
      facts.selectivity = 0.0;
      for (EventRanges& slot : facts.slots) {
        for (Interval& iv : slot.attrs) iv = Interval::Empty();
      }
    }

    // Derived key-domain check: the W313 heuristic upgraded to a proven
    // bound (only when no hint was declared — the declared-hint case is
    // CheckParallelism's).
    if (traits.keyed && traits.stateful && node.key_domain_hint == 0 &&
        !facts.dead) {
      // The key the state is partitioned by is the *input* key.
      const int64_t domain = inputs[0]->derived_key_domain;
      if (domain > 0 && node.parallelism > domain) {
        out.report.Add(
            DiagnosticCode::kGraphParallelismExceedsKeys,
            NodeLabel(graph, id),
            "parallelism " + std::to_string(node.parallelism) +
                " exceeds the derived key domain of " +
                std::to_string(domain) +
                " distinct keys (range analysis); excess subtasks can "
                "never receive tuples");
      }
    }
  }
  return out;
}

std::string RangeAnalysis::ToString(const JobGraph& graph) const {
  std::string out;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const NodeRangeFacts& facts = nodes[static_cast<size_t>(id)];
    out += NodeLabel(graph, id) + ": ";
    if (!facts.computed) {
      out += "no derived facts\n";
      continue;
    }
    if (facts.dead) {
      out += "DEAD (no tuple can reach or pass this node)\n";
      continue;
    }
    bool first = true;
    for (size_t s = 0; s < facts.slots.size(); ++s) {
      for (size_t a = 0; a < 6; ++a) {
        const Interval& iv = facts.slots[s].attrs[a];
        if (iv.IsAll()) continue;
        if (!first) out += ", ";
        first = false;
        out += "e" + std::to_string(s) + "." +
               AttributeName(static_cast<Attribute>(a)) + " " + iv.ToString();
      }
    }
    if (!facts.key.IsAll()) {
      if (!first) out += ", ";
      first = false;
      out += "key " + facts.key.ToString();
      if (facts.derived_key_domain > 0) {
        out += " (" + std::to_string(facts.derived_key_domain) + " keys)";
      }
    }
    if (facts.selectivity >= 0.0) {
      if (!first) out += ", ";
      first = false;
      out += "selectivity <= " + FormatDouble(facts.selectivity);
    }
    if (first) out += "all attributes unbounded";
    out += "\n";
  }
  return out;
}

DiagnosticReport DescribeRanges(const JobGraph& graph,
                                const RangeAnalysis& analysis) {
  DiagnosticReport report;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const NodeRangeFacts& facts = analysis.nodes[static_cast<size_t>(id)];
    if (!facts.computed) continue;
    std::string msg;
    if (facts.dead) {
      msg = "dead: no tuple can reach or pass this node";
    } else {
      msg = "key " + facts.key.ToString();
      if (facts.derived_key_domain > 0) {
        msg += " (" + std::to_string(facts.derived_key_domain) + " keys)";
      }
      if (facts.selectivity >= 0.0) {
        msg += ", selectivity <= " + FormatDouble(facts.selectivity);
      }
      if (!facts.slots.empty()) {
        const Interval& value = facts.slots[0][Attribute::kValue];
        if (!value.IsAll()) msg += ", e0.value " + value.ToString();
      }
    }
    report.Add(DiagnosticCode::kGraphRangeReport, NodeLabel(graph, id),
               std::move(msg));
  }
  return report;
}

void AttachRangeFacts(JobGraph* graph, const RangeAnalysis& analysis) {
  for (NodeId id = 0; id < graph->num_nodes(); ++id) {
    const NodeRangeFacts& facts = analysis.nodes[static_cast<size_t>(id)];
    if (!facts.computed) continue;
    JobGraph::Node& node = graph->mutable_node(id);
    if (node.op != nullptr && facts.selectivity >= 0.0) {
      node.op->AttachSelectivityBound(facts.selectivity);
    }
    if (node.op != nullptr && node.key_domain_hint == 0 &&
        facts.derived_key_domain > 0) {
      (void)graph->SetKeyDomainHint(id, facts.derived_key_domain);
    }
  }
}

}  // namespace cep2asp
