#include "analysis/schedule_rules.h"

#include <string>
#include <thread>

namespace cep2asp {

namespace {

std::string NodeName(const JobGraph& graph, NodeId id) {
  const JobGraph::Node& node = graph.node(id);
  return node.is_source() ? ("source " + node.source->name())
                          : node.op->name();
}

/// Threads the legacy path spawns: one per source node, one per
/// (chain, subtask instance) — the chain head's parallelism decides the
/// subtask count for the whole chain.
int LegacyThreadCount(const JobGraph& graph, const ChainLayout& layout) {
  int threads = 0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    if (graph.node(id).is_source()) ++threads;
  }
  for (const std::vector<NodeId>& chain : layout.chains) {
    threads += graph.parallelism(chain.front());
  }
  return threads;
}

int ResolveHardwareThreads(int hardware_threads) {
  if (hardware_threads > 0) return hardware_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

DiagnosticReport AnalyzeSchedule(const JobGraph& graph, bool chaining_enabled,
                                 bool use_task_scheduler,
                                 int hardware_threads) {
  DiagnosticReport report;
  if (use_task_scheduler) return report;
  const ChainLayout layout = ComputeChainLayout(graph, chaining_enabled);
  const int threads = LegacyThreadCount(graph, layout);
  const int cores = ResolveHardwareThreads(hardware_threads);
  if (threads <= cores) return report;
  report.Add(DiagnosticCode::kGraphScheduleOversubscribed, "job graph",
             "legacy thread-per-subtask execution spawns " +
                 std::to_string(threads) + " threads on " +
                 std::to_string(cores) +
                 " hardware threads; enable the task scheduler to multiplex " +
                 std::to_string(threads) + " tasks onto a pool of " +
                 std::to_string(cores) + " workers");
  return report;
}

std::string ScheduleToString(const JobGraph& graph, bool chaining_enabled,
                             int worker_threads) {
  const ChainLayout layout = ComputeChainLayout(graph, chaining_enabled);
  std::string out;
  int task = 0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    if (!graph.node(id).is_source()) continue;
    out += "  task " + std::to_string(task++) + ": " + NodeName(graph, id) +
           " (source)\n";
  }
  for (size_t c = 0; c < layout.chains.size(); ++c) {
    const std::vector<NodeId>& chain = layout.chains[c];
    const int parallelism = graph.parallelism(chain.front());
    for (int subtask = 0; subtask < parallelism; ++subtask) {
      out += "  task " + std::to_string(task++) + ":";
      for (size_t i = 0; i < chain.size(); ++i) {
        out += (i == 0 ? " " : " -> ") + NodeName(graph, chain[i]);
      }
      out += " (chain " + std::to_string(c) + ", subtask " +
             std::to_string(subtask) + ")";
      if (parallelism > 1) out += " [x" + std::to_string(parallelism) + "]";
      out += "\n";
    }
  }
  const int workers = ResolveHardwareThreads(worker_threads);
  out += "  tasks: " + std::to_string(task) + ", worker pool: " +
         std::to_string(workers) + ", legacy threads: " +
         std::to_string(LegacyThreadCount(graph, layout)) + "\n";
  return out;
}

}  // namespace cep2asp
