#ifndef CEP2ASP_ANALYSIS_GRAPH_RULES_H_
#define CEP2ASP_ANALYSIS_GRAPH_RULES_H_

#include "analysis/diagnostic.h"
#include "runtime/job_graph.h"

namespace cep2asp {

/// \brief Job-graph lint pass (diagnostic codes 3xx).
///
/// Subsumes the historical JobGraph::Validate() checks — port coverage
/// (E301/E302), acyclicity (E303) — and extends them with source coverage
/// (E304, W305, W306: every operator needs an upstream source to ever see
/// tuples or watermarks), terminal-sink hygiene (W307), keyed-state vs.
/// partitioning consistency (W308), fan-in accounting soundness for the
/// threaded executor's SPSC channel selection (E309), and window-spec
/// consistency across the job's windowed operators (E310/E311), all driven
/// by Operator::Traits().
///
/// Executors run this pass before starting a job and refuse graphs with
/// E-level findings; JobGraph::Validate() is a thin wrapper returning the
/// first error as a Status.
DiagnosticReport AnalyzeJobGraph(const JobGraph& graph);

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_GRAPH_RULES_H_
