#include "analysis/pattern_rules.h"

#include <cmath>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "event/predicate.h"

namespace cep2asp {
namespace {

std::string AtomLabel(const PatternAtom& atom) {
  if (!atom.variable.empty()) return "atom " + atom.variable;
  return "atom type " + std::to_string(atom.type);
}

/// Interval bounds accumulated for one attribute of a single-event filter.
struct AttrBounds {
  double lower = -HUGE_VAL;
  bool lower_strict = false;
  double upper = HUGE_VAL;
  bool upper_strict = false;
  std::optional<double> eq;
  std::vector<double> ne;
  bool contradictory = false;  // e.g. x < x, or two different equalities

  void AddLower(double v, bool strict) {
    if (v > lower || (v == lower && strict && !lower_strict)) {
      lower = v;
      lower_strict = strict;
    }
  }
  void AddUpper(double v, bool strict) {
    if (v < upper || (v == upper && strict && !upper_strict)) {
      upper = v;
      upper_strict = strict;
    }
  }

  bool Unsatisfiable() const {
    if (contradictory) return true;
    if (lower > upper) return true;
    if (lower == upper && (lower_strict || upper_strict)) return true;
    if (eq.has_value()) {
      const double v = *eq;
      if (v < lower || (v == lower && lower_strict)) return true;
      if (v > upper || (v == upper && upper_strict)) return true;
      for (double banned : ne) {
        if (banned == v) return true;
      }
    }
    return false;
  }
};

/// Conservative satisfiability check of a single-variable filter: only
/// attribute-vs-constant terms (and self-comparisons) are interpreted, so a
/// "unsatisfiable" verdict is sound while satisfiable filters may pass
/// undetected. All variable references in an atom filter address the atom
/// itself, so rhs attribute terms compare two attributes of one event.
bool FilterUnsatisfiable(const Predicate& filter) {
  std::map<Attribute, AttrBounds> bounds;
  for (const Comparison& term : filter.terms()) {
    if (term.rhs_is_attr) {
      // Self-comparison on the same attribute with no offset: x < x etc.
      if (term.lhs.attr == term.rhs_attr.attr && term.rhs_offset == 0.0 &&
          (term.op == CmpOp::kLt || term.op == CmpOp::kGt ||
           term.op == CmpOp::kNe)) {
        return true;
      }
      continue;  // cross-attribute terms are not interpreted
    }
    AttrBounds& b = bounds[term.lhs.attr];
    const double v = term.rhs_const;
    switch (term.op) {
      case CmpOp::kLt:
        b.AddUpper(v, /*strict=*/true);
        break;
      case CmpOp::kLe:
        b.AddUpper(v, /*strict=*/false);
        break;
      case CmpOp::kGt:
        b.AddLower(v, /*strict=*/true);
        break;
      case CmpOp::kGe:
        b.AddLower(v, /*strict=*/false);
        break;
      case CmpOp::kEq:
        if (b.eq.has_value() && *b.eq != v) {
          b.contradictory = true;
        } else {
          b.eq = v;
        }
        break;
      case CmpOp::kNe:
        b.ne.push_back(v);
        break;
    }
  }
  for (const auto& [attr, b] : bounds) {
    if (b.Unsatisfiable()) return true;
  }
  return false;
}

void CheckAtomFilter(const PatternAtom& atom, DiagnosticReport* report) {
  if (FilterUnsatisfiable(atom.filter)) {
    report->Add(DiagnosticCode::kPatternFilterUnsatisfiable, AtomLabel(atom),
                "filter " + atom.filter.ToString() +
                    " is unsatisfiable; the atom can never match");
  }
}

void CheckNode(const PatternNode& node, DiagnosticReport* report) {
  switch (node.op) {
    case PatternOp::kAtom:
      CheckAtomFilter(node.atom, report);
      break;
    case PatternOp::kIter: {
      const std::string where = "iter over " + AtomLabel(node.atom);
      if (node.iter_count < 1) {
        report->Add(DiagnosticCode::kPatternIterCountInvalid, where,
                    "iteration count m = " + std::to_string(node.iter_count) +
                        " can never match (m must be >= 1)");
      }
      if (node.iter_constraint.has_value() && node.iter_count == 1 &&
          !node.iter_unbounded) {
        report->Add(DiagnosticCode::kPatternIterConstraintUnused, where,
                    "consecutive-pair constraint never applies: a bounded "
                    "iteration of exactly one event has no pairs");
      }
      CheckAtomFilter(node.atom, report);
      break;
    }
    case PatternOp::kNseq:
      for (const PatternAtom& atom : node.nseq_atoms) {
        CheckAtomFilter(atom, report);
      }
      break;
    case PatternOp::kSeq:
    case PatternOp::kAnd:
    case PatternOp::kOr:
      for (const auto& child : node.children) {
        CheckNode(*child, report);
      }
      break;
  }
}

void CheckCrossPredicates(const Pattern& pattern, DiagnosticReport* report) {
  const int arity = pattern.OutputArity();
  int index = 0;
  for (const Comparison& term : pattern.cross_predicates().terms()) {
    const std::string where = "cross predicate #" + std::to_string(index++);
    const int lhs_var = term.lhs.var;
    const int rhs_var = term.rhs_is_attr ? term.rhs_attr.var : lhs_var;
    if (lhs_var < 0 || rhs_var < 0 || term.MaxVar() >= arity) {
      report->Add(DiagnosticCode::kPatternPredicateVarOutOfRange, where,
                  "term " + term.ToString() + " references variable index " +
                      std::to_string(term.MaxVar()) +
                      " but the pattern binds only " + std::to_string(arity) +
                      " match positions");
      continue;
    }
    if (term.ReferencesOnly(lhs_var)) {
      report->Add(DiagnosticCode::kPatternPushdownMissed, where,
                  "term " + term.ToString() +
                      " references a single variable; push it into the "
                      "atom filter so scans drop events before the joins");
    }
  }
}

}  // namespace

DiagnosticReport AnalyzePattern(const Pattern& pattern) {
  DiagnosticReport report;
  if (!pattern.has_root()) {
    report.Add(DiagnosticCode::kPatternNoRoot, "pattern",
               "pattern has no structure tree; nothing to translate");
    return report;
  }
  if (pattern.window_size() <= 0) {
    report.Add(DiagnosticCode::kPatternWindowNotPositive, "pattern",
               "WITHIN window is " + std::to_string(pattern.window_size()) +
                   "ms; every SEA pattern requires a positive window");
  }
  if (pattern.slide() <= 0 ||
      (pattern.window_size() > 0 && pattern.slide() > pattern.window_size())) {
    report.Add(DiagnosticCode::kPatternSlideInvalid, "pattern",
               "slide " + std::to_string(pattern.slide()) +
                   "ms is invalid for window " +
                   std::to_string(pattern.window_size()) +
                   "ms (need 0 < slide <= window, or matches are skipped)");
  }
  CheckNode(pattern.root(), &report);
  CheckCrossPredicates(pattern, &report);
  return report;
}

}  // namespace cep2asp
