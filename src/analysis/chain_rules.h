#ifndef CEP2ASP_ANALYSIS_CHAIN_RULES_H_
#define CEP2ASP_ANALYSIS_CHAIN_RULES_H_

#include "analysis/diagnostic.h"
#include "runtime/job_graph.h"

namespace cep2asp {

/// \brief Chain-planning lint pass (diagnostic code I315).
///
/// Reports one info diagnostic per operator->operator forward edge that
/// the chain planner (ComputeChainLayout) left unfused, naming the reason
/// from the planner's own verdict: fan-out, fan-in, parallelism mismatch,
/// or a chaining opt-out on either endpoint. Each such edge pays a real
/// exchange channel the pipeline could otherwise skip, so the findings
/// are tuning hints, not correctness problems.
///
/// Source->operator edges and non-forward (hash/broadcast) edges are
/// never reported — those channels are structural, not missed fusions.
/// This pass is deliberately separate from AnalyzeJobGraph: executors and
/// ExecutionResult::diagnostics stay info-free, and a clean graph still
/// produces an empty AnalyzeJobGraph report.
DiagnosticReport AnalyzeChaining(const JobGraph& graph);

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_CHAIN_RULES_H_
