#ifndef CEP2ASP_ANALYSIS_CHAIN_RULES_H_
#define CEP2ASP_ANALYSIS_CHAIN_RULES_H_

#include "analysis/diagnostic.h"
#include "runtime/job_graph.h"

namespace cep2asp {

/// \brief Chain-planning lint pass (diagnostic code I315).
///
/// Reports one info diagnostic per operator->operator forward edge that
/// the chain planner (ComputeChainLayout) left unfused, naming the reason
/// from the planner's own verdict: fan-out, fan-in, parallelism mismatch,
/// or a chaining opt-out on either endpoint. Each such edge pays a real
/// exchange channel the pipeline could otherwise skip, so the findings
/// are tuning hints, not correctness problems.
///
/// Source->operator edges and non-forward (hash/broadcast) edges are
/// never reported — those channels are structural, not missed fusions.
/// This pass is deliberately separate from AnalyzeJobGraph: executors and
/// ExecutionResult::diagnostics stay info-free, and a clean graph still
/// produces an empty AnalyzeJobGraph report.
DiagnosticReport AnalyzeChaining(const JobGraph& graph);

/// \brief Columnar-transfer lint pass (diagnostic code I322).
///
/// Reports, per operator-feeding edge, how tuples would travel under the
/// executor's SoA negotiation (ThreadedExecutorOptions::enable_columnar):
///   - "columnar"     — the edge ships whole ColumnarBatch envelopes (single
///                      forward-mode edge into a columnar-capable consumer,
///                      or an in-chain hand-off between capable operators);
///   - "scatter shim" — the producer runs columnar but this edge cannot
///                      carry blocks (fan-out, hash/broadcast partitioning,
///                      or a row-major consumer), so blocks are scattered
///                      back to rows at the boundary;
///   - "row-major"    — rows travel individually, with the blocking reason.
/// Mirrors RoutingCollector's negotiation exactly; like AnalyzeChaining it
/// stays out of AnalyzeJobGraph so executor reports remain info-free.
DiagnosticReport AnalyzeColumnarLayout(const JobGraph& graph);

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_CHAIN_RULES_H_
