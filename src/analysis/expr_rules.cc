#include "analysis/expr_rules.h"

#include <string>

namespace cep2asp {

DiagnosticReport AnalyzeExprCompilation(const JobGraph& graph) {
  DiagnosticReport report;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const JobGraph::Node& node = graph.node(id);
    if (node.is_source()) continue;
    const OperatorTraits traits = node.op->Traits();
    if (traits.expr_exec == ExprExec::kNone) continue;
    const char* how =
        traits.expr_exec == ExprExec::kCompiled ? "compiled" : "interpreted";
    std::string message = std::string("expression ") + how;
    if (traits.expr_note != nullptr && traits.expr_note[0] != '\0') {
      message += ": ";
      message += traits.expr_note;
    }
    report.Add(DiagnosticCode::kGraphExprCompilation,
               "node " + std::to_string(id) + " (" + node.op->name() + ")",
               std::move(message));
  }
  return report;
}

}  // namespace cep2asp
