#ifndef CEP2ASP_ANALYSIS_INTERVAL_H_
#define CEP2ASP_ANALYSIS_INTERVAL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/strings.h"
#include "event/event.h"
#include "event/predicate.h"

namespace cep2asp {

/// \brief A closed interval [lo, hi] over doubles — the abstract domain of
/// the range pass (analysis/range_rules).
///
/// The lattice: Bottom is the empty interval (lo > hi, canonically
/// [+inf, -inf]), Top is [-inf, +inf]; meet is Intersect, join is Hull.
/// Because the job graph is a DAG and every transfer function
/// (refinement, offset shift, hull at merge points) is monotone, a single
/// topological pass reaches the fixpoint — no widening iteration is
/// needed; Hull at fan-in/window merge points plays the role widening
/// would play on cyclic graphs.
///
/// Soundness caveat (NaN): intervals describe *declared* value ranges.
/// An attribute that may be NaN compares false under every operator but
/// !=, so refinement-based narrowing ("values that pass this predicate
/// lie in X") stays sound — NaN never passes and never needs to be in X.
/// Proofs that a predicate *always* holds additionally rely on the
/// declared range being NaN-free, which source declarations promise.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  static Interval All() { return Interval{}; }
  static Interval Empty() {
    return Interval{std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity()};
  }
  static Interval Point(double v) { return Interval{v, v}; }
  static Interval Range(double lo, double hi) { return Interval{lo, hi}; }

  bool IsEmpty() const { return lo > hi; }
  bool IsAll() const {
    return std::isinf(lo) && lo < 0 && std::isinf(hi) && hi > 0;
  }
  bool Contains(double v) const { return v >= lo && v <= hi; }
  bool IsPoint() const { return lo == hi; }

  /// Width of the interval; +inf when unbounded, 0 for a point.
  double Width() const { return IsEmpty() ? 0.0 : hi - lo; }

  /// Lattice meet: the values in both intervals.
  Interval Intersect(const Interval& o) const {
    return Interval{std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  /// Lattice join: the smallest interval containing both (convex hull).
  Interval Hull(const Interval& o) const {
    if (IsEmpty()) return o;
    if (o.IsEmpty()) return *this;
    return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  /// Shifts both bounds by `offset` (rhs_offset of window-style terms).
  Interval Plus(double offset) const {
    if (IsEmpty()) return *this;
    return Interval{lo + offset, hi + offset};
  }

  std::string ToString() const {
    if (IsEmpty()) return "[empty]";
    return "[" + FormatDouble(lo) + ", " + FormatDouble(hi) + "]";
  }
};

/// Three-valued truth of "x cmp y holds" for x in `lhs`, y in `rhs`.
enum class Truth : uint8_t {
  kNever,      ///< false for every pair of values in the intervals
  kSometimes,  ///< depends on the concrete values (or an interval is empty)
  kAlways,     ///< true for every pair (assuming NaN-free declared ranges)
};

/// Decides the truth of `lhs cmp rhs` over intervals. Empty intervals
/// yield kNever vacuously-by-convention for kAlways purposes: no value
/// reaches the comparison, so callers treat the node as dead via the
/// empty interval itself rather than through the predicate verdict.
inline Truth EvalCmpTruth(const Interval& lhs, CmpOp op, const Interval& rhs) {
  if (lhs.IsEmpty() || rhs.IsEmpty()) return Truth::kSometimes;
  switch (op) {
    case CmpOp::kLt:
      if (lhs.hi < rhs.lo) return Truth::kAlways;
      if (lhs.lo >= rhs.hi) return Truth::kNever;
      return Truth::kSometimes;
    case CmpOp::kLe:
      if (lhs.hi <= rhs.lo) return Truth::kAlways;
      if (lhs.lo > rhs.hi) return Truth::kNever;
      return Truth::kSometimes;
    case CmpOp::kGt:
      if (lhs.lo > rhs.hi) return Truth::kAlways;
      if (lhs.hi <= rhs.lo) return Truth::kNever;
      return Truth::kSometimes;
    case CmpOp::kGe:
      if (lhs.lo >= rhs.hi) return Truth::kAlways;
      if (lhs.hi < rhs.lo) return Truth::kNever;
      return Truth::kSometimes;
    case CmpOp::kEq:
      if (lhs.IsPoint() && rhs.IsPoint() && lhs.lo == rhs.lo) {
        return Truth::kAlways;
      }
      if (lhs.hi < rhs.lo || lhs.lo > rhs.hi) return Truth::kNever;
      return Truth::kSometimes;
    case CmpOp::kNe:
      if (lhs.hi < rhs.lo || lhs.lo > rhs.hi) return Truth::kAlways;
      if (lhs.IsPoint() && rhs.IsPoint() && lhs.lo == rhs.lo) {
        return Truth::kNever;
      }
      return Truth::kSometimes;
  }
  return Truth::kSometimes;
}

/// Narrows `lhs` to the values that can satisfy `lhs cmp rhs` for *some*
/// rhs in `rhs` (the true-branch transfer function of the filter). Closed
/// intervals over doubles cannot express strict bounds exactly, so kLt/kGt
/// keep the closed endpoint — an over-approximation, which is the sound
/// direction for refinement.
inline Interval RefineLhs(const Interval& lhs, CmpOp op, const Interval& rhs) {
  if (lhs.IsEmpty() || rhs.IsEmpty()) return Interval::Empty();
  switch (op) {
    case CmpOp::kLt:
    case CmpOp::kLe:
      return lhs.Intersect(
          Interval{-std::numeric_limits<double>::infinity(), rhs.hi});
    case CmpOp::kGt:
    case CmpOp::kGe:
      return lhs.Intersect(
          Interval{rhs.lo, std::numeric_limits<double>::infinity()});
    case CmpOp::kEq:
      return lhs.Intersect(rhs);
    case CmpOp::kNe:
      // Only a point rhs excludes anything, and an interior point splits
      // the interval — not expressible; refine only at the endpoints.
      return lhs;
  }
  return lhs;
}

/// Narrows `rhs` to the values that can satisfy `lhs cmp rhs` for some
/// lhs in `lhs`; the mirror of RefineLhs.
inline Interval RefineRhs(const Interval& lhs, CmpOp op, const Interval& rhs) {
  switch (op) {
    case CmpOp::kLt:
      return RefineLhs(rhs, CmpOp::kGt, lhs);
    case CmpOp::kLe:
      return RefineLhs(rhs, CmpOp::kGe, lhs);
    case CmpOp::kGt:
      return RefineLhs(rhs, CmpOp::kLt, lhs);
    case CmpOp::kGe:
      return RefineLhs(rhs, CmpOp::kLe, lhs);
    case CmpOp::kEq:
      return RefineLhs(rhs, CmpOp::kEq, lhs);
    case CmpOp::kNe:
      return rhs;
  }
  return rhs;
}

/// Upper bound on the pass fraction of `attr-in-lhs cmp const` under a
/// uniform distribution over `lhs` (the workload generator draws values
/// uniformly, so this is exact for generated streams and an honest bound
/// label otherwise). Returns 1.0 when no finite bound can be derived.
inline double SelectivityBound(const Interval& lhs, CmpOp op, double rhs) {
  if (lhs.IsEmpty()) return 0.0;
  const double width = lhs.Width();
  if (!std::isfinite(width) || width <= 0.0) {
    // Degenerate or unbounded domain: only definite verdicts bound it.
    const Truth t = EvalCmpTruth(lhs, op, Interval::Point(rhs));
    if (t == Truth::kNever) return 0.0;
    if (t == Truth::kAlways) return 1.0;
    return 1.0;
  }
  const Interval pass = RefineLhs(lhs, op, Interval::Point(rhs));
  if (pass.IsEmpty()) return 0.0;
  if (op == CmpOp::kEq) {
    // A point predicate over a continuous uniform domain: measure zero,
    // but report a conservative epsilon-free bound of the point mass a
    // discrete domain of unit spacing would give.
    return std::min(1.0, 1.0 / (width + 1.0));
  }
  return std::min(1.0, pass.Width() / width);
}

/// Per-event-type declared ranges, one interval per attribute slot.
struct EventRanges {
  Interval attrs[6];  // indexed by Attribute (kValue..kAuxTs)

  Interval& operator[](Attribute attr) {
    return attrs[static_cast<size_t>(attr)];
  }
  const Interval& operator[](Attribute attr) const {
    return attrs[static_cast<size_t>(attr)];
  }
};

/// \brief Declared source ranges, keyed by event type — the facts the
/// range pass seeds its propagation from. Typically derived from a
/// Workload (generator stream specs bound value/id/ts exactly) or
/// declared by hand for external streams. An empty catalog means "nothing
/// declared": sources seed at Top and only self-contradictory predicates
/// can be disproven.
class SourceRangeCatalog {
 public:
  SourceRangeCatalog() = default;

  void Declare(EventTypeId type, EventRanges ranges) {
    ranges_[type] = ranges;
  }

  const EventRanges* Find(EventTypeId type) const {
    auto it = ranges_.find(type);
    return it == ranges_.end() ? nullptr : &it->second;
  }

  bool empty() const { return ranges_.empty(); }
  size_t size() const { return ranges_.size(); }

 private:
  std::unordered_map<EventTypeId, EventRanges> ranges_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_INTERVAL_H_
