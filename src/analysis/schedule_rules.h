#ifndef CEP2ASP_ANALYSIS_SCHEDULE_RULES_H_
#define CEP2ASP_ANALYSIS_SCHEDULE_RULES_H_

#include <string>

#include "analysis/diagnostic.h"
#include "runtime/job_graph.h"

namespace cep2asp {

/// \brief Scheduling lint pass (diagnostic code I316).
///
/// Counts the OS threads the legacy thread-per-subtask path would spawn
/// for `graph` — one per source node plus one per (chain, subtask
/// instance) under the given chaining setting — and reports one info
/// diagnostic when that exceeds the hardware's concurrency while
/// `use_task_scheduler` is off. The finding is a tuning hint: the same
/// physical plan runs on the task scheduler's fixed worker pool without
/// oversubscription. Under the task scheduler the pass never fires.
///
/// `hardware_threads` == 0 means std::thread::hardware_concurrency();
/// tests pass an explicit value to stay host-independent. Like
/// AnalyzeChaining, this pass is deliberately separate from
/// AnalyzeJobGraph so executors and ExecutionResult::diagnostics stay
/// info-free.
DiagnosticReport AnalyzeSchedule(const JobGraph& graph,
                                 bool chaining_enabled,
                                 bool use_task_scheduler,
                                 int hardware_threads = 0);

/// Human-readable task/worker layout for plan_lint --schedule: one line
/// per scheduler task ("task 3: win-join[1] (chain 1, subtask 1)"), then
/// the totals — task count, legacy thread count, and the worker-pool size
/// the task scheduler would use (`worker_threads`, 0 meaning
/// hardware_concurrency).
std::string ScheduleToString(const JobGraph& graph, bool chaining_enabled,
                             int worker_threads = 0);

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_SCHEDULE_RULES_H_
