#ifndef CEP2ASP_ANALYSIS_CHECK_INVARIANTS_H_
#define CEP2ASP_ANALYSIS_CHECK_INVARIANTS_H_

/// \file
/// CEP2ASP_CHECK_INVARIANTS gates the debug-build runtime invariant layer:
/// executor wiring of the InvariantChecker (analysis/invariant_checker.h)
/// and the capacity-accounting checks inside the exchange queues. It
/// defaults to on in debug builds and off in release builds — the release
/// hot path carries zero extra work — and can be forced either way with
/// -DCEP2ASP_CHECK_INVARIANTS=1 / =0.
#ifndef CEP2ASP_CHECK_INVARIANTS
#ifndef NDEBUG
#define CEP2ASP_CHECK_INVARIANTS 1
#else
#define CEP2ASP_CHECK_INVARIANTS 0
#endif
#endif

#endif  // CEP2ASP_ANALYSIS_CHECK_INVARIANTS_H_
