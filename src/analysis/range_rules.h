#ifndef CEP2ASP_ANALYSIS_RANGE_RULES_H_
#define CEP2ASP_ANALYSIS_RANGE_RULES_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/interval.h"
#include "runtime/job_graph.h"

namespace cep2asp {

/// \brief Abstract state derived for one job-graph node: the per-attribute
/// intervals its output tuples can carry, plus facts distilled from them.
struct NodeRangeFacts {
  /// False when the pass could not model the node (opaque lambda, unknown
  /// operator kind, unreachable): no claims are made about it.
  bool computed = false;
  /// The node can never emit a tuple: a filter proved always-false, or
  /// every input is dead.
  bool dead = false;
  /// Per tuple position (event slot), the declared interval of every
  /// attribute. Sources have one slot; joins concatenate their inputs.
  std::vector<EventRanges> slots;
  /// Interval of the partition key tuples leave this node with.
  Interval key = Interval::All();
  /// Upper bound on the node's pass fraction (filters/joins), or -1 when
  /// no bound was derived. Min over conjunction terms — sound without any
  /// independence assumption.
  double selectivity = -1.0;
  /// Distinct integral keys the key interval admits (0 = unbounded or
  /// unknown): the derived replacement for the W313 key-domain hint.
  int64_t derived_key_domain = 0;
};

/// \brief Result of the range pass over a whole job graph.
struct RangeAnalysis {
  DiagnosticReport report;
  std::vector<NodeRangeFacts> nodes;

  /// Human-readable per-node table for plan_lint --ranges.
  std::string ToString(const JobGraph& graph) const;
};

/// Truth of a conjunction over a single event whose attributes lie in
/// `ranges` (broadcast semantics: every variable reads the same event).
/// Terms refine left-to-right, so self-contradictory predicates resolve
/// to kNever even under Top ranges. Used by the translator to drop
/// always-true leaf filters and refuse always-false ones at build time.
Truth PredicateTruthOnEvent(const Predicate& pred, const EventRanges& ranges);

/// \brief Abstract interpretation of the job graph over the interval
/// domain (analysis/interval.h).
///
/// Seeds each source node from `catalog` (by the node's declared
/// source_type; Top when undeclared) and propagates per-attribute
/// intervals through every operator that exposes its logic via
/// OperatorTraits: compiled ExprPrograms are interpreted instruction by
/// instruction, interpreted factory predicates term by term, join
/// conditions positionally over the concatenated tuple, unions by hull.
/// Opaque operators (user lambdas, aggregates) yield no claims.
///
/// Emits:
///  - E318 (kGraphFilterAlwaysFalse) at a filter proven to reject every
///    tuple its inputs can carry — everything downstream is dead;
///  - W319 (kGraphFilterAlwaysTrue) at a pure filter proven to pass every
///    tuple (removable);
///  - W313 (kGraphParallelismExceedsKeys) when a derived key domain is
///    smaller than a keyed node's parallelism and no hint was declared —
///    the heuristic upgraded to a proven bound;
///  - E321 (kGraphExprVerifyFailed) when a node's compiled program fails
///    ExprVerifier (also enforced by AnalyzeJobGraph).
///
/// The pass runs on demand (plan_lint --ranges, translator hardening,
/// AnalyzeQuery with a catalog) and is deliberately NOT part of
/// AnalyzeJobGraph: a clean graph stays info-free and executors do not
/// pay for it.
RangeAnalysis AnalyzeRanges(const JobGraph& graph,
                            const SourceRangeCatalog& catalog = {});

/// Re-emits the derived facts as I320 diagnostics, one per computed node
/// (the machine-readable form of RangeAnalysis::ToString).
DiagnosticReport DescribeRanges(const JobGraph& graph,
                                const RangeAnalysis& analysis);

/// Writes derived facts back into the graph: selectivity bounds onto the
/// operators (Operator::AttachSelectivityBound — surfaced via
/// OperatorTraits::selectivity_bound for the cost-based optimizer) and
/// derived key domains into key_domain_hint where none was declared.
void AttachRangeFacts(JobGraph* graph, const RangeAnalysis& analysis);

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_RANGE_RULES_H_
