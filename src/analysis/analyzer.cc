#include "analysis/analyzer.h"

#include <memory>
#include <utility>
#include <vector>

#include "event/event.h"
#include "runtime/vector_source.h"

namespace cep2asp {

Result<QueryAnalysis> AnalyzeQuery(const Pattern& pattern,
                                   const TranslatorOptions& options,
                                   const SourceRangeCatalog& catalog) {
  QueryAnalysis analysis;
  analysis.pattern_report = AnalyzePattern(pattern);
  if (analysis.pattern_report.has_errors()) return analysis;

  Translator translator(options);
  auto plan_result = translator.ToLogicalPlan(pattern);
  if (!plan_result.ok()) return plan_result.status();
  const LogicalPlan plan = std::move(plan_result).ValueOrDie();
  analysis.plan_report = AnalyzeLogicalPlan(plan, &pattern);
  if (analysis.plan_report.has_errors()) return analysis;

  // Graph lints inspect topology and operator traits only, so empty stub
  // sources suffice; nothing is executed.
  auto stub_sources = [](EventTypeId type) {
    return std::make_unique<VectorSource>(
        "stub-" + std::to_string(type), std::vector<SimpleEvent>{});
  };
  auto compiled = CompilePlan(plan, stub_sources, /*store_matches=*/false);
  if (!compiled.ok()) return compiled.status();
  analysis.graph_report = AnalyzeJobGraph(compiled.ValueOrDie().graph);
  if (!catalog.empty()) {
    // Declared source ranges unlock the interval pass; its E/W findings
    // (E318/W319/derived W313) join the graph layer.
    const RangeAnalysis ranges =
        AnalyzeRanges(compiled.ValueOrDie().graph, catalog);
    analysis.graph_report.Merge(ranges.report);
  }
  return analysis;
}

}  // namespace cep2asp
