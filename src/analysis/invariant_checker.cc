#include "analysis/invariant_checker.h"

#include <algorithm>

#include "common/logging.h"

namespace cep2asp {

namespace {

std::string NodeName(const JobGraph& graph, NodeId node) {
  const JobGraph::Node& n = graph.node(node);
  std::string name = n.is_source() ? n.source->name() : n.op->name();
  return "node " + std::to_string(node) + " (" + name + ")";
}

std::string ChannelLabel(const JobGraph& graph, NodeId node, int port) {
  return NodeName(graph, node) + " port " + std::to_string(port);
}

std::string PhysicalLabel(const JobGraph& graph, NodeId node, int subtask,
                          int slot) {
  return NodeName(graph, node) + " subtask " + std::to_string(subtask) +
         " slot " + std::to_string(slot);
}

}  // namespace

InvariantChecker::InvariantChecker(const JobGraph& graph, Options options)
    : graph_(graph), options_(options) {
  const int n = graph.num_nodes();
  last_watermark_.resize(static_cast<size_t>(n));
  phys_last_watermark_.resize(static_cast<size_t>(n));
  phys_slots_.assign(static_cast<size_t>(n), 0);
  slack_.assign(static_cast<size_t>(n), 0);
  for (NodeId id = 0; id < n; ++id) {
    const JobGraph::Node& node = graph.node(id);
    if (!node.is_source()) {
      last_watermark_[static_cast<size_t>(id)].assign(
          static_cast<size_t>(node.op->num_inputs()), kMinTimestamp);
      const int slots = graph.physical_fan_in(id);
      phys_slots_[static_cast<size_t>(id)] = slots;
      phys_last_watermark_[static_cast<size_t>(id)].assign(
          static_cast<size_t>(node.parallelism) * static_cast<size_t>(slots),
          kMinTimestamp);
    }
  }
  // Lateness slack: a windowed operator may emit tuples whose event time
  // lags its input watermark by up to the window span, and the lag adds up
  // along a path. slack(node) = max over producers p of
  // slack(p) + window_span(p); sources emit in watermark order (slack 0).
  for (NodeId id : graph.TopologicalOrder()) {
    const JobGraph::Node& node = graph.node(id);
    Timestamp produced_lag = 0;
    if (!node.is_source()) {
      OperatorTraits traits = node.op->Traits();
      if (traits.windowed) produced_lag = traits.window_size;
    }
    Timestamp out_slack = slack_[static_cast<size_t>(id)] + produced_lag;
    for (const JobGraph::Edge& edge : node.outputs) {
      slack_[static_cast<size_t>(edge.to)] =
          std::max(slack_[static_cast<size_t>(edge.to)], out_slack);
    }
  }
}

void InvariantChecker::OnTuple(NodeId node, int port, const Tuple& tuple) {
  Timestamp last = last_watermark_[static_cast<size_t>(node)]
                                  [static_cast<size_t>(port)];
  if (last == kMinTimestamp || last == kMaxTimestamp) {
    // No watermark yet, or final flush: operators drain buffered windows
    // after the kMaxTimestamp watermark, so event times legitimately lie
    // arbitrarily far behind it.
    return;
  }
  Timestamp slack = slack_[static_cast<size_t>(node)];
  if (tuple.event_time() < last - slack) {
    Report("stale tuple at " + ChannelLabel(graph_, node, port) +
           ": event time " + std::to_string(tuple.event_time()) +
           " older than watermark " + std::to_string(last) +
           " minus lateness slack " + std::to_string(slack));
  }
}

void InvariantChecker::OnWatermark(NodeId node, int port, Timestamp watermark) {
  Timestamp& last = last_watermark_[static_cast<size_t>(node)]
                                   [static_cast<size_t>(port)];
  if (last != kMinTimestamp && watermark < last) {
    Report("watermark regression at " + ChannelLabel(graph_, node, port) +
           ": " + std::to_string(watermark) + " after " +
           std::to_string(last));
  }
  last = std::max(last, watermark);
}

void InvariantChecker::OnPhysicalTuple(NodeId node, int subtask, int slot,
                                       const Tuple& tuple) {
  const size_t idx =
      static_cast<size_t>(subtask) *
          static_cast<size_t>(phys_slots_[static_cast<size_t>(node)]) +
      static_cast<size_t>(slot);
  Timestamp last = phys_last_watermark_[static_cast<size_t>(node)][idx];
  if (last == kMinTimestamp || last == kMaxTimestamp) {
    // Same exemption as OnTuple: nothing delivered yet, or the final flush
    // legitimately drains arbitrarily old window contents.
    return;
  }
  Timestamp slack = slack_[static_cast<size_t>(node)];
  if (tuple.event_time() < last - slack) {
    Report("stale tuple at " + PhysicalLabel(graph_, node, subtask, slot) +
           ": event time " + std::to_string(tuple.event_time()) +
           " older than watermark " + std::to_string(last) +
           " minus lateness slack " + std::to_string(slack));
  }
}

void InvariantChecker::OnPhysicalWatermark(NodeId node, int subtask, int slot,
                                           Timestamp watermark) {
  const size_t idx =
      static_cast<size_t>(subtask) *
          static_cast<size_t>(phys_slots_[static_cast<size_t>(node)]) +
      static_cast<size_t>(slot);
  Timestamp& last = phys_last_watermark_[static_cast<size_t>(node)][idx];
  if (last != kMinTimestamp && watermark < last) {
    Report("watermark regression at " +
           PhysicalLabel(graph_, node, subtask, slot) + ": " +
           std::to_string(watermark) + " after " + std::to_string(last));
  }
  last = std::max(last, watermark);
}

void InvariantChecker::OnSubtaskFinished(NodeId node,
                                         const Operator& subtask_op) {
  if (subtask_op.Traits().drains_on_final_watermark &&
      subtask_op.StateBytes() != 0) {
    Report("undrained state at subtask clone of node " + std::to_string(node) +
           " (" + subtask_op.name() + "): " +
           std::to_string(subtask_op.StateBytes()) +
           " bytes remain after the final watermark");
  }
}

void InvariantChecker::OnJobFinished() {
  for (NodeId id = 0; id < graph_.num_nodes(); ++id) {
    const JobGraph::Node& node = graph_.node(id);
    if (node.is_source()) continue;
    if (node.op->Traits().drains_on_final_watermark &&
        node.op->StateBytes() != 0) {
      Report("undrained state at node " + std::to_string(id) + " (" +
             node.op->name() + "): " + std::to_string(node.op->StateBytes()) +
             " bytes remain after the final watermark");
    }
  }
}

Timestamp InvariantChecker::LatenessSlack(NodeId node) const {
  return slack_[static_cast<size_t>(node)];
}

bool InvariantChecker::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.empty();
}

std::vector<std::string> InvariantChecker::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

void InvariantChecker::Report(const std::string& violation) {
  if (options_.fatal) {
    CEP2ASP_LOG(Fatal) << "runtime invariant violated: " << violation;
  }
  std::lock_guard<std::mutex> lock(mu_);
  violations_.push_back(violation);
}

}  // namespace cep2asp
