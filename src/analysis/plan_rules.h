#ifndef CEP2ASP_ANALYSIS_PLAN_RULES_H_
#define CEP2ASP_ANALYSIS_PLAN_RULES_H_

#include "analysis/diagnostic.h"
#include "sea/pattern.h"
#include "translator/logical_plan.h"

namespace cep2asp {

/// \brief Logical-plan lint pass (diagnostic codes 2xx).
///
/// Checks the translator's IR before physical compilation: node shape and
/// input arity (E200), window-parameter consistency across stateful
/// operators (E201/E202), predicate index ranges against the concatenated
/// tuple space (E203), preservation of SEQ/ITER/NSEQ temporal order through
/// the join predicates (E204, needs `pattern`), duplicate handling of
/// intermediate vs. root window joins (E205/W206), key co-partitioning of
/// join inputs (E207/W208), iteration thresholds (W209), reorder
/// permutations (E210), union arity (E211), and join position overlap
/// (E212).
///
/// `pattern` is optional; when null, the order-preservation rule (E204) is
/// skipped because the required order cannot be reconstructed from the plan
/// alone.
DiagnosticReport AnalyzeLogicalPlan(const LogicalPlan& plan,
                                    const Pattern* pattern = nullptr);

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_PLAN_RULES_H_
