#ifndef CEP2ASP_ANALYSIS_PATTERN_RULES_H_
#define CEP2ASP_ANALYSIS_PATTERN_RULES_H_

#include "analysis/diagnostic.h"
#include "sea/pattern.h"

namespace cep2asp {

/// \brief SEA pattern lint pass (diagnostic codes 1xx).
///
/// Checks the pattern before translation: structural presence (E100),
/// window/slide sanity (E101/E102), satisfiability of atom filters (W103),
/// iteration bounds that can never match (E104) and constraints that never
/// apply (W105), cross-predicate variable ranges (E106), and
/// single-variable cross predicates that should be pushed into the atom
/// filter (W107).
DiagnosticReport AnalyzePattern(const Pattern& pattern);

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_PATTERN_RULES_H_
