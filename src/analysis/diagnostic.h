#ifndef CEP2ASP_ANALYSIS_DIAGNOSTIC_H_
#define CEP2ASP_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace cep2asp {

/// Severity of a diagnostic. Errors describe plans/graphs that would
/// produce wrong matches (or none) if executed; executors refuse to run
/// them. Warnings flag suspicious-but-runnable constructs. Infos report
/// facts about an otherwise-fine plan (e.g. why a forward edge was not
/// chained) that only matter when tuning. Appended, never reordered —
/// the underlying values are stable.
enum class DiagnosticSeverity : uint8_t { kWarning, kError, kInfo };

const char* DiagnosticSeverityToString(DiagnosticSeverity severity);

/// Stable diagnostic identifiers, one per lint rule. The numeric ranges
/// partition by analysis layer:
///   1xx — SEA pattern rules        (analysis/pattern_rules)
///   2xx — logical-plan rules       (analysis/plan_rules)
///   3xx — job-graph rules          (analysis/graph_rules, chain_rules)
/// Codes render as "CEP2ASP-E201" / "CEP2ASP-W305" / "CEP2ASP-I315"; the
/// letter is the severity, the number is stable across releases (tests
/// and downstream tooling match on it).
enum class DiagnosticCode : int {
  // --- pattern layer (1xx) -----------------------------------------------
  kPatternNoRoot = 100,             // E: pattern has no structure tree
  kPatternWindowNotPositive = 101,  // E: WITHIN window <= 0
  kPatternSlideInvalid = 102,       // E: slide <= 0 or slide > window
  kPatternFilterUnsatisfiable = 103,// W: atom filter can never hold
  kPatternIterCountInvalid = 104,   // E: ITER with m < 1
  kPatternIterConstraintUnused = 105,// W: consecutive constraint with m == 1
  kPatternPredicateVarOutOfRange = 106,  // E: WHERE references bad position
  kPatternPushdownMissed = 107,     // W: single-variable cross predicate

  // --- logical-plan layer (2xx) ------------------------------------------
  kPlanNodeMalformed = 200,         // E: wrong input count for node kind
  kPlanWindowSpanMismatch = 201,    // E: node window != plan window
  kPlanWindowSpecInvalid = 202,     // E: size/slide not a valid window
  kPlanPredicateIndexOutOfRange = 203,  // E: predicate outside tuple arity
  kPlanSeqOrderLost = 204,          // E: SEQ order not enforced by plan
  kPlanIntermediateJoinDuplicates = 205,  // E: inner join without dedup_pairs
  kPlanRootJoinDeduplicated = 206,  // W: root join suppresses duplicates
  kPlanJoinKeyMismatch = 207,       // E: join sides keyed differently
  kPlanJoinInputUnkeyed = 208,      // W: join input has no key assignment
  kPlanAggregateMinCountInvalid = 209,   // W: min_count < 1 fires always
  kPlanReorderInvalid = 210,        // E: reorder permutation not a bijection
  kPlanUnionArityMismatch = 211,    // E: union inputs differ in arity
  kPlanJoinPositionsOverlap = 212,  // E: join sides share match positions
  kPlanKeyAttrNonIntegral = 213,    // W: continuous-valued partition key

  // --- job-graph layer (3xx) ---------------------------------------------
  kGraphInputPortUnfed = 301,       // E: operator input port has no edge
  kGraphInputPortMultiplyFed = 302, // E: >1 edge into one input port
  kGraphCycle = 303,                // E: graph is not acyclic
  kGraphNoSource = 304,             // E: no source nodes at all
  kGraphSourceUnconnected = 305,    // W: source output goes nowhere
  kGraphOperatorUnreachable = 306,  // W: no source upstream (no watermarks)
  kGraphTerminalNotSink = 307,      // W: results dropped at non-sink
  kGraphStatefulUnkeyed = 308,      // W: keyed state, unpartitioned input
  kGraphFanInAccountingBroken = 309,// E: num_input_edges != actual edges
  kGraphWindowSpanMismatch = 310,   // E: sliding operators disagree on spec
  kGraphWindowSpecInvalid = 311,    // E: windowed operator spec invalid
  kGraphKeyedParallelNotHashed = 312,  // E: parallel keyed op, non-hash edge
  kGraphParallelismExceedsKeys = 313,  // W: parallelism > distinct keys
  kGraphParallelUnsupported = 314,  // E: parallelism > 1 where unsupported
  kGraphForwardEdgeNotChained = 315,// I: forward edge left unfused (why)
  kGraphScheduleOversubscribed = 316,  // I: legacy threads > hardware cores
  kGraphExprCompilation = 317,      // I: filter/map expression-exec report
  kGraphFilterAlwaysFalse = 318,    // E: filter provably rejects everything
  kGraphFilterAlwaysTrue = 319,     // W: filter provably passes everything
  kGraphRangeReport = 320,          // I: derived attribute-range/selectivity
  kGraphExprVerifyFailed = 321,     // E: compiled bytecode fails verification
  kGraphColumnarStatus = 322,       // I: per-edge columnar/row-major/shim
};

/// Severity a code always carries (the letter in its rendered name).
DiagnosticSeverity DiagnosticCodeSeverity(DiagnosticCode code);

/// Renders the stable identifier, e.g. "CEP2ASP-E201".
std::string DiagnosticCodeName(DiagnosticCode code);

/// One-line rule description for the registry listing (plan_lint --codes).
const char* DiagnosticCodeDescription(DiagnosticCode code);

/// All registered codes, ascending (registry enumeration for tooling).
const std::vector<DiagnosticCode>& AllDiagnosticCodes();

/// \brief One analyzer finding: a coded, located, human-readable message.
struct Diagnostic {
  DiagnosticCode code = DiagnosticCode::kPatternNoRoot;
  DiagnosticSeverity severity = DiagnosticSeverity::kError;
  /// Where in the artifact the rule fired, e.g. "atom e2", "plan node
  /// win-join[3]", "node 4 (win-join) port 1".
  std::string location;
  std::string message;

  /// "CEP2ASP-E201 [plan node win-join] window (5,1) != plan window (10,1)".
  std::string ToString() const;
};

/// \brief Ordered collection of diagnostics produced by an analysis pass.
class DiagnosticReport {
 public:
  DiagnosticReport() = default;

  void Add(DiagnosticCode code, std::string location, std::string message);

  /// Appends every diagnostic of `other`.
  void Merge(const DiagnosticReport& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }

  int error_count() const;
  int warning_count() const;
  int info_count() const;
  bool has_errors() const { return error_count() > 0; }

  /// True when some diagnostic carries `code`.
  bool Has(DiagnosticCode code) const;

  /// First E-level diagnostic, or nullptr.
  const Diagnostic* FirstError() const;

  /// Converts the report to a Status: OK when error-free, otherwise
  /// FailedPrecondition carrying the first error's code and message.
  Status ToStatus() const;

  /// Multi-line rendering, one diagnostic per line; "" when empty.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_DIAGNOSTIC_H_
