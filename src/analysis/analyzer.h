#ifndef CEP2ASP_ANALYSIS_ANALYZER_H_
#define CEP2ASP_ANALYSIS_ANALYZER_H_

#include "analysis/diagnostic.h"
#include "analysis/graph_rules.h"
#include "analysis/pattern_rules.h"
#include "analysis/plan_rules.h"
#include "analysis/range_rules.h"
#include "common/result.h"
#include "translator/translator.h"

namespace cep2asp {

/// \brief Findings of a full three-layer query analysis.
struct QueryAnalysis {
  DiagnosticReport pattern_report;  // 1xx rules over the SEA pattern
  DiagnosticReport plan_report;     // 2xx rules over the logical plan
  DiagnosticReport graph_report;    // 3xx rules over the compiled job graph

  /// All three layers in order (pattern, plan, graph).
  DiagnosticReport Merged() const {
    DiagnosticReport all;
    all.Merge(pattern_report);
    all.Merge(plan_report);
    all.Merge(graph_report);
    return all;
  }
};

/// \brief Runs every analysis layer over one query end to end.
///
/// Lints the pattern, translates it with `options` and lints the logical
/// plan, then compiles the plan (against empty stub sources) and lints the
/// job graph. Pattern-level errors stop the cascade: the later layers
/// would only mirror them. A translation or compilation *failure* (as
/// opposed to a lint finding) is returned as the error Status.
///
/// When `catalog` declares source ranges, the interval range pass
/// (analysis/range_rules) additionally runs over the compiled graph and
/// its E/W findings (E318 always-false filter, W319 always-true filter,
/// derived W313) merge into graph_report. With the default empty catalog
/// the pass is skipped and a clean graph stays finding-free.
Result<QueryAnalysis> AnalyzeQuery(const Pattern& pattern,
                                   const TranslatorOptions& options = {},
                                   const SourceRangeCatalog& catalog = {});

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_ANALYZER_H_
