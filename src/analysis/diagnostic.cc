#include "analysis/diagnostic.h"

#include <algorithm>

namespace cep2asp {

const char* DiagnosticSeverityToString(DiagnosticSeverity severity) {
  switch (severity) {
    case DiagnosticSeverity::kWarning:
      return "warning";
    case DiagnosticSeverity::kError:
      return "error";
    case DiagnosticSeverity::kInfo:
      return "info";
  }
  return "?";
}

namespace {

struct CodeInfo {
  DiagnosticCode code;
  DiagnosticSeverity severity;
  const char* description;
};

// The diagnostic-code registry: every rule the analyzer implements, with
// its fixed severity and the one-line description shown by plan_lint
// --codes. Append-only; numbers are never reused.
constexpr CodeInfo kRegistry[] = {
    {DiagnosticCode::kPatternNoRoot, DiagnosticSeverity::kError,
     "pattern has no structure tree"},
    {DiagnosticCode::kPatternWindowNotPositive, DiagnosticSeverity::kError,
     "pattern WITHIN window is zero or negative"},
    {DiagnosticCode::kPatternSlideInvalid, DiagnosticSeverity::kError,
     "window slide is zero, negative, or exceeds the window"},
    {DiagnosticCode::kPatternFilterUnsatisfiable, DiagnosticSeverity::kWarning,
     "atom filter is contradictory; the atom can never match"},
    {DiagnosticCode::kPatternIterCountInvalid, DiagnosticSeverity::kError,
     "ITER repetition count m < 1 can never match"},
    {DiagnosticCode::kPatternIterConstraintUnused, DiagnosticSeverity::kWarning,
     "consecutive-event constraint on ITER with m == 1 never applies"},
    {DiagnosticCode::kPatternPredicateVarOutOfRange, DiagnosticSeverity::kError,
     "cross predicate references a match position outside the pattern"},
    {DiagnosticCode::kPatternPushdownMissed, DiagnosticSeverity::kWarning,
     "cross predicate references a single variable; push it into the atom "
     "filter"},

    {DiagnosticCode::kPlanNodeMalformed, DiagnosticSeverity::kError,
     "logical node has the wrong number of inputs for its kind"},
    {DiagnosticCode::kPlanWindowSpanMismatch, DiagnosticSeverity::kError,
     "windowed node's span differs from the plan window"},
    {DiagnosticCode::kPlanWindowSpecInvalid, DiagnosticSeverity::kError,
     "window spec is invalid (size <= 0, slide <= 0, or slide > size)"},
    {DiagnosticCode::kPlanPredicateIndexOutOfRange, DiagnosticSeverity::kError,
     "predicate references an event index outside the node's output arity"},
    {DiagnosticCode::kPlanSeqOrderLost, DiagnosticSeverity::kError,
     "a SEQ order constraint of the pattern is not enforced by the plan"},
    {DiagnosticCode::kPlanIntermediateJoinDuplicates, DiagnosticSeverity::kError,
     "intermediate window join emits per-overlap duplicates that multiply "
     "through the join chain"},
    {DiagnosticCode::kPlanRootJoinDeduplicated, DiagnosticSeverity::kWarning,
     "root join deduplicates; sliding semantics normally keeps per-overlap "
     "duplicates"},
    {DiagnosticCode::kPlanJoinKeyMismatch, DiagnosticSeverity::kError,
     "join sides are partitioned by different keys; matches are lost"},
    {DiagnosticCode::kPlanJoinInputUnkeyed, DiagnosticSeverity::kWarning,
     "join input has no key assignment; partitioning falls back to the raw "
     "event id"},
    {DiagnosticCode::kPlanAggregateMinCountInvalid, DiagnosticSeverity::kWarning,
     "aggregate min_count < 1 fires for every non-empty window"},
    {DiagnosticCode::kPlanReorderInvalid, DiagnosticSeverity::kError,
     "reorder permutation is not a bijection over the tuple positions"},
    {DiagnosticCode::kPlanUnionArityMismatch, DiagnosticSeverity::kError,
     "union inputs produce tuples of different arity"},
    {DiagnosticCode::kPlanJoinPositionsOverlap, DiagnosticSeverity::kError,
     "join sides cover the same match position"},
    {DiagnosticCode::kPlanKeyAttrNonIntegral, DiagnosticSeverity::kWarning,
     "partition key derives from a continuous-valued attribute; key "
     "extraction truncates double -> int64, so non-integral values collapse "
     "into the same partition silently (debug builds assert)"},

    {DiagnosticCode::kGraphInputPortUnfed, DiagnosticSeverity::kError,
     "operator input port has no incoming edge"},
    {DiagnosticCode::kGraphInputPortMultiplyFed, DiagnosticSeverity::kError,
     "operator input port has more than one incoming edge"},
    {DiagnosticCode::kGraphCycle, DiagnosticSeverity::kError,
     "job graph contains a cycle"},
    {DiagnosticCode::kGraphNoSource, DiagnosticSeverity::kError,
     "job graph has no source nodes"},
    {DiagnosticCode::kGraphSourceUnconnected, DiagnosticSeverity::kWarning,
     "source has no outgoing edges; its stream is discarded"},
    {DiagnosticCode::kGraphOperatorUnreachable, DiagnosticSeverity::kWarning,
     "operator has no upstream source; it will never receive tuples or "
     "watermarks"},
    {DiagnosticCode::kGraphTerminalNotSink, DiagnosticSeverity::kWarning,
     "terminal operator is not a sink; its emissions are dropped"},
    {DiagnosticCode::kGraphStatefulUnkeyed, DiagnosticSeverity::kWarning,
     "operator keys its state but some input path assigns no partition key"},
    {DiagnosticCode::kGraphFanInAccountingBroken, DiagnosticSeverity::kError,
     "node fan-in accounting disagrees with the edges; SPSC channel "
     "selection would be unsound"},
    {DiagnosticCode::kGraphWindowSpanMismatch, DiagnosticSeverity::kError,
     "sliding-window operators of one job disagree on (size, slide)"},
    {DiagnosticCode::kGraphWindowSpecInvalid, DiagnosticSeverity::kError,
     "windowed operator carries an invalid window spec"},
    {DiagnosticCode::kGraphKeyedParallelNotHashed, DiagnosticSeverity::kError,
     "keyed stateful operator runs parallel but an input edge is not "
     "hash-partitioned; keys would spread over subtasks arbitrarily"},
    {DiagnosticCode::kGraphParallelismExceedsKeys, DiagnosticSeverity::kWarning,
     "parallelism exceeds the declared key domain; excess subtasks can never "
     "receive tuples"},
    {DiagnosticCode::kGraphParallelUnsupported, DiagnosticSeverity::kError,
     "parallelism > 1 on a node that cannot run data-parallel (no subtask "
     "clone support, or stateful without keyed partitioning)"},
    {DiagnosticCode::kGraphForwardEdgeNotChained, DiagnosticSeverity::kInfo,
     "forward edge between operators was not fused into a chain (fan-out, "
     "fan-in, parallelism mismatch, or chaining opt-out); it pays a real "
     "exchange channel"},
    {DiagnosticCode::kGraphScheduleOversubscribed, DiagnosticSeverity::kInfo,
     "legacy thread-per-subtask execution would spawn more OS threads than "
     "hardware cores; the task scheduler multiplexes the same subtasks onto "
     "a fixed worker pool instead"},
    {DiagnosticCode::kGraphExprCompilation, DiagnosticSeverity::kInfo,
     "per-node expression-execution report: whether a filter/map runs "
     "compiled ExprProgram bytecode or the interpreted fallback, and why"},
    {DiagnosticCode::kGraphFilterAlwaysFalse, DiagnosticSeverity::kError,
     "interval analysis proves the filter rejects every tuple its declared "
     "source ranges can produce; everything downstream is dead"},
    {DiagnosticCode::kGraphFilterAlwaysTrue, DiagnosticSeverity::kWarning,
     "interval analysis proves the filter passes every tuple its declared "
     "source ranges can produce; the operator is removable"},
    {DiagnosticCode::kGraphRangeReport, DiagnosticSeverity::kInfo,
     "derived per-operator attribute intervals, key domains, and "
     "selectivity bounds (range pass; plan_lint --ranges)"},
    {DiagnosticCode::kGraphExprVerifyFailed, DiagnosticSeverity::kError,
     "compiled expression bytecode failed static verification (malformed "
     "encoding: bad opcode, out-of-range operand, or unbalanced stack)"},
    {DiagnosticCode::kGraphColumnarStatus, DiagnosticSeverity::kInfo,
     "per-edge columnar (SoA) transfer report: whether the edge ships "
     "column blocks whole, crosses a gather/scatter shim, or stays "
     "row-major, and why (plan_lint --chains)"},
};

const CodeInfo* FindInfo(DiagnosticCode code) {
  for (const CodeInfo& info : kRegistry) {
    if (info.code == code) return &info;
  }
  return nullptr;
}

}  // namespace

DiagnosticSeverity DiagnosticCodeSeverity(DiagnosticCode code) {
  const CodeInfo* info = FindInfo(code);
  return info ? info->severity : DiagnosticSeverity::kError;
}

std::string DiagnosticCodeName(DiagnosticCode code) {
  char letter = '?';
  switch (DiagnosticCodeSeverity(code)) {
    case DiagnosticSeverity::kError:
      letter = 'E';
      break;
    case DiagnosticSeverity::kWarning:
      letter = 'W';
      break;
    case DiagnosticSeverity::kInfo:
      letter = 'I';
      break;
  }
  return "CEP2ASP-" + std::string(1, letter) +
         std::to_string(static_cast<int>(code));
}

const char* DiagnosticCodeDescription(DiagnosticCode code) {
  const CodeInfo* info = FindInfo(code);
  return info ? info->description : "unregistered diagnostic code";
}

const std::vector<DiagnosticCode>& AllDiagnosticCodes() {
  static const std::vector<DiagnosticCode> codes = [] {
    std::vector<DiagnosticCode> out;
    for (const CodeInfo& info : kRegistry) out.push_back(info.code);
    std::sort(out.begin(), out.end());
    return out;
  }();
  return codes;
}

std::string Diagnostic::ToString() const {
  std::string out = DiagnosticCodeName(code);
  if (!location.empty()) out += " [" + location + "]";
  out += " " + message;
  return out;
}

void DiagnosticReport::Add(DiagnosticCode code, std::string location,
                           std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = DiagnosticCodeSeverity(code);
  d.location = std::move(location);
  d.message = std::move(message);
  diagnostics_.push_back(std::move(d));
}

void DiagnosticReport::Merge(const DiagnosticReport& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

int DiagnosticReport::error_count() const {
  return static_cast<int>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == DiagnosticSeverity::kError;
                    }));
}

int DiagnosticReport::warning_count() const {
  return static_cast<int>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == DiagnosticSeverity::kWarning;
                    }));
}

int DiagnosticReport::info_count() const {
  return static_cast<int>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == DiagnosticSeverity::kInfo;
                    }));
}

bool DiagnosticReport::Has(DiagnosticCode code) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic* DiagnosticReport::FirstError() const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == DiagnosticSeverity::kError) return &d;
  }
  return nullptr;
}

Status DiagnosticReport::ToStatus() const {
  const Diagnostic* first = FirstError();
  if (first == nullptr) return Status::OK();
  return Status::FailedPrecondition(first->ToString());
}

std::string DiagnosticReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace cep2asp
