// plan_lint: diagnostic driver for the three-layer query analyzer.
//
// Modes:
//   plan_lint              lint every paper evaluation pattern under every
//                          optimization set (exit 1 when any E-code fires,
//                          2 when only W-codes fire, 0 when clean)
//   plan_lint --codes [FILTER...]
//                          print the diagnostic-code registry (E, W and I
//                          severities alike); optional filters select rows
//                          by full name ("CEP2ASP-E318"), short form
//                          ("E318", "w313") or bare number ("318")
//   plan_lint --psl TEXT   lint one PSL pattern under every optimization set
//   plan_lint --chains     print the chain layout of every paper pattern
//                          under every optimization set, plus I315 infos
//                          for forward edges the planner could not fuse and
//                          I317 reports on which filter/map nodes run
//                          compiled ExprProgram bytecode vs interpreted
//   plan_lint --schedule   print the task/worker layout of every paper
//                          pattern under every optimization set, plus I316
//                          infos where legacy threading would oversubscribe
//   plan_lint --ranges     run the interval range pass over every paper
//                          pattern x option set (and the FCEP baseline)
//                          against the preset workloads' measured source
//                          ranges: per-operator attribute intervals, key
//                          domains and selectivity bounds, plus the I320
//                          range report and any E318/W319/derived-W313
//                          findings (exit 1 on any E)

#include <cctype>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/chain_rules.h"
#include "analysis/expr_rules.h"
#include "analysis/schedule_rules.h"
#include "common/clock.h"
#include "harness/paper_patterns.h"
#include "runtime/vector_source.h"
#include "sea/parser.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

struct OptionSet {
  const char* name;
  TranslatorOptions options;
};

std::vector<OptionSet> OptionSets() {
  std::vector<OptionSet> sets;
  sets.push_back({"baseline", {}});
  TranslatorOptions o1;
  o1.use_interval_join = true;
  sets.push_back({"O1", o1});
  TranslatorOptions o2;
  o2.use_aggregation_for_iter = true;
  sets.push_back({"O2", o2});
  TranslatorOptions o3;
  o3.use_equi_join_keys = true;
  sets.push_back({"O3", o3});
  TranslatorOptions all;
  all.use_interval_join = true;
  all.use_aggregation_for_iter = true;
  all.use_equi_join_keys = true;
  sets.push_back({"O1+O2+O3", all});
  TranslatorOptions dedup;
  dedup.deduplicate_output = true;
  sets.push_back({"dedup", dedup});
  TranslatorOptions parallel;
  parallel.use_equi_join_keys = true;
  parallel.parallelism = 4;
  parallel.num_keys_hint = 128;
  sets.push_back({"O3-par4", parallel});
  return sets;
}

void PrintReport(const DiagnosticReport& report) {
  for (const Diagnostic& d : report.diagnostics()) {
    std::printf("    %s\n", d.ToString().c_str());
  }
}

/// E/W tallies driving the exit status (1 = errors, 2 = warnings only).
struct LintTally {
  int errors = 0;
  int warnings = 0;

  void Absorb(const DiagnosticReport& report) {
    errors += report.error_count();
    warnings += report.warning_count();
  }
  int ExitCode() const { return errors > 0 ? 1 : (warnings > 0 ? 2 : 0); }
};

/// Lints one pattern under every optimization set (three layers each) and
/// the FCEP baseline job.
LintTally LintPattern(const std::string& name, const Pattern& pattern) {
  LintTally tally;
  for (const OptionSet& set : OptionSets()) {
    auto analysis = AnalyzeQuery(pattern, set.options);
    if (!analysis.ok()) {
      // Not translatable under this option set (e.g. O2 with cross
      // predicates over iteration positions) — a translator refusal, not
      // a lint finding.
      std::printf("%-22s x %-9s SKIP (%s)\n", name.c_str(), set.name,
                  analysis.status().ToString().c_str());
      continue;
    }
    const DiagnosticReport merged = analysis.ValueOrDie().Merged();
    std::printf("%-22s x %-9s %s (%d error(s), %d warning(s))\n", name.c_str(),
                set.name, merged.has_errors() ? "FAIL" : "OK",
                merged.error_count(), merged.warning_count());
    PrintReport(merged);
    tally.Absorb(merged);
  }

  auto stub_sources = [](EventTypeId type) {
    return std::make_unique<VectorSource>("stub-" + std::to_string(type),
                                          std::vector<SimpleEvent>{});
  };
  CepJobOptions cep_options;
  cep_options.store_matches = false;
  auto cep = BuildCepJob(pattern, stub_sources, cep_options);
  if (cep.ok()) {
    const DiagnosticReport report = AnalyzeJobGraph(cep.ValueOrDie().graph);
    std::printf("%-22s x %-9s %s (%d error(s), %d warning(s))\n", name.c_str(),
                "fcep", report.has_errors() ? "FAIL" : "OK",
                report.error_count(), report.warning_count());
    PrintReport(report);
    tally.Absorb(report);
  }
  return tally;
}

/// The seven paper evaluation patterns every multi-pattern mode iterates.
std::vector<std::pair<std::string, Result<Pattern>>> PaperQueries() {
  const Timestamp window = 15 * kMillisPerMinute;
  const Timestamp slide = kMillisPerMinute;
  PaperPatterns patterns;

  std::vector<std::pair<std::string, Result<Pattern>>> queries;
  queries.emplace_back("SEQ1(2)", patterns.Seq1(0.5, window, slide));
  queries.emplace_back("ITER3_1(1)",
                       patterns.IterThreshold(3, 0.5, window, slide));
  queries.emplace_back("ITER3_2(1)",
                       patterns.IterConsecutive(3, 0.5, window, slide));
  queries.emplace_back("NSEQ1(3)", patterns.Nseq1(0.5, 0.5, window, slide));
  queries.emplace_back("SEQ4(4)", patterns.SeqN(4, 0.5, window, slide));
  queries.emplace_back("SEQ7(3)", patterns.Seq7(0.5, window, slide));
  queries.emplace_back("ITER4(1)", patterns.Iter4(3, 0.5, window, slide));
  return queries;
}

int LintPaperPatterns() {
  std::vector<std::pair<std::string, Result<Pattern>>> queries =
      PaperQueries();
  LintTally tally;
  for (auto& [name, result] : queries) {
    if (!result.ok()) {
      std::printf("%-22s BUILD FAILED: %s\n", name.c_str(),
                  result.status().ToString().c_str());
      ++tally.errors;
      continue;
    }
    const LintTally one = LintPattern(name, result.ValueOrDie());
    tally.errors += one.errors;
    tally.warnings += one.warnings;
  }
  std::printf("\nplan_lint: %d error(s), %d warning(s) across %zu pattern(s)\n",
              tally.errors, tally.warnings, queries.size());
  return tally.ExitCode();
}

/// Prints the chain layout ComputeChainLayout produces for one pattern
/// under one option set, followed by the I315 findings for forward edges
/// the planner left unfused, the I317 expression-execution report (which
/// filter/map nodes compiled, and why the rest fell back), and the I322
/// columnar-transfer report (which edges ship SoA blocks whole, which
/// cross a gather/scatter shim, and which stay row-major). Purely
/// informational — never contributes to the exit code.
void PrintChains(const std::string& name, const Pattern& pattern,
                 const OptionSet& set) {
  auto stub_sources = [](EventTypeId type) {
    return std::make_unique<VectorSource>("stub-" + std::to_string(type),
                                          std::vector<SimpleEvent>{});
  };
  auto query = TranslatePattern(pattern, set.options, stub_sources,
                                /*store_matches=*/false);
  if (!query.ok()) {
    std::printf("%s x %s: SKIP (%s)\n", name.c_str(), set.name,
                query.status().ToString().c_str());
    return;
  }
  const JobGraph& graph = query.ValueOrDie().graph;
  const ChainLayout layout = ComputeChainLayout(graph);
  std::printf("%s x %s: %d chain(s), %d fused edge(s)\n", name.c_str(),
              set.name, layout.num_chains(), layout.fused_edge_count());
  std::printf("%s", layout.ToString(graph).c_str());
  PrintReport(AnalyzeChaining(graph));
  PrintReport(AnalyzeExprCompilation(graph));
  PrintReport(AnalyzeColumnarLayout(graph));
}

int PrintPaperChains() {
  std::vector<std::pair<std::string, Result<Pattern>>> queries =
      PaperQueries();
  for (auto& [name, result] : queries) {
    if (!result.ok()) {
      std::printf("%s BUILD FAILED: %s\n", name.c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    for (const OptionSet& set : OptionSets()) {
      PrintChains(name, result.ValueOrDie(), set);
    }
    std::printf("\n");
  }
  return 0;
}

/// Prints the scheduler's task layout for one pattern under one option
/// set — one task per source plus one per (chain, subtask) — followed by
/// the I316 finding when legacy thread-per-subtask execution would
/// oversubscribe this host. Purely informational, like --chains.
void PrintSchedule(const std::string& name, const Pattern& pattern,
                   const OptionSet& set) {
  auto stub_sources = [](EventTypeId type) {
    return std::make_unique<VectorSource>("stub-" + std::to_string(type),
                                          std::vector<SimpleEvent>{});
  };
  auto query = TranslatePattern(pattern, set.options, stub_sources,
                                /*store_matches=*/false);
  if (!query.ok()) {
    std::printf("%s x %s: SKIP (%s)\n", name.c_str(), set.name,
                query.status().ToString().c_str());
    return;
  }
  const JobGraph& graph = query.ValueOrDie().graph;
  std::printf("%s x %s:\n", name.c_str(), set.name);
  std::printf("%s", ScheduleToString(graph, /*chaining_enabled=*/true).c_str());
  PrintReport(AnalyzeSchedule(graph, /*chaining_enabled=*/true,
                              /*use_task_scheduler=*/false));
}

int PrintPaperSchedule() {
  std::vector<std::pair<std::string, Result<Pattern>>> queries =
      PaperQueries();
  for (auto& [name, result] : queries) {
    if (!result.ok()) {
      std::printf("%s BUILD FAILED: %s\n", name.c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    for (const OptionSet& set : OptionSets()) {
      PrintSchedule(name, result.ValueOrDie(), set);
    }
    std::printf("\n");
  }
  return 0;
}

int LintPsl(const std::string& text) {
  SensorTypes::Get();  // registers the canonical event types for the parser
  auto pattern = sea::ParsePattern(text);
  if (!pattern.ok()) {
    std::printf("parse error: %s\n", pattern.status().ToString().c_str());
    return 1;
  }
  std::printf("pattern: %s\n", pattern.ValueOrDie().ToString().c_str());
  return LintPattern("psl", pattern.ValueOrDie()).ExitCode();
}

/// True when `filter` selects `code`: the full rendered name
/// ("CEP2ASP-E318"), the short severity+number form ("E318", "w313"), or
/// the bare number ("318"). Case-insensitive; I-codes match like any other
/// severity.
bool CodeMatchesFilter(DiagnosticCode code, const std::string& filter) {
  std::string want;
  want.reserve(filter.size());
  for (char c : filter) {
    want.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  const std::string name = DiagnosticCodeName(code);   // CEP2ASP-E318
  const std::string short_form = name.substr(name.find('-') + 1);  // E318
  const std::string number = std::to_string(static_cast<int>(code));
  return want == name || want == short_form || want == number;
}

int PrintCodes(const std::vector<std::string>& filters) {
  int unmatched = 0;
  if (filters.empty()) {
    for (DiagnosticCode code : AllDiagnosticCodes()) {
      std::printf("%-14s %s\n", DiagnosticCodeName(code).c_str(),
                  DiagnosticCodeDescription(code));
    }
    return 0;
  }
  for (const std::string& filter : filters) {
    bool hit = false;
    for (DiagnosticCode code : AllDiagnosticCodes()) {
      if (!CodeMatchesFilter(code, filter)) continue;
      std::printf("%-14s %s\n", DiagnosticCodeName(code).c_str(),
                  DiagnosticCodeDescription(code));
      hit = true;
    }
    if (!hit) {
      std::fprintf(stderr, "plan_lint: no diagnostic code matches '%s'\n",
                   filter.c_str());
      ++unmatched;
    }
  }
  return unmatched == 0 ? 0 : 1;
}

/// Runs the interval range pass for one pattern x option set against the
/// preset-derived source ranges and prints the derived facts plus any
/// findings. Returns the E-count.
int PrintRanges(const std::string& name, const Pattern& pattern,
                const OptionSet& set, const Workload& workload,
                const SourceRangeCatalog& catalog) {
  auto query = TranslatePattern(pattern, set.options,
                                workload.MakeSourceFactory(),
                                /*store_matches=*/false);
  if (!query.ok()) {
    std::printf("%s x %s: SKIP (%s)\n", name.c_str(), set.name,
                query.status().ToString().c_str());
    return 0;
  }
  const JobGraph& graph = query.ValueOrDie().graph;
  const RangeAnalysis ranges = AnalyzeRanges(graph, catalog);
  std::printf("%s x %s:\n", name.c_str(), set.name);
  std::printf("%s", ranges.ToString(graph).c_str());
  PrintReport(ranges.report);
  PrintReport(DescribeRanges(graph, ranges));
  return ranges.report.error_count();
}

int PrintPaperRanges() {
  // The combined preset covers all six sensor types the paper queries
  // scan; the catalog is measured off the materialized streams, so every
  // printed interval is ground truth for exactly this workload.
  PresetOptions preset;
  preset.num_sensors = 16;
  preset.events_per_sensor = 32;
  const Workload workload = MakeCombinedWorkload(preset);
  const SourceRangeCatalog catalog = workload.DeriveRangeCatalog();

  std::vector<std::pair<std::string, Result<Pattern>>> queries =
      PaperQueries();
  int errors = 0;
  for (auto& [name, result] : queries) {
    if (!result.ok()) {
      std::printf("%s BUILD FAILED: %s\n", name.c_str(),
                  result.status().ToString().c_str());
      ++errors;
      continue;
    }
    for (const OptionSet& set : OptionSets()) {
      errors +=
          PrintRanges(name, result.ValueOrDie(), set, workload, catalog);
    }
    CepJobOptions cep_options;
    cep_options.store_matches = false;
    auto cep = BuildCepJob(result.ValueOrDie(), workload.MakeSourceFactory(),
                           cep_options);
    if (cep.ok()) {
      const JobGraph& graph = cep.ValueOrDie().graph;
      const RangeAnalysis ranges = AnalyzeRanges(graph, catalog);
      std::printf("%s x fcep:\n", name.c_str());
      std::printf("%s", ranges.ToString(graph).c_str());
      PrintReport(ranges.report);
      errors += ranges.report.error_count();
    }
    std::printf("\n");
  }
  std::printf("plan_lint --ranges: %d error(s)\n", errors);
  return errors == 0 ? 0 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: plan_lint             lint the paper evaluation "
               "patterns\n"
               "                             (exit 1 on errors, 2 on "
               "warnings only)\n"
               "       plan_lint --codes [FILTER...]\n"
               "                             list the diagnostic registry "
               "(optionally\n"
               "                             only codes matching E318/318/"
               "CEP2ASP-E318)\n"
               "       plan_lint --psl TEXT  lint one PSL pattern\n"
               "       plan_lint --chains    print chain layouts for the "
               "paper patterns\n"
               "       plan_lint --schedule  print task/worker layouts for "
               "the paper patterns\n"
               "       plan_lint --ranges    print derived attribute ranges/"
               "selectivity\n"
               "                             bounds for the paper patterns\n");
  return 64;  // EX_USAGE
}

}  // namespace
}  // namespace cep2asp

int main(int argc, char** argv) {
  if (argc == 1) return cep2asp::LintPaperPatterns();
  const std::string mode = argv[1];
  if (mode == "--codes") {
    return cep2asp::PrintCodes(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (mode == "--chains" && argc == 2) return cep2asp::PrintPaperChains();
  if (mode == "--schedule" && argc == 2) return cep2asp::PrintPaperSchedule();
  if (mode == "--ranges" && argc == 2) return cep2asp::PrintPaperRanges();
  if (mode == "--psl" && argc == 3) return cep2asp::LintPsl(argv[2]);
  return cep2asp::Usage();
}
