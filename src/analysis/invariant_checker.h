#ifndef CEP2ASP_ANALYSIS_INVARIANT_CHECKER_H_
#define CEP2ASP_ANALYSIS_INVARIANT_CHECKER_H_

#include <mutex>
#include <string>
#include <vector>

#include "analysis/check_invariants.h"
#include "runtime/job_graph.h"

namespace cep2asp {

/// \brief Runtime cross-check of the executor/operator contract.
///
/// Observes tuple and watermark deliveries per (node, input port) and
/// verifies, while the job runs:
///   - watermark monotonicity: per channel, watermarks never decrease;
///   - no stale tuples: a tuple's event time is never older than the last
///     watermark delivered on its channel, minus the node's lateness slack
///     (windowed producers legitimately emit results that lag the
///     watermark by up to their window span, and the lag accumulates along
///     the path — the slack is the per-node maximum of that sum);
///   - post-run drainage: operators whose traits promise
///     drains_on_final_watermark hold no state after the final watermark
///     and Finish have run.
///
/// The class itself is compiled in all build modes so tests can drive it
/// directly; only the executor wiring is conditional on
/// CEP2ASP_CHECK_INVARIANTS. With Options::fatal (the default for the
/// executor wiring) a violation CHECK-aborts at the offending delivery;
/// with fatal == false violations are recorded and readable via
/// violations(), which is how the tests inject bad traffic and observe
/// the detection.
///
/// Thread safety: OnTuple / OnWatermark for a given node must come from
/// that node's consumer thread (the natural call sites in both
/// executors); per-channel state is unshared. The violation list is
/// mutex-protected, so concurrent violations from different nodes are
/// safe to record.
class InvariantChecker {
 public:
  struct Options {
    /// Abort on first violation (executor wiring) vs. record and continue
    /// (tests injecting violations).
    bool fatal;
    // Explicit default constructor: a default member initializer here
    // would make Options() unusable as the constructor's default argument
    // inside the enclosing class (GCC requires the initializer before the
    // class is complete).
    Options() : fatal(true) {}
  };

  /// The graph must stay alive and structurally unchanged for the
  /// checker's lifetime.
  explicit InvariantChecker(const JobGraph& graph,
                            Options options = Options());

  /// Observes `tuple` arriving at `node` on input `port`.
  void OnTuple(NodeId node, int port, const Tuple& tuple);

  /// Observes the watermark for (`node`, `port`) advancing to `watermark`.
  void OnWatermark(NodeId node, int port, Timestamp watermark);

  // --- Physical (subtask-level) observation -------------------------------
  // The threaded executor expands a node into parallelism(node) subtask
  // instances, each fed by physical_fan_in(node) slots (one per producer
  // subtask). Watermark monotonicity and tuple staleness then hold per
  // (subtask, slot) physical channel — not per logical port, where
  // interleaved producer subtasks would falsely look like regressions.
  // With parallelism 1 everywhere, (subtask 0, slot) coincides with the
  // logical port channels.

  /// Observes `tuple` arriving at subtask `subtask` of `node` on physical
  /// slot `slot`.
  void OnPhysicalTuple(NodeId node, int subtask, int slot, const Tuple& tuple);

  /// Observes the watermark of physical channel (`node`, `subtask`,
  /// `slot`) advancing to `watermark`.
  void OnPhysicalWatermark(NodeId node, int subtask, int slot,
                           Timestamp watermark);

  /// Post-run drainage check for one executor-owned clone instance of
  /// `node` (subtasks 1..P-1; the graph's own operator is covered by
  /// OnJobFinished). Call after the Finish cascade, single-threaded.
  void OnSubtaskFinished(NodeId node, const Operator& subtask_op);

  /// Runs the post-run checks (state drainage). Call after the Finish
  /// cascade, from a single thread.
  void OnJobFinished();

  /// Event-time slack tolerated for tuples arriving at `node` (testing
  /// hook; derived from upstream window spans at construction).
  Timestamp LatenessSlack(NodeId node) const;

  bool ok() const;
  std::vector<std::string> violations() const;

 private:
  void Report(const std::string& violation);

  const JobGraph& graph_;
  Options options_;
  /// last_watermark_[node][port], kMinTimestamp before the first delivery.
  std::vector<std::vector<Timestamp>> last_watermark_;
  /// phys_last_watermark_[node][subtask * phys_slots_[node] + slot]:
  /// per-physical-channel watermark for the subtask-level API.
  std::vector<std::vector<Timestamp>> phys_last_watermark_;
  /// Slots per consumer subtask of each node (== physical_fan_in).
  std::vector<int> phys_slots_;
  /// Max cumulative upstream window span per node (see class comment).
  std::vector<Timestamp> slack_;

  mutable std::mutex mu_;
  std::vector<std::string> violations_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_INVARIANT_CHECKER_H_
