#include "analysis/plan_rules.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "asp/window.h"

namespace cep2asp {
namespace {

std::string PositionsToString(const std::vector<int>& positions) {
  std::string s = "[";
  for (size_t i = 0; i < positions.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(positions[i]);
  }
  s += "]";
  return s;
}

std::string NodeLabel(const LogicalOp& op) {
  return std::string(LogicalOpKindToString(op.kind)) +
         PositionsToString(op.positions);
}

bool IsJoin(LogicalOpKind kind) {
  return kind == LogicalOpKind::kWindowJoin ||
         kind == LogicalOpKind::kIntervalJoin;
}

/// The join MarkRootJoinComplete targets: the topmost join reached from the
/// plan root through order/selection-preserving unary wrappers.
const LogicalOp* FindRootJoin(const LogicalOp* node) {
  while (node != nullptr && (node->kind == LogicalOpKind::kReorder ||
                             node->kind == LogicalOpKind::kFilter)) {
    node = node->inputs.empty() ? nullptr : node->inputs[0].get();
  }
  return (node != nullptr && IsJoin(node->kind)) ? node : nullptr;
}

// --- E200: node shape ------------------------------------------------------

void CheckShape(const LogicalOp& op, DiagnosticReport* report) {
  for (const auto& input : op.inputs) {
    if (input == nullptr) {
      report->Add(DiagnosticCode::kPlanNodeMalformed, NodeLabel(op),
                  "node has a null input");
      return;
    }
  }

  int want = 1;
  bool at_least = false;
  switch (op.kind) {
    case LogicalOpKind::kScan:
      want = 0;
      break;
    case LogicalOpKind::kWindowJoin:
    case LogicalOpKind::kIntervalJoin:
      want = 2;
      break;
    case LogicalOpKind::kUnion:
      want = 2;
      at_least = true;
      break;
    default:
      want = 1;
      break;
  }
  const int have = static_cast<int>(op.inputs.size());
  if (at_least ? have < want : have != want) {
    report->Add(DiagnosticCode::kPlanNodeMalformed, NodeLabel(op),
                std::string(LogicalOpKindToString(op.kind)) + " needs " +
                    (at_least ? ">= " : "") + std::to_string(want) +
                    " input(s) but has " + std::to_string(have));
    return;  // downstream checks assume the arity holds
  }

  if (op.positions.empty()) {
    report->Add(DiagnosticCode::kPlanNodeMalformed, NodeLabel(op),
                "node covers no match positions");
    return;
  }

  switch (op.kind) {
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kKeyByAttr:
    case LogicalOpKind::kKeyByConst:
    case LogicalOpKind::kNseqMark:
      if (op.positions != op.inputs[0]->positions) {
        report->Add(DiagnosticCode::kPlanNodeMalformed, NodeLabel(op),
                    "pass-through node changes match positions: input covers " +
                        PositionsToString(op.inputs[0]->positions));
      }
      break;
    case LogicalOpKind::kWindowJoin:
    case LogicalOpKind::kIntervalJoin: {
      std::vector<int> combined = op.inputs[0]->positions;
      combined.insert(combined.end(), op.inputs[1]->positions.begin(),
                      op.inputs[1]->positions.end());
      if (op.positions != combined) {
        report->Add(DiagnosticCode::kPlanNodeMalformed, NodeLabel(op),
                    "join positions are not the concatenation of its inputs (" +
                        PositionsToString(combined) + ")");
      }
      break;
    }
    case LogicalOpKind::kAggregate:
    case LogicalOpKind::kIterChainApply:
      if (op.positions.size() != 1) {
        report->Add(DiagnosticCode::kPlanNodeMalformed, NodeLabel(op),
                    "window aggregation emits single-event tuples but covers " +
                        std::to_string(op.positions.size()) + " positions");
      }
      break;
    default:
      break;
  }
}

// --- E201/E202: window parameters ------------------------------------------

void CheckWindow(const LogicalOp& op, const LogicalPlan& plan,
                 DiagnosticReport* report) {
  auto span_mismatch = [&](const std::string& detail) {
    report->Add(DiagnosticCode::kPlanWindowSpanMismatch, NodeLabel(op),
                detail + "; stateful operators must agree on the pattern "
                         "window or matches near window borders are lost");
  };
  switch (op.kind) {
    case LogicalOpKind::kWindowJoin:
    case LogicalOpKind::kAggregate:
    case LogicalOpKind::kIterChainApply:
      if (!op.window.valid()) {
        report->Add(DiagnosticCode::kPlanWindowSpecInvalid, NodeLabel(op),
                    "window (size " + std::to_string(op.window.size) +
                        ", slide " + std::to_string(op.window.slide) +
                        ") is not a valid sliding window");
      } else if (op.window.size != plan.window_size ||
                 op.window.slide != plan.slide) {
        span_mismatch("window (" + std::to_string(op.window.size) + "," +
                      std::to_string(op.window.slide) + ") != plan window (" +
                      std::to_string(plan.window_size) + "," +
                      std::to_string(plan.slide) + ")");
      }
      break;
    case LogicalOpKind::kIntervalJoin: {
      const Timestamp span = op.interval.upper - op.interval.lower;
      if (span <= 0) {
        report->Add(DiagnosticCode::kPlanWindowSpecInvalid, NodeLabel(op),
                    "interval bounds (" + std::to_string(op.interval.lower) +
                        "," + std::to_string(op.interval.upper) +
                        ") span no time; the join can never match");
      } else if (span != plan.window_size && span != 2 * plan.window_size) {
        // ForSequence spans W, ForConjunction spans 2W.
        span_mismatch("interval span " + std::to_string(span) +
                      " matches neither W nor 2W for plan window " +
                      std::to_string(plan.window_size));
      }
      break;
    }
    case LogicalOpKind::kNseqMark:
      if (op.nseq_window <= 0) {
        report->Add(DiagnosticCode::kPlanWindowSpecInvalid, NodeLabel(op),
                    "NSEQ horizon " + std::to_string(op.nseq_window) +
                        "ms is not positive");
      } else if (op.nseq_window != plan.window_size) {
        span_mismatch("NSEQ horizon " + std::to_string(op.nseq_window) +
                      " != plan window " + std::to_string(plan.window_size));
      }
      break;
    default:
      break;
  }
}

// --- E203: predicate index ranges ------------------------------------------

void CheckPredicateIndices(const LogicalOp& op, DiagnosticReport* report) {
  const int arity = static_cast<int>(op.positions.size());
  for (const Comparison& term : op.predicate.terms()) {
    const bool lhs_bad = term.lhs.var < 0 || term.lhs.var >= arity;
    const bool rhs_bad =
        term.rhs_is_attr && (term.rhs_attr.var < 0 || term.rhs_attr.var >= arity);
    if (lhs_bad || rhs_bad) {
      report->Add(DiagnosticCode::kPlanPredicateIndexOutOfRange, NodeLabel(op),
                  "term " + term.ToString() +
                      " addresses a tuple slot outside arity " +
                      std::to_string(arity));
    }
  }
}

// --- E207/W208: key co-partitioning ----------------------------------------

struct KeyDesc {
  enum Kind { kUnknown, kNone, kConst, kAttr } kind = kUnknown;
  int64_t const_key = 0;
  Attribute attr = Attribute::kId;

  friend bool operator==(const KeyDesc& a, const KeyDesc& b) {
    if (a.kind != b.kind) return false;
    if (a.kind == kConst) return a.const_key == b.const_key;
    if (a.kind == kAttr) return a.attr == b.attr;
    return true;
  }

  std::string ToString() const {
    switch (kind) {
      case kUnknown: return "unknown";
      case kNone: return "unkeyed";
      case kConst: return "const " + std::to_string(const_key);
      case kAttr: return "attr " + std::to_string(static_cast<int>(attr));
    }
    return "unknown";
  }
};

/// The partitioning key of a node's output stream. Joins keep the left
/// key (Tuple::Concat), every other non-key operator passes its input's
/// key through; a union of differently keyed inputs resolves to unknown
/// (the mismatch is reported where the union is visited).
KeyDesc ResolveKey(const LogicalOp& op) {
  switch (op.kind) {
    case LogicalOpKind::kScan:
      return KeyDesc{KeyDesc::kNone, 0, Attribute::kId};
    case LogicalOpKind::kKeyByAttr:
      return KeyDesc{KeyDesc::kAttr, 0, op.key_attr};
    case LogicalOpKind::kKeyByConst:
      return KeyDesc{KeyDesc::kConst, op.const_key, Attribute::kId};
    case LogicalOpKind::kUnion: {
      KeyDesc first;
      for (size_t i = 0; i < op.inputs.size(); ++i) {
        if (op.inputs[i] == nullptr) return KeyDesc{};
        KeyDesc k = ResolveKey(*op.inputs[i]);
        if (i == 0) {
          first = k;
        } else if (!(k == first)) {
          return KeyDesc{};  // mixed partitioning
        }
      }
      return first;
    }
    case LogicalOpKind::kWindowJoin:
    case LogicalOpKind::kIntervalJoin:
      return (op.inputs.size() == 2 && op.inputs[0] != nullptr)
                 ? ResolveKey(*op.inputs[0])
                 : KeyDesc{};
    default:
      return (!op.inputs.empty() && op.inputs[0] != nullptr)
                 ? ResolveKey(*op.inputs[0])
                 : KeyDesc{};
  }
}

void CheckJoinKeys(const LogicalOp& op, DiagnosticReport* report) {
  const KeyDesc left = ResolveKey(*op.inputs[0]);
  const KeyDesc right = ResolveKey(*op.inputs[1]);
  if (left.kind == KeyDesc::kNone || right.kind == KeyDesc::kNone) {
    report->Add(DiagnosticCode::kPlanJoinInputUnkeyed, NodeLabel(op),
                "join input has no key assignment (left " + left.ToString() +
                    ", right " + right.ToString() +
                    "); partitions will pair arbitrarily");
    return;
  }
  if (left.kind != KeyDesc::kUnknown && right.kind != KeyDesc::kUnknown &&
      !(left == right)) {
    report->Add(DiagnosticCode::kPlanJoinKeyMismatch, NodeLabel(op),
                "join inputs are partitioned on different keys (left " +
                    left.ToString() + ", right " + right.ToString() +
                    "); co-partitioned events never meet");
  }
}

void CheckUnionKeys(const LogicalOp& op, DiagnosticReport* report) {
  KeyDesc first;
  for (size_t i = 0; i < op.inputs.size(); ++i) {
    KeyDesc k = ResolveKey(*op.inputs[i]);
    if (k.kind == KeyDesc::kUnknown) return;
    if (i == 0) {
      first = k;
    } else if (!(k == first)) {
      report->Add(DiagnosticCode::kPlanJoinKeyMismatch, NodeLabel(op),
                  "union inputs are partitioned on different keys (" +
                      first.ToString() + " vs " + k.ToString() +
                      "); downstream keyed state splits the stream");
      return;
    }
  }
}

// --- per-node dispatch ------------------------------------------------------

void WalkNode(const LogicalOp& op, const LogicalPlan& plan,
              const LogicalOp* root_join, DiagnosticReport* report) {
  CheckShape(op, report);
  CheckWindow(op, plan, report);
  CheckPredicateIndices(op, report);

  switch (op.kind) {
    case LogicalOpKind::kWindowJoin:
      if (op.inputs.size() == 2 && op.inputs[0] && op.inputs[1]) {
        if (&op == root_join) {
          if (op.dedup_pairs) {
            report->Add(DiagnosticCode::kPlanRootJoinDeduplicated, NodeLabel(op),
                        "root join still deduplicates window pairs; matches "
                        "that legitimately repeat across windows are dropped");
          }
        } else if (!op.dedup_pairs) {
          report->Add(DiagnosticCode::kPlanIntermediateJoinDuplicates,
                      NodeLabel(op),
                      "intermediate sliding-window join emits one pair per "
                      "covering window; downstream joins multiply the "
                      "duplicates (set dedup_pairs)");
        }
      }
      break;
    case LogicalOpKind::kKeyByAttr:
      // W213: key extraction is AttributeToKey (double -> int64 truncation).
      // Timestamps and ids are integral by construction; the measurement
      // attributes are not, so keying on them silently merges e.g. 3.2 and
      // 3.9 into partition 3 (release) or trips a DCHECK (debug).
      if (op.key_attr == Attribute::kValue || op.key_attr == Attribute::kLat ||
          op.key_attr == Attribute::kLon) {
        report->Add(DiagnosticCode::kPlanKeyAttrNonIntegral, NodeLabel(op),
                    std::string("partition key uses continuous attribute '") +
                        AttributeName(op.key_attr) +
                        "'; non-integral values truncate to the same int64 "
                        "key (see AttributeToKey)");
      }
      break;
    case LogicalOpKind::kAggregate:
    case LogicalOpKind::kIterChainApply:
      if (op.min_count < 1) {
        report->Add(DiagnosticCode::kPlanAggregateMinCountInvalid, NodeLabel(op),
                    "min_count " + std::to_string(op.min_count) +
                        " fires on every window, including empty ones");
      }
      break;
    case LogicalOpKind::kReorder: {
      const size_t n = op.positions.size();
      bool valid = op.reorder_permutation.size() == n &&
                   (!op.inputs.empty() && op.inputs[0] != nullptr &&
                    op.inputs[0]->positions.size() == n);
      if (valid) {
        std::vector<bool> seen(n, false);
        for (int slot : op.reorder_permutation) {
          if (slot < 0 || static_cast<size_t>(slot) >= n || seen[slot]) {
            valid = false;
            break;
          }
          seen[static_cast<size_t>(slot)] = true;
        }
      }
      if (!valid) {
        report->Add(DiagnosticCode::kPlanReorderInvalid, NodeLabel(op),
                    "reorder permutation " +
                        PositionsToString(op.reorder_permutation) +
                        " is not a bijection over the input arity");
      }
      break;
    }
    case LogicalOpKind::kUnion: {
      for (const auto& input : op.inputs) {
        if (input == nullptr) continue;
        if (input->positions.size() != op.positions.size()) {
          report->Add(DiagnosticCode::kPlanUnionArityMismatch, NodeLabel(op),
                      "union input " + NodeLabel(*input) + " contributes " +
                          std::to_string(input->positions.size()) +
                          " event(s) per tuple, the union expects " +
                          std::to_string(op.positions.size()));
        }
      }
      if (std::all_of(op.inputs.begin(), op.inputs.end(),
                      [](const auto& i) { return i != nullptr; })) {
        CheckUnionKeys(op, report);
      }
      break;
    }
    default:
      break;
  }

  if (IsJoin(op.kind) && op.inputs.size() == 2 && op.inputs[0] &&
      op.inputs[1]) {
    std::set<int> left(op.inputs[0]->positions.begin(),
                       op.inputs[0]->positions.end());
    for (int p : op.inputs[1]->positions) {
      if (left.count(p) != 0) {
        report->Add(DiagnosticCode::kPlanJoinPositionsOverlap, NodeLabel(op),
                    "both join sides cover match position " +
                        std::to_string(p) +
                        "; the same event would appear twice per tuple");
        break;
      }
    }
    CheckJoinKeys(op, report);
  }

  for (const auto& input : op.inputs) {
    if (input != nullptr) WalkNode(*input, plan, root_join, report);
  }
}

// --- E204: temporal-order preservation --------------------------------------

/// Replays the translator's match-position assignment over the pattern
/// tree, collecting the order constraints the pattern semantics require:
/// all cross-child pairs of a SEQ, consecutive iteration events of an
/// ITER, and T1 before T3 of an NSEQ. `span` receives the positions the
/// node covers, in assignment order.
void CollectRequiredPairs(const PatternNode& node, int* cursor,
                          std::vector<int>* span,
                          std::set<std::pair<int, int>>* required) {
  switch (node.op) {
    case PatternOp::kAtom:
    case PatternOp::kOr:  // one output event regardless of alternatives
      span->push_back((*cursor)++);
      break;
    case PatternOp::kIter: {
      const int base = *cursor;
      for (int i = 0; i < node.iter_count; ++i) span->push_back((*cursor)++);
      for (int i = 0; i + 1 < node.iter_count; ++i) {
        required->insert({base + i, base + i + 1});
      }
      break;
    }
    case PatternOp::kNseq: {
      const int p1 = (*cursor)++;
      const int p3 = (*cursor)++;
      span->push_back(p1);
      span->push_back(p3);
      required->insert({p1, p3});
      break;
    }
    case PatternOp::kSeq: {
      std::vector<std::vector<int>> child_spans;
      for (const auto& child : node.children) {
        std::vector<int> child_span;
        CollectRequiredPairs(*child, cursor, &child_span, required);
        span->insert(span->end(), child_span.begin(), child_span.end());
        child_spans.push_back(std::move(child_span));
      }
      for (size_t i = 0; i < child_spans.size(); ++i) {
        for (size_t j = i + 1; j < child_spans.size(); ++j) {
          for (int a : child_spans[i]) {
            for (int b : child_spans[j]) required->insert({a, b});
          }
        }
      }
      break;
    }
    case PatternOp::kAnd:
      for (const auto& child : node.children) {
        std::vector<int> child_span;
        CollectRequiredPairs(*child, cursor, &child_span, required);
        span->insert(span->end(), child_span.begin(), child_span.end());
      }
      break;
  }
}

/// Order constraints the plan actually enforces: strict/non-strict ts-ts
/// comparisons with no offset anywhere in a node predicate (offset terms
/// are window bounds, not order).
void CollectEnforcedPairs(const LogicalOp& op,
                          std::set<std::pair<int, int>>* enforced) {
  const int arity = static_cast<int>(op.positions.size());
  for (const Comparison& term : op.predicate.terms()) {
    if (!term.rhs_is_attr || term.lhs.attr != Attribute::kTs ||
        term.rhs_attr.attr != Attribute::kTs || term.rhs_offset != 0.0) {
      continue;
    }
    const int l = term.lhs.var;
    const int r = term.rhs_attr.var;
    if (l < 0 || l >= arity || r < 0 || r >= arity) continue;
    if (term.op == CmpOp::kLt || term.op == CmpOp::kLe) {
      enforced->insert({op.positions[static_cast<size_t>(l)],
                        op.positions[static_cast<size_t>(r)]});
    } else if (term.op == CmpOp::kGt || term.op == CmpOp::kGe) {
      enforced->insert({op.positions[static_cast<size_t>(r)],
                        op.positions[static_cast<size_t>(l)]});
    }
  }
  for (const auto& input : op.inputs) {
    if (input != nullptr) CollectEnforcedPairs(*input, enforced);
  }
}

void CheckOrderPreserved(const LogicalPlan& plan, const Pattern& pattern,
                         DiagnosticReport* report) {
  std::set<std::pair<int, int>> required;
  std::vector<int> span;
  int cursor = 0;
  CollectRequiredPairs(pattern.root(), &cursor, &span, &required);
  if (required.empty()) return;

  std::set<std::pair<int, int>> enforced;
  CollectEnforcedPairs(*plan.root, &enforced);

  // Transitive closure over the (small) match-position space.
  const int n = cursor;
  std::vector<std::vector<bool>> reach(
      static_cast<size_t>(n), std::vector<bool>(static_cast<size_t>(n), false));
  for (const auto& [a, b] : enforced) {
    if (a >= 0 && a < n && b >= 0 && b < n) {
      reach[static_cast<size_t>(a)][static_cast<size_t>(b)] = true;
    }
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!reach[static_cast<size_t>(i)][static_cast<size_t>(k)]) continue;
      for (int j = 0; j < n; ++j) {
        if (reach[static_cast<size_t>(k)][static_cast<size_t>(j)]) {
          reach[static_cast<size_t>(i)][static_cast<size_t>(j)] = true;
        }
      }
    }
  }

  // Positions the plan output still carries; an O2 aggregation collapses
  // iteration positions into one representative, whose internal order the
  // window function enforces instead of the join predicates.
  const std::set<int> present(plan.root->positions.begin(),
                              plan.root->positions.end());
  for (const auto& [a, b] : required) {
    if (present.count(a) == 0 || present.count(b) == 0) continue;
    if (!reach[static_cast<size_t>(a)][static_cast<size_t>(b)]) {
      report->Add(DiagnosticCode::kPlanSeqOrderLost, "plan",
                  "the pattern requires position " + std::to_string(a) +
                      " to precede position " + std::to_string(b) +
                      " in time, but no chain of join predicates enforces it");
    }
  }
}

}  // namespace

DiagnosticReport AnalyzeLogicalPlan(const LogicalPlan& plan,
                                    const Pattern* pattern) {
  DiagnosticReport report;
  if (plan.root == nullptr) {
    report.Add(DiagnosticCode::kPlanNodeMalformed, "plan",
               "plan has no root operator");
    return report;
  }
  if (!SlidingWindowSpec{plan.window_size, plan.slide}.valid()) {
    report.Add(DiagnosticCode::kPlanWindowSpecInvalid, "plan",
               "plan window (size " + std::to_string(plan.window_size) +
                   ", slide " + std::to_string(plan.slide) +
                   ") is not a valid sliding window");
  }
  const LogicalOp* root_join = FindRootJoin(plan.root.get());
  WalkNode(*plan.root, plan, root_join, &report);
  if (pattern != nullptr && pattern->has_root()) {
    CheckOrderPreserved(plan, *pattern, &report);
  }
  return report;
}

}  // namespace cep2asp
