#ifndef CEP2ASP_ANALYSIS_EXPR_RULES_H_
#define CEP2ASP_ANALYSIS_EXPR_RULES_H_

#include "analysis/diagnostic.h"
#include "runtime/job_graph.h"

namespace cep2asp {

/// \brief Expression-compilation lint pass (diagnostic code I317).
///
/// Reports one info diagnostic per operator node that evaluates a filter
/// predicate or key assignment, naming how the expression executes:
/// compiled ExprProgram bytecode (with the program size) or the
/// interpreted fallback (with the reason — user-supplied lambda,
/// positional predicate, compilation disabled, ...). The note comes from
/// OperatorTraits::expr_note, so the report reflects what the translator
/// actually wired, not what the options requested.
///
/// Nodes with ExprExec::kNone (sources, joins, aggregations, sinks) are
/// never reported. Like AnalyzeChaining, this pass is separate from
/// AnalyzeJobGraph so executors and a clean graph stay info-free.
DiagnosticReport AnalyzeExprCompilation(const JobGraph& graph);

}  // namespace cep2asp

#endif  // CEP2ASP_ANALYSIS_EXPR_RULES_H_
