#include "runtime/operator_task.h"

#include <algorithm>

#include "analysis/invariant_checker.h"
#include "common/logging.h"

namespace cep2asp {

namespace {

/// Pacing remainders shorter than this are absorbed by a micro-sleep
/// inside Source::Next instead of a scheduler timer park: parking costs a
/// state-machine round-trip plus a condvar wait, which is not worth it
/// under ~0.1 ms.
constexpr int64_t kPacingSlackNanos = 100'000;

}  // namespace

PhysicalLayout::PhysicalLayout(const JobGraph& graph,
                               const ChainLayout& chains) {
  const int n = graph.num_nodes();
  num_slots.assign(static_cast<size_t>(n), 0);
  edge_slot_base.resize(static_cast<size_t>(n));
  for (NodeId from = 0; from < n; ++from) {
    const JobGraph::Node& node = graph.node(from);
    edge_slot_base[static_cast<size_t>(from)].reserve(node.outputs.size());
    for (size_t i = 0; i < node.outputs.size(); ++i) {
      const JobGraph::Edge& edge = node.outputs[i];
      if (chains.fused(from, i)) {
        edge_slot_base[static_cast<size_t>(from)].push_back(-1);
        continue;
      }
      edge_slot_base[static_cast<size_t>(from)].push_back(
          num_slots[static_cast<size_t>(edge.to)]);
      num_slots[static_cast<size_t>(edge.to)] += node.parallelism;
    }
  }
}

RoutingCollector::RoutingCollector(const JobGraph* graph, NodeId node,
                                   int subtask, const PhysicalLayout* layout,
                                   std::vector<NodeChannels>* channels,
                                   size_t batch_size, bool cooperative,
                                   bool enable_columnar, bool columnar_hash)
    : batch_size_(std::max<size_t>(1, batch_size)),
      cur_batch_(std::max<size_t>(1, batch_size)),
      cooperative_(cooperative) {
  const JobGraph::Node& producer = graph->node(node);
  for (size_t i = 0; i < producer.outputs.size(); ++i) {
    const JobGraph::Edge& edge = producer.outputs[i];
    OutEdge out;
    out.port = edge.input_port;
    out.mode = edge.partition;
    out.consumer_parallelism = graph->parallelism(edge.to);
    out.slot = layout->edge_slot_base[static_cast<size_t>(node)][i] + subtask;
    out.fixed_target = -1;
    if (edge.partition == PartitionMode::kForward) {
      if (out.consumer_parallelism == 1) {
        out.fixed_target = 0;  // the historical single-instance path
      } else if (producer.parallelism == out.consumer_parallelism) {
        out.fixed_target = subtask;  // chained subtask-local hand-off
      }
      // else: round-robin rebalance via rr_cursor.
    }
    // SoA negotiation, per edge: a forward edge into a columnar-capable
    // consumer carries blocks whole; a hash edge into one splits each
    // block into per-subtask sub-blocks along the key column (a
    // parallelism-1 hash consumer degenerates to whole-block forward).
    // Broadcast edges and row-major consumers keep the row-major path.
    if (enable_columnar &&
        layout->edge_slot_base[static_cast<size_t>(node)][i] >= 0) {
      const JobGraph::Node& consumer = graph->node(edge.to);
      if (consumer.op != nullptr && consumer.op->Traits().columnar_capable) {
        if (edge.partition == PartitionMode::kForward) {
          out.columnar = ColumnarMode::kWhole;
        } else if (edge.partition == PartitionMode::kHash) {
          if (out.consumer_parallelism == 1) {
            out.columnar = ColumnarMode::kWhole;
            out.fixed_target = 0;
          } else if (columnar_hash) {
            out.columnar = ColumnarMode::kPartition;
          }
        }
      }
    }
    out.first_target = static_cast<int>(targets_.size());
    for (int s = 0; s < out.consumer_parallelism; ++s) {
      Target target;
      target.channel =
          (*channels)[static_cast<size_t>(edge.to)][static_cast<size_t>(s)]
              .get();
      target.pending.reserve(batch_size_);
      // One target serves exactly one (out-edge, consumer subtask) pair, so
      // its port and slot are constants: deduplicate them into the pending
      // buffer's batch header instead of stamping every Message — the
      // channel stamps from the header at the push boundary.
      target.pending.hdr_port = out.port;
      target.pending.hdr_slot = out.slot;
      target.pending.hdr_valid = true;
      targets_.push_back(std::move(target));
    }
    edges_.push_back(out);
  }
  // Blocks travel only when EVERY out-edge can carry them: a fan-out with
  // one row-major edge scatters once instead of paying both a block copy
  // and a scatter for the same rows.
  columnar_ok_ = !edges_.empty();
  for (const OutEdge& e : edges_) {
    if (e.columnar == ColumnarMode::kScatter) columnar_ok_ = false;
  }
}

int RoutingCollector::Route(OutEdge& e, const Tuple& tuple) {
  if (e.fixed_target >= 0) return e.fixed_target;
  if (e.mode == PartitionMode::kHash) {
    return KeyToSubtask(tuple.key(), e.consumer_parallelism);
  }
  return static_cast<int>(e.rr_cursor++ %
                          static_cast<size_t>(e.consumer_parallelism));
}

void RoutingCollector::Emit(Tuple tuple) {
  if (edges_.empty()) return;
  if (edges_.size() == 1 && edges_[0].mode != PartitionMode::kBroadcast) {
    OutEdge& e = edges_[0];
    const int t = e.first_target + Route(e, tuple);
    Append(t, Message::Data(e.port, std::move(tuple), e.slot));
    return;
  }
  // General fan-out: resolve every destination first, then copy to all
  // but the last and move into the last.
  destinations_.clear();
  for (size_t i = 0; i < edges_.size(); ++i) {
    OutEdge& e = edges_[i];
    if (e.mode == PartitionMode::kBroadcast) {
      for (int s = 0; s < e.consumer_parallelism; ++s) {
        destinations_.push_back({static_cast<int>(i), e.first_target + s});
      }
    } else {
      destinations_.push_back(
          {static_cast<int>(i), e.first_target + Route(e, tuple)});
    }
  }
  const size_t last = destinations_.size() - 1;
  for (size_t d = 0; d < last; ++d) {
    const OutEdge& e = edges_[static_cast<size_t>(destinations_[d].edge)];
    Append(destinations_[d].target, Message::Data(e.port, tuple, e.slot));
  }
  const OutEdge& e = edges_[static_cast<size_t>(destinations_[last].edge)];
  Append(destinations_[last].target,
         Message::Data(e.port, std::move(tuple), e.slot));
}

void RoutingCollector::EmitBatch(MessageBatch* batch) {
  if (edges_.empty()) {
    batch->clear();
    return;
  }
  if (edges_.size() == 1 && edges_[0].fixed_target >= 0) {
    OutEdge& e = edges_[0];
    const int t = e.first_target + e.fixed_target;
    Target& target = targets_[static_cast<size_t>(t)];
    // No per-message port/slot rewrite: the target's batch header carries
    // them once and the channel stamps at the push boundary.
    for (Message& msg : *batch) {
      target.pending.push_back(std::move(msg));
    }
    batch->clear();
    if (target.pending.size() >= cur_batch_ && !target.stuck) FlushTarget(t);
    return;
  }
  // Hash / broadcast / fan-out: per-tuple routing.
  for (Message& msg : *batch) Emit(std::move(msg.tuple));
  batch->clear();
}

void RoutingCollector::RouteBlock(OutEdge& e,
                                  std::unique_ptr<ColumnarBatch> block) {
  if (e.columnar == ColumnarMode::kPartition) {
    // Hash edge: split along the key column and ship one sub-block per
    // non-empty bucket — P envelopes instead of rows() messages, with
    // per-subtask row order identical to the row-at-a-time scatter.
    std::vector<std::unique_ptr<ColumnarBatch>> parts =
        block->PartitionByKey(e.consumer_parallelism);
    for (size_t s = 0; s < parts.size(); ++s) {
      if (parts[s] == nullptr) continue;
      const int t = e.first_target + static_cast<int>(s);
      Target& target = targets_[static_cast<size_t>(t)];
      target.pending.push_back(
          Message::Columnar(e.port, std::move(parts[s]), e.slot));
      if (!target.stuck) FlushTarget(t);
    }
    return;
  }
  const int sub =
      e.fixed_target >= 0
          ? e.fixed_target
          : static_cast<int>(e.rr_cursor++ %
                             static_cast<size_t>(e.consumer_parallelism));
  const int t = e.first_target + sub;
  Target& target = targets_[static_cast<size_t>(t)];
  target.pending.push_back(Message::Columnar(e.port, std::move(block), e.slot));
  // A block already amortizes like a full batch: offer it to the channel
  // right away instead of waiting for cur_batch_ envelopes.
  if (!target.stuck) FlushTarget(t);
}

void RoutingCollector::EmitColumnar(std::unique_ptr<ColumnarBatch> block) {
  if (block == nullptr || block->rows() == 0) return;
  if (!columnar_ok_) {
    // Scatter shim: some out-edge did not negotiate columnar transfer.
    // Rows are attributed to the receiving channels' scattered_rows so
    // the layout report's residual scatter stays measurable.
    in_scatter_ = true;
    Collector::EmitColumnar(std::move(block));
    in_scatter_ = false;
    return;
  }
  // Fan-out mirrors the row-major semantics: copy the block for every
  // edge but the last, move into the last (single-edge producers never
  // deep-copy).
  const size_t last = edges_.size() - 1;
  for (size_t i = 0; i < last; ++i) {
    RouteBlock(edges_[i], std::make_unique<ColumnarBatch>(*block));
  }
  RouteBlock(edges_[last], std::move(block));
}

void RoutingCollector::Append(int t, Message msg) {
  Target& target = targets_[static_cast<size_t>(t)];
  if (in_scatter_) target.channel->AddScatteredRows(1);
  target.pending.push_back(std::move(msg));
  // A stuck target buffers elastically until the task's next flush retry;
  // offering the channel again per append would only thrash.
  if (target.pending.size() >= cur_batch_ && !target.stuck) FlushTarget(t);
}

void RoutingCollector::FlushTarget(int t) {
  Target& target = targets_[static_cast<size_t>(t)];
  if (target.pending.empty()) return;
  if (!cooperative_) {
    // A false return means the channel was closed (error unwind); the
    // batch is dropped, matching the historical Push behavior.
    target.channel->PushBatch(&target.pending);
    target.pending.clear();
    return;
  }
  const bool first_attempt = !target.push_started;
  const TryPush outcome =
      target.channel->TryPushBatch(&target.pending, first_attempt);
  target.push_started = true;
  if (outcome == TryPush::kBlocked) {
    if (!target.stuck) {
      target.stuck = true;
      ++stuck_targets_;
    }
    return;
  }
  // kPushed, or kClosed (batch dropped): the pending buffer is empty.
  target.push_started = false;
  if (target.stuck) {
    target.stuck = false;
    --stuck_targets_;
  }
}

void RoutingCollector::Flush() {
  for (size_t t = 0; t < targets_.size(); ++t) {
    Target& target = targets_[t];
    if (!(cooperative_ && target.stuck)) FlushTarget(static_cast<int>(t));
  }
}

bool RoutingCollector::TryFlushAll() {
  for (size_t t = 0; t < targets_.size(); ++t) FlushTarget(static_cast<int>(t));
  return stuck_targets_ == 0;
}

void RoutingCollector::EmitControl(MessageKind kind, Timestamp watermark) {
  for (size_t i = 0; i < edges_.size(); ++i) {
    const OutEdge& e = edges_[i];
    for (int s = 0; s < e.consumer_parallelism; ++s) {
      const int t = e.first_target + s;
      targets_[static_cast<size_t>(t)].pending.push_back(
          Message::Control(kind, e.port, watermark, e.slot));
      FlushTarget(t);
    }
  }
}

void ChainedCollector::Emit(Tuple tuple) {
  // Once the chain failed it is unwinding; drop instead of feeding an
  // operator whose run already ended with an error.
  if (!chain_status_->ok()) return;
  ++*handed_over_;
  if (invariants_ != nullptr) {
    // A fused consumer has exactly one in-edge from an equal-parallelism
    // producer, so its physical fan-in equals its parallelism and slot
    // `subtask` is exactly the channel this in-thread hand-off replaces.
    invariants_->OnPhysicalTuple(node_, subtask_, subtask_, tuple);
  }
  Status st = next_->Process(port_, std::move(tuple), downstream_);
  if (!st.ok()) *chain_status_ = st.WithContext(next_->name());
}

void ChainedCollector::EmitBatch(MessageBatch* batch) {
  if (!chain_status_->ok() || batch->empty()) {
    batch->clear();
    return;
  }
  *handed_over_ += static_cast<int64_t>(batch->size());
  if (invariants_ != nullptr) {
    for (const Message& msg : *batch) {
      invariants_->OnPhysicalTuple(node_, subtask_, subtask_, msg.tuple);
    }
  }
  Status st = next_->ProcessBatch(port_, batch, downstream_);
  if (!st.ok()) *chain_status_ = st.WithContext(next_->name());
}

void ChainedCollector::EmitColumnar(std::unique_ptr<ColumnarBatch> block) {
  if (!chain_status_->ok() || block == nullptr || block->rows() == 0) return;
  *handed_over_ += static_cast<int64_t>(block->rows());
  if (invariants_ != nullptr) {
    for (size_t i = 0; i < block->rows(); ++i) {
      invariants_->OnPhysicalTuple(node_, subtask_, subtask_,
                                   block->RowTuple(i));
    }
  }
  // A row-major next operator scatters through its base-class
  // ProcessColumnar shim; a columnar-capable one filters in place.
  Status st = next_->ProcessColumnar(port_, std::move(block), downstream_);
  if (!st.ok()) *chain_status_ = st.WithContext(next_->name());
}

// ---------------------------------------------------------------------------
// SourceTask

SourceTask::SourceTask(const TaskContext* ctx, NodeId node, Source* source)
    : ctx_(ctx),
      source_(source),
      label_("src:" + source->name()),
      router_(ctx->graph, node, /*subtask=*/0, ctx->layout, ctx->channels,
              ctx->batch_size, /*cooperative=*/true, ctx->enable_columnar,
              ctx->columnar_hash),
      cur_batch_(std::max<size_t>(1, ctx->batch_size)) {
  staged_.reserve(cur_batch_);
}

Quantum SourceTask::Park(WakeKind kind, int batches, int64_t deadline_nanos) {
  Quantum q;
  q.outcome = Quantum::Outcome::kWaiting;
  q.wait_kind = kind;
  q.deadline_nanos = deadline_nanos;
  q.batches = batches;
  return q;
}

Quantum SourceTask::RunQuantum() {
  Quantum q;
  // A stuck flush from the previous quantum gates everything: per-channel
  // order would break if new tuples overtook the pending suffix.
  if (!router_.TryFlushAll()) return Park(WakeKind::kCredit, 0);
  if (exhausted_) {
    q.outcome = Quantum::Outcome::kFinished;
    return q;
  }
  Clock* clock = ctx_->clock;
  bool more = true;
  while (q.batches < ctx_->quantum_batches) {
    staged_.clear();
    bool paced = false;
    Tuple tuple;
    if (unpaced_) {
      // Confirmed-unpaced fast path: fill the batch with bare Next()
      // calls, like the legacy source thread. (If such a source ever
      // turns paced again, Next()'s documented self-pacing fallback
      // still bounds its rate — it just blocks the worker like a legacy
      // thread instead of timer-parking.)
      while (staged_.size() < cur_batch_ && (more = source_->Next(&tuple))) {
        staged_.push_back(std::move(tuple));
      }
    } else {
      // Park-until-deadline pacing: if the source would sleep more than
      // the slack before its next tuple, hand the wait to the scheduler
      // timer instead of stalling this worker inside Next(). A source
      // that fills a whole batch without ever reporting a deadline is
      // unpaced: drop the per-tuple virtual call from then on.
      bool saw_deadline = false;
      while (staged_.size() < cur_batch_) {
        const int64_t due = source_->PacingDeadlineNanos();
        if (due > 0) {
          saw_deadline = true;
          if (due - clock->NowNanos() > kPacingSlackNanos) {
            paced = true;
            break;
          }
        }
        if (!source_->Next(&tuple)) {
          more = false;
          break;
        }
        staged_.push_back(std::move(tuple));
      }
      unpaced_ = more && !saw_deadline && staged_.size() >= cur_batch_;
    }
    if (!staged_.empty()) {
      ++q.batches;
      const Timestamp now = clock->NowMillis();
      for (Tuple& t : staged_) {
        for (size_t i = 0; i < t.size(); ++i) {
          t.mutable_event(i).create_ts = now;
        }
      }
      ctx_->tuples_ingested->fetch_add(static_cast<int64_t>(staged_.size()),
                                       std::memory_order_relaxed);
      bool gathered = false;
      if (router_.columnar_eligible()) {
        // SoA gather point: the staged rows become one column block and
        // travel as a single channel envelope. Blocks are shaped per
        // arity; a mixed-arity batch (never produced by the bundled
        // sources) keeps the row-major path.
        bool uniform = true;
        for (const Tuple& t : staged_) {
          if (t.size() != 1) {
            uniform = false;
            break;
          }
        }
        if (uniform) {
          auto block = std::make_unique<ColumnarBatch>(1);
          block->Reserve(staged_.size());
          for (const Tuple& t : staged_) block->AppendTuple(t);
          router_.EmitColumnar(std::move(block));
          gathered = true;
        }
      }
      if (!gathered) {
        for (Tuple& t : staged_) router_.Emit(std::move(t));
      }
      since_watermark_ += static_cast<int>(staged_.size());
      if (since_watermark_ >= ctx_->watermark_interval) {
        since_watermark_ = 0;
        router_.EmitControl(MessageKind::kWatermark,
                            source_->CurrentWatermark());
      }
    }
    if (!more) {
      router_.EmitControl(MessageKind::kWatermark, kMaxTimestamp);
      router_.EmitControl(MessageKind::kEnd, 0);
      exhausted_ = true;
      if (!router_.TryFlushAll()) return Park(WakeKind::kCredit, q.batches);
      q.outcome = Quantum::Outcome::kFinished;
      return q;
    }
    if (paced) {
      // Deliver partially staged output before sleeping, then park until
      // the source's own deadline, translated into scheduler time.
      const bool flushed = router_.TryFlushAll();
      cur_batch_ = std::max<size_t>(1, cur_batch_ / 2);
      if (!flushed) return Park(WakeKind::kCredit, q.batches);
      const int64_t delta = source_->PacingDeadlineNanos() - clock->NowNanos();
      return Park(WakeKind::kTimer, q.batches,
                  TaskScheduler::SteadyNanos() + std::max<int64_t>(delta, 0));
    }
    if (router_.stuck()) {
      return Park(WakeKind::kCredit, q.batches);
    }
  }
  // Full quantum without a stall: grow the staging batch back.
  cur_batch_ = std::min(std::max<size_t>(1, ctx_->batch_size), cur_batch_ * 2);
  q.outcome = Quantum::Outcome::kYielded;
  return q;
}

// ---------------------------------------------------------------------------
// ChainTask

ChainTask::ChainTask(const TaskContext* ctx,
                     const std::vector<NodeId>* chain_nodes, int subtask,
                     std::vector<Operator*> ops)
    : ctx_(ctx),
      chain_nodes_(chain_nodes),
      subtask_(subtask),
      ops_(std::move(ops)),
      router_(ctx->graph, chain_nodes->back(), subtask, ctx->layout,
              ctx->channels, ctx->batch_size, /*cooperative=*/true,
              ctx->enable_columnar, ctx->columnar_hash),
      aligner_(
          ctx->layout->num_slots[static_cast<size_t>(chain_nodes->front())]),
      cur_batch_(std::max<size_t>(1, ctx->batch_size)) {
  const NodeId head = chain_nodes_->front();
  label_ = ops_.front()->name() + "[" + std::to_string(subtask_) + "]";
  if (aligner_.num_slots() > 0) {
    input_ = (*ctx_->channels)[static_cast<size_t>(head)]
                              [static_cast<size_t>(subtask_)]
                                  .get();
  }
  in_.reserve(cur_batch_);
  // Collector per chain position, built tail-first: the tail batches into
  // real channels, every link hands to the next operator in-task. `links_`
  // never reallocates (reserved), so the stored downstream pointers stay
  // valid.
  links_.reserve(ops_.size());
  collectors_.assign(ops_.size(), nullptr);
  collectors_.back() = &router_;
  for (size_t i = ops_.size() - 1; i >= 1; --i) {
    const JobGraph::Edge& edge =
        ctx_->graph->node((*chain_nodes_)[i - 1]).outputs[0];
    links_.emplace_back(
        ops_[i], edge.input_port, collectors_[i], &chain_status_,
        &(*ctx_->fused_tuples)[static_cast<size_t>((*chain_nodes_)[i])]
                              [static_cast<size_t>(subtask_)],
        ctx_->invariants, (*chain_nodes_)[i], subtask_);
    collectors_[i - 1] = &links_.back();
  }
}

Status ChainTask::CascadeWatermark(Timestamp watermark) {
  // Watermarks and Finish cascade through the chain in operator order:
  // each operator's OnWatermark/Finish emissions reach the downstream
  // operators (through the links) *before* the control event is forwarded
  // past them — the same order the unfused per-edge protocol guarantees.
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (i > 0 && ctx_->invariants != nullptr) {
      ctx_->invariants->OnPhysicalWatermark((*chain_nodes_)[i], subtask_,
                                            subtask_, watermark);
    }
    Status st = ops_[i]->OnWatermark(watermark, collectors_[i]);
    if (!st.ok()) return st.WithContext(ops_[i]->name());
    if (!chain_status_.ok()) return chain_status_;
  }
  return Status::OK();
}

Status ChainTask::CascadeFinish() {
  for (size_t i = 0; i < ops_.size(); ++i) {
    Status st = ops_[i]->Finish(collectors_[i]);
    if (!st.ok()) return st.WithContext(ops_[i]->name());
    if (!chain_status_.ok()) return chain_status_;
  }
  return Status::OK();
}

void ChainTask::ProcessBatch(MessageBatch* batch) {
  const NodeId head = chain_nodes_->front();
  // Steady-state fast path: a batch of only data messages on one port goes
  // to the head operator's ProcessBatch in a single call. Compiled
  // stateless heads run it as one tight loop; everything else falls back
  // to the identical per-tuple default.
  if (!batch->empty() && !aligner_.done()) {
    const int port = batch->front().port;
    bool homogeneous = true;
    for (const Message& msg : *batch) {
      if (msg.kind != MessageKind::kTuple || msg.port != port) {
        homogeneous = false;
        break;
      }
    }
    if (homogeneous) {
      if (ctx_->invariants != nullptr) {
        for (const Message& msg : *batch) {
          ctx_->invariants->OnPhysicalTuple(head, subtask_, msg.slot,
                                            msg.tuple);
        }
      }
      Status st =
          ops_.front()->ProcessBatch(port, batch, collectors_.front());
      if (!st.ok()) {
        st = st.WithContext(ops_.front()->name());
      } else if (!chain_status_.ok()) {
        st = chain_status_;
      }
      if (!st.ok()) {
        ctx_->record_error(st);
        aligner_.ForceDone();
        phase_ = Phase::kDone;
      }
      batch->clear();
      return;
    }
  }
  for (Message& msg : *batch) {
    if (aligner_.done()) break;
    switch (msg.kind) {
      case MessageKind::kTuple: {
        if (ctx_->invariants != nullptr) {
          ctx_->invariants->OnPhysicalTuple(head, subtask_, msg.slot,
                                            msg.tuple);
        }
        Status st = ops_.front()->Process(msg.port, std::move(msg.tuple),
                                          collectors_.front());
        if (!st.ok()) {
          st = st.WithContext(ops_.front()->name());
        } else if (!chain_status_.ok()) {
          st = chain_status_;
        }
        if (!st.ok()) {
          ctx_->record_error(st);
          aligner_.ForceDone();
          phase_ = Phase::kDone;
        }
        break;
      }
      case MessageKind::kWatermark: {
        if (ctx_->invariants != nullptr) {
          ctx_->invariants->OnPhysicalWatermark(head, subtask_, msg.slot,
                                                msg.watermark);
        }
        Timestamp aligned = kMinTimestamp;
        if (aligner_.OnWatermark(msg.slot, msg.watermark, &aligned)) {
          Status st = CascadeWatermark(aligned);
          if (!st.ok()) {
            ctx_->record_error(st);
            aligner_.ForceDone();
            phase_ = Phase::kDone;
          } else {
            router_.EmitControl(MessageKind::kWatermark, aligned);
          }
        }
        break;
      }
      case MessageKind::kColumnar: {
        if (ctx_->invariants != nullptr) {
          for (size_t i = 0; i < msg.columnar->rows(); ++i) {
            ctx_->invariants->OnPhysicalTuple(head, subtask_, msg.slot,
                                              msg.columnar->RowTuple(i));
          }
        }
        Status st = ops_.front()->ProcessColumnar(
            msg.port, std::move(msg.columnar), collectors_.front());
        if (!st.ok()) {
          st = st.WithContext(ops_.front()->name());
        } else if (!chain_status_.ok()) {
          st = chain_status_;
        }
        if (!st.ok()) {
          ctx_->record_error(st);
          aligner_.ForceDone();
          phase_ = Phase::kDone;
        }
        break;
      }
      case MessageKind::kEnd: {
        if (aligner_.OnEnd()) {
          Status st = CascadeFinish();
          if (!st.ok()) ctx_->record_error(st);
          router_.EmitControl(MessageKind::kEnd, 0);
          phase_ = Phase::kDone;
        }
        break;
      }
    }
  }
}

/// Grow toward the configured batch size while input keeps whole quanta
/// busy; halve only when the task parks input-starved having processed
/// nothing, so trickling streams flow in small hops. An output stall
/// deliberately keeps the batch unchanged: under backpressure larger
/// hand-offs amortize channel synchronization, and halving there pins
/// every producer at batch 1 on hosts where the consumer never runs
/// concurrently (the producer stalls once per quantum).
void ChainTask::AdaptBatch(int batches_used, bool starved) {
  if (starved && batches_used == 0) {
    cur_batch_ = std::max<size_t>(1, cur_batch_ / 2);
  } else if (batches_used >= ctx_->quantum_batches) {
    cur_batch_ =
        std::min(std::max<size_t>(1, ctx_->batch_size), cur_batch_ * 2);
  }
  router_.set_target_batch(cur_batch_);
}

Quantum ChainTask::Park(WakeKind kind, int batches) {
  Quantum q;
  q.outcome = Quantum::Outcome::kWaiting;
  q.wait_kind = kind;
  q.batches = batches;
  return q;
}

Quantum ChainTask::RunQuantum() {
  Quantum q;
  // Drain any stuck output first: per-channel order forbids new work from
  // overtaking the pending suffix.
  if (!router_.TryFlushAll()) return Park(WakeKind::kCredit, 0);
  if (phase_ == Phase::kDone) {
    q.outcome = Quantum::Outcome::kFinished;
    return q;
  }
  if (phase_ == Phase::kStart) {
    phase_ = Phase::kRun;
    if (aligner_.num_slots() == 0) {
      // No upstream at all (lint warns W306): nothing will ever arrive;
      // run the shutdown protocol so downstream terminates.
      Status st = CascadeWatermark(kMaxTimestamp);
      if (st.ok()) st = CascadeFinish();
      if (!st.ok()) ctx_->record_error(st);
      router_.EmitControl(MessageKind::kWatermark, kMaxTimestamp);
      router_.EmitControl(MessageKind::kEnd, 0);
      phase_ = Phase::kDone;
      if (!router_.TryFlushAll()) return Park(WakeKind::kCredit, 0);
      q.outcome = Quantum::Outcome::kFinished;
      return q;
    }
  }
  bool stalled = false;
  while (q.batches < ctx_->quantum_batches && phase_ == Phase::kRun) {
    bool eos = false;
    const size_t popped = input_->TryPopBatch(&in_, cur_batch_, &eos);
    if (popped == 0) {
      if (eos) {
        // Closed under error unwind: abandon, mirroring the legacy break.
        phase_ = Phase::kDone;
        break;
      }
      // Input drained for now: hand partial output batches downstream
      // before parking, so a stalled stream never strands tuples in a
      // half-filled batch.
      collectors_.front()->Flush();
      if (!router_.TryFlushAll()) {
        stalled = true;
        break;
      }
      AdaptBatch(q.batches, /*starved=*/true);
      return Park(WakeKind::kInput, q.batches);
    }
    ++q.batches;
    ProcessBatch(&in_);
    if (router_.stuck()) {
      stalled = true;
      break;
    }
  }
  if (stalled) {
    AdaptBatch(q.batches, /*starved=*/false);
    return Park(WakeKind::kCredit, q.batches);
  }
  if (phase_ == Phase::kDone) {
    if (!router_.TryFlushAll()) return Park(WakeKind::kCredit, q.batches);
    q.outcome = Quantum::Outcome::kFinished;
    return q;
  }
  AdaptBatch(q.batches, /*starved=*/false);
  q.outcome = Quantum::Outcome::kYielded;
  return q;
}

}  // namespace cep2asp
