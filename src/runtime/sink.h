#ifndef CEP2ASP_RUNTIME_SINK_H_
#define CEP2ASP_RUNTIME_SINK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "runtime/operator.h"

namespace cep2asp {

/// \brief Terminal operator that counts matches and records detection
/// latency: wall-clock arrival time minus the maximum creation time of the
/// contributing events (paper §5.1.3 Metrics).
///
/// Optionally retains the emitted tuples for correctness checks; benchmark
/// runs keep `store_tuples` off to avoid unbounded memory.
class CollectSink : public Operator {
 public:
  explicit CollectSink(bool store_tuples = true, Clock* clock = nullptr)
      : store_tuples_(store_tuples),
        clock_(clock ? clock : SystemClock::Get()) {}

  std::string name() const override { return "sink"; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.stateful = true;  // retained tuples/latencies are job state
    traits.is_sink = true;
    return traits;
  }

  Status Process(int input, Tuple tuple, Collector* out) override {
    (void)input;
    (void)out;
    ++count_;
    latencies_.push_back(clock_->NowMillis() - tuple.max_create_ts());
    if (store_tuples_) tuples_.push_back(std::move(tuple));
    return Status::OK();
  }

  int64_t count() const { return count_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const std::vector<int64_t>& latencies() const { return latencies_; }

  size_t StateBytes() const override {
    return tuples_.capacity() * sizeof(Tuple) +
           latencies_.capacity() * sizeof(int64_t);
  }

 private:
  bool store_tuples_;
  Clock* clock_;
  int64_t count_ = 0;
  std::vector<Tuple> tuples_;
  std::vector<int64_t> latencies_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_SINK_H_
