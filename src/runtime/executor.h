#ifndef CEP2ASP_RUNTIME_EXECUTOR_H_
#define CEP2ASP_RUNTIME_EXECUTOR_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "runtime/job_graph.h"
#include "runtime/metrics.h"
#include "runtime/sink.h"

namespace cep2asp {

class InvariantChecker;

/// \brief Tuning knobs of the single-process executor.
struct ExecutorOptions {
  /// Generate a watermark after this many source tuples.
  int watermark_interval = 256;

  /// Record a StateSample after this many source tuples (0 disables the
  /// timeline; the peak is still tracked at watermark boundaries).
  int state_sample_interval = 8192;

  /// Refresh the wall-clock `create_ts` stamp once per this many ingested
  /// tuples instead of per tuple, removing a clock read from the per-tuple
  /// hot path. Latency measurements are conservatively inflated by at most
  /// the time to ingest one interval (microseconds at engine rates); 1
  /// restores exact per-tuple stamping. Match outputs never depend on it.
  int stamp_interval = 32;

  /// Abort the run with a simulated out-of-memory failure when total
  /// operator state exceeds this budget (bytes). Defaults to unlimited.
  /// Models the paper's observation that FlinkCEP's growing NFA state leads
  /// to memory exhaustion and job failure (§5.2.3/5.2.4).
  size_t memory_limit_bytes = std::numeric_limits<size_t>::max();

  /// Clock used for latency measurement and elapsed-time accounting.
  Clock* clock = nullptr;
};

/// \brief Deterministic single-threaded push executor.
///
/// Merges all sources in event-time order (the cloud gathers streams
/// centrally, §1) and pushes each tuple through the operator DAG with
/// operator chaining. Watermarks are derived from source progress, aligned
/// per multi-input operator (min across ports), and drive window firing.
///
/// The sink operator passed to Run() is used to account emitted matches and
/// latency in the ExecutionResult; it must be a node of the graph.
class PipelineExecutor {
 public:
  PipelineExecutor(JobGraph* graph, ExecutorOptions options = {});
  ~PipelineExecutor();

  /// Runs the job to completion. On simulated OOM the result carries
  /// ok=false and the partial metrics.
  ///
  /// Before starting, the analyzer's job-graph lint pass runs over the
  /// graph; its findings land in ExecutionResult::diagnostics, and a graph
  /// with E-level findings is refused without executing. In debug builds
  /// (CEP2ASP_CHECK_INVARIANTS) an InvariantChecker additionally observes
  /// every tuple and watermark delivery and aborts on contract violations.
  ExecutionResult Run(const CollectSink* sink = nullptr);

 private:
  struct NodeState {
    std::vector<Timestamp> input_watermarks;  // per input port
    Timestamp aligned_watermark = kMinTimestamp;
  };

  class RoutingCollector;

  void DeliverTuple(NodeId node, int port, Tuple tuple);
  void DeliverWatermark(NodeId node, int port, Timestamp watermark);
  void BroadcastWatermark(NodeId from, Timestamp watermark);
  bool CheckMemory();  // returns false when the budget is exceeded

  JobGraph* graph_;
  ExecutorOptions options_;
  Clock* clock_;
  std::unique_ptr<InvariantChecker> invariants_;  // debug builds only
  std::vector<NodeState> states_;
  Status run_status_;
  int64_t tuples_ingested_ = 0;
  size_t peak_state_bytes_ = 0;
  std::vector<StateSample> timeline_;
  int64_t start_nanos_ = 0;
};

/// Convenience: validate + run + return result, using `sink` for match
/// accounting.
ExecutionResult RunJob(JobGraph* graph, const CollectSink* sink,
                       ExecutorOptions options = {});

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_EXECUTOR_H_
