#ifndef CEP2ASP_RUNTIME_SPSC_RING_H_
#define CEP2ASP_RUNTIME_SPSC_RING_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "analysis/check_invariants.h"
#include "common/logging.h"

namespace cep2asp {

namespace spsc_internal {

/// Adaptive wait used when the ring is full/empty: a short spin (the other
/// thread is usually mid-batch), then yields, then brief sleeps so a
/// single-core host can schedule the peer thread.
class Backoff {
 public:
  void Pause() {
    ++spins_;
    if (spins_ < 16) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    } else if (spins_ < 128) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  void Reset() { spins_ = 0; }

 private:
  int spins_ = 0;
};

inline int64_t SteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace spsc_internal

/// \brief Lock-free bounded single-producer single-consumer ring buffer.
///
/// The fast path of the exchange layer: an edge with exactly one producer
/// and one consumer moves message batches through this ring with one
/// release-store per batch instead of a mutex round-trip per message.
/// Head and tail live on separate cache lines, and each side keeps a
/// cached copy of the opposite index so the steady state reads only its
/// own line (the classic network-buffer channel design).
///
/// Capacity is rounded up to a power of two. Close() unblocks both sides:
/// a blocked producer drops its items and returns false, the consumer
/// drains whatever was published and then sees end-of-stream.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Moves all of `items` into the ring, blocking while full; the batch is
  /// published incrementally (chunks of whatever space frees up), so a
  /// batch larger than the ring still goes through. On success `items` is
  /// left empty for reuse. Returns false if the ring was closed (remaining
  /// items dropped). `blocked_nanos`, when non-null, accumulates time spent
  /// waiting for space.
  bool PushAll(std::vector<T>* items, int64_t* blocked_nanos = nullptr) {
    const size_t n = items->size();
    size_t pushed = 0;
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    while (pushed < n) {
      size_t free = capacity() - static_cast<size_t>(tail - cached_head_);
      if (free == 0) {
        cached_head_ = head_.load(std::memory_order_acquire);
        free = capacity() - static_cast<size_t>(tail - cached_head_);
      }
      if (free == 0) {
        if (closed_.load(std::memory_order_acquire)) return false;
        spsc_internal::Backoff backoff;
        const int64_t t0 = blocked_nanos ? spsc_internal::SteadyNanos() : 0;
        while (free == 0) {
          if (closed_.load(std::memory_order_acquire)) {
            if (blocked_nanos) *blocked_nanos += spsc_internal::SteadyNanos() - t0;
            return false;
          }
          backoff.Pause();
          cached_head_ = head_.load(std::memory_order_acquire);
          free = capacity() - static_cast<size_t>(tail - cached_head_);
        }
        if (blocked_nanos) *blocked_nanos += spsc_internal::SteadyNanos() - t0;
      }
      const size_t chunk = std::min(free, n - pushed);
      for (size_t i = 0; i < chunk; ++i) {
        slots_[static_cast<size_t>(tail + i) & mask_] = std::move((*items)[pushed + i]);
      }
      tail += chunk;
      tail_.store(tail, std::memory_order_release);
      pushed += chunk;
#if CEP2ASP_CHECK_INVARIANTS
      CEP2ASP_CHECK(static_cast<size_t>(
                        tail - head_.load(std::memory_order_acquire)) <=
                    capacity())
          << "spsc ring index accounting broken: more items in flight than "
          << "capacity " << capacity();
#endif
    }
    items->clear();
    return true;
  }

  /// Non-blocking push for cooperative producers: publishes a maximal
  /// prefix of `items[0..n)` — whatever fits the free space right now —
  /// and returns how many were moved out (the caller erases the prefix).
  /// Never spins or sleeps: a full ring returns 0 and the producing task
  /// parks on a credit instead. `*closed` reports the closed flag.
  size_t TryPushN(T* items, size_t n, bool* closed) {
    *closed = closed_.load(std::memory_order_acquire);
    if (*closed || n == 0) return 0;
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    size_t free = capacity() - static_cast<size_t>(tail - cached_head_);
    if (free < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity() - static_cast<size_t>(tail - cached_head_);
    }
    const size_t chunk = std::min(free, n);
    for (size_t i = 0; i < chunk; ++i) {
      slots_[static_cast<size_t>(tail + i) & mask_] = std::move(items[i]);
    }
    if (chunk > 0) tail_.store(tail + chunk, std::memory_order_release);
    return chunk;
  }

  /// Non-blocking pop for cooperative consumers: moves up to `max_items`
  /// into `*out` (cleared first) and returns the number taken. 0 with
  /// `*end_of_stream == false` means momentarily empty (the consuming
  /// task parks until the producer pushes); 0 with `*end_of_stream ==
  /// true` means closed and fully drained.
  size_t TryPopN(std::vector<T>* out, size_t max_items, bool* end_of_stream) {
    out->clear();
    *end_of_stream = false;
    if (max_items == 0) return 0;
    const uint64_t head = head_.load(std::memory_order_relaxed);
    size_t avail = static_cast<size_t>(cached_tail_ - head);
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<size_t>(cached_tail_ - head);
    }
    if (avail == 0) {
      // Same drain protocol as PopN: tail is published before closed, so
      // closed + one more tail refresh proves the ring is empty for good.
      if (closed_.load(std::memory_order_acquire)) {
        cached_tail_ = tail_.load(std::memory_order_acquire);
        avail = static_cast<size_t>(cached_tail_ - head);
        if (avail == 0) {
          *end_of_stream = true;
          return 0;
        }
      } else {
        return 0;
      }
    }
    const size_t k = std::min(avail, max_items);
    for (size_t i = 0; i < k; ++i) {
      out->push_back(std::move(slots_[static_cast<size_t>(head + i) & mask_]));
    }
    head_.store(head + k, std::memory_order_release);
    return k;
  }

  /// Convenience single-item push (one-element batch).
  bool Push(T item) {
    scratch_.clear();
    scratch_.push_back(std::move(item));
    return PushAll(&scratch_);
  }

  /// Moves up to `max_items` into `*out` (cleared first), blocking until at
  /// least one item is available. Returns the number popped; 0 means the
  /// ring was closed and fully drained.
  size_t PopN(std::vector<T>* out, size_t max_items) {
    out->clear();
    if (max_items == 0) return 0;
    const uint64_t head = head_.load(std::memory_order_relaxed);
    size_t avail = static_cast<size_t>(cached_tail_ - head);
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<size_t>(cached_tail_ - head);
      spsc_internal::Backoff backoff;
      while (avail == 0) {
        // The producer publishes tail before setting closed, so once we
        // observe closed with an empty ring there is nothing left to drain.
        if (closed_.load(std::memory_order_acquire)) {
          cached_tail_ = tail_.load(std::memory_order_acquire);
          if (cached_tail_ == head) return 0;
          avail = static_cast<size_t>(cached_tail_ - head);
          break;
        }
        backoff.Pause();
        cached_tail_ = tail_.load(std::memory_order_acquire);
        avail = static_cast<size_t>(cached_tail_ - head);
      }
    }
#if CEP2ASP_CHECK_INVARIANTS
    CEP2ASP_CHECK(avail <= capacity())
        << "spsc ring index accounting broken: " << avail
        << " items visible over capacity " << capacity();
#endif
    const size_t k = std::min(avail, max_items);
    for (size_t i = 0; i < k; ++i) {
      out->push_back(std::move(slots_[static_cast<size_t>(head + i) & mask_]));
    }
    head_.store(head + k, std::memory_order_release);
    return k;
  }

  /// Convenience single-item pop.
  std::optional<T> Pop() {
    std::vector<T> one;
    if (PopN(&one, 1) == 0) return std::nullopt;
    return std::move(one.front());
  }

  /// True when no published item is pending (consumer-side view).
  bool Empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  void Close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;

  alignas(64) std::atomic<uint64_t> head_{0};   // next slot to pop (consumer)
  alignas(64) uint64_t cached_tail_ = 0;        // consumer's view of tail
  alignas(64) std::atomic<uint64_t> tail_{0};   // next slot to fill (producer)
  alignas(64) uint64_t cached_head_ = 0;        // producer's view of head
  alignas(64) std::atomic<bool> closed_{false};

  std::vector<T> scratch_;  // producer-only, for Push()
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_SPSC_RING_H_
