#ifndef CEP2ASP_RUNTIME_OPERATOR_TASK_H_
#define CEP2ASP_RUNTIME_OPERATOR_TASK_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "runtime/channel.h"
#include "runtime/job_graph.h"
#include "runtime/operator.h"
#include "runtime/slot_aligner.h"
#include "runtime/task_scheduler.h"

namespace cep2asp {

class InvariantChecker;

/// Input channels of one node, one per consumer subtask.
using NodeChannels = std::vector<std::unique_ptr<Channel>>;

/// Physical expansion of the logical graph: node `id` becomes
/// parallelism(id) subtask instances, and each consumer subtask owns one
/// input channel fed by every producer subtask of every in-edge. A "slot"
/// is the consumer-side dense index of one (in-edge, producer subtask)
/// pair: watermarks are min-aligned and end-of-stream is counted per slot,
/// because a single input port may merge several producer subtasks.
///
/// Edges fused by operator chaining cross no exchange: they get no slot
/// (base -1) and contribute nothing to the consumer's channel — only chain
/// heads accumulate slots and own channels.
struct PhysicalLayout {
  /// Slots per consumer node = sum of producer parallelism over unfused
  /// in-edges (the graph's physical_fan_in minus fused hand-offs).
  std::vector<int> num_slots;
  /// edge_slot_base[from][out_idx]: first slot of that edge at the
  /// consumer; producer subtask s stamps slot base + s. -1 for fused
  /// edges (in-thread hand-off, never stamped).
  std::vector<std::vector<int>> edge_slot_base;

  PhysicalLayout(const JobGraph& graph, const ChainLayout& chains);
};

/// \brief Collector of one producer subtask (a source, or the tail
/// operator of a chain): routes emitted tuples to the right consumer
/// subtask per out-edge (hash by key, chained/rebalance forward, or
/// broadcast), accumulating one pending MessageBatch per physical target
/// channel. Tuples are copied for all destinations but the last and moved
/// into the last, so the common case (one edge, one target) never
/// deep-copies.
///
/// Two delivery modes share the routing logic:
///   - blocking (legacy thread-per-subtask): a full batch is pushed with
///     Channel::PushBatch, stalling the producing OS thread on a full
///     channel — the historical behavior;
///   - cooperative (task scheduler): full batches go out via TryPushBatch;
///     a full channel marks the target stuck and the pending buffer keeps
///     the unmoved suffix, growing elastically until the owning task parks
///     on a credit and TryFlushAll later drains it.
///
/// Control messages (watermark/end) go to *every* consumer subtask of
/// every out-edge regardless of the edge's partition mode, appended behind
/// any buffered tuples so per-channel order is preserved. The caller
/// appends each control exactly once; stuck deliveries are retried by
/// flushing, never by re-appending.
class RoutingCollector : public Collector {
 public:
  /// `enable_columnar` turns on SoA transfer negotiation, per out-edge:
  /// forward edges into columnar-capable consumers ship whole column
  /// blocks; hash edges into columnar-capable consumers split each block
  /// into P sub-blocks by key column (ColumnarBatch::PartitionByKey) when
  /// `columnar_hash` also holds; broadcast edges and row-major consumers
  /// stay row-major. Blocks travel only when EVERY out-edge can carry
  /// them (fan-out copies the block per edge, moving the last), otherwise
  /// EmitColumnar scatters row by row.
  RoutingCollector(const JobGraph* graph, NodeId node, int subtask,
                   const PhysicalLayout* layout,
                   std::vector<NodeChannels>* channels, size_t batch_size,
                   bool cooperative, bool enable_columnar = false,
                   bool columnar_hash = true);

  void Emit(Tuple tuple) override;

  /// Batch fast path: a single-forward-edge producer (the common chained
  /// tail) splices the whole batch into the target's pending buffer — one
  /// move per message, port/slot deduplicated into the buffer's batch
  /// header (the channel stamps at the push boundary) — instead of a
  /// per-tuple Route/Append. Other shapes fall back to per-tuple Emit.
  void EmitBatch(MessageBatch* batch) override;

  /// Columnar fast path: when every out-edge negotiated columnar transfer
  /// (see ctor), the block travels as kColumnar envelopes — whole to a
  /// fixed/round-robin target on forward edges, split into per-subtask
  /// sub-blocks on hash edges. Ineligible shapes (broadcast edges,
  /// row-major consumers) scatter row by row via the base-class shim,
  /// with the scattered rows attributed to the receiving channels.
  void EmitColumnar(std::unique_ptr<ColumnarBatch> block) override;

  /// True when EmitColumnar ships blocks whole instead of scattering;
  /// producers consult this before paying the gather.
  bool columnar_eligible() const { return columnar_ok_; }

  /// Blocking mode: pushes every pending buffer. Cooperative mode: best
  /// effort (TryFlushAll); the task checks stuck() afterwards.
  void Flush() override;

  /// Appends a control message behind the buffered tuples of every
  /// physical target and flushes (best-effort when cooperative).
  void EmitControl(MessageKind kind, Timestamp watermark);

  /// Cooperative mode: attempts to drain every pending buffer. Returns
  /// true when all of them are empty (no stuck target remains).
  bool TryFlushAll();

  /// True while some target's channel rejected a push and holds back a
  /// pending suffix. Cleared by a successful TryFlushAll.
  bool stuck() const { return stuck_targets_ > 0; }

  /// Adaptive batch sizing: new flush threshold in [1, batch_size].
  void set_target_batch(size_t target) {
    cur_batch_ = target < 1 ? 1 : target;
  }

 private:
  struct Target {
    Channel* channel = nullptr;
    MessageBatch pending;
    bool stuck = false;
    /// Whether the current pending buffer was already offered to the
    /// channel once (batch/fill-histogram stats count per logical batch).
    bool push_started = false;
  };

  /// How one out-edge carries a column block when all edges are eligible.
  enum class ColumnarMode : uint8_t {
    kScatter,    // row-by-row (broadcast, or row-major consumer)
    kWhole,      // forward: one envelope to the routed target
    kPartition,  // hash: PartitionByKey splits into per-subtask envelopes
  };

  struct OutEdge {
    int port = 0;
    PartitionMode mode = PartitionMode::kForward;
    ColumnarMode columnar = ColumnarMode::kScatter;
    int consumer_parallelism = 1;
    int slot = 0;           // consumer-side slot this producer subtask owns
    int fixed_target = -1;  // forward short-circuit; -1 = dynamic routing
    int first_target = 0;   // index of consumer subtask 0 in targets_
    size_t rr_cursor = 0;   // rebalance state (forward, unequal parallelism)
  };

  struct Destination {
    int edge = 0;
    int target = 0;
  };

  int Route(OutEdge& e, const Tuple& tuple);
  void Append(int t, Message msg);
  void FlushTarget(int t);
  void RouteBlock(OutEdge& e, std::unique_ptr<ColumnarBatch> block);

  const size_t batch_size_;
  size_t cur_batch_;
  const bool cooperative_;
  bool columnar_ok_ = false;
  /// Set while the EmitColumnar scatter shim runs, so Append attributes
  /// the per-row messages to the receiving channel's scattered_rows.
  bool in_scatter_ = false;
  int stuck_targets_ = 0;
  std::vector<Target> targets_;
  std::vector<OutEdge> edges_;
  std::vector<Destination> destinations_;
};

/// \brief Collector of one fused edge inside a chain: hands each emitted
/// tuple straight to the next operator's Process on the calling thread —
/// no MessageBatch, no ring, no copy. Flush propagates down the chain so
/// the tail's micro-batches still drain when the head goes idle.
/// Watermarks never pass through here (the chain driver cascades
/// OnWatermark through the operators itself, in chain order, before
/// forwarding downstream).
class ChainedCollector : public Collector {
 public:
  ChainedCollector(Operator* next, int port, Collector* downstream,
                   Status* chain_status, int64_t* handed_over,
                   InvariantChecker* invariants, NodeId node, int subtask)
      : next_(next),
        port_(port),
        downstream_(downstream),
        chain_status_(chain_status),
        handed_over_(handed_over),
        invariants_(invariants),
        node_(node),
        subtask_(subtask) {}

  void Emit(Tuple tuple) override;

  /// Hands a whole data batch to the next operator's ProcessBatch in one
  /// virtual call — batches emitted by a compiled operator flow down the
  /// rest of the chain without re-splitting into per-tuple hops.
  void EmitBatch(MessageBatch* batch) override;

  /// Hands a column block to the next operator's ProcessColumnar in one
  /// virtual call; a row-major next scatters through its base-class shim.
  void EmitColumnar(std::unique_ptr<ColumnarBatch> block) override;

  void Flush() override { downstream_->Flush(); }

 private:
  Operator* next_;
  int port_;
  Collector* downstream_;
  Status* chain_status_;
  int64_t* handed_over_;
  InvariantChecker* invariants_;  // null outside invariant-checking builds
  NodeId node_;
  int subtask_;
};

/// Shared environment of every task of one execution; owned by the
/// executor and outliving the scheduler run.
struct TaskContext {
  const JobGraph* graph = nullptr;
  const PhysicalLayout* layout = nullptr;
  std::vector<NodeChannels>* channels = nullptr;
  /// fused_tuples[node][subtask]: in-thread hand-off counters of fused
  /// edges, written by the owning chain task only.
  std::vector<std::vector<int64_t>>* fused_tuples = nullptr;
  size_t batch_size = 64;
  int quantum_batches = 8;
  int watermark_interval = 256;
  /// Negotiate SoA (columnar) transfer on eligible edges.
  bool enable_columnar = false;
  /// Allow hash edges to carry blocks via PartitionByKey (the A/B switch
  /// of the columnar-hash invariance axis; scatter fallback when off).
  bool columnar_hash = true;
  Clock* clock = nullptr;
  InvariantChecker* invariants = nullptr;  // null outside debug wiring
  std::function<void(const Status&)> record_error;
  std::atomic<int64_t>* tuples_ingested = nullptr;
};

/// \brief Cooperative task driving one source node: stages up to the
/// current batch size of tuples per iteration, stamps create_ts, routes
/// them, and emits periodic watermarks — yielding at quantum boundaries
/// instead of owning an OS thread. Rate-limited sources park on the
/// scheduler timer (Source::PacingDeadlineNanos) rather than sleeping a
/// worker.
class SourceTask : public Task {
 public:
  SourceTask(const TaskContext* ctx, NodeId node, Source* source);

  std::string label() const override { return label_; }
  Quantum RunQuantum() override;

 private:
  const TaskContext* ctx_;
  Source* source_;
  std::string label_;
  RoutingCollector router_;
  std::vector<Tuple> staged_;
  size_t cur_batch_;
  int since_watermark_ = 0;
  bool exhausted_ = false;
  /// Set once a full batch was staged without the source ever reporting a
  /// pacing deadline: from then on batches are filled with bare Next()
  /// calls (legacy source-thread behavior), skipping the per-tuple
  /// deadline probe a throughput source never needs.
  bool unpaced_ = false;

  Quantum Park(WakeKind kind, int batches, int64_t deadline_nanos = 0);
};

/// \brief Cooperative task driving one (chain, subtask): pops batches from
/// the chain head's input channel, runs the fused operators, aligns
/// watermarks per slot (SlotAligner), and routes the tail's output — the
/// task-scheduler counterpart of the legacy per-chain OS thread. Never
/// blocks: an empty input parks it on kInput, a full output channel on
/// kCredit.
class ChainTask : public Task {
 public:
  /// `ops` are the already-opened operator instances of this subtask, in
  /// chain order.
  ChainTask(const TaskContext* ctx, const std::vector<NodeId>* chain_nodes,
            int subtask, std::vector<Operator*> ops);

  std::string label() const override { return label_; }
  Quantum RunQuantum() override;

 private:
  enum class Phase { kStart, kRun, kDone };

  Status CascadeWatermark(Timestamp watermark);
  Status CascadeFinish();
  void ProcessBatch(MessageBatch* batch);
  void AdaptBatch(int batches_used, bool stalled);
  Quantum Park(WakeKind kind, int batches);

  const TaskContext* ctx_;
  const std::vector<NodeId>* chain_nodes_;
  const int subtask_;
  std::string label_;
  std::vector<Operator*> ops_;
  Status chain_status_;
  RoutingCollector router_;
  std::vector<ChainedCollector> links_;
  std::vector<Collector*> collectors_;
  SlotAligner aligner_;
  Channel* input_ = nullptr;
  MessageBatch in_;
  size_t cur_batch_;
  Phase phase_ = Phase::kStart;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_OPERATOR_TASK_H_
