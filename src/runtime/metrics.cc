#include "runtime/metrics.h"

#include <algorithm>
#include <cstdio>

namespace cep2asp {

LatencyStats LatencyStats::FromSamples(std::vector<int64_t> samples) {
  LatencyStats stats;
  stats.count = static_cast<int64_t>(samples.size());
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (int64_t s : samples) sum += static_cast<double>(s);
  stats.mean_ms = sum / static_cast<double>(samples.size());
  auto percentile = [&samples](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
    return static_cast<double>(samples[idx]);
  };
  stats.p50_ms = percentile(0.50);
  stats.p95_ms = percentile(0.95);
  stats.p99_ms = percentile(0.99);
  stats.max_ms = static_cast<double>(samples.back());
  return stats;
}

int ChannelStats::FillBucket(size_t fill) {
  int bucket = 0;
  size_t bound = 1;
  while (bucket < kFillBuckets - 1 && fill > bound) {
    ++bucket;
    bound <<= 1;
  }
  return bucket;
}

std::string ChannelStats::ToString() const {
  if (fused) {
    char fbuf[160];
    std::snprintf(fbuf, sizeof(fbuf), "->%s[%d] fused tuples=%lld",
                  consumer.c_str(), subtask, static_cast<long long>(tuples));
    return fbuf;
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "->%s[%d] %s batches=%lld msgs=%lld tuples=%lld "
                "avg_fill=%.1f blocked=%.3fms",
                consumer.c_str(), subtask, spsc ? "spsc" : "mpmc",
                static_cast<long long>(batches), static_cast<long long>(messages),
                static_cast<long long>(tuples), avg_fill(),
                static_cast<double>(blocked_push_nanos) / 1e6);
  std::string out = buf;
  if (columnar_blocks > 0 || scattered_rows > 0) {
    char cbuf[128];
    std::snprintf(cbuf, sizeof(cbuf),
                  " columnar_blocks=%lld columnar_rows=%lld scattered_rows=%lld",
                  static_cast<long long>(columnar_blocks),
                  static_cast<long long>(columnar_rows),
                  static_cast<long long>(scattered_rows));
    out += cbuf;
  }
  out += " fill_hist=[";
  for (int i = 0; i < kFillBuckets; ++i) {
    if (i > 0) out += " ";
    out += std::to_string(fill_hist[i]);
  }
  out += "]";
  return out;
}

std::string LatencyStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.1fms p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms",
                static_cast<long long>(count), mean_ms, p50_ms, p95_ms, p99_ms,
                max_ms);
  return buf;
}

int64_t SchedulerStats::total_tasks_run() const {
  int64_t total = 0;
  for (const Worker& w : workers) total += w.tasks_run;
  return total;
}

int64_t SchedulerStats::total_steals() const {
  int64_t total = 0;
  for (const Worker& w : workers) total += w.steals;
  return total;
}

int64_t SchedulerStats::total_parks() const {
  int64_t total = 0;
  for (const Worker& w : workers) total += w.parks;
  return total;
}

int64_t SchedulerStats::total_unparks() const {
  int64_t total = 0;
  for (const Worker& w : workers) total += w.unparks;
  return total;
}

int64_t SchedulerStats::total_batches() const {
  int64_t total = 0;
  for (const Worker& w : workers) total += w.batches;
  return total;
}

double SchedulerStats::quantum_utilization() const {
  const double capacity = static_cast<double>(total_tasks_run()) *
                          static_cast<double>(quantum_batches);
  return capacity > 0 ? static_cast<double>(total_batches()) / capacity : 0.0;
}

std::string SchedulerStats::ToString() const {
  if (!used) return "scheduler: legacy thread-per-subtask";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "scheduler: workers=%d tasks=%d quanta=%lld steals=%lld "
                "parks=%lld unparks=%lld timer_parks=%lld quantum_util=%.2f",
                worker_threads, num_tasks,
                static_cast<long long>(total_tasks_run()),
                static_cast<long long>(total_steals()),
                static_cast<long long>(total_parks()),
                static_cast<long long>(total_unparks()),
                static_cast<long long>(timer_parks), quantum_utilization());
  std::string out = buf;
  out += " per_worker=[";
  for (size_t i = 0; i < workers.size(); ++i) {
    const Worker& w = workers[i];
    char wbuf[96];
    std::snprintf(wbuf, sizeof(wbuf), "%sw%d:run=%lld steal=%lld park=%lld",
                  i > 0 ? " " : "", w.worker,
                  static_cast<long long>(w.tasks_run),
                  static_cast<long long>(w.steals),
                  static_cast<long long>(w.parks));
    out += wbuf;
  }
  out += "]";
  return out;
}

std::string PartitionSkew::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s x%d max=%lld mean=%.1f imbalance=%.2f loads=[",
                op.c_str(), parallelism, static_cast<long long>(max_tuples),
                mean_tuples, imbalance());
  std::string out = buf;
  for (size_t i = 0; i < tuples_per_subtask.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(tuples_per_subtask[i]);
  }
  out += "]";
  return out;
}

}  // namespace cep2asp
