#include "runtime/metrics.h"

#include <algorithm>
#include <cstdio>

namespace cep2asp {

LatencyStats LatencyStats::FromSamples(std::vector<int64_t> samples) {
  LatencyStats stats;
  stats.count = static_cast<int64_t>(samples.size());
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (int64_t s : samples) sum += static_cast<double>(s);
  stats.mean_ms = sum / static_cast<double>(samples.size());
  auto percentile = [&samples](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
    return static_cast<double>(samples[idx]);
  };
  stats.p50_ms = percentile(0.50);
  stats.p95_ms = percentile(0.95);
  stats.p99_ms = percentile(0.99);
  stats.max_ms = static_cast<double>(samples.back());
  return stats;
}

int ChannelStats::FillBucket(size_t fill) {
  int bucket = 0;
  size_t bound = 1;
  while (bucket < kFillBuckets - 1 && fill > bound) {
    ++bucket;
    bound <<= 1;
  }
  return bucket;
}

std::string ChannelStats::ToString() const {
  if (fused) {
    char fbuf[160];
    std::snprintf(fbuf, sizeof(fbuf), "->%s[%d] fused tuples=%lld",
                  consumer.c_str(), subtask, static_cast<long long>(tuples));
    return fbuf;
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "->%s[%d] %s batches=%lld msgs=%lld tuples=%lld "
                "avg_fill=%.1f blocked=%.3fms",
                consumer.c_str(), subtask, spsc ? "spsc" : "mpmc",
                static_cast<long long>(batches), static_cast<long long>(messages),
                static_cast<long long>(tuples), avg_fill(),
                static_cast<double>(blocked_push_nanos) / 1e6);
  std::string out = buf;
  out += " fill_hist=[";
  for (int i = 0; i < kFillBuckets; ++i) {
    if (i > 0) out += " ";
    out += std::to_string(fill_hist[i]);
  }
  out += "]";
  return out;
}

std::string LatencyStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.1fms p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms",
                static_cast<long long>(count), mean_ms, p50_ms, p95_ms, p99_ms,
                max_ms);
  return buf;
}

std::string PartitionSkew::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s x%d max=%lld mean=%.1f imbalance=%.2f loads=[",
                op.c_str(), parallelism, static_cast<long long>(max_tuples),
                mean_tuples, imbalance());
  std::string out = buf;
  for (size_t i = 0; i < tuples_per_subtask.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(tuples_per_subtask[i]);
  }
  out += "]";
  return out;
}

}  // namespace cep2asp
