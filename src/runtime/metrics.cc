#include "runtime/metrics.h"

#include <algorithm>
#include <cstdio>

namespace cep2asp {

LatencyStats LatencyStats::FromSamples(std::vector<int64_t> samples) {
  LatencyStats stats;
  stats.count = static_cast<int64_t>(samples.size());
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (int64_t s : samples) sum += static_cast<double>(s);
  stats.mean_ms = sum / static_cast<double>(samples.size());
  auto percentile = [&samples](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
    return static_cast<double>(samples[idx]);
  };
  stats.p50_ms = percentile(0.50);
  stats.p95_ms = percentile(0.95);
  stats.p99_ms = percentile(0.99);
  stats.max_ms = static_cast<double>(samples.back());
  return stats;
}

std::string LatencyStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.1fms p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms",
                static_cast<long long>(count), mean_ms, p50_ms, p95_ms, p99_ms,
                max_ms);
  return buf;
}

}  // namespace cep2asp
