#ifndef CEP2ASP_RUNTIME_RATE_LIMITED_SOURCE_H_
#define CEP2ASP_RUNTIME_RATE_LIMITED_SOURCE_H_

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "runtime/operator.h"

namespace cep2asp {

/// \brief Decorates a source with an offered ingestion rate: Next() paces
/// emissions to `tuples_per_second` of wall-clock time.
///
/// This is the knob of the paper's sustainable-throughput methodology
/// (§5.1.3, [53]): a job sustains a rate if it keeps up with a source
/// offering it — with bounded queues (ThreadedExecutor), a too-fast offer
/// backpressures into this source and the achieved rate drops below the
/// offered one.
class RateLimitedSource : public Source {
 public:
  RateLimitedSource(std::unique_ptr<Source> inner, double tuples_per_second,
                    Clock* clock = nullptr)
      : inner_(std::move(inner)),
        nanos_per_tuple_(tuples_per_second > 0 ? 1e9 / tuples_per_second : 0),
        clock_(clock ? clock : SystemClock::Get()) {}

  std::string name() const override { return inner_->name() + "@rate"; }

  bool Next(Tuple* tuple) override {
    if (emitted_ == 0) start_nanos_ = clock_->NowNanos();
    // Busy-wait-free pacing: sleep until this tuple's scheduled slot.
    int64_t due = start_nanos_ +
                  static_cast<int64_t>(nanos_per_tuple_ *
                                       static_cast<double>(emitted_));
    int64_t now = clock_->NowNanos();
    if (now < due) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(due - now));
    }
    if (!inner_->Next(tuple)) return false;
    ++emitted_;
    return true;
  }

  Timestamp CurrentWatermark() const override {
    return inner_->CurrentWatermark();
  }

  /// The next tuple's scheduled slot, exposed so cooperative executors can
  /// park until it on a scheduler timer — sleeping inside Next() would
  /// stall a whole worker and starve co-scheduled tasks. 0 before the
  /// first emission (the schedule anchors on the first Next call) and when
  /// unlimited.
  int64_t PacingDeadlineNanos() const override {
    if (emitted_ == 0 || nanos_per_tuple_ <= 0) return 0;
    return start_nanos_ +
           static_cast<int64_t>(nanos_per_tuple_ *
                                static_cast<double>(emitted_));
  }

  int64_t emitted() const { return emitted_; }

 private:
  std::unique_ptr<Source> inner_;
  double nanos_per_tuple_;
  Clock* clock_;
  int64_t start_nanos_ = 0;
  int64_t emitted_ = 0;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_RATE_LIMITED_SOURCE_H_
