#ifndef CEP2ASP_RUNTIME_OPERATOR_H_
#define CEP2ASP_RUNTIME_OPERATOR_H_

#include <memory>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "event/event.h"
#include "runtime/message.h"

namespace cep2asp {

class Predicate;    // event/predicate.h
class ExprProgram;  // event/expr_program.h

/// \brief Downstream hand-off used by operators to emit output tuples.
///
/// Watermarks are not emitted through the Collector: the executor aligns
/// and forwards watermarks itself, after giving the operator a chance to
/// flush (Operator::OnWatermark). This keeps per-operator watermark logic
/// out of the operators entirely.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void Emit(Tuple tuple) = 0;

  /// Batch emission: hands over a whole batch of data messages (all
  /// kTuple, already on the emitting operator's output). The default
  /// unpacks per tuple; batching collectors override it to move the batch
  /// downstream in one hop (splice into the pending buffer, or a single
  /// ProcessBatch call on the next chained operator). The batch is
  /// consumed either way and left empty for reuse.
  virtual void EmitBatch(MessageBatch* batch) {
    for (Message& msg : *batch) Emit(std::move(msg.tuple));
    batch->clear();
  }

  /// Columnar emission: hands over a whole column block. The default
  /// scatters row by row (the gather/scatter shim at a columnar ->
  /// row-major boundary); columnar-capable collectors override it to move
  /// the block downstream as one envelope.
  virtual void EmitColumnar(std::unique_ptr<ColumnarBatch> block) {
    for (size_t i = 0; i < block->rows(); ++i) Emit(block->RowTuple(i));
  }

  /// Hands any internally buffered emissions downstream. Executors whose
  /// collectors micro-batch (ThreadedExecutor) call this before a thread
  /// would otherwise go idle; operators never need to call it — control
  /// events (watermark/end) force a flush on their own.
  virtual void Flush() {}
};

/// Discards everything; useful for cost microbenchmarks.
class NullCollector : public Collector {
 public:
  void Emit(Tuple) override {}
  void EmitBatch(MessageBatch* batch) override { batch->clear(); }
  void EmitColumnar(std::unique_ptr<ColumnarBatch>) override {}
};

/// \brief Static self-description of an operator, consumed by the plan
/// analyzer's job-graph rules and by the debug-build invariant checker.
///
/// Traits let analyses reason about arbitrary operators — including ones
/// defined above the runtime layer — without RTTI: each operator declares
/// what the analyzer would otherwise have to know about its concrete type.
/// How an operator evaluates its predicate / key expressions; consumed by
/// the I317 expression-compilation report.
enum class ExprExec : uint8_t {
  /// No expression work at all (joins, unions, sinks, windows).
  kNone,
  /// Interprets a Predicate / std::function per tuple.
  kInterpreted,
  /// Runs a compiled ExprProgram (bytecode, batch-capable).
  kCompiled,
};

struct OperatorTraits {
  /// Buffers tuples between calls (windows, partial matches, seen-sets).
  bool stateful = false;
  /// State is partitioned by the tuple key; correctness then requires a
  /// key-assigning operator upstream on every input path.
  bool keyed = false;
  /// Rewrites the partition key of passing tuples (key-by map).
  bool assigns_key = false;
  /// Buffers tuples by event-time window and emits on watermark passage.
  bool windowed = false;
  /// Window span (ms). For sliding windows the (size, slide) pair; other
  /// windowed operators (interval joins, NSEQ marking) report their time
  /// horizon as `window_size` with `window_slide == 0`.
  Timestamp window_size = 0;
  Timestamp window_slide = 0;
  /// Emits each logical match once per overlapping window (the sliding
  /// semantics of paper §3.1.4) rather than exactly once.
  bool emits_window_duplicates = false;
  /// Guarantees StateBytes() == 0 after OnWatermark(kMaxTimestamp): all
  /// window state is flushed and evicted by the final watermark. The
  /// invariant checker asserts this in debug builds.
  bool drains_on_final_watermark = false;
  /// Terminal by design: consumes tuples without emitting (result sinks).
  bool is_sink = false;
  /// Expression execution mode and a short human-readable note for the
  /// I317 report ("3 insns", "user-supplied lambda", ...). `expr_note`
  /// must point at storage outliving the operator (string literals or
  /// operator-owned strings).
  ExprExec expr_exec = ExprExec::kNone;
  const char* expr_note = nullptr;

  // --- static-analysis introspection (range / selectivity pass) -----------
  // Optional self-exposure of the operator's logic so the abstract
  // interpreter in src/analysis/range_rules can reason about it without
  // RTTI. All pointers reference operator-owned storage and stay valid as
  // long as the operator lives. Operators that keep their logic opaque
  // (user lambdas) leave these null and the pass widens to Top.

  /// The interpreted predicate this operator evaluates (filter condition or
  /// join condition), or null. Terms address tuple events positionally
  /// unless `predicate_broadcast` says every variable reads event 0.
  const Predicate* predicate = nullptr;
  bool predicate_broadcast = false;
  /// The compiled bytecode this operator runs, or null. `expr_capacity` is
  /// the event-schema capacity its operands were verified against.
  const ExprProgram* program = nullptr;
  size_t expr_capacity = 0;
  /// Key provenance of a key-assigning operator: the event slot + attribute
  /// the key is read from (`key_source_event >= 0`), or a constant key
  /// (`key_is_constant`). Both unset means unknown provenance.
  int key_source_event = -1;
  Attribute key_source_attr = Attribute::kId;
  bool key_is_constant = false;
  int64_t key_constant = 0;
  /// Upper bound on this operator's pass fraction in [0,1], derived by the
  /// range pass (AttachRangeFacts) from declared source intervals; negative
  /// means no bound has been derived. The cost-based-optimizer Open item
  /// consumes this.
  double selectivity_bound = -1.0;
  /// Consumes and emits ColumnarBatch natively (ProcessColumnar is a real
  /// override, not the scatter shim). Producers negotiate the SoA transfer
  /// path per edge against this bit; row-major operators keep the default
  /// and receive gathered/scattered rows transparently.
  bool columnar_capable = false;
};

/// \brief A (possibly stateful) dataflow operator, the unit of the ASP
/// processing model (paper §2.3).
///
/// Lifecycle: Open -> {Process | OnWatermark}* -> Finish. The executor
/// guarantees that OnWatermark is called with strictly increasing values,
/// already aligned (min) across all input edges, and that Finish is called
/// exactly once after an OnWatermark(kMaxTimestamp).
class Operator {
 public:
  virtual ~Operator() = default;

  virtual std::string name() const = 0;

  /// Static self-description for analyses; defaults describe a stateless
  /// unary pass-through. Override in stateful / keyed / windowed operators.
  virtual OperatorTraits Traits() const { return OperatorTraits{}; }

  /// Number of distinct input ports (1 for unary, 2 for joins; union may
  /// declare more).
  virtual int num_inputs() const { return 1; }

  virtual Status Open() { return Status::OK(); }

  /// Handles one input tuple arriving on `input`.
  virtual Status Process(int input, Tuple tuple, Collector* out) = 0;

  /// Handles a homogeneous run of data messages (all kTuple, all on
  /// `input`) in one call. The batch is consumed and left empty. The
  /// default unpacks into per-tuple Process calls — semantically the
  /// baseline; compiled stateless operators override it with a tight
  /// compact-in-place loop that never takes the per-tuple virtual hops.
  virtual Status ProcessBatch(int input, MessageBatch* batch, Collector* out) {
    for (Message& msg : *batch) {
      Status status = Process(input, std::move(msg.tuple), out);
      if (!status.ok()) {
        batch->clear();
        return status;
      }
    }
    batch->clear();
    return Status::OK();
  }

  /// Handles a whole column block arriving on `input`. The block is
  /// consumed. The default scatters back into a row-major batch and
  /// forwards to ProcessBatch (the boundary shim for operators that do not
  /// declare `columnar_capable`); columnar-capable operators override it
  /// to filter the columns in place and re-emit the block.
  virtual Status ProcessColumnar(int input, std::unique_ptr<ColumnarBatch> block,
                                 Collector* out) {
    MessageBatch rows;
    rows.reserve(block->rows());
    for (size_t i = 0; i < block->rows(); ++i) {
      rows.push_back(Message::Data(input, block->RowTuple(i)));
    }
    block.reset();
    return ProcessBatch(input, &rows, out);
  }

  /// Called when the aligned watermark advances to `watermark`: event time
  /// has passed, windows ending at or before it may fire.
  virtual Status OnWatermark(Timestamp watermark, Collector* out) {
    (void)watermark;
    (void)out;
    return Status::OK();
  }

  /// Called once after all inputs are exhausted and the final watermark was
  /// delivered.
  virtual Status Finish(Collector* out) {
    (void)out;
    return Status::OK();
  }

  /// Current operator state footprint in bytes (buffered windows, partial
  /// matches, ...). Sampled by the metrics collector.
  virtual size_t StateBytes() const { return 0; }

  /// Records a statically derived upper bound on this operator's pass
  /// fraction (range pass, AttachRangeFacts). Default drops it; operators
  /// that participate in cost modeling store it and report it back through
  /// Traits().selectivity_bound.
  virtual void AttachSelectivityBound(double bound) { (void)bound; }

  /// Fresh, state-empty instance of this operator for one parallel subtask
  /// (keyed data parallelism: each instance sees a disjoint key subset, so
  /// construction parameters are shared but runtime state is not). Returns
  /// null when the operator cannot run data-parallel — the default, and
  /// the graph lint (E314) rejects parallelism > 1 on such nodes.
  virtual std::unique_ptr<Operator> CloneForSubtask() const { return nullptr; }
};

/// \brief A stream source: produces tuples in non-decreasing event time
/// (the paper's data model assumes each producer emits increasing
/// timestamps, §2.1).
class Source {
 public:
  virtual ~Source() = default;

  virtual std::string name() const = 0;

  /// Produces the next tuple; returns false when the stream is exhausted.
  virtual bool Next(Tuple* tuple) = 0;

  /// Event time high-water mark of this source: no future tuple will carry
  /// a smaller timestamp.
  virtual Timestamp CurrentWatermark() const = 0;

  /// Absolute wall-clock instant (Clock::NowNanos domain) before which the
  /// next Next() call would block on pacing, or 0 when the source is ready
  /// now. Cooperative executors consult this and park the source task on a
  /// scheduler timer until the deadline instead of letting Next() sleep a
  /// worker thread; thread-per-subtask executors may ignore it (Next()
  /// still paces itself as a fallback).
  virtual int64_t PacingDeadlineNanos() const { return 0; }
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_OPERATOR_H_
