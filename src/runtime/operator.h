#ifndef CEP2ASP_RUNTIME_OPERATOR_H_
#define CEP2ASP_RUNTIME_OPERATOR_H_

#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "event/event.h"

namespace cep2asp {

/// \brief Downstream hand-off used by operators to emit output tuples.
///
/// Watermarks are not emitted through the Collector: the executor aligns
/// and forwards watermarks itself, after giving the operator a chance to
/// flush (Operator::OnWatermark). This keeps per-operator watermark logic
/// out of the operators entirely.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void Emit(Tuple tuple) = 0;

  /// Hands any internally buffered emissions downstream. Executors whose
  /// collectors micro-batch (ThreadedExecutor) call this before a thread
  /// would otherwise go idle; operators never need to call it — control
  /// events (watermark/end) force a flush on their own.
  virtual void Flush() {}
};

/// Discards everything; useful for cost microbenchmarks.
class NullCollector : public Collector {
 public:
  void Emit(Tuple) override {}
};

/// \brief A (possibly stateful) dataflow operator, the unit of the ASP
/// processing model (paper §2.3).
///
/// Lifecycle: Open -> {Process | OnWatermark}* -> Finish. The executor
/// guarantees that OnWatermark is called with strictly increasing values,
/// already aligned (min) across all input edges, and that Finish is called
/// exactly once after an OnWatermark(kMaxTimestamp).
class Operator {
 public:
  virtual ~Operator() = default;

  virtual std::string name() const = 0;

  /// Number of distinct input ports (1 for unary, 2 for joins; union may
  /// declare more).
  virtual int num_inputs() const { return 1; }

  virtual Status Open() { return Status::OK(); }

  /// Handles one input tuple arriving on `input`.
  virtual Status Process(int input, Tuple tuple, Collector* out) = 0;

  /// Called when the aligned watermark advances to `watermark`: event time
  /// has passed, windows ending at or before it may fire.
  virtual Status OnWatermark(Timestamp watermark, Collector* out) {
    (void)watermark;
    (void)out;
    return Status::OK();
  }

  /// Called once after all inputs are exhausted and the final watermark was
  /// delivered.
  virtual Status Finish(Collector* out) {
    (void)out;
    return Status::OK();
  }

  /// Current operator state footprint in bytes (buffered windows, partial
  /// matches, ...). Sampled by the metrics collector.
  virtual size_t StateBytes() const { return 0; }
};

/// \brief A stream source: produces tuples in non-decreasing event time
/// (the paper's data model assumes each producer emits increasing
/// timestamps, §2.1).
class Source {
 public:
  virtual ~Source() = default;

  virtual std::string name() const = 0;

  /// Produces the next tuple; returns false when the stream is exhausted.
  virtual bool Next(Tuple* tuple) = 0;

  /// Event time high-water mark of this source: no future tuple will carry
  /// a smaller timestamp.
  virtual Timestamp CurrentWatermark() const = 0;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_OPERATOR_H_
