#ifndef CEP2ASP_RUNTIME_JOB_GRAPH_H_
#define CEP2ASP_RUNTIME_JOB_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/operator.h"

namespace cep2asp {

/// Identifies a node (source or operator) within a JobGraph.
using NodeId = int;

/// \brief Directed acyclic dataflow graph: sources -> operators -> sinks
/// (paper §2.3: ASPSs use directed graphs as processing model).
///
/// Sinks are simply operators without outgoing edges; callers keep a raw
/// pointer to result-collecting operators they add.
class JobGraph {
 public:
  JobGraph() = default;

  JobGraph(const JobGraph&) = delete;
  JobGraph& operator=(const JobGraph&) = delete;
  JobGraph(JobGraph&&) = default;
  JobGraph& operator=(JobGraph&&) = default;

  /// Adds a source node; returns its id.
  NodeId AddSource(std::unique_ptr<Source> source);

  /// Adds an operator node; returns its id. The graph owns the operator.
  NodeId AddOperator(std::unique_ptr<Operator> op);

  /// Convenience: adds `op` and connects `from` to its input port 0.
  NodeId AddOperatorAfter(NodeId from, std::unique_ptr<Operator> op);

  /// Routes the output of `from` (source or operator) into input port
  /// `input_port` of operator `to`.
  Status Connect(NodeId from, NodeId to, int input_port = 0);

  /// Validates the topology by running the analyzer's job-graph lint pass
  /// (analysis/graph_rules.h) and returning its first E-level finding:
  /// every operator input port fed by exactly one edge, acyclicity, source
  /// coverage, fan-in accounting, and window-spec consistency. Warnings
  /// (W3xx) do not fail validation; callers wanting the full report use
  /// AnalyzeJobGraph directly.
  Status Validate() const;

  // --- Introspection used by executors -----------------------------------

  struct Edge {
    NodeId to = -1;
    int input_port = 0;
  };

  struct Node {
    std::unique_ptr<Source> source;  // exactly one of source/op is set
    std::unique_ptr<Operator> op;
    std::vector<Edge> outputs;
    int num_input_edges = 0;

    bool is_source() const { return source != nullptr; }
  };

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  Node& mutable_node(NodeId id) { return nodes_[static_cast<size_t>(id)]; }

  /// Number of upstream nodes feeding `id` (edges into any input port).
  /// The threaded executor uses this to pick the channel implementation:
  /// exactly one producer allows the lock-free SPSC fast path.
  int fan_in(NodeId id) const { return node(id).num_input_edges; }

  /// Node ids in a topological order (sources first). Precondition: the
  /// graph must be acyclic — on a cyclic graph the returned order is
  /// incomplete (fewer than num_nodes() entries, which is exactly how the
  /// analyzer's cycle rule detects the situation). Run Validate() or
  /// AnalyzeJobGraph first when the topology is untrusted.
  std::vector<NodeId> TopologicalOrder() const;

  /// Sum of StateBytes over all operators (job state footprint).
  size_t TotalStateBytes() const;

  /// Multi-line description of the topology for logging / examples.
  std::string ToString() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_JOB_GRAPH_H_
