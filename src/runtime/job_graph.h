#ifndef CEP2ASP_RUNTIME_JOB_GRAPH_H_
#define CEP2ASP_RUNTIME_JOB_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "event/event_type.h"
#include "runtime/operator.h"

namespace cep2asp {

/// Identifies a node (source or operator) within a JobGraph.
using NodeId = int;

/// How tuples crossing an edge are routed among the consumer's parallel
/// subtask instances (paper §4.2.3: the Equi Join "is computed per key and
/// parallelizable").
enum class PartitionMode : uint8_t {
  /// Subtask-local hand-off: chained (producer subtask i -> consumer
  /// subtask i) when both nodes have equal parallelism, round-robin
  /// rebalance otherwise. The only valid mode into parallelism-1 nodes.
  kForward,
  /// Route by the tuple's partition key: KeyToSubtask(key, parallelism).
  /// Required into keyed stateful operators with parallelism > 1.
  kHash,
  /// Copy every tuple to every consumer subtask.
  kBroadcast,
};

const char* PartitionModeToString(PartitionMode mode);

/// Deterministic key -> subtask assignment used by the hash-partitioned
/// exchange (and by tests/benches predicting partition loads). The raw key
/// goes through a splitmix64-style finalizer first so dense sensor ids do
/// not all land on neighbouring subtasks modulo small parallelism.
int KeyToSubtask(int64_t key, int parallelism);

/// Batch form over a contiguous key column, bit-identical to calling
/// KeyToSubtask per key: the splitmix64 finalizer runs as a SIMD kernel
/// under CEP2ASP_SIMD (SSE2 baseline, runtime-dispatched AVX2) and the
/// modulo stays scalar either way. This is the routing step of
/// ColumnarBatch::PartitionByKey, where one block splits into P blocks.
void KeyToSubtaskBatch(const int64_t* keys, size_t count, int parallelism,
                       int32_t* out);

/// \brief Directed acyclic dataflow graph: sources -> operators -> sinks
/// (paper §2.3: ASPSs use directed graphs as processing model).
///
/// Sinks are simply operators without outgoing edges; callers keep a raw
/// pointer to result-collecting operators they add.
class JobGraph {
 public:
  JobGraph() = default;

  JobGraph(const JobGraph&) = delete;
  JobGraph& operator=(const JobGraph&) = delete;
  JobGraph(JobGraph&&) = default;
  JobGraph& operator=(JobGraph&&) = default;

  /// Adds a source node; returns its id. The two-argument form records the
  /// event type the source emits — metadata the range pass uses to seed
  /// declared attribute intervals (analysis/range_rules); execution never
  /// consults it.
  NodeId AddSource(std::unique_ptr<Source> source);
  NodeId AddSource(std::unique_ptr<Source> source, EventTypeId type);

  /// Adds an operator node; returns its id. The graph owns the operator.
  NodeId AddOperator(std::unique_ptr<Operator> op);

  /// Convenience: adds `op` and connects `from` to its input port 0.
  NodeId AddOperatorAfter(NodeId from, std::unique_ptr<Operator> op);

  /// Routes the output of `from` (source or operator) into input port
  /// `input_port` of operator `to`. `mode` selects how tuples spread over
  /// the consumer's subtask instances when `to` runs parallel; it is
  /// irrelevant (and kForward by convention) for parallelism-1 consumers.
  Status Connect(NodeId from, NodeId to, int input_port = 0,
                 PartitionMode mode = PartitionMode::kForward);

  /// Sets the number of parallel subtask instances the threaded executor
  /// materializes for operator `id`. Rejects sources (they stay single;
  /// scaling ingestion is a source concern) and n < 1. The operator must
  /// support CloneForSubtask() for n > 1 — enforced by the graph lint
  /// (E314), not here, so plans can be built before operators are final.
  Status SetParallelism(NodeId id, int parallelism);

  /// Declares the expected number of distinct partition keys flowing into
  /// `id` (0 = unknown). Pure metadata for the lint layer: parallelism
  /// beyond the key count cannot be utilized (W313).
  Status SetKeyDomainHint(NodeId id, int64_t num_keys);

  /// Enables/disables operator chaining at node `id` (operators only,
  /// default on). With chaining off the node always runs as its own
  /// subtask, ending any chain at both its in- and out-edge; useful for
  /// isolating a heavy operator on its own thread or for A/B runs.
  Status SetChaining(NodeId id, bool enabled);

  /// Validates the topology by running the analyzer's job-graph lint pass
  /// (analysis/graph_rules.h) and returning its first E-level finding:
  /// every operator input port fed by exactly one edge, acyclicity, source
  /// coverage, fan-in accounting, and window-spec consistency. Warnings
  /// (W3xx) do not fail validation; callers wanting the full report use
  /// AnalyzeJobGraph directly.
  Status Validate() const;

  // --- Introspection used by executors -----------------------------------

  struct Edge {
    NodeId to = -1;
    int input_port = 0;
    PartitionMode partition = PartitionMode::kForward;
  };

  struct Node {
    std::unique_ptr<Source> source;  // exactly one of source/op is set
    std::unique_ptr<Operator> op;
    std::vector<Edge> outputs;
    int num_input_edges = 0;
    /// Parallel subtask instances (operators only; sources stay 1). The
    /// threaded executor expands the node into this many physical tasks;
    /// the single-threaded PipelineExecutor ignores it (it remains the
    /// deterministic logical reference).
    int parallelism = 1;
    /// Expected distinct partition keys (0 = unknown); lint metadata.
    int64_t key_domain_hint = 0;
    /// Operator-chaining knob (operators only): when false the node never
    /// fuses with its neighbours. See ComputeChainLayout.
    bool chaining = true;
    /// Event type a source emits (sources only; kInvalidEventType when
    /// undeclared). Range-pass metadata, never consulted by execution.
    EventTypeId source_type = kInvalidEventType;

    bool is_source() const { return source != nullptr; }
  };

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  Node& mutable_node(NodeId id) { return nodes_[static_cast<size_t>(id)]; }

  /// Number of upstream nodes feeding `id` (edges into any input port):
  /// the *logical* fan-in. With parallel producers the number of physical
  /// channels differs — see physical_fan_in.
  int fan_in(NodeId id) const { return node(id).num_input_edges; }

  /// Subtask instances of node `id` (1 for sources).
  int parallelism(NodeId id) const { return node(id).parallelism; }

  /// Number of physical producer subtasks feeding each subtask instance of
  /// `id`: the sum of producer parallelism over all in-edges. Every
  /// producer subtask pushes at least control messages (watermarks, end)
  /// into every consumer subtask, so this — not fan_in — decides the
  /// channel implementation: exactly one physical producer allows the
  /// lock-free SPSC fast path. Equals fan_in when all producers run with
  /// parallelism 1.
  int physical_fan_in(NodeId id) const;

  /// Node ids in a topological order (sources first). Precondition: the
  /// graph must be acyclic — on a cyclic graph the returned order is
  /// incomplete (fewer than num_nodes() entries, which is exactly how the
  /// analyzer's cycle rule detects the situation). Run Validate() or
  /// AnalyzeJobGraph first when the topology is untrusted.
  std::vector<NodeId> TopologicalOrder() const;

  /// Sum of StateBytes over all operators (job state footprint).
  size_t TotalStateBytes() const;

  /// Multi-line description of the topology for logging / examples.
  std::string ToString() const;

 private:
  std::vector<Node> nodes_;
};

// --- Operator chaining (Flink-style forward-edge fusion) -----------------

/// Verdict of the chain planner for one edge. kChained means the edge is
/// fused: the producer hands tuples straight to the consumer's Process in
/// the same thread, no exchange channel. Every other value names the first
/// rule (in evaluation order) that kept the edge on a real channel.
enum class ChainBreak : uint8_t {
  kChained,
  kNotForward,           // hash/broadcast edges always cross an exchange
  kSourceProducer,       // sources keep their own ingestion thread
  kDisabled,             // chaining switched off executor-wide
  kProducerOptedOut,     // producer's chaining knob is off
  kConsumerOptedOut,     // consumer's chaining knob is off
  kFanOut,               // producer has more than one out-edge
  kFanIn,                // consumer has more than one in-edge
  kParallelismMismatch,  // producer and consumer subtask counts differ
};

const char* ChainBreakToString(ChainBreak verdict);

/// \brief The chain decomposition of a job graph: every operator belongs
/// to exactly one chain (a maximal run of fused forward edges; an unfused
/// operator forms a chain of length 1), sources stay outside chains.
///
/// The threaded executor runs one subtask per (chain, parallel instance):
/// only the chain head owns input channels, interior nodes receive tuples
/// in-thread from their producer.
struct ChainLayout {
  /// Chains in head-to-tail node order; chain indices are stable for one
  /// layout but carry no other meaning.
  std::vector<std::vector<NodeId>> chains;
  /// Per node: owning chain index, or -1 for sources.
  std::vector<int> chain_of;
  /// Per node: position within its chain (0 = head), or -1 for sources.
  std::vector<int> pos_in_chain;
  /// Per node, per out-edge (same order as Node::outputs): the planner's
  /// verdict for that edge.
  std::vector<std::vector<ChainBreak>> edge_verdict;

  /// True when out-edge `out_idx` of `from` is fused.
  bool fused(NodeId from, size_t out_idx) const {
    return edge_verdict[static_cast<size_t>(from)][out_idx] ==
           ChainBreak::kChained;
  }

  /// True when `id` is a chain head (owns real input channels). Sources
  /// are not heads.
  bool is_head(NodeId id) const {
    return pos_in_chain[static_cast<size_t>(id)] == 0;
  }

  int num_chains() const { return static_cast<int>(chains.size()); }

  /// Total fused edges across the graph.
  int fused_edge_count() const;

  /// Human-readable layout: one line per chain ("chain 0 (x4): filter ->
  /// map -> sink"), then one line per unchained forward edge naming the
  /// verdict that broke it.
  std::string ToString(const JobGraph& graph) const;
};

/// Computes maximal chains over the physical graph. A forward edge
/// producer -> consumer fuses when all of:
///   - the edge's PartitionMode is kForward (hash/broadcast cross a real
///     exchange by definition),
///   - the producer is an operator (sources keep their ingestion thread),
///   - `chaining_enabled` and both endpoints' chaining knobs are on,
///   - the producer has exactly one out-edge and the consumer exactly one
///     in-edge (no fan-out/fan-in inside a chain),
///   - both nodes have equal parallelism (subtask i hands to subtask i).
/// With `chaining_enabled` false every operator is its own chain, which
/// reproduces the historical one-thread-per-subtask layout.
ChainLayout ComputeChainLayout(const JobGraph& graph,
                               bool chaining_enabled = true);

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_JOB_GRAPH_H_
