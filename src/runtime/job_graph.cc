#include "runtime/job_graph.h"

#include <cstdint>
#include <queue>

#include "analysis/graph_rules.h"
#include "common/logging.h"

// SIMD splitmix64 for the batch key-routing kernel, following the same
// dispatch scheme as the expression kernels (expr_program.cc): SSE2 is
// unconditional on x86-64, AVX2 compiles with a per-function target
// attribute and is selected at runtime, and the scalar loop below carries
// identical semantics when CEP2ASP_SIMD is off.
#if defined(CEP2ASP_SIMD) && defined(__x86_64__) && defined(__SSE2__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CEP2ASP_HASH_SIMD 1
#include <immintrin.h>
#else
#define CEP2ASP_HASH_SIMD 0
#endif

namespace cep2asp {

const char* PartitionModeToString(PartitionMode mode) {
  switch (mode) {
    case PartitionMode::kForward:
      return "forward";
    case PartitionMode::kHash:
      return "hash";
    case PartitionMode::kBroadcast:
      return "broadcast";
  }
  return "?";
}

int KeyToSubtask(int64_t key, int parallelism) {
  if (parallelism <= 1) return 0;
  // splitmix64 finalizer: decorrelates dense/sequential sensor ids.
  uint64_t x = static_cast<uint64_t>(key);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<uint64_t>(parallelism));
}

namespace {

inline uint64_t SplitMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

void SplitMix64BatchScalar(const int64_t* keys, size_t count, uint64_t* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = SplitMix64(static_cast<uint64_t>(keys[i]));
  }
}

#if CEP2ASP_HASH_SIMD

// 64x64 -> low-64 multiply from 32x32 pieces: neither SSE2 nor AVX2 has a
// packed 64-bit low multiply (that is AVX-512), but a*b mod 2^64 =
// lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32), exact.
inline __m128i MulLo64Sse2(__m128i a, __m128i b) {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross = _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                                      _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

void SplitMix64BatchSse2(const int64_t* keys, size_t count, uint64_t* out) {
  const __m128i c1 = _mm_set1_epi64x(static_cast<int64_t>(0xbf58476d1ce4e5b9ull));
  const __m128i c2 = _mm_set1_epi64x(static_cast<int64_t>(0x94d049bb133111ebull));
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    x = _mm_xor_si128(x, _mm_srli_epi64(x, 30));
    x = MulLo64Sse2(x, c1);
    x = _mm_xor_si128(x, _mm_srli_epi64(x, 27));
    x = MulLo64Sse2(x, c2);
    x = _mm_xor_si128(x, _mm_srli_epi64(x, 31));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), x);
  }
  SplitMix64BatchScalar(keys + i, count - i, out + i);
}

__attribute__((target("avx2"))) inline __m256i MulLo64Avx2(__m256i a,
                                                           __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void SplitMix64BatchAvx2(const int64_t* keys,
                                                         size_t count,
                                                         uint64_t* out) {
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<int64_t>(0xbf58476d1ce4e5b9ull));
  const __m256i c2 =
      _mm256_set1_epi64x(static_cast<int64_t>(0x94d049bb133111ebull));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
    x = MulLo64Avx2(x, c1);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
    x = MulLo64Avx2(x, c2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
  }
  SplitMix64BatchScalar(keys + i, count - i, out + i);
}

using HashBatchFn = void (*)(const int64_t*, size_t, uint64_t*);

HashBatchFn PickHashBatch() {
  return __builtin_cpu_supports("avx2") ? &SplitMix64BatchAvx2
                                        : &SplitMix64BatchSse2;
}

#endif  // CEP2ASP_HASH_SIMD

void SplitMix64Batch(const int64_t* keys, size_t count, uint64_t* out) {
#if CEP2ASP_HASH_SIMD
  static const HashBatchFn fn = PickHashBatch();
  fn(keys, count, out);
#else
  SplitMix64BatchScalar(keys, count, out);
#endif
}

}  // namespace

void KeyToSubtaskBatch(const int64_t* keys, size_t count, int parallelism,
                       int32_t* out) {
  if (parallelism <= 1) {
    for (size_t i = 0; i < count; ++i) out[i] = 0;
    return;
  }
  const uint64_t p = static_cast<uint64_t>(parallelism);
  // Fixed-size stack chunks keep the hashed intermediates cache-hot and the
  // routine allocation-free; the modulo stays scalar (no packed 64-bit
  // division exists), so SIMD covers exactly the finalizer.
  uint64_t hashed[256];
  size_t i = 0;
  while (i < count) {
    const size_t n = count - i < 256 ? count - i : 256;
    SplitMix64Batch(keys + i, n, hashed);
    for (size_t j = 0; j < n; ++j) {
      out[i + j] = static_cast<int32_t>(hashed[j] % p);
    }
    i += n;
  }
}

NodeId JobGraph::AddSource(std::unique_ptr<Source> source) {
  Node node;
  node.source = std::move(source);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId JobGraph::AddSource(std::unique_ptr<Source> source, EventTypeId type) {
  const NodeId id = AddSource(std::move(source));
  nodes_[static_cast<size_t>(id)].source_type = type;
  return id;
}

NodeId JobGraph::AddOperator(std::unique_ptr<Operator> op) {
  Node node;
  node.op = std::move(op);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId JobGraph::AddOperatorAfter(NodeId from, std::unique_ptr<Operator> op) {
  NodeId id = AddOperator(std::move(op));
  CEP2ASP_CHECK_OK(Connect(from, id, 0));
  return id;
}

Status JobGraph::Connect(NodeId from, NodeId to, int input_port,
                         PartitionMode mode) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    return Status::InvalidArgument("Connect: node id out of range");
  }
  Node& target = nodes_[static_cast<size_t>(to)];
  if (target.is_source()) {
    return Status::InvalidArgument("Connect: cannot route into a source");
  }
  if (input_port < 0 || input_port >= target.op->num_inputs()) {
    return Status::InvalidArgument("Connect: bad input port for " +
                                   target.op->name());
  }
  nodes_[static_cast<size_t>(from)].outputs.push_back(
      Edge{to, input_port, mode});
  target.num_input_edges++;
  return Status::OK();
}

Status JobGraph::SetParallelism(NodeId id, int parallelism) {
  if (id < 0 || id >= num_nodes()) {
    return Status::InvalidArgument("SetParallelism: node id out of range");
  }
  Node& node = nodes_[static_cast<size_t>(id)];
  if (node.is_source()) {
    return Status::InvalidArgument(
        "SetParallelism: sources run single-instance (" +
        node.source->name() + ")");
  }
  if (parallelism < 1) {
    return Status::InvalidArgument("SetParallelism: parallelism must be >= 1");
  }
  node.parallelism = parallelism;
  return Status::OK();
}

Status JobGraph::SetChaining(NodeId id, bool enabled) {
  if (id < 0 || id >= num_nodes()) {
    return Status::InvalidArgument("SetChaining: node id out of range");
  }
  Node& node = nodes_[static_cast<size_t>(id)];
  if (node.is_source()) {
    return Status::InvalidArgument(
        "SetChaining: sources never chain (" + node.source->name() + ")");
  }
  node.chaining = enabled;
  return Status::OK();
}

Status JobGraph::SetKeyDomainHint(NodeId id, int64_t num_keys) {
  if (id < 0 || id >= num_nodes()) {
    return Status::InvalidArgument("SetKeyDomainHint: node id out of range");
  }
  if (num_keys < 0) {
    return Status::InvalidArgument("SetKeyDomainHint: num_keys must be >= 0");
  }
  nodes_[static_cast<size_t>(id)].key_domain_hint = num_keys;
  return Status::OK();
}

int JobGraph::physical_fan_in(NodeId id) const {
  int total = 0;
  for (const Node& node : nodes_) {
    for (const Edge& edge : node.outputs) {
      if (edge.to == id) total += node.parallelism;
    }
  }
  return total;
}

Status JobGraph::Validate() const {
  // Thin wrapper over the analyzer's job-graph rules: the lint pass holds
  // the single definition of graph well-formedness.
  return AnalyzeJobGraph(*this).ToStatus();
}

std::vector<NodeId> JobGraph::TopologicalOrder() const {
  std::vector<int> in_degree(nodes_.size(), 0);
  for (const Node& node : nodes_) {
    for (const Edge& edge : node.outputs) {
      in_degree[static_cast<size_t>(edge.to)]++;
    }
  }
  std::queue<NodeId> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) ready.push(static_cast<NodeId>(i));
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    NodeId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (const Edge& edge : nodes_[static_cast<size_t>(id)].outputs) {
      if (--in_degree[static_cast<size_t>(edge.to)] == 0) ready.push(edge.to);
    }
  }
  return order;
}

size_t JobGraph::TotalStateBytes() const {
  size_t total = 0;
  for (const Node& node : nodes_) {
    if (!node.is_source()) total += node.op->StateBytes();
  }
  return total;
}

std::string JobGraph::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    out += "  [" + std::to_string(i) + "] ";
    out += node.is_source() ? ("source " + node.source->name())
                            : node.op->name();
    if (!node.is_source() && node.num_input_edges > 1) {
      out += " (fan-in " + std::to_string(node.num_input_edges) + ")";
    }
    if (node.parallelism > 1) {
      out += " x" + std::to_string(node.parallelism);
    }
    if (!node.outputs.empty()) {
      out += " ->";
      for (const Edge& edge : node.outputs) {
        out += " " + std::to_string(edge.to) + ":" +
               std::to_string(edge.input_port);
        if (edge.partition != PartitionMode::kForward) {
          out += std::string("[") + PartitionModeToString(edge.partition) + "]";
        }
      }
    }
    out += "\n";
  }
  return out;
}

const char* ChainBreakToString(ChainBreak verdict) {
  switch (verdict) {
    case ChainBreak::kChained:
      return "chained";
    case ChainBreak::kNotForward:
      return "edge is not forward-partitioned";
    case ChainBreak::kSourceProducer:
      return "producer is a source";
    case ChainBreak::kDisabled:
      return "chaining disabled";
    case ChainBreak::kProducerOptedOut:
      return "producer opted out of chaining";
    case ChainBreak::kConsumerOptedOut:
      return "consumer opted out of chaining";
    case ChainBreak::kFanOut:
      return "producer fan-out > 1";
    case ChainBreak::kFanIn:
      return "consumer fan-in > 1";
    case ChainBreak::kParallelismMismatch:
      return "parallelism mismatch";
  }
  return "?";
}

int ChainLayout::fused_edge_count() const {
  int count = 0;
  for (const std::vector<ChainBreak>& verdicts : edge_verdict) {
    for (ChainBreak v : verdicts) {
      if (v == ChainBreak::kChained) ++count;
    }
  }
  return count;
}

std::string ChainLayout::ToString(const JobGraph& graph) const {
  auto label = [&graph](NodeId id) {
    const JobGraph::Node& node = graph.node(id);
    return node.is_source() ? ("source " + node.source->name())
                            : node.op->name();
  };
  std::string out;
  for (size_t c = 0; c < chains.size(); ++c) {
    out += "  chain " + std::to_string(c);
    const int parallelism = graph.parallelism(chains[c].front());
    if (parallelism > 1) out += " (x" + std::to_string(parallelism) + ")";
    out += ":";
    for (size_t i = 0; i < chains[c].size(); ++i) {
      out += (i == 0 ? " " : " -> ") + label(chains[c][i]);
    }
    out += "\n";
  }
  for (NodeId from = 0; from < graph.num_nodes(); ++from) {
    const JobGraph::Node& node = graph.node(from);
    for (size_t i = 0; i < node.outputs.size(); ++i) {
      const ChainBreak v = edge_verdict[static_cast<size_t>(from)][i];
      if (v == ChainBreak::kChained ||
          node.outputs[i].partition != PartitionMode::kForward) {
        continue;
      }
      out += "  unchained: " + label(from) + " -> " +
             label(node.outputs[i].to) + " (" + ChainBreakToString(v) + ")\n";
    }
  }
  return out;
}

namespace {

ChainBreak ClassifyEdge(const JobGraph& graph, NodeId from,
                        const JobGraph::Edge& edge, bool chaining_enabled) {
  if (edge.partition != PartitionMode::kForward) {
    return ChainBreak::kNotForward;
  }
  const JobGraph::Node& producer = graph.node(from);
  if (producer.is_source()) return ChainBreak::kSourceProducer;
  if (!chaining_enabled) return ChainBreak::kDisabled;
  if (!producer.chaining) return ChainBreak::kProducerOptedOut;
  if (!graph.node(edge.to).chaining) return ChainBreak::kConsumerOptedOut;
  if (producer.outputs.size() != 1) return ChainBreak::kFanOut;
  if (graph.fan_in(edge.to) != 1) return ChainBreak::kFanIn;
  if (producer.parallelism != graph.parallelism(edge.to)) {
    return ChainBreak::kParallelismMismatch;
  }
  return ChainBreak::kChained;
}

}  // namespace

ChainLayout ComputeChainLayout(const JobGraph& graph, bool chaining_enabled) {
  ChainLayout layout;
  const int n = graph.num_nodes();
  layout.chain_of.assign(static_cast<size_t>(n), -1);
  layout.pos_in_chain.assign(static_cast<size_t>(n), -1);
  layout.edge_verdict.resize(static_cast<size_t>(n));

  // Pass 1: classify every edge; remember which nodes gained a fused
  // in-edge (those cannot be chain heads).
  std::vector<bool> has_fused_in(static_cast<size_t>(n), false);
  for (NodeId from = 0; from < n; ++from) {
    const JobGraph::Node& node = graph.node(from);
    auto& verdicts = layout.edge_verdict[static_cast<size_t>(from)];
    verdicts.reserve(node.outputs.size());
    for (const JobGraph::Edge& edge : node.outputs) {
      const ChainBreak v = ClassifyEdge(graph, from, edge, chaining_enabled);
      verdicts.push_back(v);
      if (v == ChainBreak::kChained) {
        has_fused_in[static_cast<size_t>(edge.to)] = true;
      }
    }
  }

  // Pass 2: every operator without a fused in-edge heads a chain; follow
  // its (single, by the fan-out rule) fused out-edge to the tail. A fully
  // fused cycle has no head and its nodes keep chain_of == -1; the graph
  // lint rejects cycles (E303) before any executor consumes this layout.
  for (NodeId id = 0; id < n; ++id) {
    if (graph.node(id).is_source() || has_fused_in[static_cast<size_t>(id)]) {
      continue;
    }
    std::vector<NodeId> chain;
    NodeId cur = id;
    while (true) {
      layout.chain_of[static_cast<size_t>(cur)] =
          static_cast<int>(layout.chains.size());
      layout.pos_in_chain[static_cast<size_t>(cur)] =
          static_cast<int>(chain.size());
      chain.push_back(cur);
      const JobGraph::Node& node = graph.node(cur);
      if (node.outputs.size() == 1 && layout.fused(cur, 0)) {
        cur = node.outputs[0].to;
        continue;
      }
      break;
    }
    layout.chains.push_back(std::move(chain));
  }
  return layout;
}

}  // namespace cep2asp
