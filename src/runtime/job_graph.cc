#include "runtime/job_graph.h"

#include <queue>

#include "analysis/graph_rules.h"
#include "common/logging.h"

namespace cep2asp {

NodeId JobGraph::AddSource(std::unique_ptr<Source> source) {
  Node node;
  node.source = std::move(source);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId JobGraph::AddOperator(std::unique_ptr<Operator> op) {
  Node node;
  node.op = std::move(op);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId JobGraph::AddOperatorAfter(NodeId from, std::unique_ptr<Operator> op) {
  NodeId id = AddOperator(std::move(op));
  CEP2ASP_CHECK_OK(Connect(from, id, 0));
  return id;
}

Status JobGraph::Connect(NodeId from, NodeId to, int input_port) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    return Status::InvalidArgument("Connect: node id out of range");
  }
  Node& target = nodes_[static_cast<size_t>(to)];
  if (target.is_source()) {
    return Status::InvalidArgument("Connect: cannot route into a source");
  }
  if (input_port < 0 || input_port >= target.op->num_inputs()) {
    return Status::InvalidArgument("Connect: bad input port for " +
                                   target.op->name());
  }
  nodes_[static_cast<size_t>(from)].outputs.push_back(Edge{to, input_port});
  target.num_input_edges++;
  return Status::OK();
}

Status JobGraph::Validate() const {
  // Thin wrapper over the analyzer's job-graph rules: the lint pass holds
  // the single definition of graph well-formedness.
  return AnalyzeJobGraph(*this).ToStatus();
}

std::vector<NodeId> JobGraph::TopologicalOrder() const {
  std::vector<int> in_degree(nodes_.size(), 0);
  for (const Node& node : nodes_) {
    for (const Edge& edge : node.outputs) {
      in_degree[static_cast<size_t>(edge.to)]++;
    }
  }
  std::queue<NodeId> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) ready.push(static_cast<NodeId>(i));
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    NodeId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (const Edge& edge : nodes_[static_cast<size_t>(id)].outputs) {
      if (--in_degree[static_cast<size_t>(edge.to)] == 0) ready.push(edge.to);
    }
  }
  return order;
}

size_t JobGraph::TotalStateBytes() const {
  size_t total = 0;
  for (const Node& node : nodes_) {
    if (!node.is_source()) total += node.op->StateBytes();
  }
  return total;
}

std::string JobGraph::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    out += "  [" + std::to_string(i) + "] ";
    out += node.is_source() ? ("source " + node.source->name())
                            : node.op->name();
    if (!node.is_source() && node.num_input_edges > 1) {
      out += " (fan-in " + std::to_string(node.num_input_edges) + ")";
    }
    if (!node.outputs.empty()) {
      out += " ->";
      for (const Edge& edge : node.outputs) {
        out += " " + std::to_string(edge.to) + ":" +
               std::to_string(edge.input_port);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace cep2asp
