#include "runtime/columnar_batch.h"

#include "common/logging.h"

namespace cep2asp {

void ColumnarBatch::Reset(size_t num_slots) {
  CEP2ASP_DCHECK(num_slots > 0);
  num_slots_ = num_slots;
  rows_ = 0;
  attr_cols_.resize(num_slots * kNumEventAttrs);
  type_cols_.resize(num_slots);
  create_ts_cols_.resize(num_slots);
  for (std::vector<double>& col : attr_cols_) col.clear();
  for (std::vector<EventTypeId>& col : type_cols_) col.clear();
  for (std::vector<Timestamp>& col : create_ts_cols_) col.clear();
  keys_.clear();
  event_times_.clear();
  mask_.clear();
}

void ColumnarBatch::Reserve(size_t rows) {
  for (std::vector<double>& col : attr_cols_) col.reserve(rows);
  for (std::vector<EventTypeId>& col : type_cols_) col.reserve(rows);
  for (std::vector<Timestamp>& col : create_ts_cols_) col.reserve(rows);
  keys_.reserve(rows);
  event_times_.reserve(rows);
  mask_.reserve(rows);
}

void ColumnarBatch::AppendTuple(const Tuple& tuple) {
  CEP2ASP_DCHECK(tuple.size() == num_slots_)
      << "tuple arity " << tuple.size() << " vs batch shape " << num_slots_;
  for (size_t s = 0; s < num_slots_; ++s) {
    const SimpleEvent& e = tuple.event(s);
    std::vector<double>* cols = &attr_cols_[s * kNumEventAttrs];
    cols[0].push_back(e.value);
    cols[1].push_back(e.lat);
    cols[2].push_back(e.lon);
    cols[3].push_back(static_cast<double>(e.ts));
    cols[4].push_back(static_cast<double>(e.id));
    cols[5].push_back(static_cast<double>(e.aux_ts));
    type_cols_[s].push_back(e.type);
    create_ts_cols_[s].push_back(e.create_ts);
  }
  keys_.push_back(tuple.key());
  event_times_.push_back(tuple.event_time());
  mask_.push_back(1);
  ++rows_;
}

Tuple ColumnarBatch::RowTuple(size_t i) const {
  CEP2ASP_DCHECK(i < rows_);
  Tuple out;
  for (size_t s = 0; s < num_slots_; ++s) {
    const std::vector<double>* cols = &attr_cols_[s * kNumEventAttrs];
    SimpleEvent e;
    e.value = cols[0][i];
    e.lat = cols[1][i];
    e.lon = cols[2][i];
    e.ts = static_cast<Timestamp>(cols[3][i]);
    e.id = static_cast<int64_t>(cols[4][i]);
    e.aux_ts = static_cast<Timestamp>(cols[5][i]);
    e.type = type_cols_[s][i];
    e.create_ts = create_ts_cols_[s][i];
    out.AppendEvent(e);
  }
  out.set_event_time(event_times_[i]);
  out.set_key(keys_[i]);
  return out;
}

size_t ColumnarBatch::Compact() {
  size_t kept = 0;
  for (size_t i = 0; i < rows_; ++i) {
    if (!mask_[i]) continue;
    if (kept != i) {
      for (std::vector<double>& col : attr_cols_) col[kept] = col[i];
      for (std::vector<EventTypeId>& col : type_cols_) col[kept] = col[i];
      for (std::vector<Timestamp>& col : create_ts_cols_) col[kept] = col[i];
      keys_[kept] = keys_[i];
      event_times_[kept] = event_times_[i];
    }
    mask_[kept] = 1;
    ++kept;
  }
  for (std::vector<double>& col : attr_cols_) col.resize(kept);
  for (std::vector<EventTypeId>& col : type_cols_) col.resize(kept);
  for (std::vector<Timestamp>& col : create_ts_cols_) col.resize(kept);
  keys_.resize(kept);
  event_times_.resize(kept);
  mask_.resize(kept);
  rows_ = kept;
  return kept;
}

ExprColumnarView ColumnarBatch::View() {
  col_ptrs_.resize(attr_cols_.size());
  for (size_t c = 0; c < attr_cols_.size(); ++c) {
    col_ptrs_[c] = attr_cols_[c].data();
  }
  ExprColumnarView view;
  view.attr_cols = col_ptrs_.data();
  view.num_slots = num_slots_;
  view.keys = keys_.data();
  view.count = rows_;
  view.mask = mask_.data();
  return view;
}

size_t ColumnarBatch::MemoryBytes() const {
  size_t bytes = sizeof(ColumnarBatch);
  for (const std::vector<double>& col : attr_cols_) {
    bytes += col.capacity() * sizeof(double);
  }
  for (const std::vector<EventTypeId>& col : type_cols_) {
    bytes += col.capacity() * sizeof(EventTypeId);
  }
  for (const std::vector<Timestamp>& col : create_ts_cols_) {
    bytes += col.capacity() * sizeof(Timestamp);
  }
  bytes += keys_.capacity() * sizeof(int64_t);
  bytes += event_times_.capacity() * sizeof(Timestamp);
  bytes += mask_.capacity();
  return bytes;
}

}  // namespace cep2asp
