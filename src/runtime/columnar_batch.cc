#include "runtime/columnar_batch.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "runtime/job_graph.h"

namespace cep2asp {

void ColumnarBatch::Reset(size_t num_slots) {
  CEP2ASP_DCHECK(num_slots > 0);
  num_slots_ = num_slots;
  rows_ = 0;
  attr_cols_.resize(num_slots * kNumEventAttrs);
  type_cols_.resize(num_slots);
  create_ts_cols_.resize(num_slots);
  for (std::vector<double>& col : attr_cols_) col.clear();
  for (std::vector<EventTypeId>& col : type_cols_) col.clear();
  for (std::vector<Timestamp>& col : create_ts_cols_) col.clear();
  keys_.clear();
  event_times_.clear();
  mask_.clear();
}

void ColumnarBatch::Reserve(size_t rows) {
  for (std::vector<double>& col : attr_cols_) col.reserve(rows);
  for (std::vector<EventTypeId>& col : type_cols_) col.reserve(rows);
  for (std::vector<Timestamp>& col : create_ts_cols_) col.reserve(rows);
  keys_.reserve(rows);
  event_times_.reserve(rows);
  mask_.reserve(rows);
}

void ColumnarBatch::AppendTuple(const Tuple& tuple) {
  CEP2ASP_DCHECK(tuple.size() == num_slots_)
      << "tuple arity " << tuple.size() << " vs batch shape " << num_slots_;
  for (size_t s = 0; s < num_slots_; ++s) {
    const SimpleEvent& e = tuple.event(s);
    std::vector<double>* cols = &attr_cols_[s * kNumEventAttrs];
    cols[0].push_back(e.value);
    cols[1].push_back(e.lat);
    cols[2].push_back(e.lon);
    cols[3].push_back(static_cast<double>(e.ts));
    cols[4].push_back(static_cast<double>(e.id));
    cols[5].push_back(static_cast<double>(e.aux_ts));
    type_cols_[s].push_back(e.type);
    create_ts_cols_[s].push_back(e.create_ts);
  }
  keys_.push_back(tuple.key());
  event_times_.push_back(tuple.event_time());
  mask_.push_back(1);
  ++rows_;
}

Tuple ColumnarBatch::RowTuple(size_t i) const {
  CEP2ASP_DCHECK(i < rows_);
  Tuple out;
  for (size_t s = 0; s < num_slots_; ++s) {
    const std::vector<double>* cols = &attr_cols_[s * kNumEventAttrs];
    SimpleEvent e;
    e.value = cols[0][i];
    e.lat = cols[1][i];
    e.lon = cols[2][i];
    e.ts = static_cast<Timestamp>(cols[3][i]);
    e.id = static_cast<int64_t>(cols[4][i]);
    e.aux_ts = static_cast<Timestamp>(cols[5][i]);
    e.type = type_cols_[s][i];
    e.create_ts = create_ts_cols_[s][i];
    out.AppendEvent(e);
  }
  out.set_event_time(event_times_[i]);
  out.set_key(keys_[i]);
  return out;
}

SimpleEvent ColumnarBatch::RowEvent(size_t slot, size_t i) const {
  CEP2ASP_DCHECK(slot < num_slots_ && i < rows_);
  const std::vector<double>* cols = &attr_cols_[slot * kNumEventAttrs];
  SimpleEvent e;
  e.value = cols[0][i];
  e.lat = cols[1][i];
  e.lon = cols[2][i];
  e.ts = static_cast<Timestamp>(cols[3][i]);
  e.id = static_cast<int64_t>(cols[4][i]);
  e.aux_ts = static_cast<Timestamp>(cols[5][i]);
  e.type = type_cols_[slot][i];
  e.create_ts = create_ts_cols_[slot][i];
  return e;
}

void ColumnarBatch::AppendRows(const ColumnarBatch& src, size_t begin,
                               size_t end) {
  CEP2ASP_DCHECK(src.num_slots_ == num_slots_)
      << "source shape " << src.num_slots_ << " vs " << num_slots_;
  CEP2ASP_DCHECK(begin <= end && end <= src.rows_);
  if (begin >= end) return;
  const size_t n = end - begin;
  for (size_t c = 0; c < attr_cols_.size(); ++c) {
    attr_cols_[c].insert(attr_cols_[c].end(),
                         src.attr_cols_[c].begin() + static_cast<ptrdiff_t>(begin),
                         src.attr_cols_[c].begin() + static_cast<ptrdiff_t>(end));
  }
  for (size_t s = 0; s < num_slots_; ++s) {
    type_cols_[s].insert(type_cols_[s].end(),
                         src.type_cols_[s].begin() + static_cast<ptrdiff_t>(begin),
                         src.type_cols_[s].begin() + static_cast<ptrdiff_t>(end));
    create_ts_cols_[s].insert(
        create_ts_cols_[s].end(),
        src.create_ts_cols_[s].begin() + static_cast<ptrdiff_t>(begin),
        src.create_ts_cols_[s].begin() + static_cast<ptrdiff_t>(end));
  }
  keys_.insert(keys_.end(), src.keys_.begin() + static_cast<ptrdiff_t>(begin),
               src.keys_.begin() + static_cast<ptrdiff_t>(end));
  event_times_.insert(event_times_.end(),
                      src.event_times_.begin() + static_cast<ptrdiff_t>(begin),
                      src.event_times_.begin() + static_cast<ptrdiff_t>(end));
  mask_.insert(mask_.end(), n, static_cast<uint8_t>(1));
  rows_ += n;
}

void ColumnarBatch::ErasePrefix(size_t n) {
  if (n == 0) return;
  CEP2ASP_DCHECK(n <= rows_);
  const ptrdiff_t d = static_cast<ptrdiff_t>(n);
  for (std::vector<double>& col : attr_cols_) {
    col.erase(col.begin(), col.begin() + d);
  }
  for (std::vector<EventTypeId>& col : type_cols_) {
    col.erase(col.begin(), col.begin() + d);
  }
  for (std::vector<Timestamp>& col : create_ts_cols_) {
    col.erase(col.begin(), col.begin() + d);
  }
  keys_.erase(keys_.begin(), keys_.begin() + d);
  event_times_.erase(event_times_.begin(), event_times_.begin() + d);
  mask_.erase(mask_.begin(), mask_.begin() + d);
  rows_ -= n;
}

namespace {

template <typename T>
void ApplyPermutation(std::vector<T>* col, size_t from,
                      const std::vector<uint32_t>& perm) {
  std::vector<T> tmp(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    tmp[i] = (*col)[from + perm[i]];
  }
  std::copy(tmp.begin(), tmp.end(), col->begin() + static_cast<ptrdiff_t>(from));
}

}  // namespace

void ColumnarBatch::StableSortByEventTime(size_t from) {
  if (from >= rows_) return;
  const size_t n = rows_ - from;
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  const Timestamp* ts = event_times_.data() + from;
  std::stable_sort(perm.begin(), perm.end(),
                   [ts](uint32_t a, uint32_t b) { return ts[a] < ts[b]; });
  bool identity = true;
  for (size_t i = 0; i < n; ++i) {
    if (perm[i] != i) {
      identity = false;
      break;
    }
  }
  if (identity) return;
  for (std::vector<double>& col : attr_cols_) ApplyPermutation(&col, from, perm);
  for (std::vector<EventTypeId>& col : type_cols_) {
    ApplyPermutation(&col, from, perm);
  }
  for (std::vector<Timestamp>& col : create_ts_cols_) {
    ApplyPermutation(&col, from, perm);
  }
  ApplyPermutation(&keys_, from, perm);
  ApplyPermutation(&event_times_, from, perm);
  ApplyPermutation(&mask_, from, perm);
}

std::vector<std::unique_ptr<ColumnarBatch>> ColumnarBatch::PartitionByKey(
    int parallelism) const {
  const size_t p = static_cast<size_t>(parallelism < 1 ? 1 : parallelism);
  std::vector<std::unique_ptr<ColumnarBatch>> parts(p);
  if (rows_ == 0) return parts;
  // Route the whole key column batch-wise (the SIMD splitmix64 kernel),
  // then gather column by column: each bucket receives its rows in stream
  // order, so per-subtask sequences match the row-at-a-time scatter
  // exactly.
  std::vector<int32_t> target(rows_);
  KeyToSubtaskBatch(keys_.data(), rows_, static_cast<int>(p), target.data());
  // Per-row destination slot within its bucket, so every column pass is a
  // branch-light scatter into pre-sized destination columns — no
  // per-element capacity checks or size bookkeeping.
  std::vector<uint32_t> pos(rows_);
  std::vector<size_t> counts(p, 0);
  for (size_t i = 0; i < rows_; ++i) {
    if (mask_[i]) {
      pos[i] =
          static_cast<uint32_t>(counts[static_cast<size_t>(target[i])]++);
    }
  }
  for (size_t s = 0; s < p; ++s) {
    if (counts[s] == 0) continue;
    parts[s] = std::make_unique<ColumnarBatch>(num_slots_);
    for (std::vector<double>& col : parts[s]->attr_cols_) col.resize(counts[s]);
    for (std::vector<EventTypeId>& col : parts[s]->type_cols_) {
      col.resize(counts[s]);
    }
    for (std::vector<Timestamp>& col : parts[s]->create_ts_cols_) {
      col.resize(counts[s]);
    }
    parts[s]->keys_.resize(counts[s]);
    parts[s]->event_times_.resize(counts[s]);
    parts[s]->mask_.assign(counts[s], 1);
    parts[s]->rows_ = counts[s];
  }
  std::vector<void*> dst(p);
  auto scatter = [&](auto dst_col_of, const auto& src_col) {
    using T = typename std::decay_t<decltype(src_col)>::value_type;
    for (size_t s = 0; s < p; ++s) {
      dst[s] = parts[s] ? dst_col_of(*parts[s]).data() : nullptr;
    }
    for (size_t i = 0; i < rows_; ++i) {
      if (!mask_[i]) continue;
      static_cast<T*>(dst[static_cast<size_t>(target[i])])[pos[i]] =
          src_col[i];
    }
  };
  for (size_t c = 0; c < attr_cols_.size(); ++c) {
    scatter([c](ColumnarBatch& b) -> std::vector<double>& {
      return b.attr_cols_[c];
    }, attr_cols_[c]);
  }
  for (size_t s = 0; s < num_slots_; ++s) {
    scatter([s](ColumnarBatch& b) -> std::vector<EventTypeId>& {
      return b.type_cols_[s];
    }, type_cols_[s]);
    scatter([s](ColumnarBatch& b) -> std::vector<Timestamp>& {
      return b.create_ts_cols_[s];
    }, create_ts_cols_[s]);
  }
  scatter([](ColumnarBatch& b) -> std::vector<int64_t>& { return b.keys_; },
          keys_);
  scatter([](ColumnarBatch& b) -> std::vector<Timestamp>& {
    return b.event_times_;
  }, event_times_);
  return parts;
}

size_t ColumnarBatch::Compact() {
  size_t kept = 0;
  for (size_t i = 0; i < rows_; ++i) {
    if (!mask_[i]) continue;
    if (kept != i) {
      for (std::vector<double>& col : attr_cols_) col[kept] = col[i];
      for (std::vector<EventTypeId>& col : type_cols_) col[kept] = col[i];
      for (std::vector<Timestamp>& col : create_ts_cols_) col[kept] = col[i];
      keys_[kept] = keys_[i];
      event_times_[kept] = event_times_[i];
    }
    mask_[kept] = 1;
    ++kept;
  }
  for (std::vector<double>& col : attr_cols_) col.resize(kept);
  for (std::vector<EventTypeId>& col : type_cols_) col.resize(kept);
  for (std::vector<Timestamp>& col : create_ts_cols_) col.resize(kept);
  keys_.resize(kept);
  event_times_.resize(kept);
  mask_.resize(kept);
  rows_ = kept;
  return kept;
}

ExprColumnarView ColumnarBatch::View() {
  col_ptrs_.resize(attr_cols_.size());
  for (size_t c = 0; c < attr_cols_.size(); ++c) {
    col_ptrs_[c] = attr_cols_[c].data();
  }
  ExprColumnarView view;
  view.attr_cols = col_ptrs_.data();
  view.num_slots = num_slots_;
  view.keys = keys_.data();
  view.count = rows_;
  view.mask = mask_.data();
  return view;
}

size_t ColumnarBatch::MemoryBytes() const {
  size_t bytes = sizeof(ColumnarBatch);
  for (const std::vector<double>& col : attr_cols_) {
    bytes += col.capacity() * sizeof(double);
  }
  for (const std::vector<EventTypeId>& col : type_cols_) {
    bytes += col.capacity() * sizeof(EventTypeId);
  }
  for (const std::vector<Timestamp>& col : create_ts_cols_) {
    bytes += col.capacity() * sizeof(Timestamp);
  }
  bytes += keys_.capacity() * sizeof(int64_t);
  bytes += event_times_.capacity() * sizeof(Timestamp);
  bytes += mask_.capacity();
  return bytes;
}

}  // namespace cep2asp
