#ifndef CEP2ASP_RUNTIME_COLUMNAR_BATCH_H_
#define CEP2ASP_RUNTIME_COLUMNAR_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "event/event.h"
#include "event/expr_program.h"

namespace cep2asp {

/// \brief Columnar (struct-of-arrays) micro-batch: the SoA counterpart of
/// a homogeneous run of data Messages.
///
/// A row is one Tuple of `num_slots` events. Per (event slot, attribute)
/// the batch keeps one contiguous double column — the layout
/// ExprProgram::RunColumnar executes against, where each fused term
/// opcode becomes one vectorizable loop over two columns instead of a
/// 280-byte-strided walk over row-major Messages. The remaining event
/// fields that the six double attributes cannot carry (the EventTypeId
/// and the wall-clock create_ts) ride in per-slot sidecar columns, and
/// tuple-level identity (partition key, event time) in exact int64
/// columns, so a gather -> scatter round trip reproduces every row
/// bit-for-bit. id/ts/aux_ts travel as doubles under the documented
/// GetAttribute contract (timestamps are exact in double for the ranges
/// this library produces); partition keys stay exact int64 because key
/// pools may exceed 2^53.
///
/// The validity/selection mask is the filter interface: RunColumnar
/// writes it, Compact() drops unselected rows in place, and a full batch
/// travels as one Message envelope (MessageKind::kColumnar) over a
/// Channel — one ring slot per block instead of one per tuple.
class ColumnarBatch {
 public:
  explicit ColumnarBatch(size_t num_slots = 1) { Reset(num_slots); }

  /// Re-shapes to `num_slots` events per row and clears all rows; column
  /// capacity is kept, so a recycled batch allocates nothing.
  void Reset(size_t num_slots);

  /// Events per row (tuple arity this batch was shaped for).
  size_t num_slots() const { return num_slots_; }

  size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  void Reserve(size_t rows);

  /// Gathers one tuple into the columns. The tuple's arity must equal
  /// num_slots(); its mask starts selected.
  void AppendTuple(const Tuple& tuple);

  /// Scatters row `i` back into a row-major Tuple (the shim at a
  /// columnar -> row-major boundary).
  Tuple RowTuple(size_t i) const;

  /// Scatters the event at (slot, row) without building a Tuple — the
  /// cheap gather the join probe uses to fill its scratch pair.
  SimpleEvent RowEvent(size_t slot, size_t i) const;

  /// Column-wise append of rows [begin, end) of `src` (same num_slots),
  /// ignoring src's mask; appended rows start selected. One contiguous
  /// insert per column — the SoA ingest path of stateful consumers.
  void AppendRows(const ColumnarBatch& src, size_t begin, size_t end);

  /// Drops the first `n` rows from every column (dead-prefix reclaim of
  /// SoA window buffers).
  void ErasePrefix(size_t n);

  /// Stable-sorts rows [from, rows) by event time, applying one
  /// permutation across all columns. Used by window stores when parallel
  /// producers interleaved their (per-producer ordered) streams.
  void StableSortByEventTime(size_t from);

  /// Splits the selected rows into `parallelism` sub-blocks by the routing
  /// of the exact int64 key column — bucket s receives, in order, every
  /// row with KeyToSubtask(key, parallelism) == s (computed batch-wise,
  /// SIMD under CEP2ASP_SIMD). Empty buckets stay null. This is how a hash
  /// edge ships P whole blocks instead of scattering rows one message at a
  /// time.
  std::vector<std::unique_ptr<ColumnarBatch>> PartitionByKey(
      int parallelism) const;

  /// Drops every row whose mask byte is 0, keeping the survivors' order,
  /// and re-selects them. Returns the surviving row count.
  size_t Compact();

  /// Borrowed execution view for ExprProgram::RunColumnar. Valid until
  /// the next mutating call; key stores write the key column.
  ExprColumnarView View();

  uint8_t* mask() { return mask_.data(); }
  const uint8_t* mask() const { return mask_.data(); }
  int64_t* keys() { return keys_.data(); }
  const int64_t* keys() const { return keys_.data(); }
  const Timestamp* event_times() const { return event_times_.data(); }
  Timestamp event_time(size_t i) const { return event_times_[i]; }

  const double* col(size_t slot, Attribute attr) const {
    return attr_cols_[slot * kNumEventAttrs + static_cast<size_t>(attr)]
        .data();
  }

  /// Rough footprint for state accounting / tests.
  size_t MemoryBytes() const;

 private:
  size_t num_slots_ = 1;
  size_t rows_ = 0;
  /// attr_cols_[slot * kNumEventAttrs + attr]: the double columns.
  std::vector<std::vector<double>> attr_cols_;
  /// Per-slot sidecars for the event fields outside the attribute schema.
  std::vector<std::vector<EventTypeId>> type_cols_;
  std::vector<std::vector<Timestamp>> create_ts_cols_;
  /// Tuple-level identity, exact.
  std::vector<int64_t> keys_;
  std::vector<Timestamp> event_times_;
  std::vector<uint8_t> mask_;
  /// Column base pointers refreshed by View().
  std::vector<const double*> col_ptrs_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_COLUMNAR_BATCH_H_
