#ifndef CEP2ASP_RUNTIME_BOUNDED_QUEUE_H_
#define CEP2ASP_RUNTIME_BOUNDED_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "analysis/check_invariants.h"
#include "common/logging.h"
#include "common/thread_annotations.h"

namespace cep2asp {

/// \brief Blocking bounded multi-producer multi-consumer queue.
///
/// The capacity bound is what creates backpressure in the threaded
/// executor: a slow operator fills its input queue and stalls its
/// producers, transitively throttling the sources (paper §5.2.4).
///
/// Besides the historical per-item Push/Pop, the queue moves whole batches
/// under a single lock acquisition (PushBatch/PopBatch); capacity is always
/// accounted in items, so batching changes the locking cadence but not the
/// backpressure semantics (PushBatch of a 1-element batch is equivalent to
/// Push).
///
/// Locking discipline is annotated for Clang's thread-safety analysis:
/// every touch of items_/closed_ holds mutex_, and the condition waits are
/// explicit while loops over CondVar (the analysis cannot see through
/// predicate lambdas).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available or the queue is closed. Returns false
  /// if the queue was closed (item dropped).
  bool Push(T item) {
    MutexLock lock(mutex_);
    while (items_.size() >= capacity_ && !closed_) not_full_.Wait(mutex_);
    if (closed_) return false;
    items_.push_back(std::move(item));
#if CEP2ASP_CHECK_INVARIANTS
    CEP2ASP_CHECK(items_.size() <= capacity_)
        << "bounded queue holds " << items_.size()
        << " items over capacity " << capacity_;
#endif
    not_empty_.NotifyOne();
    return true;
  }

  /// Moves all of `*batch` into the queue under one lock, blocking until
  /// the whole batch fits (a batch larger than the capacity is admitted
  /// once the queue is empty, so it cannot deadlock). On success the batch
  /// is left empty for reuse. Returns false when the queue was closed
  /// (items dropped). `blocked_nanos`, when non-null, accumulates the time
  /// spent waiting for space.
  bool PushBatch(std::vector<T>* batch, int64_t* blocked_nanos = nullptr) {
    if (batch->empty()) return true;
    const size_t need = std::min(batch->size(), capacity_);
    MutexLock lock(mutex_);
    if (items_.size() + need > capacity_ && !closed_) {
      const auto t0 = std::chrono::steady_clock::now();
      while (items_.size() + need > capacity_ && !closed_) {
        not_full_.Wait(mutex_);
      }
      if (blocked_nanos) {
        *blocked_nanos += std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      }
    }
    if (closed_) return false;
#if CEP2ASP_CHECK_INVARIANTS
    const size_t pushed = batch->size();
#endif
    for (T& item : *batch) items_.push_back(std::move(item));
    batch->clear();
#if CEP2ASP_CHECK_INVARIANTS
    // An over-capacity batch is admitted whole into an empty queue, so the
    // bound is the larger of capacity and that batch.
    CEP2ASP_CHECK(items_.size() <= std::max(capacity_, pushed))
        << "bounded queue holds " << items_.size()
        << " items over capacity " << capacity_ << " after a batch of "
        << pushed;
#endif
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push for cooperative producers: moves out a maximal
  /// prefix of `*batch` — up to the current free capacity — leaving the
  /// moved-from elements in place, and returns how many were taken (the
  /// caller erases that prefix; the Channel wrapper also counts it for
  /// stats first). Never waits: a full queue returns 0 and the caller
  /// parks on the scheduler instead of blocking an OS thread. `*closed`
  /// reports the closed flag (nothing is taken once closed).
  size_t TryPushN(T* items, size_t n, bool* closed) {
    MutexLock lock(mutex_);
    *closed = closed_;
    if (closed_ || n == 0) return 0;
    const size_t free =
        capacity_ > items_.size() ? capacity_ - items_.size() : 0;
    const size_t k = std::min(free, n);
    for (size_t i = 0; i < k; ++i) items_.push_back(std::move(items[i]));
    if (k > 0) not_empty_.NotifyOne();
    return k;
  }

  /// Non-blocking pop for cooperative consumers: moves up to `max_items`
  /// into `*out` (cleared first) and returns the number taken, without
  /// ever waiting. 0 with `*end_of_stream == false` means the queue is
  /// momentarily empty (park until a producer pushes); 0 with
  /// `*end_of_stream == true` means closed and fully drained.
  size_t TryPopN(std::vector<T>* out, size_t max_items, bool* end_of_stream) {
    out->clear();
    *end_of_stream = false;
    MutexLock lock(mutex_);
    const size_t k = std::min(items_.size(), max_items);
    for (size_t i = 0; i < k; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (k > 1) {
      not_full_.NotifyAll();
    } else if (k == 1) {
      not_full_.NotifyOne();
    } else if (closed_) {
      *end_of_stream = true;
    }
    return k;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) not_empty_.Wait(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Moves up to `max_items` into `*out` (cleared first) under one lock,
  /// blocking until at least one item is available. Returns the number
  /// popped; 0 means the queue was closed and fully drained.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    out->clear();
    if (max_items == 0) return 0;
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) not_empty_.Wait(mutex_);
    const size_t k = std::min(items_.size(), max_items);
    for (size_t i = 0; i < k; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (k > 1) {
      not_full_.NotifyAll();
    } else if (k == 1) {
      not_full_.NotifyOne();
    }
    return k;
  }

  /// Marks the queue closed; pending Pops drain remaining items, then
  /// receive nullopt. Pushes after Close are rejected.
  void Close() {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ CEP2ASP_GUARDED_BY(mutex_);
  bool closed_ CEP2ASP_GUARDED_BY(mutex_) = false;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_BOUNDED_QUEUE_H_
