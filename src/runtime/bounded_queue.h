#ifndef CEP2ASP_RUNTIME_BOUNDED_QUEUE_H_
#define CEP2ASP_RUNTIME_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace cep2asp {

/// \brief Blocking bounded multi-producer multi-consumer queue.
///
/// The capacity bound is what creates backpressure in the threaded
/// executor: a slow operator fills its input queue and stalls its
/// producers, transitively throttling the sources (paper §5.2.4).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available or the queue is closed. Returns false
  /// if the queue was closed (item dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed; pending Pops drain remaining items, then
  /// receive nullopt. Pushes after Close are rejected.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_BOUNDED_QUEUE_H_
