#ifndef CEP2ASP_RUNTIME_THREADED_EXECUTOR_H_
#define CEP2ASP_RUNTIME_THREADED_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/status.h"
#include "runtime/bounded_queue.h"
#include "runtime/executor.h"
#include "runtime/job_graph.h"
#include "runtime/metrics.h"
#include "runtime/sink.h"

namespace cep2asp {

/// \brief Options for the multi-threaded executor.
struct ThreadedExecutorOptions {
  /// Capacity of each operator input queue; bounds in-flight tuples and
  /// produces backpressure toward the sources.
  size_t queue_capacity = 4096;

  /// Generate a watermark after this many tuples per source.
  int watermark_interval = 256;

  Clock* clock = nullptr;
};

/// \brief Executor running each node (source or operator) on its own
/// thread, connected by bounded queues.
///
/// This realizes the pipeline parallelism that the paper's mapping unlocks
/// by decomposing the pattern into multiple operators (§1, §5.2.2): the
/// stages of consecutive joins execute concurrently. The single-threaded
/// PipelineExecutor remains the deterministic reference; correctness tests
/// assert both produce identical match sets.
class ThreadedExecutor {
 public:
  ThreadedExecutor(JobGraph* graph, ThreadedExecutorOptions options = {});

  ExecutionResult Run(const CollectSink* sink = nullptr);

 private:
  JobGraph* graph_;
  ThreadedExecutorOptions options_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_THREADED_EXECUTOR_H_
