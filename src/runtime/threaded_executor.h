#ifndef CEP2ASP_RUNTIME_THREADED_EXECUTOR_H_
#define CEP2ASP_RUNTIME_THREADED_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/status.h"
#include "runtime/channel.h"
#include "runtime/executor.h"
#include "runtime/job_graph.h"
#include "runtime/metrics.h"
#include "runtime/sink.h"

namespace cep2asp {

/// \brief Options for the multi-threaded executor.
struct ThreadedExecutorOptions {
  /// Capacity of each operator input channel, in messages; bounds in-flight
  /// tuples and produces backpressure toward the sources.
  size_t queue_capacity = 4096;

  /// Generate a watermark after this many tuples per source.
  int watermark_interval = 256;

  /// Messages per exchange micro-batch: producers hand over whole batches,
  /// so each channel synchronizes once per `batch_size` messages instead of
  /// once per message. 1 reproduces the historical per-message behavior
  /// bit-for-bit (every message is its own batch).
  size_t batch_size = 64;

  /// Use the lock-free SPSC ring for single-producer inputs; the mutex
  /// MPMC queue remains the fallback for fan-in > 1 (and for all inputs
  /// when disabled). Off is only interesting for ablation benchmarks.
  bool enable_spsc = true;

  /// Latency bound for source-side batching: when filling the previous
  /// batch took longer than this, the source halves its staging size (down
  /// to 1) so slow/rate-limited sources do not sit on tuples; fast sources
  /// grow back to `batch_size`. 0 disables the adaptation (always stage
  /// full batches).
  Timestamp source_flush_timeout_millis = 2;

  /// Fuse forward-edge operator chains into single subtasks (see
  /// ComputeChainLayout for the chain rules). Off reproduces the
  /// historical one-thread-per-(node, subtask) layout with a real exchange
  /// channel on every edge; only interesting for A/B benchmarks and
  /// debugging.
  bool enable_chaining = true;

  /// Run (chain, subtask) units as cooperative tasks on a fixed worker
  /// pool (TaskScheduler) instead of one OS thread each. Parallelism then
  /// stops costing threads: P=4 on a 2-core host multiplexes 4 tasks over
  /// 2 workers with credit-based backpressure instead of oversubscribing
  /// 4+ blocking threads. Off selects the legacy thread-per-subtask path,
  /// kept for A/B comparison.
  bool use_task_scheduler = true;

  /// Worker pool size for the task scheduler; 0 means
  /// std::thread::hardware_concurrency(). Ignored by the legacy path.
  int worker_threads = 0;

  /// Input batches one task may process before yielding the worker
  /// (cooperative quantum). Larger quanta amortize scheduling overhead;
  /// smaller quanta interleave co-scheduled tasks more finely.
  int quantum_batches = 8;

  /// Negotiate columnar (SoA) transfer per edge: producers with a single
  /// forward-mode edge into a columnar-capable consumer gather staged rows
  /// into ColumnarBatch blocks that travel as one channel envelope and run
  /// the consumer's compiled predicate column-at-a-time; every other edge
  /// — and every row-major operator, via transparent gather/scatter shims
  /// — behaves exactly as before. Off restores the pure row-major paths
  /// for A/B runs.
  bool enable_columnar = true;

  /// With enable_columnar: allow hash edges into columnar-capable
  /// consumers to carry blocks, split per subtask along the key column
  /// (ColumnarBatch::PartitionByKey). Off makes hash edges scatter rows
  /// individually as before PR 10 — the columnar-hash A/B axis.
  bool columnar_hash_partition = true;

  Clock* clock = nullptr;
};

/// \brief Executor running each physical task — one per (node, subtask
/// instance) — on its own thread, connected by micro-batched exchange
/// channels.
///
/// This realizes both kinds of parallelism the paper's mapping unlocks:
/// pipeline parallelism from decomposing the pattern into multiple
/// operators (§1, §5.2.2), and keyed data parallelism from the equi-join
/// stages being "computed per key and parallelizable" (§4.2.3). A node
/// with parallelism P expands into P subtask instances — subtask 0 runs
/// the graph's own operator, subtasks 1..P-1 run executor-owned
/// CloneForSubtask() instances — and each in-edge routes tuples among them
/// per its PartitionMode (hash by key, chained/rebalance forward, or
/// broadcast). Watermarks and end-of-stream markers are always broadcast
/// to every consumer subtask; each consumer min-aligns watermarks and
/// counts end markers across its physical slots (one per producer
/// subtask), so window firing and termination are exact under
/// partitioning. With parallelism 1 everywhere this reduces to the
/// historical one-thread-per-node behavior.
///
/// Operator chaining (on by default) collapses runs of fused forward
/// edges into one subtask per chain: tuples inside a chain are handed to
/// the next operator's Process directly via a ChainedCollector — no
/// MessageBatch, no queue, no copy — and only chain-boundary edges get
/// real exchange channels. Watermarks and Finish propagate through the
/// chain in operator order before being forwarded downstream, so chain
/// fusion is invisible to operators and to event-time semantics. Fused
/// edges still appear in ChannelStats, flagged `fused` with zero queue
/// traffic.
///
/// Tuples cross boundary edges in MessageBatches (one channel
/// synchronization per batch, not per tuple); physical-fan-in-1 channels
/// ride a lock-free SPSC ring, the rest fall back to the mutex queue. The
/// single-threaded PipelineExecutor remains the deterministic logical
/// reference (it ignores parallelism); correctness tests assert both
/// produce identical match sets at every parallelism level, chain on and
/// off.
///
/// By default (use_task_scheduler) the physical units do not own OS
/// threads: each source and each (chain, subtask) becomes a cooperative
/// task multiplexed onto a fixed TaskScheduler worker pool sized to the
/// hardware. Tasks process a bounded quantum of input batches and yield; a
/// full output channel parks the producing task on a credit (non-blocking
/// TryPushBatch) and the consumer's pop wakes it, so backpressure never
/// wastes a worker thread. SchedulerStats in the result expose per-worker
/// task runs, steals, parks and quantum utilization. use_task_scheduler =
/// false restores the legacy thread-per-subtask execution for A/B runs.
class ThreadedExecutor {
 public:
  ThreadedExecutor(JobGraph* graph, ThreadedExecutorOptions options = {});

  ExecutionResult Run(const CollectSink* sink = nullptr);

 private:
  JobGraph* graph_;
  ThreadedExecutorOptions options_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_THREADED_EXECUTOR_H_
