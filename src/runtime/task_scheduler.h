#ifndef CEP2ASP_RUNTIME_TASK_SCHEDULER_H_
#define CEP2ASP_RUNTIME_TASK_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "runtime/metrics.h"

namespace cep2asp {

class TaskScheduler;

/// Reason a parked task is waiting; wake-ups carry the same kinds and a
/// parked task only resumes on a matching (or kAny) wake. A task parks for
/// exactly one reason at a time — e.g. a task parked on input has no stuck
/// output (it flushed before parking), so filtering cannot lose a needed
/// wake; it only suppresses spurious re-runs.
enum class WakeKind : uint8_t {
  kInput,   ///< input channel went from empty to non-empty
  kCredit,  ///< a full output channel freed space
  kTimer,   ///< a park-until-deadline expired (rate-limited sources)
  kAny,     ///< matches any wait reason (shutdown / error unwind)
};

/// What one cooperative task reports back from a quantum of work.
struct Quantum {
  enum class Outcome : uint8_t {
    kYielded,   ///< quantum exhausted with more work pending: requeue
    kWaiting,   ///< nothing to do until a wake of `wait_kind` arrives: park
    kFinished,  ///< the task is done for good
  };
  Outcome outcome = Outcome::kYielded;
  WakeKind wait_kind = WakeKind::kAny;  // valid when kWaiting
  /// Absolute deadline in TaskScheduler::SteadyNanos() time; valid when
  /// wait_kind == kTimer. The scheduler fires a kTimer wake at or after it.
  int64_t deadline_nanos = 0;
  /// Input batches actually processed this quantum (quantum-utilization
  /// accounting; sources count staged batches).
  int batches = 0;
};

/// \brief A cooperative unit of work multiplexed onto the worker pool.
///
/// RunQuantum must never block: instead of waiting on a full or empty
/// channel it returns kWaiting and the scheduler parks the task until the
/// matching readiness wake. State private to the task needs no locking —
/// episodes of one task are serialized by the scheduler (the state-machine
/// RMWs and run-queue hand-offs establish happens-before between them).
class Task {
 public:
  virtual ~Task() = default;
  virtual std::string label() const = 0;
  virtual Quantum RunQuantum() = 0;

 private:
  friend class TaskScheduler;

  // Task state machine (values ordered for debuggability, not compared):
  //   kQueued          in exactly one run queue, awaiting a worker
  //   kQueuedNotified  queued, and a wake arrived meanwhile
  //   kRunning         a worker is inside RunQuantum
  //   kRunningNotified running, and a wake arrived meanwhile — if the
  //                    quantum ends in kWaiting the task requeues instead
  //                    of parking, so the condition the wake signalled is
  //                    re-polled with the wake's happens-before edge (this
  //                    is what makes missed wake-ups impossible: readiness
  //                    hooks fire unconditionally after every push/pop, and
  //                    a hook firing in any state leaves a sticky notify)
  //   kParked          waiting for a wake matching wait_kind_
  //   kFinished        terminal
  enum State : uint32_t {
    kQueued,
    kQueuedNotified,
    kRunning,
    kRunningNotified,
    kParked,
    kFinished,
  };

  std::atomic<uint32_t> state_{kQueued};
  std::atomic<uint8_t> wait_kind_{static_cast<uint8_t>(WakeKind::kAny)};
};

/// \brief Mutex-guarded work-stealing run queue: the owner pushes and pops
/// at the bottom (LIFO — the freshest task has the hottest cache), thieves
/// take from the top (FIFO — the oldest task is the least cache-warm and
/// the most overdue). The access pattern is the classic Chase–Lev deque; a
/// plain lock keeps it trivially TSan-clean, and the quantum granularity
/// (hundreds of messages per pop) makes the lock cost irrelevant.
class WorkStealingDeque {
 public:
  void PushBottom(Task* task) {
    MutexLock lock(mutex_);
    items_.push_back(task);
  }

  Task* PopBottom() {
    MutexLock lock(mutex_);
    if (items_.empty()) return nullptr;
    Task* task = items_.back();
    items_.pop_back();
    return task;
  }

  Task* StealTop() {
    MutexLock lock(mutex_);
    if (items_.empty()) return nullptr;
    Task* task = items_.front();
    items_.pop_front();
    return task;
  }

  bool EmptyHint() const {
    MutexLock lock(mutex_);
    return items_.empty();
  }

 private:
  mutable Mutex mutex_;
  std::deque<Task*> items_ CEP2ASP_GUARDED_BY(mutex_);
};

/// \brief Fixed worker pool running cooperative tasks to completion.
///
/// Replaces the executor's thread-per-subtask model: N workers (default
/// hardware_concurrency) multiplex any number of (chain, subtask) tasks,
/// so adding parallelism no longer adds OS threads. Backpressure is
/// credit-based — a producer facing a full channel parks instead of
/// blocking its worker, and the consumer's pop wakes it — so a worker
/// thread is never wasted on a wait.
class TaskScheduler {
 public:
  explicit TaskScheduler(int worker_threads);

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Runs every task to kFinished; blocks the calling thread until done.
  /// Task objects must outlive the call. Reusable is not supported: one
  /// Run per scheduler instance.
  void Run(const std::vector<Task*>& tasks);

  /// Signals readiness to `task`: a parked task whose wait reason matches
  /// `kind` is re-enqueued (exactly once); a queued or running task gets a
  /// sticky notify so its next park attempt re-polls instead. Safe from
  /// any thread, including channel readiness hooks firing mid-push.
  void Wake(Task* task, WakeKind kind);

  /// Wakes every task regardless of wait reason — error unwind: closed
  /// channels alone do not resume parked tasks.
  void WakeAll();

  int worker_threads() const { return num_workers_; }

  /// Monotonic clock used for park-until-deadline timers.
  static int64_t SteadyNanos();

  /// Aggregated counters; call after Run returned.
  SchedulerStats ConsumeStats(int quantum_batches) const;

 private:
  struct TimerEntry {
    int64_t deadline_nanos = 0;
    Task* task = nullptr;
    bool operator>(const TimerEntry& other) const {
      return deadline_nanos > other.deadline_nanos;
    }
  };

  struct WorkerState {
    WorkStealingDeque deque;
    // Owner-written counters (read after join).
    int64_t tasks_run = 0;
    int64_t steals = 0;
    int64_t parks = 0;
    int64_t batches = 0;
    // Written by whichever worker performs the unpark.
    std::atomic<int64_t> unparks{0};
  };

  void WorkerLoop(int worker);
  Task* FindWork(int worker);
  /// Runs one episode of `task` and applies the outcome to the state
  /// machine (requeue, park, finish).
  void RunEpisode(int worker, Task* task);
  void Enqueue(Task* task);
  void NotifyWorkers(bool all);

  const int num_workers_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<Task*> tasks_;  // all registered tasks (for WakeAll)

  std::atomic<int64_t> live_tasks_{0};
  std::atomic<int64_t> timer_parks_{0};

  // Idle protocol: every enqueue bumps ready_gen_ under idle_mutex_ and
  // notifies; an idle worker records the generation before scanning the
  // deques and sleeps only while it is unchanged, so a task enqueued
  // between scan and sleep is never missed. The timer heap shares the
  // mutex: sleeping workers bound their wait by the nearest deadline.
  mutable Mutex idle_mutex_;
  CondVar idle_cv_;
  std::atomic<uint64_t> ready_gen_{0};
  bool stop_ CEP2ASP_GUARDED_BY(idle_mutex_) = false;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_ CEP2ASP_GUARDED_BY(idle_mutex_);
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_TASK_SCHEDULER_H_
