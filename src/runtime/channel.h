#ifndef CEP2ASP_RUNTIME_CHANNEL_H_
#define CEP2ASP_RUNTIME_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "event/event.h"
#include "runtime/bounded_queue.h"
#include "runtime/message.h"
#include "runtime/metrics.h"
#include "runtime/spsc_ring.h"

namespace cep2asp {

/// Outcome of a non-blocking Channel::TryPushBatch.
enum class TryPush : uint8_t {
  kPushed,   ///< the whole batch was moved into the channel
  kBlocked,  ///< channel full: an unmoved suffix remains, retry after credit
  kClosed,   ///< channel closed: remaining messages dropped
};

/// \brief One directed exchange channel feeding an operator's input.
///
/// Producers hand over whole MessageBatches (one synchronization action per
/// batch); the consumer drains up to a batch at a time. Capacity is
/// accounted in messages, so backpressure semantics match the historical
/// per-message queue: a batch of size 1 behaves bit-for-bit like the old
/// `BoundedQueue<Message>::Push`.
///
/// Push-side counters (batches, messages, fill histogram, nanoseconds
/// blocked on a full channel) are recorded per channel and surfaced through
/// ExecutionResult::channel_stats.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Moves the contents of `*batch` into the channel, blocking while full.
  /// On success the batch is left empty for reuse; returns false (batch
  /// dropped) when the channel is closed.
  ///
  /// A batch with a valid header (see MessageBatch) has its messages
  /// stamped with the header's port/slot here, folded into the loop that
  /// already walks the batch for the tuple counter: the channel stores
  /// flat Messages and pop boundaries do not align with push boundaries,
  /// so the push boundary is the last point where the batch-level header
  /// can still reach every message.
  bool PushBatch(MessageBatch* batch) {
    if (batch->empty()) return true;
    const size_t fill = batch->size();
    const bool stamp = batch->hdr_valid;
    int64_t data = 0;
    int64_t blocks = 0;
    int64_t block_rows = 0;
    for (Message& msg : *batch) {
      if (stamp) {
        msg.port = batch->hdr_port;
        msg.slot = batch->hdr_slot;
      }
      if (msg.kind == MessageKind::kTuple) {
        ++data;
      } else if (msg.kind == MessageKind::kColumnar) {
        data += msg.columnar_rows;  // a block counts its rows as tuples
        ++blocks;
        block_rows += msg.columnar_rows;
      }
    }
    int64_t blocked = 0;
    const bool ok = DoPushBatch(batch, &blocked);
    batches_.fetch_add(1, std::memory_order_relaxed);
    messages_.fetch_add(static_cast<int64_t>(fill), std::memory_order_relaxed);
    if (data > 0) tuples_.fetch_add(data, std::memory_order_relaxed);
    if (blocks > 0) {
      columnar_blocks_.fetch_add(blocks, std::memory_order_relaxed);
      columnar_rows_.fetch_add(block_rows, std::memory_order_relaxed);
    }
    fill_hist_[ChannelStats::FillBucket(fill)].fetch_add(
        1, std::memory_order_relaxed);
    if (blocked > 0) {
      blocked_push_nanos_.fetch_add(blocked, std::memory_order_relaxed);
    }
    return ok;
  }

  /// Non-blocking variant for cooperative (task-scheduled) producers:
  /// moves a maximal prefix of `*batch` into the channel — possibly all of
  /// it, possibly nothing — erases the moved prefix, and never waits.
  /// kBlocked means an unmoved suffix remains; the producing task parks
  /// and retries the same batch once the consumer returns credits. Pass
  /// `first_attempt == false` on retries so the batch/fill-histogram
  /// counters record each logical batch exactly once (message and tuple
  /// counters follow the actually-moved prefix and stay exact either way).
  /// Fires the on-push readiness hook whenever at least one message moved.
  TryPush TryPushBatch(MessageBatch* batch, bool first_attempt = true) {
    if (batch->empty()) return TryPush::kPushed;
    if (first_attempt) {
      batches_.fetch_add(1, std::memory_order_relaxed);
      fill_hist_[ChannelStats::FillBucket(batch->size())].fetch_add(
          1, std::memory_order_relaxed);
    }
    if (batch->hdr_valid) {
      // Stamp from the batch header BEFORE handing elements to the ring:
      // after DoTryPushBatch the moved prefix holds only husks. Re-stamping
      // a retried suffix is idempotent.
      for (Message& msg : *batch) {
        msg.port = batch->hdr_port;
        msg.slot = batch->hdr_slot;
      }
    }
    bool closed = false;
    const size_t moved = DoTryPushBatch(batch->data(), batch->size(), &closed);
    if (moved > 0) {
      // Scalar members survive the element move, so the moved prefix is
      // still countable before we erase it.
      int64_t data = 0;
      int64_t blocks = 0;
      int64_t block_rows = 0;
      for (size_t i = 0; i < moved; ++i) {
        const Message& msg = (*batch)[i];
        if (msg.kind == MessageKind::kTuple) {
          ++data;
        } else if (msg.kind == MessageKind::kColumnar) {
          data += msg.columnar_rows;
          ++blocks;
          block_rows += msg.columnar_rows;
        }
      }
      messages_.fetch_add(static_cast<int64_t>(moved),
                          std::memory_order_relaxed);
      if (data > 0) tuples_.fetch_add(data, std::memory_order_relaxed);
      if (blocks > 0) {
        columnar_blocks_.fetch_add(blocks, std::memory_order_relaxed);
        columnar_rows_.fetch_add(block_rows, std::memory_order_relaxed);
      }
      batch->erase(batch->begin(), batch->begin() + moved);
      if (on_push_) on_push_();
    }
    if (closed) {
      batch->clear();
      return TryPush::kClosed;
    }
    return batch->empty() ? TryPush::kPushed : TryPush::kBlocked;
  }

  /// Pops up to `max_messages` into `*out` (cleared first), blocking until
  /// at least one message is available. Returns false when the channel is
  /// closed and fully drained.
  virtual bool PopBatch(MessageBatch* out, size_t max_messages) = 0;

  /// Non-blocking pop for cooperative consumers. Returns the number of
  /// messages moved into `*out` (cleared first). 0 with `*end_of_stream ==
  /// false` means momentarily empty — the consuming task parks until a
  /// producer pushes; 0 with `*end_of_stream == true` means closed and
  /// fully drained. Fires the on-credit readiness hook whenever at least
  /// one message was popped (space freed = credit returned to producers).
  size_t TryPopBatch(MessageBatch* out, size_t max_messages,
                     bool* end_of_stream) {
    out->hdr_valid = false;  // popped messages carry their own port/slot
    const size_t popped = DoTryPopBatch(out, max_messages, end_of_stream);
    if (popped > 0 && on_credit_) on_credit_();
    return popped;
  }

  /// Installs the task-scheduler readiness hooks, called (outside any
  /// channel lock) after every successful TryPushBatch / TryPopBatch:
  /// `on_push` wakes the consuming task parked on an empty channel,
  /// `on_credit` wakes producing tasks parked on a full one. Set once
  /// before any producer or consumer runs; not thread-safe against
  /// concurrent pushes.
  void SetReadinessHooks(std::function<void()> on_push,
                         std::function<void()> on_credit) {
    on_push_ = std::move(on_push);
    on_credit_ = std::move(on_credit);
  }

  /// Consumer-side probe: true when no message is currently pending. Used
  /// to flush partially filled output batches before blocking.
  virtual bool Empty() const = 0;

  /// Closes the channel: blocked producers unwind (PushBatch -> false), the
  /// consumer drains what was already published and then sees end-of-data.
  virtual void Close() = 0;

  /// True when this channel runs on the lock-free SPSC fast path.
  virtual bool is_spsc() const = 0;

  /// Snapshot of the push-side counters; call after producers finished.
  /// `subtask` identifies the consumer subtask instance this channel feeds
  /// (0 for parallelism-1 consumers).
  ChannelStats Snapshot(std::string consumer, int subtask = 0) const {
    ChannelStats stats;
    stats.consumer = std::move(consumer);
    stats.subtask = subtask;
    stats.spsc = is_spsc();
    stats.batches = batches_.load(std::memory_order_relaxed);
    stats.messages = messages_.load(std::memory_order_relaxed);
    stats.tuples = tuples_.load(std::memory_order_relaxed);
    stats.columnar_blocks = columnar_blocks_.load(std::memory_order_relaxed);
    stats.columnar_rows = columnar_rows_.load(std::memory_order_relaxed);
    stats.scattered_rows = scattered_rows_.load(std::memory_order_relaxed);
    stats.blocked_push_nanos = blocked_push_nanos_.load(std::memory_order_relaxed);
    for (int i = 0; i < ChannelStats::kFillBuckets; ++i) {
      stats.fill_hist[i] = fill_hist_[i].load(std::memory_order_relaxed);
    }
    return stats;
  }

 protected:
  virtual bool DoPushBatch(MessageBatch* batch, int64_t* blocked_nanos) = 0;

  /// Moves a maximal prefix of `items[0..n)` into the channel without
  /// waiting; returns the count moved and sets `*closed`.
  virtual size_t DoTryPushBatch(Message* items, size_t n, bool* closed) = 0;

  /// Moves up to `max_messages` out without waiting; 0 + `*end_of_stream`
  /// distinguishes empty-for-now from closed-and-drained.
  virtual size_t DoTryPopBatch(MessageBatch* out, size_t max_messages,
                               bool* end_of_stream) = 0;

 public:
  /// Producer-side attribution of rows a columnar producer had to scatter
  /// into per-tuple messages because this channel's edge could not carry
  /// blocks (see RoutingCollector::EmitColumnar). Subset of `tuples`.
  void AddScatteredRows(int64_t n) {
    scattered_rows_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> messages_{0};
  std::atomic<int64_t> tuples_{0};
  std::atomic<int64_t> columnar_blocks_{0};
  std::atomic<int64_t> columnar_rows_{0};
  std::atomic<int64_t> scattered_rows_{0};
  std::atomic<int64_t> blocked_push_nanos_{0};
  std::atomic<int64_t> fill_hist_[ChannelStats::kFillBuckets] = {};
  std::function<void()> on_push_;
  std::function<void()> on_credit_;
};

/// Mutex+condvar channel over BoundedQueue: the multi-producer fallback,
/// used when more than one upstream node feeds the same operator input.
class MpmcChannel : public Channel {
 public:
  explicit MpmcChannel(size_t capacity_messages) : queue_(capacity_messages) {}

  bool PopBatch(MessageBatch* out, size_t max_messages) override {
    out->hdr_valid = false;
    return queue_.PopBatch(out, max_messages) > 0;
  }

  bool Empty() const override { return queue_.size() == 0; }
  void Close() override { queue_.Close(); }
  bool is_spsc() const override { return false; }

 protected:
  bool DoPushBatch(MessageBatch* batch, int64_t* blocked_nanos) override {
    return queue_.PushBatch(batch, blocked_nanos);
  }

  size_t DoTryPushBatch(Message* items, size_t n, bool* closed) override {
    return queue_.TryPushN(items, n, closed);
  }

  size_t DoTryPopBatch(MessageBatch* out, size_t max_messages,
                       bool* end_of_stream) override {
    return queue_.TryPopN(out, max_messages, end_of_stream);
  }

 private:
  BoundedQueue<Message> queue_;
};

/// Lock-free channel over SpscRing: selected automatically for edges with
/// exactly one producer and one consumer.
class SpscChannel : public Channel {
 public:
  explicit SpscChannel(size_t capacity_messages) : ring_(capacity_messages) {}

  bool PopBatch(MessageBatch* out, size_t max_messages) override {
    out->hdr_valid = false;
    return ring_.PopN(out, max_messages) > 0;
  }

  bool Empty() const override { return ring_.Empty(); }
  void Close() override { ring_.Close(); }
  bool is_spsc() const override { return true; }

 protected:
  bool DoPushBatch(MessageBatch* batch, int64_t* blocked_nanos) override {
    return ring_.PushAll(batch, blocked_nanos);
  }

  size_t DoTryPushBatch(Message* items, size_t n, bool* closed) override {
    return ring_.TryPushN(items, n, closed);
  }

  size_t DoTryPopBatch(MessageBatch* out, size_t max_messages,
                       bool* end_of_stream) override {
    return ring_.TryPopN(out, max_messages, end_of_stream);
  }

 private:
  SpscRing<Message> ring_;
};

/// Builds the right channel for an input fed by `num_producers` upstream
/// threads. `capacity_messages` bounds in-flight messages (backpressure).
inline std::unique_ptr<Channel> MakeChannel(int num_producers,
                                            size_t capacity_messages,
                                            bool enable_spsc) {
  if (enable_spsc && num_producers == 1) {
    return std::make_unique<SpscChannel>(capacity_messages);
  }
  return std::make_unique<MpmcChannel>(capacity_messages);
}

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_CHANNEL_H_
