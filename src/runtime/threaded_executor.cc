#include "runtime/threaded_executor.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>

#include "analysis/graph_rules.h"
#include "analysis/invariant_checker.h"
#include "common/logging.h"
#include "runtime/operator_task.h"
#include "runtime/slot_aligner.h"
#include "runtime/task_scheduler.h"

namespace cep2asp {

ThreadedExecutor::ThreadedExecutor(JobGraph* graph,
                                   ThreadedExecutorOptions options)
    : graph_(graph), options_(options) {}

ExecutionResult ThreadedExecutor::Run(const CollectSink* sink) {
  ExecutionResult result;
  DiagnosticReport report = AnalyzeJobGraph(*graph_);
  result.diagnostics = report.diagnostics();
  Status validate = report.ToStatus();
  if (!validate.ok()) {
    result.error = validate.ToString();
    return result;
  }
#if CEP2ASP_CHECK_INVARIANTS
  InvariantChecker invariants_storage(*graph_);
  InvariantChecker* const invariants = &invariants_storage;
#else
  InvariantChecker* const invariants = nullptr;
#endif
  Clock* clock = options_.clock ? options_.clock : SystemClock::Get();
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);

  const int n = graph_->num_nodes();
  const ChainLayout chain_layout =
      ComputeChainLayout(*graph_, options_.enable_chaining);
  const PhysicalLayout layout(*graph_, chain_layout);

  // One input channel per (chain head, subtask); chain interiors receive
  // tuples in-thread and own no channel. Every producer subtask of every
  // unfused in-edge pushes at least control messages into each channel, so
  // the SPSC fast path needs physical fan-in 1 — with parallelism 1 and
  // chaining off everywhere this is the same choice as before.
  std::vector<NodeChannels> channels(static_cast<size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    if (graph_->node(id).is_source() || !chain_layout.is_head(id)) continue;
    const int subtasks = graph_->parallelism(id);
    for (int s = 0; s < subtasks; ++s) {
      channels[static_cast<size_t>(id)].push_back(
          MakeChannel(layout.num_slots[static_cast<size_t>(id)],
                      options_.queue_capacity, options_.enable_spsc));
    }
  }

  std::mutex status_mutex;
  Status run_status;  // guarded by status_mutex
  // On error, close every channel so producers blocked on PushBatch and
  // consumers blocked on PopBatch unwind instead of deadlocking on an
  // abandoned edge; under the task scheduler, additionally wake every
  // parked task (a closed channel alone does not resume a parked task).
  TaskScheduler* scheduler_ptr = nullptr;  // set while the pool runs
  auto record_error = [&status_mutex, &run_status, &channels,
                       &scheduler_ptr](const Status& st) {
    bool first = false;
    {
      std::lock_guard<std::mutex> lock(status_mutex);
      if (run_status.ok()) {
        first = true;
        run_status = st;
        for (NodeChannels& node_channels : channels) {
          for (std::unique_ptr<Channel>& ch : node_channels) ch->Close();
        }
      }
    }
    if (first && scheduler_ptr != nullptr) scheduler_ptr->WakeAll();
  };

  // Subtask instances: subtask 0 runs the graph's own operator, subtasks
  // 1..P-1 run state-empty clones (lint rule E314 guarantees the operator
  // supports cloning when parallelism > 1).
  std::vector<std::vector<std::unique_ptr<Operator>>> clones(
      static_cast<size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    JobGraph::Node& node = graph_->mutable_node(id);
    if (node.is_source()) continue;
    for (int s = 1; s < node.parallelism; ++s) {
      std::unique_ptr<Operator> clone = node.op->CloneForSubtask();
      CEP2ASP_CHECK(clone != nullptr)
          << node.op->name() << " has parallelism " << node.parallelism
          << " but no CloneForSubtask";
      clones[static_cast<size_t>(id)].push_back(std::move(clone));
    }
  }

  // In-thread hand-off counters of fused edges: fused_tuples[id][s] counts
  // tuples handed into subtask s of chain-interior node id. Each cell is
  // written only by its own chain task; read after the run.
  std::vector<std::vector<int64_t>> fused_tuples(static_cast<size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    if (graph_->node(id).is_source()) continue;
    fused_tuples[static_cast<size_t>(id)].assign(
        static_cast<size_t>(graph_->parallelism(id)), 0);
  }

  std::atomic<int64_t> tuples_ingested{0};
  int64_t start_nanos = clock->NowNanos();

  // Resolves the operator instance of (node, subtask) and Opens the whole
  // chain on the calling thread; returns empty on failure (recorded).
  auto open_chain = [&](const std::vector<NodeId>& chain,
                        int subtask) -> std::vector<Operator*> {
    std::vector<Operator*> ops;
    ops.reserve(chain.size());
    for (NodeId id : chain) {
      Operator* op =
          subtask == 0
              ? graph_->mutable_node(id).op.get()
              : clones[static_cast<size_t>(id)][static_cast<size_t>(subtask - 1)]
                    .get();
      Status open = op->Open();
      if (!open.ok()) {
        record_error(open.WithContext(op->name()));
        return {};
      }
      ops.push_back(op);
    }
    return ops;
  };

  if (options_.use_task_scheduler) {
    // -----------------------------------------------------------------
    // Task-based scheduler: every source and every (chain, subtask) is a
    // cooperative task on a fixed worker pool; channels signal readiness
    // (push -> consumer, credit -> producers) instead of blocking.
    // -----------------------------------------------------------------
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int workers = options_.worker_threads > 0 ? options_.worker_threads
                        : hw > 0                    ? hw
                                                    : 1;
    TaskContext ctx;
    ctx.graph = graph_;
    ctx.layout = &layout;
    ctx.channels = &channels;
    ctx.fused_tuples = &fused_tuples;
    ctx.batch_size = batch_size;
    ctx.quantum_batches = std::max(1, options_.quantum_batches);
    ctx.watermark_interval = options_.watermark_interval;
    ctx.clock = clock;
    ctx.invariants = invariants;
    ctx.record_error = record_error;
    ctx.tuples_ingested = &tuples_ingested;
    ctx.enable_columnar = options_.enable_columnar;
    ctx.columnar_hash = options_.columnar_hash_partition;

    std::vector<std::unique_ptr<Task>> tasks;
    // Producing task(s) of every node: sources have one task, operator
    // nodes are driven by the task(s) of their chain. Used to wire credit
    // hooks (a consumer pop wakes the producers of that channel).
    std::vector<std::vector<Task*>> tasks_of_node(static_cast<size_t>(n));
    // Consuming task per (chain head, subtask), indexed like `channels`.
    std::vector<std::vector<Task*>> consumer_of(static_cast<size_t>(n));

    for (NodeId id = 0; id < n; ++id) {
      JobGraph::Node& node = graph_->mutable_node(id);
      if (!node.is_source()) continue;
      tasks.push_back(std::make_unique<SourceTask>(&ctx, id, node.source.get()));
      tasks_of_node[static_cast<size_t>(id)].push_back(tasks.back().get());
    }
    for (int c = 0; c < chain_layout.num_chains(); ++c) {
      const std::vector<NodeId>& chain =
          chain_layout.chains[static_cast<size_t>(c)];
      const NodeId head = chain.front();
      const int subtasks = graph_->parallelism(head);
      consumer_of[static_cast<size_t>(head)].assign(
          static_cast<size_t>(subtasks), nullptr);
      for (int subtask = 0; subtask < subtasks; ++subtask) {
        std::vector<Operator*> ops = open_chain(chain, subtask);
        if (ops.empty()) continue;  // Open failed; channels already closed
        tasks.push_back(
            std::make_unique<ChainTask>(&ctx, &chain, subtask, std::move(ops)));
        consumer_of[static_cast<size_t>(head)][static_cast<size_t>(subtask)] =
            tasks.back().get();
        for (NodeId id : chain) {
          tasks_of_node[static_cast<size_t>(id)].push_back(tasks.back().get());
        }
      }
    }

    TaskScheduler scheduler(workers);
    // Readiness hooks: a push wakes the channel's consumer task (it may be
    // parked on empty input), a pop returns credits and wakes every task
    // that routes into this channel (they may be parked on a full push).
    for (NodeId to = 0; to < n; ++to) {
      NodeChannels& node_channels = channels[static_cast<size_t>(to)];
      if (node_channels.empty()) continue;
      // Producers of (to, *): tasks of every node with an unfused edge
      // into `to`. Unfused out-edges only exist on sources and chain
      // tails, whose tasks own the RoutingCollector that pushes here.
      std::vector<Task*> producers;
      for (NodeId from = 0; from < n; ++from) {
        const JobGraph::Node& from_node = graph_->node(from);
        for (size_t i = 0; i < from_node.outputs.size(); ++i) {
          if (from_node.outputs[i].to != to || chain_layout.fused(from, i)) {
            continue;
          }
          for (Task* t : tasks_of_node[static_cast<size_t>(from)]) {
            if (std::find(producers.begin(), producers.end(), t) ==
                producers.end()) {
              producers.push_back(t);
            }
          }
        }
      }
      for (size_t s = 0; s < node_channels.size(); ++s) {
        Task* consumer = consumer_of[static_cast<size_t>(to)][s];
        node_channels[s]->SetReadinessHooks(
            [&scheduler, consumer] {
              if (consumer != nullptr) {
                scheduler.Wake(consumer, WakeKind::kInput);
              }
            },
            [&scheduler, producers] {
              for (Task* producer : producers) {
                scheduler.Wake(producer, WakeKind::kCredit);
              }
            });
      }
    }

    std::vector<Task*> task_ptrs;
    task_ptrs.reserve(tasks.size());
    for (const std::unique_ptr<Task>& t : tasks) task_ptrs.push_back(t.get());
    scheduler_ptr = &scheduler;
    scheduler.Run(task_ptrs);
    scheduler_ptr = nullptr;
    result.scheduler = scheduler.ConsumeStats(ctx.quantum_batches);
  } else {
    // -----------------------------------------------------------------
    // Legacy thread-per-subtask execution, kept for A/B comparison: one
    // OS thread per source and per (chain, subtask), blocking channels.
    // -----------------------------------------------------------------
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n));

    for (NodeId id = 0; id < n; ++id) {
      JobGraph::Node& node = graph_->mutable_node(id);
      if (!node.is_source()) continue;
      Source* source = node.source.get();
      threads.emplace_back([&, id, source] {
        RoutingCollector collector(graph_, id, /*subtask=*/0, &layout,
                                   &channels, batch_size,
                                   /*cooperative=*/false,
                                   options_.enable_columnar,
                                   options_.columnar_hash_partition);
        std::vector<Tuple> staged;
        staged.reserve(batch_size);
        int since_watermark = 0;
        // Adaptive staging: one create_ts stamp and one ingest-counter
        // bump per batch. When the source is slow (rate-limited), filling
        // a whole batch would sit on tuples, so the staging size halves
        // whenever the previous batch took longer than the flush timeout
        // and doubles back while the source keeps up.
        size_t stage_target = batch_size;
        const Timestamp flush_timeout = options_.source_flush_timeout_millis;
        Timestamp last_stamp = clock->NowMillis();
        bool more = true;
        while (more) {
          staged.clear();
          Tuple tuple;
          while (staged.size() < stage_target &&
                 (more = source->Next(&tuple))) {
            staged.push_back(std::move(tuple));
          }
          if (staged.empty()) break;
          const Timestamp now = clock->NowMillis();
          if (flush_timeout > 0 && batch_size > 1) {
            if (now - last_stamp > flush_timeout) {
              stage_target = std::max<size_t>(1, stage_target / 2);
            } else if (stage_target < batch_size) {
              stage_target = std::min(batch_size, stage_target * 2);
            }
          }
          last_stamp = now;
          for (Tuple& t : staged) {
            for (size_t i = 0; i < t.size(); ++i) {
              t.mutable_event(i).create_ts = now;
            }
          }
          tuples_ingested.fetch_add(static_cast<int64_t>(staged.size()),
                                    std::memory_order_relaxed);
          bool gathered = false;
          if (collector.columnar_eligible()) {
            // SoA gather point (mirrors SourceTask): ship the staged rows
            // as one column block when the arity is uniform.
            bool uniform = true;
            for (const Tuple& t : staged) {
              if (t.size() != 1) {
                uniform = false;
                break;
              }
            }
            if (uniform) {
              auto block = std::make_unique<ColumnarBatch>(1);
              block->Reserve(staged.size());
              for (const Tuple& t : staged) block->AppendTuple(t);
              collector.EmitColumnar(std::move(block));
              gathered = true;
            }
          }
          if (!gathered) {
            for (Tuple& t : staged) collector.Emit(std::move(t));
          }
          since_watermark += static_cast<int>(staged.size());
          if (since_watermark >= options_.watermark_interval) {
            since_watermark = 0;
            collector.EmitControl(MessageKind::kWatermark,
                                  source->CurrentWatermark());
          }
        }
        collector.EmitControl(MessageKind::kWatermark, kMaxTimestamp);
        collector.EmitControl(MessageKind::kEnd, 0);
      });
    }

    // One thread per (chain, subtask): the head drains its input channel,
    // interior operators run inline behind it via ChainedCollectors, the
    // tail's RoutingCollector routes into the next chains' channels.
    for (int c = 0; c < chain_layout.num_chains(); ++c) {
      const std::vector<NodeId>& chain =
          chain_layout.chains[static_cast<size_t>(c)];
      const NodeId head = chain.front();
      const int subtasks = graph_->parallelism(head);
      for (int subtask = 0; subtask < subtasks; ++subtask) {
        std::vector<Operator*> ops = open_chain(chain, subtask);
        if (ops.empty()) continue;
        const int num_slots = layout.num_slots[static_cast<size_t>(head)];
        threads.emplace_back([&, c, subtask, head, num_slots,
                              ops = std::move(ops)]() mutable {
          const std::vector<NodeId>& chain_nodes =
              chain_layout.chains[static_cast<size_t>(c)];
          RoutingCollector tail(graph_, chain_nodes.back(), subtask, &layout,
                                &channels, batch_size, /*cooperative=*/false,
                                options_.enable_columnar,
                                options_.columnar_hash_partition);
          // Collector per chain position, built tail-first: the tail
          // batches into real channels, every link hands to the next
          // operator in-thread. `links` never reallocates (reserved), so
          // the stored downstream pointers stay valid.
          Status chain_status;
          std::vector<ChainedCollector> links;
          links.reserve(ops.size());
          std::vector<Collector*> collectors(ops.size(), nullptr);
          collectors.back() = &tail;
          for (size_t i = ops.size() - 1; i >= 1; --i) {
            const JobGraph::Edge& edge =
                graph_->node(chain_nodes[i - 1]).outputs[0];
            links.emplace_back(
                ops[i], edge.input_port, collectors[i], &chain_status,
                &fused_tuples[static_cast<size_t>(chain_nodes[i])]
                             [static_cast<size_t>(subtask)],
                invariants, chain_nodes[i], subtask);
            collectors[i - 1] = &links.back();
          }

          // Watermarks and Finish cascade through the chain in operator
          // order: each operator's OnWatermark/Finish emissions reach the
          // downstream operators (through the links) *before* the control
          // event is forwarded past them — the same order the unfused
          // per-edge protocol guarantees.
          auto cascade_watermark = [&](Timestamp wm) -> Status {
            for (size_t i = 0; i < ops.size(); ++i) {
              if (i > 0 && invariants != nullptr) {
                invariants->OnPhysicalWatermark(chain_nodes[i], subtask,
                                                subtask, wm);
              }
              Status st = ops[i]->OnWatermark(wm, collectors[i]);
              if (!st.ok()) return st.WithContext(ops[i]->name());
              if (!chain_status.ok()) return chain_status;
            }
            return Status::OK();
          };
          auto cascade_finish = [&]() -> Status {
            for (size_t i = 0; i < ops.size(); ++i) {
              Status st = ops[i]->Finish(collectors[i]);
              if (!st.ok()) return st.WithContext(ops[i]->name());
              if (!chain_status.ok()) return chain_status;
            }
            return Status::OK();
          };

          if (num_slots == 0) {
            // No upstream at all (lint warns W306): nothing will ever
            // arrive; run the shutdown protocol so downstream terminates.
            Status st = cascade_watermark(kMaxTimestamp);
            if (st.ok()) st = cascade_finish();
            if (!st.ok()) record_error(st);
            tail.EmitControl(MessageKind::kWatermark, kMaxTimestamp);
            tail.EmitControl(MessageKind::kEnd, 0);
            return;
          }
          SlotAligner aligner(num_slots);
          Channel* input =
              channels[static_cast<size_t>(head)][static_cast<size_t>(subtask)]
                  .get();
          MessageBatch in;
          in.reserve(batch_size);
          while (!aligner.done()) {
            if (!input->PopBatch(&in, batch_size)) break;  // closed on error
            // Steady-state fast path mirroring ChainTask::ProcessBatch: a
            // homogeneous data batch goes to the head operator's
            // ProcessBatch in one call (compiled heads run a tight loop).
            bool homogeneous = !in.empty();
            const int batch_port = homogeneous ? in.front().port : 0;
            for (const Message& msg : in) {
              if (msg.kind != MessageKind::kTuple || msg.port != batch_port) {
                homogeneous = false;
                break;
              }
            }
            if (homogeneous) {
              if (invariants != nullptr) {
                for (const Message& msg : in) {
                  invariants->OnPhysicalTuple(head, subtask, msg.slot,
                                              msg.tuple);
                }
              }
              Status st = ops.front()->ProcessBatch(batch_port, &in,
                                                    collectors.front());
              if (!st.ok()) {
                st = st.WithContext(ops.front()->name());
              } else if (!chain_status.ok()) {
                st = chain_status;
              }
              if (!st.ok()) {
                record_error(st);
                aligner.ForceDone();
              }
              if (!aligner.done() && input->Empty()) {
                collectors.front()->Flush();
              }
              continue;
            }
            for (Message& msg : in) {
              if (aligner.done()) break;
              switch (msg.kind) {
                case MessageKind::kTuple: {
                  if (invariants != nullptr) {
                    invariants->OnPhysicalTuple(head, subtask, msg.slot,
                                                msg.tuple);
                  }
                  Status st = ops.front()->Process(
                      msg.port, std::move(msg.tuple), collectors.front());
                  if (!st.ok()) {
                    st = st.WithContext(ops.front()->name());
                  } else if (!chain_status.ok()) {
                    st = chain_status;
                  }
                  if (!st.ok()) {
                    record_error(st);
                    aligner.ForceDone();
                  }
                  break;
                }
                case MessageKind::kWatermark: {
                  if (invariants != nullptr) {
                    invariants->OnPhysicalWatermark(head, subtask, msg.slot,
                                                    msg.watermark);
                  }
                  Timestamp aligned = kMinTimestamp;
                  if (aligner.OnWatermark(msg.slot, msg.watermark, &aligned)) {
                    Status st = cascade_watermark(aligned);
                    if (!st.ok()) {
                      record_error(st);
                      aligner.ForceDone();
                    } else {
                      tail.EmitControl(MessageKind::kWatermark, aligned);
                    }
                  }
                  break;
                }
                case MessageKind::kColumnar: {
                  if (invariants != nullptr) {
                    for (size_t i = 0; i < msg.columnar->rows(); ++i) {
                      invariants->OnPhysicalTuple(head, subtask, msg.slot,
                                                  msg.columnar->RowTuple(i));
                    }
                  }
                  Status st = ops.front()->ProcessColumnar(
                      msg.port, std::move(msg.columnar), collectors.front());
                  if (!st.ok()) {
                    st = st.WithContext(ops.front()->name());
                  } else if (!chain_status.ok()) {
                    st = chain_status;
                  }
                  if (!st.ok()) {
                    record_error(st);
                    aligner.ForceDone();
                  }
                  break;
                }
                case MessageKind::kEnd: {
                  if (aligner.OnEnd()) {
                    Status st = cascade_finish();
                    if (!st.ok()) record_error(st);
                    tail.EmitControl(MessageKind::kEnd, 0);
                  }
                  break;
                }
              }
            }
            // Input drained for now: hand partial output batches
            // downstream before blocking, so a stalled stream never
            // strands tuples in a half-filled batch.
            if (!aligner.done() && input->Empty()) {
              collectors.front()->Flush();
            }
          }
        });
      }
    }

    for (std::thread& t : threads) t.join();
  }

#if CEP2ASP_CHECK_INVARIANTS
  // Guarded by the preprocessor (not `if (invariants)`) because in the
  // disabled build the pointer is a compile-time null and GCC flags the
  // dead calls with -Wnonnull even behind a runtime check.
  {
    std::lock_guard<std::mutex> lock(status_mutex);
    if (run_status.ok()) {
      invariants->OnJobFinished();
      for (NodeId id = 0; id < n; ++id) {
        for (const std::unique_ptr<Operator>& clone :
             clones[static_cast<size_t>(id)]) {
          invariants->OnSubtaskFinished(id, *clone);
        }
      }
    }
  }
#endif

  result.elapsed_seconds =
      static_cast<double>(clock->NowNanos() - start_nanos) / 1e9;
  result.tuples_ingested = tuples_ingested.load();
  result.peak_state_bytes = graph_->TotalStateBytes();
  for (NodeId id = 0; id < n; ++id) {
    for (const std::unique_ptr<Operator>& clone :
         clones[static_cast<size_t>(id)]) {
      result.peak_state_bytes += clone->StateBytes();
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    const JobGraph::Node& node = graph_->node(id);
    if (node.is_source()) continue;
    const std::string& name = node.op->name();
    const NodeChannels& node_channels = channels[static_cast<size_t>(id)];
    std::vector<int64_t> tuples_per_subtask;
    if (!node_channels.empty()) {
      for (size_t s = 0; s < node_channels.size(); ++s) {
        ChannelStats stats =
            node_channels[s]->Snapshot(name, static_cast<int>(s));
        tuples_per_subtask.push_back(stats.tuples);
        result.channel_stats.push_back(std::move(stats));
      }
    } else {
      // Chain-interior node: its input edge was fused, so no physical
      // channel exists. Report the in-thread hand-off honestly as a fused
      // pseudo-channel with zero queue traffic, one entry per subtask.
      for (int s = 0; s < node.parallelism; ++s) {
        ChannelStats stats;
        stats.consumer = name;
        stats.subtask = s;
        stats.fused = true;
        stats.tuples =
            fused_tuples[static_cast<size_t>(id)][static_cast<size_t>(s)];
        stats.messages = stats.tuples;
        tuples_per_subtask.push_back(stats.tuples);
        result.channel_stats.push_back(std::move(stats));
      }
    }
    if (tuples_per_subtask.size() > 1) {
      PartitionSkew skew;
      skew.op = name;
      skew.parallelism = static_cast<int>(tuples_per_subtask.size());
      int64_t total = 0;
      for (int64_t tuples : tuples_per_subtask) {
        skew.tuples_per_subtask.push_back(tuples);
        skew.max_tuples = std::max(skew.max_tuples, tuples);
        total += tuples;
      }
      skew.mean_tuples = static_cast<double>(total) /
                         static_cast<double>(tuples_per_subtask.size());
      result.partition_skew.push_back(std::move(skew));
    }
  }
  if (sink != nullptr) {
    result.matches_emitted = sink->count();
    result.latency = LatencyStats::FromSamples(sink->latencies());
  }
  {
    std::lock_guard<std::mutex> lock(status_mutex);
    result.ok = run_status.ok();
    if (!result.ok) result.error = run_status.ToString();
  }
  return result;
}

}  // namespace cep2asp
