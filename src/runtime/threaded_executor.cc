#include "runtime/threaded_executor.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace cep2asp {

namespace {

enum class MessageKind : uint8_t { kTuple, kWatermark, kEnd };

/// One element flowing over an inter-thread edge.
struct Message {
  MessageKind kind = MessageKind::kTuple;
  int port = 0;
  Tuple tuple;
  Timestamp watermark = kMinTimestamp;
};

struct NodeChannels {
  std::unique_ptr<BoundedQueue<Message>> input;  // null for sources
};

/// Collector that forwards an operator's output to all successor queues.
class QueueCollector : public Collector {
 public:
  QueueCollector(const JobGraph* graph, NodeId node,
                 std::vector<NodeChannels>* channels)
      : graph_(graph), node_(node), channels_(channels) {}

  void Emit(Tuple tuple) override {
    const auto& outputs = graph_->node(node_).outputs;
    for (const JobGraph::Edge& edge : outputs) {
      Message msg;
      msg.kind = MessageKind::kTuple;
      msg.port = edge.input_port;
      msg.tuple = tuple;  // copy per fan-out edge
      (*channels_)[static_cast<size_t>(edge.to)].input->Push(std::move(msg));
    }
  }

 private:
  const JobGraph* graph_;
  NodeId node_;
  std::vector<NodeChannels>* channels_;
};

void ForwardControl(const JobGraph* graph, NodeId node,
                    std::vector<NodeChannels>* channels, MessageKind kind,
                    Timestamp watermark) {
  for (const JobGraph::Edge& edge : graph->node(node).outputs) {
    Message msg;
    msg.kind = kind;
    msg.port = edge.input_port;
    msg.watermark = watermark;
    (*channels)[static_cast<size_t>(edge.to)].input->Push(std::move(msg));
  }
}

}  // namespace

ThreadedExecutor::ThreadedExecutor(JobGraph* graph,
                                   ThreadedExecutorOptions options)
    : graph_(graph), options_(options) {}

ExecutionResult ThreadedExecutor::Run(const CollectSink* sink) {
  ExecutionResult result;
  Status validate = graph_->Validate();
  if (!validate.ok()) {
    result.error = validate.ToString();
    return result;
  }
  Clock* clock = options_.clock ? options_.clock : SystemClock::Get();

  const int n = graph_->num_nodes();
  std::vector<NodeChannels> channels(static_cast<size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    if (!graph_->node(id).is_source()) {
      channels[static_cast<size_t>(id)].input =
          std::make_unique<BoundedQueue<Message>>(options_.queue_capacity);
    }
  }

  std::mutex status_mutex;
  Status run_status;  // guarded by status_mutex
  // On error, close every queue so producers blocked on Push and consumers
  // blocked on Pop unwind instead of deadlocking on an abandoned channel.
  auto record_error = [&status_mutex, &run_status, &channels](const Status& st) {
    std::lock_guard<std::mutex> lock(status_mutex);
    if (run_status.ok()) {
      run_status = st;
      for (NodeChannels& ch : channels) {
        if (ch.input) ch.input->Close();
      }
    }
  };

  std::atomic<int64_t> tuples_ingested{0};
  int64_t start_nanos = clock->NowNanos();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));

  for (NodeId id = 0; id < n; ++id) {
    JobGraph::Node& node = graph_->mutable_node(id);
    if (node.is_source()) {
      Source* source = node.source.get();
      threads.emplace_back([&, id, source] {
        Tuple tuple;
        int since_watermark = 0;
        while (source->Next(&tuple)) {
          Timestamp now = clock->NowMillis();
          for (size_t i = 0; i < tuple.size(); ++i) {
            tuple.mutable_event(i).create_ts = now;
          }
          tuples_ingested.fetch_add(1, std::memory_order_relaxed);
          for (const JobGraph::Edge& edge : graph_->node(id).outputs) {
            Message msg;
            msg.kind = MessageKind::kTuple;
            msg.port = edge.input_port;
            msg.tuple = tuple;
            channels[static_cast<size_t>(edge.to)].input->Push(std::move(msg));
          }
          if (++since_watermark >= options_.watermark_interval) {
            since_watermark = 0;
            ForwardControl(graph_, id, &channels, MessageKind::kWatermark,
                           source->CurrentWatermark());
          }
        }
        ForwardControl(graph_, id, &channels, MessageKind::kWatermark,
                       kMaxTimestamp);
        ForwardControl(graph_, id, &channels, MessageKind::kEnd, 0);
      });
    } else {
      Operator* op = node.op.get();
      Status open = op->Open();
      if (!open.ok()) {
        record_error(open.WithContext(op->name()));
        continue;
      }
      const int num_ports = op->num_inputs();
      threads.emplace_back([&, id, op, num_ports] {
        QueueCollector collector(graph_, id, &channels);
        std::vector<Timestamp> port_watermarks(static_cast<size_t>(num_ports),
                                               kMinTimestamp);
        Timestamp aligned = kMinTimestamp;
        int ended_ports = 0;
        BoundedQueue<Message>* input = channels[static_cast<size_t>(id)].input.get();
        while (ended_ports < num_ports) {
          std::optional<Message> msg = input->Pop();
          if (!msg.has_value()) break;  // queue force-closed on error
          switch (msg->kind) {
            case MessageKind::kTuple: {
              Status st = op->Process(msg->port, std::move(msg->tuple), &collector);
              if (!st.ok()) {
                record_error(st.WithContext(op->name()));
                ended_ports = num_ports;
              }
              break;
            }
            case MessageKind::kWatermark: {
              Timestamp& slot = port_watermarks[static_cast<size_t>(msg->port)];
              slot = std::max(slot, msg->watermark);
              Timestamp new_aligned = *std::min_element(port_watermarks.begin(),
                                                        port_watermarks.end());
              if (new_aligned > aligned) {
                aligned = new_aligned;
                Status st = op->OnWatermark(aligned, &collector);
                if (!st.ok()) {
                  record_error(st.WithContext(op->name()));
                  ended_ports = num_ports;
                } else {
                  ForwardControl(graph_, id, &channels, MessageKind::kWatermark,
                                 aligned);
                }
              }
              break;
            }
            case MessageKind::kEnd: {
              if (++ended_ports == num_ports) {
                Status st = op->Finish(&collector);
                if (!st.ok()) record_error(st.WithContext(op->name()));
                ForwardControl(graph_, id, &channels, MessageKind::kEnd, 0);
              }
              break;
            }
          }
        }
      });
    }
  }

  for (std::thread& t : threads) t.join();

  result.elapsed_seconds =
      static_cast<double>(clock->NowNanos() - start_nanos) / 1e9;
  result.tuples_ingested = tuples_ingested.load();
  result.peak_state_bytes = graph_->TotalStateBytes();
  if (sink != nullptr) {
    result.matches_emitted = sink->count();
    result.latency = LatencyStats::FromSamples(sink->latencies());
  }
  {
    std::lock_guard<std::mutex> lock(status_mutex);
    result.ok = run_status.ok();
    if (!result.ok) result.error = run_status.ToString();
  }
  return result;
}

}  // namespace cep2asp
