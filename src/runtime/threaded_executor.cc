#include "runtime/threaded_executor.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>

#include "analysis/graph_rules.h"
#include "analysis/invariant_checker.h"
#include "common/logging.h"

namespace cep2asp {

namespace {

/// Physical expansion of the logical graph: node `id` becomes
/// parallelism(id) subtask instances, and each consumer subtask owns one
/// input channel fed by every producer subtask of every in-edge. A "slot"
/// is the consumer-side dense index of one (in-edge, producer subtask)
/// pair: watermarks are min-aligned and end-of-stream is counted per slot,
/// because a single input port may merge several producer subtasks.
///
/// Edges fused by operator chaining cross no exchange: they get no slot
/// (base -1) and contribute nothing to the consumer's channel — only chain
/// heads accumulate slots and own channels.
struct PhysicalLayout {
  /// Slots per consumer node = sum of producer parallelism over unfused
  /// in-edges (the graph's physical_fan_in minus fused hand-offs).
  std::vector<int> num_slots;
  /// edge_slot_base[from][out_idx]: first slot of that edge at the
  /// consumer; producer subtask s stamps slot base + s. -1 for fused
  /// edges (in-thread hand-off, never stamped).
  std::vector<std::vector<int>> edge_slot_base;

  PhysicalLayout(const JobGraph& graph, const ChainLayout& chains) {
    const int n = graph.num_nodes();
    num_slots.assign(static_cast<size_t>(n), 0);
    edge_slot_base.resize(static_cast<size_t>(n));
    for (NodeId from = 0; from < n; ++from) {
      const JobGraph::Node& node = graph.node(from);
      edge_slot_base[static_cast<size_t>(from)].reserve(node.outputs.size());
      for (size_t i = 0; i < node.outputs.size(); ++i) {
        const JobGraph::Edge& edge = node.outputs[i];
        if (chains.fused(from, i)) {
          edge_slot_base[static_cast<size_t>(from)].push_back(-1);
          continue;
        }
        edge_slot_base[static_cast<size_t>(from)].push_back(
            num_slots[static_cast<size_t>(edge.to)]);
        num_slots[static_cast<size_t>(edge.to)] += node.parallelism;
      }
    }
  }
};

using NodeChannels = std::vector<std::unique_ptr<Channel>>;  // per subtask

/// Collector of one producer subtask (a source, or the tail operator of a
/// chain): routes emitted tuples to the right consumer subtask per
/// out-edge (hash by key, chained/rebalance forward, or broadcast),
/// accumulating one pending MessageBatch per physical target channel.
/// Tuples are copied for all destinations but the last and moved into the
/// last, so the common case (one edge, one target) never deep-copies.
///
/// Only constructed for nodes whose out-edges all cross a real exchange
/// (chain interiors hand tuples over via ChainedCollector instead).
///
/// Control messages (watermark/end) go to *every* consumer subtask of
/// every out-edge regardless of the edge's partition mode — watermarks
/// must reach all partitions for their windows to fire, and end-of-stream
/// is counted per slot. They are appended behind any buffered tuples and
/// force a flush, preserving tuple-before-watermark order per channel.
class PartitioningCollector : public Collector {
 public:
  PartitioningCollector(const JobGraph* graph, NodeId node, int subtask,
                        const PhysicalLayout* layout,
                        std::vector<NodeChannels>* channels, size_t batch_size)
      : batch_size_(std::max<size_t>(1, batch_size)) {
    const JobGraph::Node& producer = graph->node(node);
    for (size_t i = 0; i < producer.outputs.size(); ++i) {
      const JobGraph::Edge& edge = producer.outputs[i];
      OutEdge out;
      out.port = edge.input_port;
      out.mode = edge.partition;
      out.consumer_parallelism = graph->parallelism(edge.to);
      out.slot =
          layout->edge_slot_base[static_cast<size_t>(node)][i] + subtask;
      out.fixed_target = -1;
      if (edge.partition == PartitionMode::kForward) {
        if (out.consumer_parallelism == 1) {
          out.fixed_target = 0;  // the historical single-instance path
        } else if (producer.parallelism == out.consumer_parallelism) {
          out.fixed_target = subtask;  // chained subtask-local hand-off
        }
        // else: round-robin rebalance via rr_cursor.
      }
      out.first_target = static_cast<int>(targets_.size());
      for (int s = 0; s < out.consumer_parallelism; ++s) {
        Target target;
        target.channel =
            (*channels)[static_cast<size_t>(edge.to)][static_cast<size_t>(s)]
                .get();
        target.pending.reserve(batch_size_);
        targets_.push_back(std::move(target));
      }
      edges_.push_back(out);
    }
  }

  void Emit(Tuple tuple) override {
    if (edges_.empty()) return;
    if (edges_.size() == 1 && edges_[0].mode != PartitionMode::kBroadcast) {
      OutEdge& e = edges_[0];
      const int t = e.first_target + Route(e, tuple);
      Append(t, Message::Data(e.port, std::move(tuple), e.slot));
      return;
    }
    // General fan-out: resolve every destination first, then copy to all
    // but the last and move into the last.
    destinations_.clear();
    for (size_t i = 0; i < edges_.size(); ++i) {
      OutEdge& e = edges_[i];
      if (e.mode == PartitionMode::kBroadcast) {
        for (int s = 0; s < e.consumer_parallelism; ++s) {
          destinations_.push_back({static_cast<int>(i), e.first_target + s});
        }
      } else {
        destinations_.push_back(
            {static_cast<int>(i), e.first_target + Route(e, tuple)});
      }
    }
    const size_t last = destinations_.size() - 1;
    for (size_t d = 0; d < last; ++d) {
      const OutEdge& e = edges_[static_cast<size_t>(destinations_[d].edge)];
      Append(destinations_[d].target, Message::Data(e.port, tuple, e.slot));
    }
    const OutEdge& e = edges_[static_cast<size_t>(destinations_[last].edge)];
    Append(destinations_[last].target,
           Message::Data(e.port, std::move(tuple), e.slot));
  }

  void Flush() override {
    for (size_t t = 0; t < targets_.size(); ++t) FlushTarget(static_cast<int>(t));
  }

  /// Broadcasts a control message behind the buffered tuples of every
  /// physical target and flushes.
  void EmitControl(MessageKind kind, Timestamp watermark) {
    for (size_t i = 0; i < edges_.size(); ++i) {
      const OutEdge& e = edges_[i];
      for (int s = 0; s < e.consumer_parallelism; ++s) {
        const int t = e.first_target + s;
        targets_[static_cast<size_t>(t)].pending.push_back(
            Message::Control(kind, e.port, watermark, e.slot));
        FlushTarget(t);
      }
    }
  }

 private:
  struct Target {
    Channel* channel = nullptr;
    MessageBatch pending;
  };

  struct OutEdge {
    int port = 0;
    PartitionMode mode = PartitionMode::kForward;
    int consumer_parallelism = 1;
    int slot = 0;          // consumer-side slot this producer subtask owns
    int fixed_target = -1; // forward short-circuit; -1 = dynamic routing
    int first_target = 0;  // index of consumer subtask 0 in targets_
    size_t rr_cursor = 0;  // rebalance state (forward, unequal parallelism)
  };

  struct Destination {
    int edge = 0;
    int target = 0;
  };

  int Route(OutEdge& e, const Tuple& tuple) {
    if (e.fixed_target >= 0) return e.fixed_target;
    if (e.mode == PartitionMode::kHash) {
      return KeyToSubtask(tuple.key(), e.consumer_parallelism);
    }
    return static_cast<int>(e.rr_cursor++ %
                            static_cast<size_t>(e.consumer_parallelism));
  }

  void Append(int t, Message msg) {
    Target& target = targets_[static_cast<size_t>(t)];
    target.pending.push_back(std::move(msg));
    if (target.pending.size() >= batch_size_) FlushTarget(t);
  }

  void FlushTarget(int t) {
    Target& target = targets_[static_cast<size_t>(t)];
    if (!target.pending.empty()) {
      // A false return means the channel was closed (error unwind); the
      // batch is dropped, matching the historical Push behavior.
      target.channel->PushBatch(&target.pending);
      target.pending.clear();
    }
  }

  const size_t batch_size_;
  std::vector<Target> targets_;
  std::vector<OutEdge> edges_;
  std::vector<Destination> destinations_;
};

/// Collector of one fused edge inside a chain: hands each emitted tuple
/// straight to the next operator's Process on the calling thread — no
/// MessageBatch, no ring, no copy. Flush propagates down the chain so the
/// tail's micro-batches still drain when the head goes idle. Watermarks
/// never pass through here (the chain driver cascades OnWatermark through
/// the operators itself, in chain order, before forwarding downstream).
class ChainedCollector : public Collector {
 public:
  ChainedCollector(Operator* next, int port, Collector* downstream,
                   Status* chain_status, int64_t* handed_over
#if CEP2ASP_CHECK_INVARIANTS
                   ,
                   InvariantChecker* invariants, NodeId node, int subtask
#endif
                   )
      : next_(next),
        port_(port),
        downstream_(downstream),
        chain_status_(chain_status),
        handed_over_(handed_over)
#if CEP2ASP_CHECK_INVARIANTS
        ,
        invariants_(invariants),
        node_(node),
        subtask_(subtask)
#endif
  {
  }

  void Emit(Tuple tuple) override {
    // Once the chain failed it is unwinding; drop instead of feeding an
    // operator whose run already ended with an error.
    if (!chain_status_->ok()) return;
    ++*handed_over_;
#if CEP2ASP_CHECK_INVARIANTS
    // A fused consumer has exactly one in-edge from an equal-parallelism
    // producer, so its physical fan-in equals its parallelism and slot
    // `subtask` is exactly the channel this in-thread hand-off replaces.
    invariants_->OnPhysicalTuple(node_, subtask_, subtask_, tuple);
#endif
    Status st = next_->Process(port_, std::move(tuple), downstream_);
    if (!st.ok()) *chain_status_ = st.WithContext(next_->name());
  }

  void Flush() override { downstream_->Flush(); }

 private:
  Operator* next_;
  int port_;
  Collector* downstream_;
  Status* chain_status_;
  int64_t* handed_over_;
#if CEP2ASP_CHECK_INVARIANTS
  InvariantChecker* invariants_;
  NodeId node_;
  int subtask_;
#endif
};

}  // namespace

ThreadedExecutor::ThreadedExecutor(JobGraph* graph,
                                   ThreadedExecutorOptions options)
    : graph_(graph), options_(options) {}

ExecutionResult ThreadedExecutor::Run(const CollectSink* sink) {
  ExecutionResult result;
  DiagnosticReport report = AnalyzeJobGraph(*graph_);
  result.diagnostics = report.diagnostics();
  Status validate = report.ToStatus();
  if (!validate.ok()) {
    result.error = validate.ToString();
    return result;
  }
#if CEP2ASP_CHECK_INVARIANTS
  InvariantChecker invariants(*graph_);
#endif
  Clock* clock = options_.clock ? options_.clock : SystemClock::Get();
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);

  const int n = graph_->num_nodes();
  const ChainLayout chain_layout =
      ComputeChainLayout(*graph_, options_.enable_chaining);
  const PhysicalLayout layout(*graph_, chain_layout);

  // One input channel per (chain head, subtask); chain interiors receive
  // tuples in-thread and own no channel. Every producer subtask of every
  // unfused in-edge pushes at least control messages into each channel, so
  // the SPSC fast path needs physical fan-in 1 — with parallelism 1 and
  // chaining off everywhere this is the same choice as before.
  std::vector<NodeChannels> channels(static_cast<size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    if (graph_->node(id).is_source() || !chain_layout.is_head(id)) continue;
    const int subtasks = graph_->parallelism(id);
    for (int s = 0; s < subtasks; ++s) {
      channels[static_cast<size_t>(id)].push_back(
          MakeChannel(layout.num_slots[static_cast<size_t>(id)],
                      options_.queue_capacity, options_.enable_spsc));
    }
  }

  std::mutex status_mutex;
  Status run_status;  // guarded by status_mutex
  // On error, close every channel so producers blocked on PushBatch and
  // consumers blocked on PopBatch unwind instead of deadlocking on an
  // abandoned edge.
  auto record_error = [&status_mutex, &run_status, &channels](const Status& st) {
    std::lock_guard<std::mutex> lock(status_mutex);
    if (run_status.ok()) {
      run_status = st;
      for (NodeChannels& node_channels : channels) {
        for (std::unique_ptr<Channel>& ch : node_channels) ch->Close();
      }
    }
  };

  // Subtask instances: subtask 0 runs the graph's own operator, subtasks
  // 1..P-1 run state-empty clones (lint rule E314 guarantees the operator
  // supports cloning when parallelism > 1).
  std::vector<std::vector<std::unique_ptr<Operator>>> clones(
      static_cast<size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    JobGraph::Node& node = graph_->mutable_node(id);
    if (node.is_source()) continue;
    for (int s = 1; s < node.parallelism; ++s) {
      std::unique_ptr<Operator> clone = node.op->CloneForSubtask();
      CEP2ASP_CHECK(clone != nullptr)
          << node.op->name() << " has parallelism " << node.parallelism
          << " but no CloneForSubtask";
      clones[static_cast<size_t>(id)].push_back(std::move(clone));
    }
  }

  // In-thread hand-off counters of fused edges: fused_tuples[id][s] counts
  // tuples handed into subtask s of chain-interior node id. Each cell is
  // written only by its own chain thread; read after the join.
  std::vector<std::vector<int64_t>> fused_tuples(static_cast<size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    if (graph_->node(id).is_source()) continue;
    fused_tuples[static_cast<size_t>(id)].assign(
        static_cast<size_t>(graph_->parallelism(id)), 0);
  }

  std::atomic<int64_t> tuples_ingested{0};
  int64_t start_nanos = clock->NowNanos();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));

  for (NodeId id = 0; id < n; ++id) {
    JobGraph::Node& node = graph_->mutable_node(id);
    if (!node.is_source()) continue;
    Source* source = node.source.get();
    threads.emplace_back([&, id, source] {
      PartitioningCollector collector(graph_, id, /*subtask=*/0, &layout,
                                      &channels, batch_size);
      std::vector<Tuple> staged;
      staged.reserve(batch_size);
      int since_watermark = 0;
      // Adaptive staging: one create_ts stamp and one ingest-counter
      // bump per batch. When the source is slow (rate-limited), filling
      // a whole batch would sit on tuples, so the staging size halves
      // whenever the previous batch took longer than the flush timeout
      // and doubles back while the source keeps up.
      size_t stage_target = batch_size;
      const Timestamp flush_timeout = options_.source_flush_timeout_millis;
      Timestamp last_stamp = clock->NowMillis();
      bool more = true;
      while (more) {
        staged.clear();
        Tuple tuple;
        while (staged.size() < stage_target && (more = source->Next(&tuple))) {
          staged.push_back(std::move(tuple));
        }
        if (staged.empty()) break;
        const Timestamp now = clock->NowMillis();
        if (flush_timeout > 0 && batch_size > 1) {
          if (now - last_stamp > flush_timeout) {
            stage_target = std::max<size_t>(1, stage_target / 2);
          } else if (stage_target < batch_size) {
            stage_target = std::min(batch_size, stage_target * 2);
          }
        }
        last_stamp = now;
        for (Tuple& t : staged) {
          for (size_t i = 0; i < t.size(); ++i) {
            t.mutable_event(i).create_ts = now;
          }
        }
        tuples_ingested.fetch_add(static_cast<int64_t>(staged.size()),
                                  std::memory_order_relaxed);
        for (Tuple& t : staged) collector.Emit(std::move(t));
        since_watermark += static_cast<int>(staged.size());
        if (since_watermark >= options_.watermark_interval) {
          since_watermark = 0;
          collector.EmitControl(MessageKind::kWatermark,
                                source->CurrentWatermark());
        }
      }
      collector.EmitControl(MessageKind::kWatermark, kMaxTimestamp);
      collector.EmitControl(MessageKind::kEnd, 0);
    });
  }

  // One thread per (chain, subtask): the head drains its input channel,
  // interior operators run inline behind it via ChainedCollectors, the
  // tail's PartitioningCollector routes into the next chains' channels.
  for (int c = 0; c < chain_layout.num_chains(); ++c) {
    const std::vector<NodeId>& chain = chain_layout.chains[static_cast<size_t>(c)];
    const NodeId head = chain.front();
    const int subtasks = graph_->parallelism(head);
    for (int subtask = 0; subtask < subtasks; ++subtask) {
      std::vector<Operator*> ops;
      ops.reserve(chain.size());
      bool open_failed = false;
      for (NodeId id : chain) {
        Operator* op =
            subtask == 0
                ? graph_->mutable_node(id).op.get()
                : clones[static_cast<size_t>(id)][static_cast<size_t>(subtask - 1)]
                      .get();
        Status open = op->Open();
        if (!open.ok()) {
          record_error(open.WithContext(op->name()));
          open_failed = true;
          break;
        }
        ops.push_back(op);
      }
      if (open_failed) continue;
      const int num_slots = layout.num_slots[static_cast<size_t>(head)];
      threads.emplace_back([&, c, subtask, head, num_slots,
                            ops = std::move(ops)]() mutable {
        const std::vector<NodeId>& chain_nodes =
            chain_layout.chains[static_cast<size_t>(c)];
        PartitioningCollector tail(graph_, chain_nodes.back(), subtask,
                                   &layout, &channels, batch_size);
        // Collector per chain position, built tail-first: the tail batches
        // into real channels, every link hands to the next operator
        // in-thread. `links` never reallocates (reserved), so the stored
        // downstream pointers stay valid.
        Status chain_status;
        std::vector<ChainedCollector> links;
        links.reserve(ops.size());
        std::vector<Collector*> collectors(ops.size(), nullptr);
        collectors.back() = &tail;
        for (size_t i = ops.size() - 1; i >= 1; --i) {
          const JobGraph::Edge& edge =
              graph_->node(chain_nodes[i - 1]).outputs[0];
          links.emplace_back(ops[i], edge.input_port, collectors[i],
                             &chain_status,
                             &fused_tuples[static_cast<size_t>(chain_nodes[i])]
                                          [static_cast<size_t>(subtask)]
#if CEP2ASP_CHECK_INVARIANTS
                             ,
                             &invariants, chain_nodes[i], subtask
#endif
          );
          collectors[i - 1] = &links.back();
        }

        // Watermarks and Finish cascade through the chain in operator
        // order: each operator's OnWatermark/Finish emissions reach the
        // downstream operators (through the links) *before* the control
        // event is forwarded past them — the same order the unfused
        // per-edge protocol guarantees.
        auto cascade_watermark = [&](Timestamp wm) -> Status {
          for (size_t i = 0; i < ops.size(); ++i) {
#if CEP2ASP_CHECK_INVARIANTS
            if (i > 0) {
              invariants.OnPhysicalWatermark(chain_nodes[i], subtask, subtask,
                                             wm);
            }
#endif
            Status st = ops[i]->OnWatermark(wm, collectors[i]);
            if (!st.ok()) return st.WithContext(ops[i]->name());
            if (!chain_status.ok()) return chain_status;
          }
          return Status::OK();
        };
        auto cascade_finish = [&]() -> Status {
          for (size_t i = 0; i < ops.size(); ++i) {
            Status st = ops[i]->Finish(collectors[i]);
            if (!st.ok()) return st.WithContext(ops[i]->name());
            if (!chain_status.ok()) return chain_status;
          }
          return Status::OK();
        };

        if (num_slots == 0) {
          // No upstream at all (lint warns W306): nothing will ever
          // arrive; run the shutdown protocol so downstream terminates.
          Status st = cascade_watermark(kMaxTimestamp);
          if (st.ok()) st = cascade_finish();
          if (!st.ok()) record_error(st);
          tail.EmitControl(MessageKind::kWatermark, kMaxTimestamp);
          tail.EmitControl(MessageKind::kEnd, 0);
          return;
        }
        std::vector<Timestamp> slot_watermarks(static_cast<size_t>(num_slots),
                                               kMinTimestamp);
        Timestamp aligned = kMinTimestamp;
        int ended_slots = 0;
        Channel* input =
            channels[static_cast<size_t>(head)][static_cast<size_t>(subtask)]
                .get();
        MessageBatch in;
        in.reserve(batch_size);
        while (ended_slots < num_slots) {
          if (!input->PopBatch(&in, batch_size)) break;  // closed on error
          for (Message& msg : in) {
            if (ended_slots >= num_slots) break;
            switch (msg.kind) {
              case MessageKind::kTuple: {
#if CEP2ASP_CHECK_INVARIANTS
                invariants.OnPhysicalTuple(head, subtask, msg.slot, msg.tuple);
#endif
                Status st = ops.front()->Process(msg.port, std::move(msg.tuple),
                                                 collectors.front());
                if (!st.ok()) {
                  st = st.WithContext(ops.front()->name());
                } else if (!chain_status.ok()) {
                  st = chain_status;
                }
                if (!st.ok()) {
                  record_error(st);
                  ended_slots = num_slots;
                }
                break;
              }
              case MessageKind::kWatermark: {
#if CEP2ASP_CHECK_INVARIANTS
                invariants.OnPhysicalWatermark(head, subtask, msg.slot,
                                               msg.watermark);
#endif
                Timestamp& slot =
                    slot_watermarks[static_cast<size_t>(msg.slot)];
                slot = std::max(slot, msg.watermark);
                Timestamp new_aligned = *std::min_element(
                    slot_watermarks.begin(), slot_watermarks.end());
                if (new_aligned > aligned) {
                  aligned = new_aligned;
                  Status st = cascade_watermark(aligned);
                  if (!st.ok()) {
                    record_error(st);
                    ended_slots = num_slots;
                  } else {
                    tail.EmitControl(MessageKind::kWatermark, aligned);
                  }
                }
                break;
              }
              case MessageKind::kEnd: {
                if (++ended_slots == num_slots) {
                  Status st = cascade_finish();
                  if (!st.ok()) record_error(st);
                  tail.EmitControl(MessageKind::kEnd, 0);
                }
                break;
              }
            }
          }
          // Input drained for now: hand partial output batches downstream
          // before blocking, so a stalled stream never strands tuples in a
          // half-filled batch.
          if (ended_slots < num_slots && input->Empty()) {
            collectors.front()->Flush();
          }
        }
      });
    }
  }

  for (std::thread& t : threads) t.join();

#if CEP2ASP_CHECK_INVARIANTS
  {
    std::lock_guard<std::mutex> lock(status_mutex);
    if (run_status.ok()) {
      invariants.OnJobFinished();
      for (NodeId id = 0; id < n; ++id) {
        for (const std::unique_ptr<Operator>& clone :
             clones[static_cast<size_t>(id)]) {
          invariants.OnSubtaskFinished(id, *clone);
        }
      }
    }
  }
#endif

  result.elapsed_seconds =
      static_cast<double>(clock->NowNanos() - start_nanos) / 1e9;
  result.tuples_ingested = tuples_ingested.load();
  result.peak_state_bytes = graph_->TotalStateBytes();
  for (NodeId id = 0; id < n; ++id) {
    for (const std::unique_ptr<Operator>& clone :
         clones[static_cast<size_t>(id)]) {
      result.peak_state_bytes += clone->StateBytes();
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    const JobGraph::Node& node = graph_->node(id);
    if (node.is_source()) continue;
    const std::string& name = node.op->name();
    const NodeChannels& node_channels = channels[static_cast<size_t>(id)];
    std::vector<int64_t> tuples_per_subtask;
    if (!node_channels.empty()) {
      for (size_t s = 0; s < node_channels.size(); ++s) {
        ChannelStats stats =
            node_channels[s]->Snapshot(name, static_cast<int>(s));
        tuples_per_subtask.push_back(stats.tuples);
        result.channel_stats.push_back(std::move(stats));
      }
    } else {
      // Chain-interior node: its input edge was fused, so no physical
      // channel exists. Report the in-thread hand-off honestly as a fused
      // pseudo-channel with zero queue traffic, one entry per subtask.
      for (int s = 0; s < node.parallelism; ++s) {
        ChannelStats stats;
        stats.consumer = name;
        stats.subtask = s;
        stats.fused = true;
        stats.tuples =
            fused_tuples[static_cast<size_t>(id)][static_cast<size_t>(s)];
        stats.messages = stats.tuples;
        tuples_per_subtask.push_back(stats.tuples);
        result.channel_stats.push_back(std::move(stats));
      }
    }
    if (tuples_per_subtask.size() > 1) {
      PartitionSkew skew;
      skew.op = name;
      skew.parallelism = static_cast<int>(tuples_per_subtask.size());
      int64_t total = 0;
      for (int64_t tuples : tuples_per_subtask) {
        skew.tuples_per_subtask.push_back(tuples);
        skew.max_tuples = std::max(skew.max_tuples, tuples);
        total += tuples;
      }
      skew.mean_tuples = static_cast<double>(total) /
                         static_cast<double>(tuples_per_subtask.size());
      result.partition_skew.push_back(std::move(skew));
    }
  }
  if (sink != nullptr) {
    result.matches_emitted = sink->count();
    result.latency = LatencyStats::FromSamples(sink->latencies());
  }
  {
    std::lock_guard<std::mutex> lock(status_mutex);
    result.ok = run_status.ok();
    if (!result.ok) result.error = run_status.ToString();
  }
  return result;
}

}  // namespace cep2asp
