#include "runtime/threaded_executor.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>

#include "analysis/graph_rules.h"
#include "analysis/invariant_checker.h"
#include "common/logging.h"

namespace cep2asp {

namespace {

/// Physical expansion of the logical graph: node `id` becomes
/// parallelism(id) subtask instances, and each consumer subtask owns one
/// input channel fed by every producer subtask of every in-edge. A "slot"
/// is the consumer-side dense index of one (in-edge, producer subtask)
/// pair: watermarks are min-aligned and end-of-stream is counted per slot,
/// because a single input port may merge several producer subtasks.
struct PhysicalLayout {
  /// Slots per consumer node = sum of producer parallelism over in-edges
  /// (the graph's physical_fan_in).
  std::vector<int> num_slots;
  /// edge_slot_base[from][out_idx]: first slot of that edge at the
  /// consumer; producer subtask s stamps slot base + s.
  std::vector<std::vector<int>> edge_slot_base;

  explicit PhysicalLayout(const JobGraph& graph) {
    const int n = graph.num_nodes();
    num_slots.assign(static_cast<size_t>(n), 0);
    edge_slot_base.resize(static_cast<size_t>(n));
    for (NodeId from = 0; from < n; ++from) {
      const JobGraph::Node& node = graph.node(from);
      edge_slot_base[static_cast<size_t>(from)].reserve(node.outputs.size());
      for (const JobGraph::Edge& edge : node.outputs) {
        edge_slot_base[static_cast<size_t>(from)].push_back(
            num_slots[static_cast<size_t>(edge.to)]);
        num_slots[static_cast<size_t>(edge.to)] += node.parallelism;
      }
    }
  }
};

using NodeChannels = std::vector<std::unique_ptr<Channel>>;  // per subtask

/// Collector of one producer subtask: routes emitted tuples to the right
/// consumer subtask per out-edge (hash by key, chained/rebalance forward,
/// or broadcast), accumulating one pending MessageBatch per physical
/// target channel. Tuples are copied for all destinations but the last and
/// moved into the last, so the common case (one edge, one target) never
/// deep-copies.
///
/// Control messages (watermark/end) go to *every* consumer subtask of
/// every out-edge regardless of the edge's partition mode — watermarks
/// must reach all partitions for their windows to fire, and end-of-stream
/// is counted per slot. They are appended behind any buffered tuples and
/// force a flush, preserving tuple-before-watermark order per channel.
class PartitioningCollector : public Collector {
 public:
  PartitioningCollector(const JobGraph* graph, NodeId node, int subtask,
                        const PhysicalLayout* layout,
                        std::vector<NodeChannels>* channels, size_t batch_size)
      : batch_size_(std::max<size_t>(1, batch_size)) {
    const JobGraph::Node& producer = graph->node(node);
    for (size_t i = 0; i < producer.outputs.size(); ++i) {
      const JobGraph::Edge& edge = producer.outputs[i];
      OutEdge out;
      out.port = edge.input_port;
      out.mode = edge.partition;
      out.consumer_parallelism = graph->parallelism(edge.to);
      out.slot =
          layout->edge_slot_base[static_cast<size_t>(node)][i] + subtask;
      out.fixed_target = -1;
      if (edge.partition == PartitionMode::kForward) {
        if (out.consumer_parallelism == 1) {
          out.fixed_target = 0;  // the historical single-instance path
        } else if (producer.parallelism == out.consumer_parallelism) {
          out.fixed_target = subtask;  // chained subtask-local hand-off
        }
        // else: round-robin rebalance via rr_cursor.
      }
      out.first_target = static_cast<int>(targets_.size());
      for (int s = 0; s < out.consumer_parallelism; ++s) {
        Target target;
        target.channel =
            (*channels)[static_cast<size_t>(edge.to)][static_cast<size_t>(s)]
                .get();
        target.pending.reserve(batch_size_);
        targets_.push_back(std::move(target));
      }
      edges_.push_back(out);
    }
  }

  void Emit(Tuple tuple) override {
    if (edges_.empty()) return;
    if (edges_.size() == 1 && edges_[0].mode != PartitionMode::kBroadcast) {
      OutEdge& e = edges_[0];
      const int t = e.first_target + Route(e, tuple);
      Append(t, Message::Data(e.port, std::move(tuple), e.slot));
      return;
    }
    // General fan-out: resolve every destination first, then copy to all
    // but the last and move into the last.
    destinations_.clear();
    for (size_t i = 0; i < edges_.size(); ++i) {
      OutEdge& e = edges_[i];
      if (e.mode == PartitionMode::kBroadcast) {
        for (int s = 0; s < e.consumer_parallelism; ++s) {
          destinations_.push_back({static_cast<int>(i), e.first_target + s});
        }
      } else {
        destinations_.push_back(
            {static_cast<int>(i), e.first_target + Route(e, tuple)});
      }
    }
    const size_t last = destinations_.size() - 1;
    for (size_t d = 0; d < last; ++d) {
      const OutEdge& e = edges_[static_cast<size_t>(destinations_[d].edge)];
      Append(destinations_[d].target, Message::Data(e.port, tuple, e.slot));
    }
    const OutEdge& e = edges_[static_cast<size_t>(destinations_[last].edge)];
    Append(destinations_[last].target,
           Message::Data(e.port, std::move(tuple), e.slot));
  }

  void Flush() override {
    for (size_t t = 0; t < targets_.size(); ++t) FlushTarget(static_cast<int>(t));
  }

  /// Broadcasts a control message behind the buffered tuples of every
  /// physical target and flushes.
  void EmitControl(MessageKind kind, Timestamp watermark) {
    for (size_t i = 0; i < edges_.size(); ++i) {
      const OutEdge& e = edges_[i];
      for (int s = 0; s < e.consumer_parallelism; ++s) {
        const int t = e.first_target + s;
        targets_[static_cast<size_t>(t)].pending.push_back(
            Message::Control(kind, e.port, watermark, e.slot));
        FlushTarget(t);
      }
    }
  }

 private:
  struct Target {
    Channel* channel = nullptr;
    MessageBatch pending;
  };

  struct OutEdge {
    int port = 0;
    PartitionMode mode = PartitionMode::kForward;
    int consumer_parallelism = 1;
    int slot = 0;          // consumer-side slot this producer subtask owns
    int fixed_target = -1; // forward short-circuit; -1 = dynamic routing
    int first_target = 0;  // index of consumer subtask 0 in targets_
    size_t rr_cursor = 0;  // rebalance state (forward, unequal parallelism)
  };

  struct Destination {
    int edge = 0;
    int target = 0;
  };

  int Route(OutEdge& e, const Tuple& tuple) {
    if (e.fixed_target >= 0) return e.fixed_target;
    if (e.mode == PartitionMode::kHash) {
      return KeyToSubtask(tuple.key(), e.consumer_parallelism);
    }
    return static_cast<int>(e.rr_cursor++ %
                            static_cast<size_t>(e.consumer_parallelism));
  }

  void Append(int t, Message msg) {
    Target& target = targets_[static_cast<size_t>(t)];
    target.pending.push_back(std::move(msg));
    if (target.pending.size() >= batch_size_) FlushTarget(t);
  }

  void FlushTarget(int t) {
    Target& target = targets_[static_cast<size_t>(t)];
    if (!target.pending.empty()) {
      // A false return means the channel was closed (error unwind); the
      // batch is dropped, matching the historical Push behavior.
      target.channel->PushBatch(&target.pending);
      target.pending.clear();
    }
  }

  const size_t batch_size_;
  std::vector<Target> targets_;
  std::vector<OutEdge> edges_;
  std::vector<Destination> destinations_;
};

}  // namespace

ThreadedExecutor::ThreadedExecutor(JobGraph* graph,
                                   ThreadedExecutorOptions options)
    : graph_(graph), options_(options) {}

ExecutionResult ThreadedExecutor::Run(const CollectSink* sink) {
  ExecutionResult result;
  DiagnosticReport report = AnalyzeJobGraph(*graph_);
  result.diagnostics = report.diagnostics();
  Status validate = report.ToStatus();
  if (!validate.ok()) {
    result.error = validate.ToString();
    return result;
  }
#if CEP2ASP_CHECK_INVARIANTS
  InvariantChecker invariants(*graph_);
#endif
  Clock* clock = options_.clock ? options_.clock : SystemClock::Get();
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);

  const int n = graph_->num_nodes();
  const PhysicalLayout layout(*graph_);

  // One input channel per (operator, subtask). Every producer subtask of
  // every in-edge pushes at least control messages into each of them, so
  // the SPSC fast path needs physical fan-in 1 — with parallelism 1
  // everywhere this is the same choice as before.
  std::vector<NodeChannels> channels(static_cast<size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    if (graph_->node(id).is_source()) continue;
    const int subtasks = graph_->parallelism(id);
    for (int s = 0; s < subtasks; ++s) {
      channels[static_cast<size_t>(id)].push_back(
          MakeChannel(layout.num_slots[static_cast<size_t>(id)],
                      options_.queue_capacity, options_.enable_spsc));
    }
  }

  std::mutex status_mutex;
  Status run_status;  // guarded by status_mutex
  // On error, close every channel so producers blocked on PushBatch and
  // consumers blocked on PopBatch unwind instead of deadlocking on an
  // abandoned edge.
  auto record_error = [&status_mutex, &run_status, &channels](const Status& st) {
    std::lock_guard<std::mutex> lock(status_mutex);
    if (run_status.ok()) {
      run_status = st;
      for (NodeChannels& node_channels : channels) {
        for (std::unique_ptr<Channel>& ch : node_channels) ch->Close();
      }
    }
  };

  // Subtask instances: subtask 0 runs the graph's own operator, subtasks
  // 1..P-1 run state-empty clones (lint rule E314 guarantees the operator
  // supports cloning when parallelism > 1).
  std::vector<std::vector<std::unique_ptr<Operator>>> clones(
      static_cast<size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    JobGraph::Node& node = graph_->mutable_node(id);
    if (node.is_source()) continue;
    for (int s = 1; s < node.parallelism; ++s) {
      std::unique_ptr<Operator> clone = node.op->CloneForSubtask();
      CEP2ASP_CHECK(clone != nullptr)
          << node.op->name() << " has parallelism " << node.parallelism
          << " but no CloneForSubtask";
      clones[static_cast<size_t>(id)].push_back(std::move(clone));
    }
  }

  std::atomic<int64_t> tuples_ingested{0};
  int64_t start_nanos = clock->NowNanos();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));

  for (NodeId id = 0; id < n; ++id) {
    JobGraph::Node& node = graph_->mutable_node(id);
    if (node.is_source()) {
      Source* source = node.source.get();
      threads.emplace_back([&, id, source] {
        PartitioningCollector collector(graph_, id, /*subtask=*/0, &layout,
                                        &channels, batch_size);
        std::vector<Tuple> staged;
        staged.reserve(batch_size);
        int since_watermark = 0;
        // Adaptive staging: one create_ts stamp and one ingest-counter
        // bump per batch. When the source is slow (rate-limited), filling
        // a whole batch would sit on tuples, so the staging size halves
        // whenever the previous batch took longer than the flush timeout
        // and doubles back while the source keeps up.
        size_t stage_target = batch_size;
        const Timestamp flush_timeout = options_.source_flush_timeout_millis;
        Timestamp last_stamp = clock->NowMillis();
        bool more = true;
        while (more) {
          staged.clear();
          Tuple tuple;
          while (staged.size() < stage_target && (more = source->Next(&tuple))) {
            staged.push_back(std::move(tuple));
          }
          if (staged.empty()) break;
          const Timestamp now = clock->NowMillis();
          if (flush_timeout > 0 && batch_size > 1) {
            if (now - last_stamp > flush_timeout) {
              stage_target = std::max<size_t>(1, stage_target / 2);
            } else if (stage_target < batch_size) {
              stage_target = std::min(batch_size, stage_target * 2);
            }
          }
          last_stamp = now;
          for (Tuple& t : staged) {
            for (size_t i = 0; i < t.size(); ++i) {
              t.mutable_event(i).create_ts = now;
            }
          }
          tuples_ingested.fetch_add(static_cast<int64_t>(staged.size()),
                                    std::memory_order_relaxed);
          for (Tuple& t : staged) collector.Emit(std::move(t));
          since_watermark += static_cast<int>(staged.size());
          if (since_watermark >= options_.watermark_interval) {
            since_watermark = 0;
            collector.EmitControl(MessageKind::kWatermark,
                                  source->CurrentWatermark());
          }
        }
        collector.EmitControl(MessageKind::kWatermark, kMaxTimestamp);
        collector.EmitControl(MessageKind::kEnd, 0);
      });
      continue;
    }

    const int subtasks = node.parallelism;
    for (int subtask = 0; subtask < subtasks; ++subtask) {
      Operator* op =
          subtask == 0
              ? node.op.get()
              : clones[static_cast<size_t>(id)][static_cast<size_t>(subtask - 1)]
                    .get();
      Status open = op->Open();
      if (!open.ok()) {
        record_error(open.WithContext(op->name()));
        continue;
      }
      const int num_slots = layout.num_slots[static_cast<size_t>(id)];
      threads.emplace_back([&, id, subtask, op, num_slots] {
        PartitioningCollector collector(graph_, id, subtask, &layout,
                                        &channels, batch_size);
        if (num_slots == 0) {
          // No upstream at all (lint warns W306): nothing will ever
          // arrive; run the shutdown protocol so downstream terminates.
          Status st = op->OnWatermark(kMaxTimestamp, &collector);
          if (st.ok()) st = op->Finish(&collector);
          if (!st.ok()) record_error(st.WithContext(op->name()));
          collector.EmitControl(MessageKind::kWatermark, kMaxTimestamp);
          collector.EmitControl(MessageKind::kEnd, 0);
          return;
        }
        std::vector<Timestamp> slot_watermarks(static_cast<size_t>(num_slots),
                                               kMinTimestamp);
        Timestamp aligned = kMinTimestamp;
        int ended_slots = 0;
        Channel* input =
            channels[static_cast<size_t>(id)][static_cast<size_t>(subtask)]
                .get();
        MessageBatch in;
        in.reserve(batch_size);
        while (ended_slots < num_slots) {
          if (!input->PopBatch(&in, batch_size)) break;  // closed on error
          for (Message& msg : in) {
            if (ended_slots >= num_slots) break;
            switch (msg.kind) {
              case MessageKind::kTuple: {
#if CEP2ASP_CHECK_INVARIANTS
                invariants.OnPhysicalTuple(id, subtask, msg.slot, msg.tuple);
#endif
                Status st = op->Process(msg.port, std::move(msg.tuple), &collector);
                if (!st.ok()) {
                  record_error(st.WithContext(op->name()));
                  ended_slots = num_slots;
                }
                break;
              }
              case MessageKind::kWatermark: {
#if CEP2ASP_CHECK_INVARIANTS
                invariants.OnPhysicalWatermark(id, subtask, msg.slot,
                                               msg.watermark);
#endif
                Timestamp& slot =
                    slot_watermarks[static_cast<size_t>(msg.slot)];
                slot = std::max(slot, msg.watermark);
                Timestamp new_aligned = *std::min_element(
                    slot_watermarks.begin(), slot_watermarks.end());
                if (new_aligned > aligned) {
                  aligned = new_aligned;
                  Status st = op->OnWatermark(aligned, &collector);
                  if (!st.ok()) {
                    record_error(st.WithContext(op->name()));
                    ended_slots = num_slots;
                  } else {
                    collector.EmitControl(MessageKind::kWatermark, aligned);
                  }
                }
                break;
              }
              case MessageKind::kEnd: {
                if (++ended_slots == num_slots) {
                  Status st = op->Finish(&collector);
                  if (!st.ok()) record_error(st.WithContext(op->name()));
                  collector.EmitControl(MessageKind::kEnd, 0);
                }
                break;
              }
            }
          }
          // Input drained for now: hand partial output batches downstream
          // before blocking, so a stalled stream never strands tuples in a
          // half-filled batch.
          if (ended_slots < num_slots && input->Empty()) collector.Flush();
        }
      });
    }
  }

  for (std::thread& t : threads) t.join();

#if CEP2ASP_CHECK_INVARIANTS
  {
    std::lock_guard<std::mutex> lock(status_mutex);
    if (run_status.ok()) {
      invariants.OnJobFinished();
      for (NodeId id = 0; id < n; ++id) {
        for (const std::unique_ptr<Operator>& clone :
             clones[static_cast<size_t>(id)]) {
          invariants.OnSubtaskFinished(id, *clone);
        }
      }
    }
  }
#endif

  result.elapsed_seconds =
      static_cast<double>(clock->NowNanos() - start_nanos) / 1e9;
  result.tuples_ingested = tuples_ingested.load();
  result.peak_state_bytes = graph_->TotalStateBytes();
  for (NodeId id = 0; id < n; ++id) {
    for (const std::unique_ptr<Operator>& clone :
         clones[static_cast<size_t>(id)]) {
      result.peak_state_bytes += clone->StateBytes();
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    const NodeChannels& node_channels = channels[static_cast<size_t>(id)];
    if (node_channels.empty()) continue;
    const std::string& name = graph_->node(id).op->name();
    for (size_t s = 0; s < node_channels.size(); ++s) {
      result.channel_stats.push_back(
          node_channels[s]->Snapshot(name, static_cast<int>(s)));
    }
    if (node_channels.size() > 1) {
      PartitionSkew skew;
      skew.op = name;
      skew.parallelism = static_cast<int>(node_channels.size());
      int64_t total = 0;
      for (const std::unique_ptr<Channel>& ch : node_channels) {
        ChannelStats stats = ch->Snapshot(name);
        skew.tuples_per_subtask.push_back(stats.tuples);
        skew.max_tuples = std::max(skew.max_tuples, stats.tuples);
        total += stats.tuples;
      }
      skew.mean_tuples = static_cast<double>(total) /
                         static_cast<double>(node_channels.size());
      result.partition_skew.push_back(std::move(skew));
    }
  }
  if (sink != nullptr) {
    result.matches_emitted = sink->count();
    result.latency = LatencyStats::FromSamples(sink->latencies());
  }
  {
    std::lock_guard<std::mutex> lock(status_mutex);
    result.ok = run_status.ok();
    if (!result.ok) result.error = run_status.ToString();
  }
  return result;
}

}  // namespace cep2asp
