#include "runtime/threaded_executor.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "analysis/graph_rules.h"
#include "analysis/invariant_checker.h"
#include "common/logging.h"

namespace cep2asp {

namespace {

struct NodeChannels {
  std::unique_ptr<Channel> input;  // null for sources
};

/// Collector that accumulates an operator's (or source's) output into one
/// pending MessageBatch per outgoing edge and hands full batches to the
/// successor channels. Tuples are copied for edges 0..n-2 and moved into
/// the last edge, so a fan-out of one (the common case) never deep-copies.
///
/// Control messages (watermark/end) are appended behind any buffered
/// tuples and force an immediate flush, which preserves the tuple-before-
/// watermark ordering guarantee across batch boundaries.
class BatchingCollector : public Collector {
 public:
  BatchingCollector(const JobGraph* graph, NodeId node,
                    std::vector<NodeChannels>* channels, size_t batch_size)
      : batch_size_(std::max<size_t>(1, batch_size)) {
    for (const JobGraph::Edge& edge : graph->node(node).outputs) {
      Target target;
      target.channel = (*channels)[static_cast<size_t>(edge.to)].input.get();
      target.port = edge.input_port;
      target.pending.reserve(batch_size_);
      targets_.push_back(std::move(target));
    }
  }

  void Emit(Tuple tuple) override {
    if (targets_.empty()) return;
    const size_t last = targets_.size() - 1;
    for (size_t i = 0; i < last; ++i) {
      Append(i, Message::Data(targets_[i].port, tuple));  // copy for fan-out
    }
    Append(last, Message::Data(targets_[last].port, std::move(tuple)));
  }

  void Flush() override {
    for (size_t i = 0; i < targets_.size(); ++i) FlushTarget(i);
  }

  /// Appends a control message behind the buffered tuples of every edge and
  /// flushes, so downstream sees all tuples that precede the control event.
  void EmitControl(MessageKind kind, Timestamp watermark) {
    for (size_t i = 0; i < targets_.size(); ++i) {
      targets_[i].pending.push_back(
          Message::Control(kind, targets_[i].port, watermark));
      FlushTarget(i);
    }
  }

 private:
  struct Target {
    Channel* channel = nullptr;
    int port = 0;
    MessageBatch pending;
  };

  void Append(size_t i, Message msg) {
    targets_[i].pending.push_back(std::move(msg));
    if (targets_[i].pending.size() >= batch_size_) FlushTarget(i);
  }

  void FlushTarget(size_t i) {
    if (!targets_[i].pending.empty()) {
      // A false return means the channel was closed (error unwind); the
      // batch is dropped, matching the historical Push behavior.
      targets_[i].channel->PushBatch(&targets_[i].pending);
      targets_[i].pending.clear();
    }
  }

  const size_t batch_size_;
  std::vector<Target> targets_;
};

}  // namespace

ThreadedExecutor::ThreadedExecutor(JobGraph* graph,
                                   ThreadedExecutorOptions options)
    : graph_(graph), options_(options) {}

ExecutionResult ThreadedExecutor::Run(const CollectSink* sink) {
  ExecutionResult result;
  DiagnosticReport report = AnalyzeJobGraph(*graph_);
  result.diagnostics = report.diagnostics();
  Status validate = report.ToStatus();
  if (!validate.ok()) {
    result.error = validate.ToString();
    return result;
  }
#if CEP2ASP_CHECK_INVARIANTS
  InvariantChecker invariants(*graph_);
#endif
  Clock* clock = options_.clock ? options_.clock : SystemClock::Get();
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);

  const int n = graph_->num_nodes();
  std::vector<NodeChannels> channels(static_cast<size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    if (!graph_->node(id).is_source()) {
      channels[static_cast<size_t>(id)].input = MakeChannel(
          graph_->fan_in(id), options_.queue_capacity, options_.enable_spsc);
    }
  }

  std::mutex status_mutex;
  Status run_status;  // guarded by status_mutex
  // On error, close every channel so producers blocked on PushBatch and
  // consumers blocked on PopBatch unwind instead of deadlocking on an
  // abandoned edge.
  auto record_error = [&status_mutex, &run_status, &channels](const Status& st) {
    std::lock_guard<std::mutex> lock(status_mutex);
    if (run_status.ok()) {
      run_status = st;
      for (NodeChannels& ch : channels) {
        if (ch.input) ch.input->Close();
      }
    }
  };

  std::atomic<int64_t> tuples_ingested{0};
  int64_t start_nanos = clock->NowNanos();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));

  for (NodeId id = 0; id < n; ++id) {
    JobGraph::Node& node = graph_->mutable_node(id);
    if (node.is_source()) {
      Source* source = node.source.get();
      threads.emplace_back([&, id, source] {
        BatchingCollector collector(graph_, id, &channels, batch_size);
        std::vector<Tuple> staged;
        staged.reserve(batch_size);
        int since_watermark = 0;
        // Adaptive staging: one create_ts stamp and one ingest-counter
        // bump per batch. When the source is slow (rate-limited), filling
        // a whole batch would sit on tuples, so the staging size halves
        // whenever the previous batch took longer than the flush timeout
        // and doubles back while the source keeps up.
        size_t stage_target = batch_size;
        const Timestamp flush_timeout = options_.source_flush_timeout_millis;
        Timestamp last_stamp = clock->NowMillis();
        bool more = true;
        while (more) {
          staged.clear();
          Tuple tuple;
          while (staged.size() < stage_target && (more = source->Next(&tuple))) {
            staged.push_back(std::move(tuple));
          }
          if (staged.empty()) break;
          const Timestamp now = clock->NowMillis();
          if (flush_timeout > 0 && batch_size > 1) {
            if (now - last_stamp > flush_timeout) {
              stage_target = std::max<size_t>(1, stage_target / 2);
            } else if (stage_target < batch_size) {
              stage_target = std::min(batch_size, stage_target * 2);
            }
          }
          last_stamp = now;
          for (Tuple& t : staged) {
            for (size_t i = 0; i < t.size(); ++i) {
              t.mutable_event(i).create_ts = now;
            }
          }
          tuples_ingested.fetch_add(static_cast<int64_t>(staged.size()),
                                    std::memory_order_relaxed);
          for (Tuple& t : staged) collector.Emit(std::move(t));
          since_watermark += static_cast<int>(staged.size());
          if (since_watermark >= options_.watermark_interval) {
            since_watermark = 0;
            collector.EmitControl(MessageKind::kWatermark,
                                  source->CurrentWatermark());
          }
        }
        collector.EmitControl(MessageKind::kWatermark, kMaxTimestamp);
        collector.EmitControl(MessageKind::kEnd, 0);
      });
    } else {
      Operator* op = node.op.get();
      Status open = op->Open();
      if (!open.ok()) {
        record_error(open.WithContext(op->name()));
        continue;
      }
      const int num_ports = op->num_inputs();
      threads.emplace_back([&, id, op, num_ports] {
        BatchingCollector collector(graph_, id, &channels, batch_size);
        std::vector<Timestamp> port_watermarks(static_cast<size_t>(num_ports),
                                               kMinTimestamp);
        Timestamp aligned = kMinTimestamp;
        int ended_ports = 0;
        Channel* input = channels[static_cast<size_t>(id)].input.get();
        MessageBatch in;
        in.reserve(batch_size);
        while (ended_ports < num_ports) {
          if (!input->PopBatch(&in, batch_size)) break;  // closed on error
          for (Message& msg : in) {
            if (ended_ports >= num_ports) break;
            switch (msg.kind) {
              case MessageKind::kTuple: {
#if CEP2ASP_CHECK_INVARIANTS
                invariants.OnTuple(id, msg.port, msg.tuple);
#endif
                Status st = op->Process(msg.port, std::move(msg.tuple), &collector);
                if (!st.ok()) {
                  record_error(st.WithContext(op->name()));
                  ended_ports = num_ports;
                }
                break;
              }
              case MessageKind::kWatermark: {
#if CEP2ASP_CHECK_INVARIANTS
                invariants.OnWatermark(id, msg.port, msg.watermark);
#endif
                Timestamp& slot = port_watermarks[static_cast<size_t>(msg.port)];
                slot = std::max(slot, msg.watermark);
                Timestamp new_aligned = *std::min_element(
                    port_watermarks.begin(), port_watermarks.end());
                if (new_aligned > aligned) {
                  aligned = new_aligned;
                  Status st = op->OnWatermark(aligned, &collector);
                  if (!st.ok()) {
                    record_error(st.WithContext(op->name()));
                    ended_ports = num_ports;
                  } else {
                    collector.EmitControl(MessageKind::kWatermark, aligned);
                  }
                }
                break;
              }
              case MessageKind::kEnd: {
                if (++ended_ports == num_ports) {
                  Status st = op->Finish(&collector);
                  if (!st.ok()) record_error(st.WithContext(op->name()));
                  collector.EmitControl(MessageKind::kEnd, 0);
                }
                break;
              }
            }
          }
          // Input drained for now: hand partial output batches downstream
          // before blocking, so a stalled stream never strands tuples in a
          // half-filled batch.
          if (ended_ports < num_ports && input->Empty()) collector.Flush();
        }
      });
    }
  }

  for (std::thread& t : threads) t.join();

#if CEP2ASP_CHECK_INVARIANTS
  {
    std::lock_guard<std::mutex> lock(status_mutex);
    if (run_status.ok()) invariants.OnJobFinished();
  }
#endif

  result.elapsed_seconds =
      static_cast<double>(clock->NowNanos() - start_nanos) / 1e9;
  result.tuples_ingested = tuples_ingested.load();
  result.peak_state_bytes = graph_->TotalStateBytes();
  for (NodeId id = 0; id < n; ++id) {
    const Channel* input = channels[static_cast<size_t>(id)].input.get();
    if (input != nullptr) {
      result.channel_stats.push_back(
          input->Snapshot(graph_->node(id).op->name()));
    }
  }
  if (sink != nullptr) {
    result.matches_emitted = sink->count();
    result.latency = LatencyStats::FromSamples(sink->latencies());
  }
  {
    std::lock_guard<std::mutex> lock(status_mutex);
    result.ok = run_status.ok();
    if (!result.ok) result.error = run_status.ToString();
  }
  return result;
}

}  // namespace cep2asp
