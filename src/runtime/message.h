#ifndef CEP2ASP_RUNTIME_MESSAGE_H_
#define CEP2ASP_RUNTIME_MESSAGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "event/event.h"

namespace cep2asp {

/// Kind of element flowing over an inter-thread edge.
enum class MessageKind : uint8_t { kTuple, kWatermark, kEnd };

/// One element flowing over an inter-thread edge.
struct Message {
  MessageKind kind = MessageKind::kTuple;
  int port = 0;
  /// Physical-channel index at the consumer: identifies the (in-edge,
  /// producer subtask) pair this message travelled on, dense in
  /// [0, physical_fan_in). Watermarks are aligned (min) and end-of-stream
  /// is counted per slot, not per port, because one port may merge several
  /// producer subtasks under keyed data parallelism. With parallelism 1
  /// everywhere slots coincide with ports (one edge per port, E301/E302).
  int slot = 0;
  Tuple tuple;
  Timestamp watermark = kMinTimestamp;

  static Message Data(int port, Tuple tuple, int slot = 0) {
    Message msg;
    msg.kind = MessageKind::kTuple;
    msg.port = port;
    msg.slot = slot;
    msg.tuple = std::move(tuple);
    return msg;
  }

  static Message Control(MessageKind kind, int port, Timestamp watermark,
                         int slot = 0) {
    Message msg;
    msg.kind = kind;
    msg.port = port;
    msg.slot = slot;
    msg.watermark = watermark;
    return msg;
  }
};

/// A micro-batch of messages: the unit of transfer over a Channel. Callers
/// reserve `batch_size` up front and reuse the vector after every push, so
/// the steady state allocates nothing.
using MessageBatch = std::vector<Message>;

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_MESSAGE_H_
