#ifndef CEP2ASP_RUNTIME_MESSAGE_H_
#define CEP2ASP_RUNTIME_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "event/event.h"
#include "runtime/columnar_batch.h"

namespace cep2asp {

/// Kind of element flowing over an inter-thread edge.
enum class MessageKind : uint8_t { kTuple, kWatermark, kEnd, kColumnar };

/// One element flowing over an inter-thread edge. Move-only: a kColumnar
/// message owns a whole column block.
struct Message {
  MessageKind kind = MessageKind::kTuple;
  int port = 0;
  /// Physical-channel index at the consumer: identifies the (in-edge,
  /// producer subtask) pair this message travelled on, dense in
  /// [0, physical_fan_in). Watermarks are aligned (min) and end-of-stream
  /// is counted per slot, not per port, because one port may merge several
  /// producer subtasks under keyed data parallelism. With parallelism 1
  /// everywhere slots coincide with ports (one edge per port, E301/E302).
  int slot = 0;
  Tuple tuple;
  Timestamp watermark = kMinTimestamp;
  /// Column block of a kColumnar message (null otherwise): `columnar_rows`
  /// tuples travelling as one envelope — one channel slot for a whole
  /// block. The row count is mirrored into a scalar because statistics are
  /// counted after the block pointer was moved out (scalar members survive
  /// the element move).
  std::unique_ptr<ColumnarBatch> columnar;
  int columnar_rows = 0;

  Message() = default;
  Message(Message&&) = default;
  Message& operator=(Message&&) = default;
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;

  static Message Data(int port, Tuple tuple, int slot = 0) {
    Message msg;
    msg.kind = MessageKind::kTuple;
    msg.port = port;
    msg.slot = slot;
    msg.tuple = std::move(tuple);
    return msg;
  }

  static Message Control(MessageKind kind, int port, Timestamp watermark,
                         int slot = 0) {
    Message msg;
    msg.kind = kind;
    msg.port = port;
    msg.slot = slot;
    msg.watermark = watermark;
    return msg;
  }

  static Message Columnar(int port, std::unique_ptr<ColumnarBatch> block,
                          int slot = 0) {
    Message msg;
    msg.kind = MessageKind::kColumnar;
    msg.port = port;
    msg.slot = slot;
    msg.columnar_rows = static_cast<int>(block->rows());
    msg.columnar = std::move(block);
    return msg;
  }
};

/// A micro-batch of messages: the unit of transfer over a Channel. Callers
/// reserve `batch_size` up front and reuse the vector after every push, so
/// the steady state allocates nothing.
///
/// The header deduplicates per-message routing: a producer whose batch is
/// homogeneous (every message bound for the same consumer input port and
/// physical slot — true of every RoutingCollector target buffer, control
/// messages included) sets `hdr_valid` once and skips stamping the
/// individual messages; the channel stamps them from the header at the
/// push boundary, because ring storage is flat Messages and pop boundaries
/// do not align with push boundaries (the header itself cannot survive the
/// channel). Batches without a valid header carry per-message port/slot
/// exactly as before.
struct MessageBatch : std::vector<Message> {
  using std::vector<Message>::vector;

  int hdr_port = 0;
  int hdr_slot = 0;
  bool hdr_valid = false;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_MESSAGE_H_
