#ifndef CEP2ASP_RUNTIME_SLOT_ALIGNER_H_
#define CEP2ASP_RUNTIME_SLOT_ALIGNER_H_

#include <algorithm>
#include <vector>

#include "event/event.h"

namespace cep2asp {

/// \brief Per-consumer watermark alignment and end-of-stream accounting
/// over physical input slots.
///
/// One consumer subtask receives messages from `num_slots` physical
/// channels (one slot per (in-edge, producer subtask) pair). The aligned
/// watermark is the minimum of the per-slot maxima, and the input is
/// exhausted once every slot delivered its end marker — the same protocol
/// whether the consumer is a dedicated OS thread (legacy executor path) or
/// a cooperative OperatorTask on the task scheduler. Extracting it keeps
/// the two paths bit-for-bit identical.
class SlotAligner {
 public:
  explicit SlotAligner(int num_slots)
      : slot_watermarks_(static_cast<size_t>(num_slots), kMinTimestamp),
        num_slots_(num_slots) {}

  /// Records `watermark` on `slot`. Returns true when the aligned (min)
  /// watermark advanced; the new value is then in `*aligned`.
  bool OnWatermark(int slot, Timestamp watermark, Timestamp* aligned) {
    Timestamp& entry = slot_watermarks_[static_cast<size_t>(slot)];
    entry = std::max(entry, watermark);
    const Timestamp new_aligned = *std::min_element(slot_watermarks_.begin(),
                                                    slot_watermarks_.end());
    if (new_aligned <= aligned_) return false;
    aligned_ = new_aligned;
    *aligned = new_aligned;
    return true;
  }

  /// Records one end-of-stream marker. Returns true when this was the last
  /// outstanding slot (the consumer should run its Finish cascade).
  bool OnEnd() { return ++ended_slots_ == num_slots_; }

  /// True once every slot ended (or the consumer force-ended on error).
  bool done() const { return ended_slots_ >= num_slots_; }

  /// Error unwind: pretend all slots ended so the drive loop exits.
  void ForceDone() { ended_slots_ = num_slots_; }

  int num_slots() const { return num_slots_; }
  Timestamp aligned() const { return aligned_; }

 private:
  std::vector<Timestamp> slot_watermarks_;
  Timestamp aligned_ = kMinTimestamp;
  int num_slots_ = 0;
  int ended_slots_ = 0;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_SLOT_ALIGNER_H_
