#ifndef CEP2ASP_RUNTIME_VECTOR_SOURCE_H_
#define CEP2ASP_RUNTIME_VECTOR_SOURCE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "runtime/operator.h"

namespace cep2asp {

/// \brief Source over a pre-materialized, timestamp-ordered event vector.
///
/// Mirrors the paper's evaluation setup (§5.1.2): data is extracted as
/// files and read by a simple source operator, keeping third-party
/// connectors out of the measurement.
class VectorSource : public Source {
 public:
  VectorSource(std::string name, std::vector<SimpleEvent> events)
      : name_(std::move(name)), events_(std::move(events)) {
    for (size_t i = 1; i < events_.size(); ++i) {
      CEP2ASP_DCHECK(events_[i].ts >= events_[i - 1].ts)
          << "VectorSource events must be ordered by ts";
    }
  }

  std::string name() const override { return name_; }

  bool Next(Tuple* tuple) override {
    if (pos_ >= events_.size()) return false;
    watermark_ = events_[pos_].ts;
    *tuple = Tuple(events_[pos_]);
    ++pos_;
    return true;
  }

  Timestamp CurrentWatermark() const override { return watermark_; }

  size_t remaining() const { return events_.size() - pos_; }

 private:
  std::string name_;
  std::vector<SimpleEvent> events_;
  size_t pos_ = 0;
  Timestamp watermark_ = kMinTimestamp;
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_VECTOR_SOURCE_H_
