#include "runtime/executor.h"

#include <algorithm>

#include "analysis/graph_rules.h"
#include "analysis/invariant_checker.h"
#include "common/logging.h"

namespace cep2asp {

/// Routes an operator's emissions to its successors, recursively invoking
/// downstream Process calls (operator chaining).
class PipelineExecutor::RoutingCollector : public Collector {
 public:
  RoutingCollector(PipelineExecutor* executor, NodeId node)
      : executor_(executor), node_(node) {}

  void Emit(Tuple tuple) override {
    const auto& outputs = executor_->graph_->node(node_).outputs;
    if (outputs.empty()) return;
    for (size_t i = 0; i + 1 < outputs.size(); ++i) {
      executor_->DeliverTuple(outputs[i].to, outputs[i].input_port, tuple);
    }
    executor_->DeliverTuple(outputs.back().to, outputs.back().input_port,
                            std::move(tuple));
  }

 private:
  PipelineExecutor* executor_;
  NodeId node_;
};

PipelineExecutor::PipelineExecutor(JobGraph* graph, ExecutorOptions options)
    : graph_(graph), options_(options) {
  clock_ = options_.clock ? options_.clock : SystemClock::Get();
}

PipelineExecutor::~PipelineExecutor() = default;

void PipelineExecutor::DeliverTuple(NodeId node, int port, Tuple tuple) {
  if (!run_status_.ok()) return;
#if CEP2ASP_CHECK_INVARIANTS
  invariants_->OnTuple(node, port, tuple);
#endif
  Operator* op = graph_->mutable_node(node).op.get();
  RoutingCollector collector(this, node);
  Status st = op->Process(port, std::move(tuple), &collector);
  if (!st.ok()) run_status_ = st.WithContext(op->name());
}

void PipelineExecutor::DeliverWatermark(NodeId node, int port,
                                        Timestamp watermark) {
  if (!run_status_.ok()) return;
#if CEP2ASP_CHECK_INVARIANTS
  invariants_->OnWatermark(node, port, watermark);
#endif
  NodeState& state = states_[static_cast<size_t>(node)];
  Timestamp& slot = state.input_watermarks[static_cast<size_t>(port)];
  if (watermark <= slot) return;
  slot = watermark;
  Timestamp aligned = *std::min_element(state.input_watermarks.begin(),
                                        state.input_watermarks.end());
  if (aligned <= state.aligned_watermark) return;
  state.aligned_watermark = aligned;
  Operator* op = graph_->mutable_node(node).op.get();
  RoutingCollector collector(this, node);
  Status st = op->OnWatermark(aligned, &collector);
  if (!st.ok()) {
    run_status_ = st.WithContext(op->name());
    return;
  }
  BroadcastWatermark(node, aligned);
}

void PipelineExecutor::BroadcastWatermark(NodeId from, Timestamp watermark) {
  for (const JobGraph::Edge& edge : graph_->node(from).outputs) {
    DeliverWatermark(edge.to, edge.input_port, watermark);
  }
}

bool PipelineExecutor::CheckMemory() {
  size_t state_bytes = graph_->TotalStateBytes();
  peak_state_bytes_ = std::max(peak_state_bytes_, state_bytes);
  if (state_bytes > options_.memory_limit_bytes) {
    run_status_ = Status::ResourceExhausted(
        "operator state " + std::to_string(state_bytes) +
        " bytes exceeds memory limit of " +
        std::to_string(options_.memory_limit_bytes) + " bytes");
    return false;
  }
  return true;
}

ExecutionResult PipelineExecutor::Run(const CollectSink* sink) {
  ExecutionResult result;
  DiagnosticReport report = AnalyzeJobGraph(*graph_);
  result.diagnostics = report.diagnostics();
  run_status_ = report.ToStatus();
  if (!run_status_.ok()) {
    result.error = run_status_.ToString();
    return result;
  }
#if CEP2ASP_CHECK_INVARIANTS
  invariants_ = std::make_unique<InvariantChecker>(*graph_);
#endif

  const int n = graph_->num_nodes();
  states_.assign(static_cast<size_t>(n), NodeState{});
  std::vector<NodeId> source_ids;
  for (NodeId id = 0; id < n; ++id) {
    JobGraph::Node& node = graph_->mutable_node(id);
    if (node.is_source()) {
      source_ids.push_back(id);
    } else {
      states_[static_cast<size_t>(id)].input_watermarks.assign(
          static_cast<size_t>(node.op->num_inputs()), kMinTimestamp);
      Status st = node.op->Open();
      if (!st.ok()) {
        result.error = st.WithContext(node.op->name()).ToString();
        return result;
      }
    }
  }

  // Event-time merge across sources: repeatedly pick the source whose
  // buffered head tuple has the smallest event time.
  struct PendingSource {
    NodeId id;
    Source* source;
    Tuple head;
    bool has_head = false;
  };
  std::vector<PendingSource> pending;
  for (NodeId id : source_ids) {
    PendingSource ps;
    ps.id = id;
    ps.source = graph_->mutable_node(id).source.get();
    ps.has_head = ps.source->Next(&ps.head);
    pending.push_back(std::move(ps));
  }

  start_nanos_ = clock_->NowNanos();
  int since_watermark = 0;
  int since_sample = 0;
  // create_ts stamp, refreshed every stamp_interval tuples (see
  // ExecutorOptions::stamp_interval).
  const int stamp_interval = std::max(1, options_.stamp_interval);
  Timestamp stamp_now = clock_->NowMillis();
  int until_restamp = 0;

  while (run_status_.ok()) {
    // Pick the live source with the minimum head timestamp.
    PendingSource* next = nullptr;
    for (PendingSource& ps : pending) {
      if (!ps.has_head) continue;
      if (next == nullptr || ps.head.event_time() < next->head.event_time()) {
        next = &ps;
      }
    }
    if (next == nullptr) break;  // all sources exhausted

    // Stamp creation time for latency accounting, then push downstream.
    Tuple tuple = std::move(next->head);
    if (--until_restamp < 0) {
      stamp_now = clock_->NowMillis();
      until_restamp = stamp_interval - 1;
    }
    for (size_t i = 0; i < tuple.size(); ++i) {
      tuple.mutable_event(i).create_ts = stamp_now;
    }
    ++tuples_ingested_;
    for (const JobGraph::Edge& edge : graph_->node(next->id).outputs) {
      DeliverTuple(edge.to, edge.input_port, tuple);
    }
    next->has_head = next->source->Next(&next->head);

    if (++since_watermark >= options_.watermark_interval) {
      since_watermark = 0;
      // Safe watermark: min over live sources of their high-water mark.
      // Exhausted sources no longer constrain progress.
      Timestamp wm = kMaxTimestamp;
      for (const PendingSource& ps : pending) {
        if (ps.has_head) wm = std::min(wm, ps.source->CurrentWatermark());
      }
      if (wm != kMaxTimestamp) {
        for (const PendingSource& ps : pending) {
          BroadcastWatermark(ps.id, wm);
        }
      }
      if (!CheckMemory()) break;
      if (options_.state_sample_interval > 0 &&
          (since_sample += options_.watermark_interval) >=
              options_.state_sample_interval) {
        since_sample = 0;
        StateSample sample;
        sample.elapsed_seconds =
            static_cast<double>(clock_->NowNanos() - start_nanos_) / 1e9;
        sample.state_bytes = graph_->TotalStateBytes();
        sample.tuples_processed = tuples_ingested_;
        timeline_.push_back(sample);
      }
    }
  }

  if (run_status_.ok()) {
    // Final watermark flushes every window, then Finish cascades in
    // topological order so downstream operators observe upstream flushes.
    for (NodeId id : source_ids) BroadcastWatermark(id, kMaxTimestamp);
    if (run_status_.ok()) {
      for (NodeId id : graph_->TopologicalOrder()) {
        JobGraph::Node& node = graph_->mutable_node(id);
        if (node.is_source()) continue;
        RoutingCollector collector(this, id);
        Status st = node.op->Finish(&collector);
        if (!st.ok()) {
          run_status_ = st.WithContext(node.op->name());
          break;
        }
      }
    }
    CheckMemory();
#if CEP2ASP_CHECK_INVARIANTS
    if (run_status_.ok()) invariants_->OnJobFinished();
#endif
  }

  result.elapsed_seconds =
      static_cast<double>(clock_->NowNanos() - start_nanos_) / 1e9;
  result.tuples_ingested = tuples_ingested_;
  result.peak_state_bytes = peak_state_bytes_;
  result.state_timeline = std::move(timeline_);
  if (sink != nullptr) {
    result.matches_emitted = sink->count();
    result.latency = LatencyStats::FromSamples(sink->latencies());
  }
  result.ok = run_status_.ok();
  if (!result.ok) result.error = run_status_.ToString();
  return result;
}

ExecutionResult RunJob(JobGraph* graph, const CollectSink* sink,
                       ExecutorOptions options) {
  PipelineExecutor executor(graph, options);
  return executor.Run(sink);
}

}  // namespace cep2asp
