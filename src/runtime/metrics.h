#ifndef CEP2ASP_RUNTIME_METRICS_H_
#define CEP2ASP_RUNTIME_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace cep2asp {

/// \brief Summary statistics over a set of latency samples (milliseconds).
struct LatencyStats {
  int64_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;

  /// Computes stats from raw samples (copies + sorts internally).
  static LatencyStats FromSamples(std::vector<int64_t> samples);

  std::string ToString() const;
};

/// One point of the resource-usage timeline (Figure 5).
struct StateSample {
  double elapsed_seconds = 0;
  size_t state_bytes = 0;
  int64_t tuples_processed = 0;
};

/// \brief Outcome of executing a job to completion (or failure).
struct ExecutionResult {
  bool ok = false;
  std::string error;          // set when !ok (e.g. simulated memory exhaustion)
  int64_t tuples_ingested = 0;
  int64_t matches_emitted = 0;
  double elapsed_seconds = 0;
  size_t peak_state_bytes = 0;
  std::vector<StateSample> state_timeline;
  LatencyStats latency;

  /// Processed tuples per second over the whole run; the maximum
  /// sustainable throughput of the pipeline when the run is CPU-bound
  /// (paper §5.1.3: throughput without backpressure).
  double throughput_tps() const {
    return elapsed_seconds > 0 ? static_cast<double>(tuples_ingested) / elapsed_seconds
                               : 0.0;
  }
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_METRICS_H_
