#ifndef CEP2ASP_RUNTIME_METRICS_H_
#define CEP2ASP_RUNTIME_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/clock.h"

namespace cep2asp {

/// \brief Summary statistics over a set of latency samples (milliseconds).
struct LatencyStats {
  int64_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;

  /// Computes stats from raw samples (copies + sorts internally).
  static LatencyStats FromSamples(std::vector<int64_t> samples);

  std::string ToString() const;
};

/// \brief Push-side counters of one exchange channel of the threaded
/// executor (the input of one operator), snapshot after the run.
///
/// Makes the micro-batching win observable: `batches` vs `messages` shows
/// the achieved amortization (avg_fill), the histogram shows whether
/// batches actually fill, and `blocked_push_nanos` is the time producers
/// spent stalled on backpressure.
struct ChannelStats {
  std::string consumer;  // name of the operator this channel feeds
  int subtask = 0;       // consumer subtask instance (keyed parallelism)
  bool spsc = false;     // lock-free single-producer fast path?
  /// True when the operator's input edge was fused by operator chaining:
  /// no physical channel exists, tuples were handed over in-thread. Such
  /// entries report the hand-off count as `tuples`/`messages` and zero
  /// queue traffic (batches == 0, empty fill histogram) — they exist so
  /// metrics consumers see every operator input without miscounting real
  /// exchange channels.
  bool fused = false;
  int64_t batches = 0;
  int64_t messages = 0;  // all messages, including watermarks/end markers
  /// Data rows: per-tuple messages count 1, columnar envelopes count their
  /// rows — so this is the partition's row load regardless of transfer
  /// layout (PartitionSkew divides it, keeping skew honest on hash edges
  /// that ship whole blocks).
  int64_t tuples = 0;
  /// SoA transfer breakdown: kColumnar envelopes pushed, rows they
  /// carried, and rows a columnar producer scattered into per-tuple
  /// messages because this edge could not carry blocks.
  int64_t columnar_blocks = 0;
  int64_t columnar_rows = 0;
  int64_t scattered_rows = 0;
  int64_t blocked_push_nanos = 0;

  /// fill_hist[b] counts pushed batches by fill level: bucket 0 holds
  /// single-message batches, bucket b>0 holds fills in (2^(b-1), 2^b],
  /// and the last bucket additionally absorbs anything larger.
  static constexpr int kFillBuckets = 8;
  int64_t fill_hist[kFillBuckets] = {0};

  /// Bucket index for a batch of `fill` messages.
  static int FillBucket(size_t fill);

  /// Average messages per pushed batch.
  double avg_fill() const {
    return batches > 0 ? static_cast<double>(messages) / static_cast<double>(batches)
                       : 0.0;
  }

  std::string ToString() const;
};

/// \brief Key-skew summary of one hash-partitioned operator: how evenly
/// the tuple load spread over its parallel subtask instances. Collected
/// per parallelism > 1 node by the threaded executor so imbalance is
/// visible in benches, not just aggregate throughput.
struct PartitionSkew {
  std::string op;        // operator name
  int parallelism = 1;
  std::vector<int64_t> tuples_per_subtask;
  int64_t max_tuples = 0;
  double mean_tuples = 0;

  /// max/mean partition load; 1.0 = perfectly balanced, parallelism =
  /// everything on one subtask. 0 when no tuples flowed.
  double imbalance() const {
    return mean_tuples > 0 ? static_cast<double>(max_tuples) / mean_tuples : 0.0;
  }

  std::string ToString() const;
};

/// \brief Counters of the task-based scheduler runtime: how the fixed
/// worker pool multiplexed the (chain, subtask) operator tasks. Present in
/// ExecutionResult when ThreadedExecutorOptions::use_task_scheduler ran
/// the job (used == true); all-zero with used == false under the legacy
/// thread-per-subtask path.
struct SchedulerStats {
  bool used = false;
  int worker_threads = 0;    // fixed pool size the job ran on
  int num_tasks = 0;         // cooperative tasks (sources + chain subtasks)
  int quantum_batches = 0;   // max input batches per task quantum

  struct Worker {
    int worker = 0;
    int64_t tasks_run = 0;  // quanta executed on this worker
    int64_t steals = 0;     // tasks taken from another worker's queue
    int64_t parks = 0;      // quanta that ended waiting (input/credit/timer)
    int64_t unparks = 0;    // parked tasks this worker re-enqueued
    int64_t batches = 0;    // input batches processed across all quanta
  };
  std::vector<Worker> workers;

  /// Park-until-deadline events (rate-limited source pacing).
  int64_t timer_parks = 0;

  int64_t total_tasks_run() const;
  int64_t total_steals() const;
  int64_t total_parks() const;
  int64_t total_unparks() const;
  int64_t total_batches() const;

  /// Fraction of quantum capacity actually used: batches processed over
  /// batches the executed quanta could have processed. Low utilization
  /// means tasks mostly drain-and-park (light load); near 1.0 means tasks
  /// are saturated and yield only at quantum boundaries.
  double quantum_utilization() const;

  std::string ToString() const;
};

/// One point of the resource-usage timeline (Figure 5).
struct StateSample {
  double elapsed_seconds = 0;
  size_t state_bytes = 0;
  int64_t tuples_processed = 0;
};

/// \brief Outcome of executing a job to completion (or failure).
struct ExecutionResult {
  bool ok = false;
  std::string error;          // set when !ok (e.g. simulated memory exhaustion)
  int64_t tuples_ingested = 0;
  int64_t matches_emitted = 0;
  double elapsed_seconds = 0;
  size_t peak_state_bytes = 0;
  std::vector<StateSample> state_timeline;
  LatencyStats latency;

  /// Per-input-channel exchange counters (threaded executor only; empty
  /// for the single-threaded pipeline executor). With keyed parallelism
  /// there is one entry per (operator, subtask) physical channel.
  std::vector<ChannelStats> channel_stats;

  /// Per-partitioned-operator key-skew summaries (parallelism > 1 nodes
  /// of the threaded executor only).
  std::vector<PartitionSkew> partition_skew;

  /// Worker-pool counters of the task-based scheduler (threaded executor
  /// with use_task_scheduler; `scheduler.used` is false otherwise).
  SchedulerStats scheduler;

  /// Findings of the pre-run job-graph lint pass (analysis/graph_rules.h).
  /// Executors refuse to run graphs with E-level findings: `ok` is then
  /// false and `error` carries the first error. Warnings are reported here
  /// but do not prevent execution.
  std::vector<Diagnostic> diagnostics;

  /// Processed tuples per second over the whole run; the maximum
  /// sustainable throughput of the pipeline when the run is CPU-bound
  /// (paper §5.1.3: throughput without backpressure).
  double throughput_tps() const {
    return elapsed_seconds > 0 ? static_cast<double>(tuples_ingested) / elapsed_seconds
                               : 0.0;
  }
};

}  // namespace cep2asp

#endif  // CEP2ASP_RUNTIME_METRICS_H_
