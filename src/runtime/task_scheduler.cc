#include "runtime/task_scheduler.h"

#include <chrono>
#include <mutex>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/logging.h"

namespace cep2asp {

namespace {

/// Index of the worker the current thread is running as, -1 off-pool.
/// Routes enqueues to the waker's own deque (locality) and attributes
/// unpark counts.
thread_local int tls_worker = -1;

/// Pin glibc's heap-trim and mmap thresholds once per process. The pool
/// funnels every task's allocations through a handful of worker threads,
/// so each queue drain consolidates the arena's top chunk past the default
/// 128 KiB trim threshold — glibc then returns the pages to the kernel and
/// the next burst refaults all of them (measured: ~5k extra minor faults
/// per second of streaming, a double-digit throughput tax). A streaming
/// runtime reuses that memory immediately, so keep it resident.
void TuneAllocatorForStreaming() {
#if defined(__GLIBC__)
  static std::once_flag once;
  std::call_once(once, [] {
    mallopt(M_TRIM_THRESHOLD, 64 << 20);
    mallopt(M_MMAP_THRESHOLD, 64 << 20);
  });
#endif
}

}  // namespace

TaskScheduler::TaskScheduler(int worker_threads)
    : num_workers_(worker_threads > 0 ? worker_threads : 1) {
  workers_.reserve(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
}

int64_t TaskScheduler::SteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TaskScheduler::Run(const std::vector<Task*>& tasks) {
  tasks_ = tasks;
  live_tasks_.store(static_cast<int64_t>(tasks.size()),
                    std::memory_order_relaxed);
  if (tasks.empty()) return;
  TuneAllocatorForStreaming();
  // Round-robin initial placement; work stealing rebalances from there.
  for (size_t i = 0; i < tasks.size(); ++i) {
    tasks[i]->state_.store(Task::kQueued, std::memory_order_relaxed);
    workers_[i % static_cast<size_t>(num_workers_)]->deque.PushBottom(
        tasks[i]);
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    threads.emplace_back([this, w] { WorkerLoop(w); });
  }
  for (std::thread& t : threads) t.join();
}

Task* TaskScheduler::FindWork(int worker) {
  Task* task = workers_[static_cast<size_t>(worker)]->deque.PopBottom();
  if (task != nullptr) return task;
  for (int i = 1; i < num_workers_; ++i) {
    const int victim = (worker + i) % num_workers_;
    task = workers_[static_cast<size_t>(victim)]->deque.StealTop();
    if (task != nullptr) {
      ++workers_[static_cast<size_t>(worker)]->steals;
      return task;
    }
  }
  return nullptr;
}

void TaskScheduler::WorkerLoop(int worker) {
  tls_worker = worker;
  for (;;) {
    const uint64_t gen = ready_gen_.load(std::memory_order_acquire);
    Task* task = FindWork(worker);
    if (task != nullptr) {
      RunEpisode(worker, task);
      continue;
    }
    // Idle: sleep until an enqueue bumps the generation, bounded by the
    // nearest timer deadline. Expired timers are collected under the lock
    // but woken outside it (Wake enqueues, which re-locks idle_mutex_).
    std::vector<Task*> fired;
    {
      MutexLock lock(idle_mutex_);
      for (;;) {
        if (stop_) {
          tls_worker = -1;
          return;
        }
        if (ready_gen_.load(std::memory_order_relaxed) != gen) break;
        const int64_t now = SteadyNanos();
        while (!timers_.empty() && timers_.top().deadline_nanos <= now) {
          fired.push_back(timers_.top().task);
          timers_.pop();
        }
        if (!fired.empty()) break;
        if (!timers_.empty()) {
          idle_cv_.WaitFor(idle_mutex_,
                           std::chrono::nanoseconds(
                               timers_.top().deadline_nanos - now));
        } else {
          idle_cv_.Wait(idle_mutex_);
        }
      }
    }
    for (Task* expired : fired) Wake(expired, WakeKind::kTimer);
  }
}

void TaskScheduler::RunEpisode(int worker, Task* task) {
  WorkerState& ws = *workers_[static_cast<size_t>(worker)];
  const uint32_t was =
      task->state_.exchange(Task::kRunning, std::memory_order_acq_rel);
  if (was == Task::kQueuedNotified) {
    // Carry the sticky notify into the running state; a concurrent wake
    // writing the same value is harmless.
    task->state_.store(Task::kRunningNotified, std::memory_order_release);
  }

  const Quantum quantum = task->RunQuantum();
  ++ws.tasks_run;
  ws.batches += quantum.batches;

  switch (quantum.outcome) {
    case Quantum::Outcome::kFinished: {
      task->state_.store(Task::kFinished, std::memory_order_release);
      if (live_tasks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        {
          MutexLock lock(idle_mutex_);
          stop_ = true;
        }
        idle_cv_.NotifyAll();
      }
      break;
    }
    case Quantum::Outcome::kYielded: {
      task->state_.store(Task::kQueued, std::memory_order_release);
      ws.deque.PushBottom(task);
      NotifyWorkers(/*all=*/false);
      break;
    }
    case Quantum::Outcome::kWaiting: {
      task->wait_kind_.store(static_cast<uint8_t>(quantum.wait_kind),
                             std::memory_order_relaxed);
      uint32_t expected = Task::kRunning;
      if (task->state_.compare_exchange_strong(expected, Task::kParked,
                                               std::memory_order_acq_rel)) {
        ++ws.parks;
        if (quantum.wait_kind == WakeKind::kTimer) {
          timer_parks_.fetch_add(1, std::memory_order_relaxed);
          {
            MutexLock lock(idle_mutex_);
            timers_.push(TimerEntry{quantum.deadline_nanos, task});
          }
          // Sleeping workers re-bound their wait by the new deadline.
          idle_cv_.NotifyAll();
        }
      } else {
        // A wake arrived mid-quantum (state is kRunningNotified): the
        // condition the task saw as not-ready may have changed, so requeue
        // and re-poll instead of parking — this path is what converts a
        // would-be missed wake-up into one spurious episode.
        task->state_.store(Task::kQueued, std::memory_order_release);
        ws.deque.PushBottom(task);
        NotifyWorkers(/*all=*/false);
      }
      break;
    }
  }
}

void TaskScheduler::Wake(Task* task, WakeKind kind) {
  for (;;) {
    uint32_t state = task->state_.load(std::memory_order_acquire);
    switch (state) {
      case Task::kFinished:
      case Task::kQueuedNotified:
      case Task::kRunningNotified:
        return;  // already terminal or already carries a sticky notify
      case Task::kQueued: {
        if (task->state_.compare_exchange_weak(state, Task::kQueuedNotified,
                                               std::memory_order_acq_rel)) {
          return;
        }
        break;
      }
      case Task::kRunning: {
        if (task->state_.compare_exchange_weak(state, Task::kRunningNotified,
                                               std::memory_order_acq_rel)) {
          return;
        }
        break;
      }
      case Task::kParked: {
        const WakeKind wait =
            static_cast<WakeKind>(task->wait_kind_.load(std::memory_order_relaxed));
        if (kind != WakeKind::kAny && wait != kind && wait != WakeKind::kAny) {
          return;  // parked for a different reason; this wake is not needed
        }
        if (task->state_.compare_exchange_weak(state, Task::kQueued,
                                               std::memory_order_acq_rel)) {
          const int attribution =
              (tls_worker >= 0 && tls_worker < num_workers_) ? tls_worker : 0;
          workers_[static_cast<size_t>(attribution)]->unparks.fetch_add(
              1, std::memory_order_relaxed);
          Enqueue(task);
          return;
        }
        break;
      }
      default:
        CEP2ASP_CHECK(false) << "task in impossible state " << state;
    }
  }
}

void TaskScheduler::WakeAll() {
  for (Task* task : tasks_) Wake(task, WakeKind::kAny);
  NotifyWorkers(/*all=*/true);
}

void TaskScheduler::Enqueue(Task* task) {
  const int w = (tls_worker >= 0 && tls_worker < num_workers_) ? tls_worker : 0;
  workers_[static_cast<size_t>(w)]->deque.PushBottom(task);
  NotifyWorkers(/*all=*/false);
}

void TaskScheduler::NotifyWorkers(bool all) {
  {
    // The generation bump must happen under the mutex so an idle worker
    // cannot check it and sleep between our bump and notify.
    MutexLock lock(idle_mutex_);
    ready_gen_.fetch_add(1, std::memory_order_relaxed);
  }
  if (all) {
    idle_cv_.NotifyAll();
  } else {
    idle_cv_.NotifyOne();
  }
}

SchedulerStats TaskScheduler::ConsumeStats(int quantum_batches) const {
  SchedulerStats stats;
  stats.used = true;
  stats.worker_threads = num_workers_;
  stats.num_tasks = static_cast<int>(tasks_.size());
  stats.quantum_batches = quantum_batches;
  stats.timer_parks = timer_parks_.load(std::memory_order_relaxed);
  for (int w = 0; w < num_workers_; ++w) {
    const WorkerState& ws = *workers_[static_cast<size_t>(w)];
    SchedulerStats::Worker out;
    out.worker = w;
    out.tasks_run = ws.tasks_run;
    out.steals = ws.steals;
    out.parks = ws.parks;
    out.unparks = ws.unparks.load(std::memory_order_relaxed);
    out.batches = ws.batches;
    stats.workers.push_back(out);
  }
  return stats;
}

}  // namespace cep2asp
