#ifndef CEP2ASP_ASP_INTERVAL_JOIN_H_
#define CEP2ASP_ASP_INTERVAL_JOIN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "asp/sliding_window_join.h"
#include "event/predicate.h"
#include "runtime/operator.h"

namespace cep2asp {

/// \brief Relative time bounds of an interval join (optimization O1,
/// paper §4.3.1).
///
/// A left event e1 joins right events e2 with
///   e1.ts + lower < e2.ts < e1.ts + upper   (strict bounds)
/// or the <= variants when the corresponding *_strict flag is false.
/// The conjunction uses (-W, +W); all other operators use (0, +W),
/// encoding the sequence order constraint directly in the bound.
struct IntervalBounds {
  Timestamp lower = 0;
  Timestamp upper = 0;
  bool lower_strict = true;
  bool upper_strict = true;

  static IntervalBounds ForConjunction(Timestamp w) {
    return IntervalBounds{-w, w, true, true};
  }
  static IntervalBounds ForSequence(Timestamp w) {
    return IntervalBounds{0, w, true, true};
  }

  bool Contains(Timestamp left_ts, Timestamp right_ts) const {
    Timestamp lo = left_ts + lower;
    Timestamp hi = left_ts + upper;
    bool above = lower_strict ? right_ts > lo : right_ts >= lo;
    bool below = upper_strict ? right_ts < hi : right_ts <= hi;
    return above && below;
  }
};

/// \brief Keyed interval join: content-based windows anchored at left
/// events (optimization O1).
///
/// Each left event defines its own window, so (a) no slide parameter is
/// needed, (b) every qualifying pair is emitted exactly once — no
/// duplicates from overlapping windows — and (c) no window is materialized
/// when no left event occurs, which is where the performance advantage
/// over sliding windows comes from when the left stream is the less
/// frequent one (§4.3.1, §5.2.3).
class IntervalJoinOperator : public Operator {
 public:
  IntervalJoinOperator(IntervalBounds bounds, Predicate condition,
                       TimestampMode ts_mode, std::string label = "interval-join");

  std::string name() const override { return label_; }
  int num_inputs() const override { return 2; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.stateful = true;
    traits.keyed = true;
    traits.windowed = true;
    // Content-based windows: the time horizon is the bound span, with no
    // slide (each left event anchors its own window).
    traits.window_size = bounds_.upper - bounds_.lower;
    traits.window_slide = 0;
    traits.drains_on_final_watermark = true;
    traits.predicate = &condition_;  // positional over the joined tuple
    traits.selectivity_bound = selectivity_bound_;
    return traits;
  }

  void AttachSelectivityBound(double bound) override {
    selectivity_bound_ = bound;
  }

  Status Open() override;
  Status Process(int input, Tuple tuple, Collector* out) override;
  Status OnWatermark(Timestamp watermark, Collector* out) override;
  size_t StateBytes() const override { return state_bytes_; }

  /// Partition-safe: windows are anchored at individual left events and
  /// all state is per key.
  std::unique_ptr<Operator> CloneForSubtask() const override {
    auto clone = std::make_unique<IntervalJoinOperator>(bounds_, condition_,
                                                        ts_mode_, label_);
    clone->selectivity_bound_ = selectivity_bound_;
    return clone;
  }

  int64_t pairs_evaluated() const { return pairs_evaluated_; }
  /// Windows materialized = completed left events (content-based creation).
  int64_t windows_created() const { return windows_created_; }

 private:
  struct KeyState {
    std::vector<Tuple> left;   // pending left events (windows not yet closed)
    std::vector<Tuple> right;  // right events, retained while reachable
    bool left_sorted = true;
    bool right_sorted = true;
  };

  void Flush(Timestamp watermark, Collector* out);

  IntervalBounds bounds_;
  Predicate condition_;
  double selectivity_bound_ = -1.0;
  TimestampMode ts_mode_;
  std::string label_;

  std::unordered_map<int64_t, KeyState> keys_;
  size_t state_bytes_ = 0;
  int64_t pairs_evaluated_ = 0;
  int64_t windows_created_ = 0;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ASP_INTERVAL_JOIN_H_
