#include "asp/window_aggregate.h"

#include <algorithm>

#include "common/logging.h"

namespace cep2asp {

const char* AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kAvg:
      return "avg";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
  }
  return "?";
}

WindowAggregateOperator::WindowAggregateOperator(SlidingWindowSpec window,
                                                 AggregateFn fn,
                                                 Attribute attribute,
                                                 int64_t min_count,
                                                 std::string label)
    : window_(window),
      fn_(fn),
      attribute_(attribute),
      min_count_(min_count),
      label_(std::move(label)) {}

Status WindowAggregateOperator::Open() {
  if (!window_.valid()) {
    return Status::InvalidArgument("invalid sliding window spec");
  }
  return Status::OK();
}

Status WindowAggregateOperator::Process(int input, Tuple tuple, Collector*) {
  (void)input;
  CEP2ASP_DCHECK(tuple.size() >= 1);
  KeyState& key_state = keys_[tuple.key()];
  const SimpleEvent& event = tuple.event(0);
  if (!key_state.events.empty() && event.ts < key_state.events.back().ts) {
    key_state.sorted = false;
  }
  key_state.events.push_back(event);
  state_bytes_ += sizeof(SimpleEvent);
  return Status::OK();
}

Status WindowAggregateOperator::OnWatermark(Timestamp watermark,
                                            Collector* out) {
  FireWindows(watermark, out);
  return Status::OK();
}

void WindowAggregateOperator::FireWindows(Timestamp watermark, Collector* out) {
  while (true) {
    Timestamp min_ts = MinBufferedTs();
    if (min_ts == kMaxTimestamp) {
      return;  // nothing buffered; cursor stays monotone
    }
    // Skip only provably dead windows: empty AND closed (see
    // SlidingWindowJoinOperator::FireWindows) — an empty-but-open window
    // may still receive on-time tuples, so the cursor must not pass it.
    const int64_t skip_to = std::min(window_.FirstWindow(min_ts),
                                     window_.FirstWindow(watermark));
    if (!have_window_cursor_) {
      next_window_ = skip_to;
      have_window_cursor_ = true;
    } else {
      next_window_ = std::max(next_window_, skip_to);
    }
    if (!window_.CanFire(next_window_, watermark)) return;
    FireWindow(next_window_, out);
    ++next_window_;
    // Evict events no longer covered by any future window.
    Timestamp min_keep = window_.WindowStart(next_window_);
    for (auto it = keys_.begin(); it != keys_.end();) {
      KeyState& key_state = it->second;
      if (!key_state.sorted) {
        std::sort(key_state.events.begin(), key_state.events.end(),
                  [](const SimpleEvent& a, const SimpleEvent& b) {
                    return a.ts < b.ts;
                  });
        key_state.sorted = true;
      }
      auto keep_from = std::lower_bound(
          key_state.events.begin(), key_state.events.end(), min_keep,
          [](const SimpleEvent& e, Timestamp ts) { return e.ts < ts; });
      state_bytes_ -= sizeof(SimpleEvent) *
                      static_cast<size_t>(keep_from - key_state.events.begin());
      key_state.events.erase(key_state.events.begin(), keep_from);
      if (key_state.events.empty()) {
        it = keys_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void WindowAggregateOperator::FireWindow(int64_t k, Collector* out) {
  const Timestamp begin = window_.WindowStart(k);
  const Timestamp end = window_.WindowEnd(k);
  for (auto& [key, key_state] : keys_) {
    if (!key_state.sorted) {
      std::sort(key_state.events.begin(), key_state.events.end(),
                [](const SimpleEvent& a, const SimpleEvent& b) {
                  return a.ts < b.ts;
                });
      key_state.sorted = true;
    }
    auto lo = std::lower_bound(
        key_state.events.begin(), key_state.events.end(), begin,
        [](const SimpleEvent& e, Timestamp ts) { return e.ts < ts; });
    auto hi = std::lower_bound(
        key_state.events.begin(), key_state.events.end(), end,
        [](const SimpleEvent& e, Timestamp ts) { return e.ts < ts; });
    int64_t count = hi - lo;
    if (count == 0 || count < min_count_) continue;

    double sum = 0, min_v = 0, max_v = 0;
    bool first = true;
    for (auto e = lo; e != hi; ++e) {
      double v = GetAttribute(*e, attribute_);
      sum += v;
      if (first) {
        min_v = max_v = v;
        first = false;
      } else {
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
      }
    }
    double result = 0;
    switch (fn_) {
      case AggregateFn::kCount:
        result = static_cast<double>(count);
        break;
      case AggregateFn::kSum:
        result = sum;
        break;
      case AggregateFn::kAvg:
        result = sum / static_cast<double>(count);
        break;
      case AggregateFn::kMin:
        result = min_v;
        break;
      case AggregateFn::kMax:
        result = max_v;
        break;
    }

    SimpleEvent agg = *(hi - 1);  // inherit type/id/location of last event
    agg.value = result;
    Tuple out_tuple(agg);
    out_tuple.set_key(key);
    out->Emit(std::move(out_tuple));
  }
}

Timestamp WindowAggregateOperator::MinBufferedTs() const {
  Timestamp min_ts = kMaxTimestamp;
  for (const auto& [key, key_state] : keys_) {
    (void)key;
    for (const SimpleEvent& e : key_state.events) {
      min_ts = std::min(min_ts, e.ts);
      if (key_state.sorted) break;
    }
  }
  return min_ts;
}

}  // namespace cep2asp
