#include "asp/window_apply.h"

#include <algorithm>

#include "common/logging.h"

namespace cep2asp {

WindowApplyOperator::WindowApplyOperator(SlidingWindowSpec window, Fn fn,
                                         std::string label)
    : window_(window), fn_(std::move(fn)), label_(std::move(label)) {}

Status WindowApplyOperator::Open() {
  if (!window_.valid()) {
    return Status::InvalidArgument("invalid sliding window spec");
  }
  if (!fn_) return Status::InvalidArgument("window apply: no function");
  return Status::OK();
}

Status WindowApplyOperator::Process(int input, Tuple tuple, Collector*) {
  (void)input;
  KeyState& key_state = keys_[tuple.key()];
  const SimpleEvent& event = tuple.event(0);
  if (!key_state.events.empty() && event.ts < key_state.events.back().ts) {
    key_state.sorted = false;
  }
  key_state.events.push_back(event);
  state_bytes_ += sizeof(SimpleEvent);
  return Status::OK();
}

Status WindowApplyOperator::OnWatermark(Timestamp watermark, Collector* out) {
  FireWindows(watermark, out);
  return Status::OK();
}

void WindowApplyOperator::SortKey(KeyState* key_state) {
  if (!key_state->sorted) {
    std::sort(key_state->events.begin(), key_state->events.end(),
              [](const SimpleEvent& a, const SimpleEvent& b) {
                return a.ts < b.ts;
              });
    key_state->sorted = true;
  }
}

void WindowApplyOperator::FireWindows(Timestamp watermark, Collector* out) {
  while (true) {
    Timestamp min_ts = MinBufferedTs();
    if (min_ts == kMaxTimestamp) {
      return;  // nothing buffered; cursor stays monotone
    }
    // Skip only provably dead windows: empty AND closed (see
    // SlidingWindowJoinOperator::FireWindows) — an empty-but-open window
    // may still receive on-time tuples, so the cursor must not pass it.
    const int64_t skip_to = std::min(window_.FirstWindow(min_ts),
                                     window_.FirstWindow(watermark));
    if (!have_window_cursor_) {
      next_window_ = skip_to;
      have_window_cursor_ = true;
    } else {
      next_window_ = std::max(next_window_, skip_to);
    }
    if (!window_.CanFire(next_window_, watermark)) return;

    const Timestamp begin = window_.WindowStart(next_window_);
    const Timestamp end = window_.WindowEnd(next_window_);
    std::vector<SimpleEvent> content;
    for (auto& [key, key_state] : keys_) {
      SortKey(&key_state);
      auto lo = std::lower_bound(
          key_state.events.begin(), key_state.events.end(), begin,
          [](const SimpleEvent& e, Timestamp ts) { return e.ts < ts; });
      auto hi = std::lower_bound(
          key_state.events.begin(), key_state.events.end(), end,
          [](const SimpleEvent& e, Timestamp ts) { return e.ts < ts; });
      if (lo == hi) continue;
      content.assign(lo, hi);
      fn_(key, begin, end, content, out);
    }

    ++next_window_;
    Timestamp min_keep = window_.WindowStart(next_window_);
    for (auto it = keys_.begin(); it != keys_.end();) {
      KeyState& key_state = it->second;
      SortKey(&key_state);
      auto keep_from = std::lower_bound(
          key_state.events.begin(), key_state.events.end(), min_keep,
          [](const SimpleEvent& e, Timestamp ts) { return e.ts < ts; });
      state_bytes_ -= sizeof(SimpleEvent) *
                      static_cast<size_t>(keep_from - key_state.events.begin());
      key_state.events.erase(key_state.events.begin(), keep_from);
      if (key_state.events.empty()) {
        it = keys_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

Timestamp WindowApplyOperator::MinBufferedTs() const {
  Timestamp min_ts = kMaxTimestamp;
  for (const auto& [key, key_state] : keys_) {
    (void)key;
    for (const SimpleEvent& e : key_state.events) {
      min_ts = std::min(min_ts, e.ts);
      if (key_state.sorted) break;
    }
  }
  return min_ts;
}

}  // namespace cep2asp
