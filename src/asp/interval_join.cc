#include "asp/interval_join.h"

#include <algorithm>

#include "common/logging.h"

namespace cep2asp {

IntervalJoinOperator::IntervalJoinOperator(IntervalBounds bounds,
                                           Predicate condition,
                                           TimestampMode ts_mode,
                                           std::string label)
    : bounds_(bounds),
      condition_(std::move(condition)),
      ts_mode_(ts_mode),
      label_(std::move(label)) {}

Status IntervalJoinOperator::Open() {
  if (bounds_.lower > bounds_.upper) {
    return Status::InvalidArgument("interval join: lower bound above upper");
  }
  return Status::OK();
}

Status IntervalJoinOperator::Process(int input, Tuple tuple, Collector*) {
  CEP2ASP_DCHECK(input == 0 || input == 1);
  KeyState& key_state = keys_[tuple.key()];
  state_bytes_ += tuple.MemoryBytes();
  std::vector<Tuple>& buffer = input == 0 ? key_state.left : key_state.right;
  bool& sorted = input == 0 ? key_state.left_sorted : key_state.right_sorted;
  if (!buffer.empty() && tuple.event_time() < buffer.back().event_time()) {
    sorted = false;
  }
  buffer.push_back(std::move(tuple));
  return Status::OK();
}

Status IntervalJoinOperator::OnWatermark(Timestamp watermark, Collector* out) {
  Flush(watermark, out);
  return Status::OK();
}

void IntervalJoinOperator::Flush(Timestamp watermark, Collector* out) {
  // A left event e1 is complete when every possible partner has arrived:
  // e1.ts + upper < watermark  (partners have ts < e1.ts + upper <= wm).
  // Saturation guard: near end-of-stream the executor sends
  // watermark = kMaxTimestamp; avoid overflow by clamping.
  for (auto it = keys_.begin(); it != keys_.end();) {
    KeyState& key_state = it->second;
    if (!key_state.left_sorted) {
      std::stable_sort(key_state.left.begin(), key_state.left.end(),
                       [](const Tuple& a, const Tuple& b) {
                         return a.event_time() < b.event_time();
                       });
      key_state.left_sorted = true;
    }
    if (!key_state.right_sorted) {
      std::stable_sort(key_state.right.begin(), key_state.right.end(),
                       [](const Tuple& a, const Tuple& b) {
                         return a.event_time() < b.event_time();
                       });
      key_state.right_sorted = true;
    }

    size_t completed = 0;
    for (const Tuple& left : key_state.left) {
      Timestamp ts = left.event_time();
      // Conservative completeness: all partners have ts <= e1.ts + upper,
      // and every event with ts < wm has arrived, so e1.ts + upper < wm
      // guarantees completeness for strict and non-strict bounds alike.
      bool complete =
          watermark == kMaxTimestamp || ts < watermark - bounds_.upper;
      if (!complete) break;
      ++windows_created_;
      // Right events within (ts + lower, ts + upper): binary search the
      // conservative closed range, then test exact bounds per pair.
      auto lo = std::lower_bound(
          key_state.right.begin(), key_state.right.end(), ts + bounds_.lower,
          [](const Tuple& t, Timestamp x) { return t.event_time() < x; });
      for (auto r = lo; r != key_state.right.end(); ++r) {
        if (r->event_time() > ts + bounds_.upper) break;
        if (!bounds_.Contains(ts, r->event_time())) continue;
        ++pairs_evaluated_;
        Tuple joined = Tuple::Concat(left, *r);
        if (!condition_.IsTrue() && !condition_.EvalOnTuple(joined)) continue;
        joined.set_event_time(ts_mode_ == TimestampMode::kMax ? joined.tse()
                                                              : joined.tsb());
        out->Emit(std::move(joined));
      }
      ++completed;
    }
    for (size_t i = 0; i < completed; ++i) {
      state_bytes_ -= key_state.left[i].MemoryBytes();
    }
    key_state.left.erase(key_state.left.begin(),
                         key_state.left.begin() + static_cast<long>(completed));

    // A right event e2 stays reachable while some pending or future left
    // event's window can contain it. Pending/future lefts have
    // ts > watermark - upper, so their windows start above
    // watermark - upper + lower.
    if (watermark != kMaxTimestamp && watermark != kMinTimestamp) {
      Timestamp keep_above = watermark - bounds_.upper + bounds_.lower;
      auto keep_from = std::lower_bound(
          key_state.right.begin(), key_state.right.end(), keep_above,
          [](const Tuple& t, Timestamp x) { return t.event_time() <= x; });
      for (auto e = key_state.right.begin(); e != keep_from; ++e) {
        state_bytes_ -= e->MemoryBytes();
      }
      key_state.right.erase(key_state.right.begin(), keep_from);
    } else if (watermark == kMaxTimestamp) {
      for (const Tuple& t : key_state.right) state_bytes_ -= t.MemoryBytes();
      key_state.right.clear();
    }

    if (key_state.left.empty() && key_state.right.empty()) {
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cep2asp
