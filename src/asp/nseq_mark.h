#ifndef CEP2ASP_ASP_NSEQ_MARK_H_
#define CEP2ASP_ASP_NSEQ_MARK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "event/event.h"
#include "runtime/operator.h"

namespace cep2asp {

/// \brief The NSEQ marking UDF of the paper's negated-sequence mapping
/// (§4.1, Discussion): consumes the union of T1 and T2 and, for every
/// e1 ∈ T1, emits e1 with the additional attribute
///
///   ats = ts of the first e2 ∈ T2 in (e1.ts, e1.ts + W), or
///   ats = e1.ts + W when no such e2 occurred.
///
/// A downstream SEQ join with T3 plus the selection ats > e3.ts then
/// guarantees that no e2 occurred in (e1.ts, e3.ts) — without the
/// buffering and retrospective pruning of partial matches that the NFA
/// approach needs.
///
/// This operator is keyed: marking happens per partition key, matching the
/// keyed joins it feeds. For unkeyed plans all tuples carry the same key.
class NseqMarkOperator : public Operator {
 public:
  NseqMarkOperator(EventTypeId positive_type, EventTypeId negated_type,
                   Timestamp window_size, std::string label = "nseq-mark");

  std::string name() const override { return label_; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.stateful = true;
    traits.keyed = true;
    traits.windowed = true;
    traits.window_size = window_size_;
    traits.window_slide = 0;  // content-based: one lookahead per T1 event
    traits.drains_on_final_watermark = true;
    return traits;
  }

  Status Process(int input, Tuple tuple, Collector* out) override;
  Status OnWatermark(Timestamp watermark, Collector* out) override;
  size_t StateBytes() const override { return state_bytes_; }

  /// Partition-safe: marking is per key (positive and negated events of a
  /// key meet in the same partition).
  std::unique_ptr<Operator> CloneForSubtask() const override {
    return std::make_unique<NseqMarkOperator>(positive_type_, negated_type_,
                                              window_size_, label_);
  }

 private:
  struct KeyState {
    std::vector<SimpleEvent> pending_t1;  // ordered by ts (sorted lazily)
    std::vector<SimpleEvent> seen_t2;     // ordered by ts (sorted lazily)
    bool t1_sorted = true;
    bool t2_sorted = true;
  };

  void Flush(Timestamp watermark, Collector* out);

  EventTypeId positive_type_;
  EventTypeId negated_type_;
  Timestamp window_size_;
  std::string label_;

  std::unordered_map<int64_t, KeyState> keys_;
  size_t state_bytes_ = 0;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ASP_NSEQ_MARK_H_
