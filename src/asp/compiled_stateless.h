#ifndef CEP2ASP_ASP_COMPILED_STATELESS_H_
#define CEP2ASP_ASP_COMPILED_STATELESS_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "event/expr_program.h"
#include "event/expr_verifier.h"
#include "runtime/operator.h"

namespace cep2asp {

/// \brief A stateless filter / key-map / fused filter→key stage running a
/// compiled ExprProgram instead of interpreting a Predicate or calling a
/// std::function per tuple.
///
/// The batch path is the point: ProcessBatch runs the whole MessageBatch
/// through one tight loop — one bytecode execution per tuple, failing
/// tuples compacted out in place — and hands the survivors downstream with
/// a single EmitBatch, so a fused filter→key prefix costs no per-tuple
/// virtual hop at all. Emitted by the translator for translator-generated
/// predicates; user-supplied lambdas keep the interpreted operators.
class CompiledStatelessOperator : public Operator {
 public:
  /// `declared_events` is the schema capacity the program's event operands
  /// are verified against (translator programs run in broadcast mode, so
  /// every operand is event 0 and the default of 1 is exact).
  CompiledStatelessOperator(ExprProgram program, std::string label,
                            size_t declared_events = 1)
      : program_(std::move(program)),
        label_(std::move(label)),
        declared_events_(declared_events),
        note_(std::to_string(program_.num_instructions()) + " insns" +
              (program_.assigns_key() ? ", assigns key" : "")) {
    CEP2ASP_CHECK(program_.ok()) << "compilation failed for " << label_;
#ifndef NDEBUG
    // Every emitter output is statically verified before it can run: a
    // malformed encoding aborts here instead of reading out of bounds in
    // the dispatch loop.
    const Status verdict = ExprVerifier::Verify(program_, declared_events_);
    CEP2ASP_CHECK(verdict.ok())
        << "expr verifier rejected " << label_ << ": " << verdict.message();
    if (program_.IsColumnarExecutable()) {
      // The columnar entry point is a second execution mode of the same
      // bytecode; verify it under the columnar rules too (E321 covers both).
      const Status columnar = ExprVerifier::VerifyColumnar(program_,
                                                           declared_events_);
      CEP2ASP_CHECK(columnar.ok()) << "columnar expr verifier rejected "
                                   << label_ << ": " << columnar.message();
    }
#endif
  }

  std::string name() const override { return label_; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.assigns_key = program_.assigns_key();
    traits.expr_exec = ExprExec::kCompiled;
    traits.expr_note = note_.c_str();
    traits.program = &program_;
    traits.expr_capacity = declared_events_;
    traits.selectivity_bound = selectivity_bound_;
    traits.columnar_capable = program_.IsColumnarExecutable();
    return traits;
  }

  void AttachSelectivityBound(double bound) override {
    selectivity_bound_ = bound;
  }

  Status Process(int input, Tuple tuple, Collector* out) override {
    (void)input;
    if (program_.Run(&tuple)) out->Emit(std::move(tuple));
    return Status::OK();
  }

  Status ProcessBatch(int input, MessageBatch* batch, Collector* out) override {
    (void)input;
    Message* data = batch->data();
    const size_t n = batch->size();
    size_t kept = 0;
    // Vectorized: the program runs term-by-term across the chunk (strided
    // over the Message layout), then one pass compacts survivors in place.
    uint8_t mask[kChunk];
    for (size_t begin = 0; begin < n; begin += kChunk) {
      const size_t len = std::min(n - begin, kChunk);
      program_.RunBatch(&data[begin].tuple, sizeof(Message), len, mask);
      for (size_t i = 0; i < len; ++i) {
        if (mask[i]) {
          if (kept != begin + i) data[kept] = std::move(data[begin + i]);
          ++kept;
        }
      }
    }
    batch->resize(kept);
    out->EmitBatch(batch);
    return Status::OK();
  }

  Status ProcessColumnar(int input, std::unique_ptr<ColumnarBatch> block,
                         Collector* out) override {
    (void)input;
    // Fused prefix programs are always columnar-executable (the translator
    // emits only fused term opcodes); a stack-form program would fall back
    // to the base-class scatter shim via RunColumnar returning false.
    const ExprColumnarView view = block->View();
    if (!program_.RunColumnar(view)) {
      return Operator::ProcessColumnar(input, std::move(block), out);
    }
    block->Compact();
    if (!block->empty()) out->EmitColumnar(std::move(block));
    return Status::OK();
  }

  std::unique_ptr<Operator> CloneForSubtask() const override {
    auto clone = std::make_unique<CompiledStatelessOperator>(program_, label_,
                                                             declared_events_);
    clone->selectivity_bound_ = selectivity_bound_;
    return clone;
  }

  const ExprProgram& program() const { return program_; }

 private:
  /// Selection-mask chunk size: large enough that per-chunk costs vanish
  /// behind the per-tuple work, small enough to live on the stack.
  static constexpr size_t kChunk = 256;

  ExprProgram program_;
  std::string label_;
  size_t declared_events_ = 1;
  std::string note_;
  double selectivity_bound_ = -1.0;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ASP_COMPILED_STATELESS_H_
