#ifndef CEP2ASP_ASP_WINDOW_AGGREGATE_H_
#define CEP2ASP_ASP_WINDOW_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "asp/window.h"
#include "event/event.h"
#include "event/predicate.h"
#include "runtime/operator.h"

namespace cep2asp {

enum class AggregateFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateFnToString(AggregateFn fn);

/// \brief Keyed sliding-window aggregation (optimization O2, §4.3.2).
///
/// Emits one tuple per non-empty (key, window): the aggregate of
/// `attribute` over the window content, carried in the output event's
/// value. The output event keeps the input event type and key; its ts is
/// the window's last contained event time so downstream operators relate
/// it correctly in event time.
///
/// For the ITER^m mapping the translator appends `min_count = m`: the
/// window only fires if it holds at least m qualifying events — the
/// paper's Kleene+-style "n >= m" check under skip-till-any-match. Empty
/// windows never fire, which is why O2 cannot express Kleene*.
class WindowAggregateOperator : public Operator {
 public:
  WindowAggregateOperator(SlidingWindowSpec window, AggregateFn fn,
                          Attribute attribute, int64_t min_count = 0,
                          std::string label = "win-agg");

  std::string name() const override { return label_; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.stateful = true;
    traits.keyed = true;
    traits.windowed = true;
    traits.window_size = window_.size;
    traits.window_slide = window_.slide;
    traits.drains_on_final_watermark = true;
    return traits;
  }

  Status Open() override;
  Status Process(int input, Tuple tuple, Collector* out) override;
  Status OnWatermark(Timestamp watermark, Collector* out) override;
  size_t StateBytes() const override { return state_bytes_; }

  /// Partition-safe: absolute window indices, per-key state.
  std::unique_ptr<Operator> CloneForSubtask() const override {
    return std::make_unique<WindowAggregateOperator>(window_, fn_, attribute_,
                                                     min_count_, label_);
  }

 private:
  struct KeyState {
    std::vector<SimpleEvent> events;  // head events, kept sorted lazily
    bool sorted = true;
  };

  void FireWindows(Timestamp watermark, Collector* out);
  void FireWindow(int64_t k, Collector* out);
  Timestamp MinBufferedTs() const;

  SlidingWindowSpec window_;
  AggregateFn fn_;
  Attribute attribute_;
  int64_t min_count_;
  std::string label_;

  std::unordered_map<int64_t, KeyState> keys_;
  int64_t next_window_ = 0;
  bool have_window_cursor_ = false;
  size_t state_bytes_ = 0;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ASP_WINDOW_AGGREGATE_H_
