#include "asp/nseq_mark.h"

#include <algorithm>

#include "common/logging.h"

namespace cep2asp {

namespace {
void SortByTs(std::vector<SimpleEvent>* events, bool* sorted) {
  if (!*sorted) {
    std::sort(events->begin(), events->end(),
              [](const SimpleEvent& a, const SimpleEvent& b) {
                return a.ts < b.ts;
              });
    *sorted = true;
  }
}
}  // namespace

NseqMarkOperator::NseqMarkOperator(EventTypeId positive_type,
                                   EventTypeId negated_type,
                                   Timestamp window_size, std::string label)
    : positive_type_(positive_type),
      negated_type_(negated_type),
      window_size_(window_size),
      label_(std::move(label)) {}

Status NseqMarkOperator::Process(int input, Tuple tuple, Collector*) {
  (void)input;
  const SimpleEvent& event = tuple.event(0);
  KeyState& key_state = keys_[tuple.key()];
  if (event.type == positive_type_) {
    if (!key_state.pending_t1.empty() && event.ts < key_state.pending_t1.back().ts) {
      key_state.t1_sorted = false;
    }
    key_state.pending_t1.push_back(event);
    state_bytes_ += sizeof(SimpleEvent);
  } else if (event.type == negated_type_) {
    if (!key_state.seen_t2.empty() && event.ts < key_state.seen_t2.back().ts) {
      key_state.t2_sorted = false;
    }
    key_state.seen_t2.push_back(event);
    state_bytes_ += sizeof(SimpleEvent);
  }
  // Events of other types are irrelevant to the mark and dropped; the
  // translator routes only T1 and T2 here.
  return Status::OK();
}

Status NseqMarkOperator::OnWatermark(Timestamp watermark, Collector* out) {
  Flush(watermark, out);
  return Status::OK();
}

void NseqMarkOperator::Flush(Timestamp watermark, Collector* out) {
  for (auto it = keys_.begin(); it != keys_.end();) {
    KeyState& key_state = it->second;
    SortByTs(&key_state.pending_t1, &key_state.t1_sorted);
    SortByTs(&key_state.seen_t2, &key_state.t2_sorted);

    // An e1 can be marked once its full lookahead (e1.ts, e1.ts + W) is
    // covered: e1.ts + W < watermark (conservative).
    size_t completed = 0;
    for (const SimpleEvent& e1 : key_state.pending_t1) {
      // Non-strict bound: all T2 with ts < e1.ts + W have arrived once
      // wm >= e1.ts + W. Emitting at exactly that watermark also keeps e1
      // ahead of any downstream window that closes at e1.ts + W (the
      // executor delivers an operator's watermark-triggered emissions
      // before forwarding the watermark itself).
      bool complete =
          watermark == kMaxTimestamp || e1.ts <= watermark - window_size_;
      if (!complete) break;
      // First T2 strictly after e1 within the window.
      auto first_after = std::upper_bound(
          key_state.seen_t2.begin(), key_state.seen_t2.end(), e1.ts,
          [](Timestamp ts, const SimpleEvent& e) { return ts < e.ts; });
      SimpleEvent marked = e1;
      if (first_after != key_state.seen_t2.end() &&
          first_after->ts < e1.ts + window_size_) {
        marked.aux_ts = first_after->ts;
      } else {
        marked.aux_ts = e1.ts + window_size_;
      }
      Tuple out_tuple(marked);
      out_tuple.set_key(it->first);
      out->Emit(std::move(out_tuple));
      ++completed;
    }
    state_bytes_ -= sizeof(SimpleEvent) * completed;
    key_state.pending_t1.erase(key_state.pending_t1.begin(),
                               key_state.pending_t1.begin() +
                                   static_cast<long>(completed));

    // A T2 event is dead once no pending or future T1's lookahead can
    // reach it: pending/future T1 have ts >= watermark - W, so keep T2
    // with ts > watermark - W.
    if (watermark != kMaxTimestamp && watermark != kMinTimestamp) {
      Timestamp keep_above = watermark - window_size_;
      auto keep_from = std::lower_bound(
          key_state.seen_t2.begin(), key_state.seen_t2.end(), keep_above,
          [](const SimpleEvent& e, Timestamp ts) { return e.ts <= ts; });
      state_bytes_ -= sizeof(SimpleEvent) *
                      static_cast<size_t>(keep_from - key_state.seen_t2.begin());
      key_state.seen_t2.erase(key_state.seen_t2.begin(), keep_from);
    } else if (watermark == kMaxTimestamp) {
      state_bytes_ -= sizeof(SimpleEvent) * key_state.seen_t2.size();
      key_state.seen_t2.clear();
    }

    if (key_state.pending_t1.empty() && key_state.seen_t2.empty()) {
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cep2asp
