#ifndef CEP2ASP_ASP_STATELESS_H_
#define CEP2ASP_ASP_STATELESS_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "event/predicate.h"
#include "runtime/operator.h"

namespace cep2asp {

/// \brief Selection: forwards tuples satisfying a predicate (paper §2,
/// operator (1); ASP "filter").
class FilterOperator : public Operator {
 public:
  using Fn = std::function<bool(const Tuple&)>;

  /// `expr_note` feeds the I317 expression-compilation report; raw
  /// constructor calls are user-supplied lambdas the compiler cannot see.
  explicit FilterOperator(Fn fn, std::string label = "filter",
                          const char* expr_note = "user-supplied lambda")
      : fn_(std::move(fn)), label_(std::move(label)), expr_note_(expr_note) {}

  /// Filter from a single-variable predicate applied to the head event.
  static std::unique_ptr<FilterOperator> FromPredicate(Predicate predicate,
                                                       std::string label = "filter") {
    auto pred = std::make_shared<Predicate>(std::move(predicate));
    auto op = std::make_unique<FilterOperator>(
        [pred](const Tuple& t) { return pred->EvalOnEvent(t.event(0)); },
        std::move(label), "interpreted predicate (head event)");
    op->predicate_ = std::move(pred);
    op->predicate_broadcast_ = true;
    return op;
  }

  /// Filter evaluating a predicate over the whole composed tuple
  /// (variable indices = event positions).
  static std::unique_ptr<FilterOperator> FromTuplePredicate(
      Predicate predicate, std::string label = "filter") {
    auto pred = std::make_shared<Predicate>(std::move(predicate));
    auto op = std::make_unique<FilterOperator>(
        [pred](const Tuple& t) { return pred->EvalOnTuple(t); },
        std::move(label), "interpreted predicate (positional)");
    op->predicate_ = std::move(pred);
    return op;
  }

  std::string name() const override { return label_; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.expr_exec = ExprExec::kInterpreted;
    traits.expr_note = expr_note_;
    traits.predicate = predicate_.get();
    traits.predicate_broadcast = predicate_broadcast_;
    traits.selectivity_bound = selectivity_bound_;
    return traits;
  }

  void AttachSelectivityBound(double bound) override {
    selectivity_bound_ = bound;
  }

  Status Process(int input, Tuple tuple, Collector* out) override {
    (void)input;
    if (fn_(tuple)) out->Emit(std::move(tuple));
    return Status::OK();
  }

  std::unique_ptr<Operator> CloneForSubtask() const override {
    auto clone = std::make_unique<FilterOperator>(fn_, label_, expr_note_);
    clone->predicate_ = predicate_;
    clone->predicate_broadcast_ = predicate_broadcast_;
    clone->selectivity_bound_ = selectivity_bound_;
    return clone;
  }

 private:
  Fn fn_;
  std::string label_;
  const char* expr_note_;
  /// The predicate `fn_` interprets, when known (factory-built filters).
  /// Shared with the evaluation lambda; exposed through Traits so the
  /// range pass can reason about factory filters without RTTI.
  std::shared_ptr<const Predicate> predicate_;
  bool predicate_broadcast_ = false;
  double selectivity_bound_ = -1.0;
};

/// \brief Projection: transforms each tuple (paper §2, operator (2); ASP
/// "map"). Used by the translator to achieve union compatibility, assign
/// join keys, and redefine event time.
class MapOperator : public Operator {
 public:
  using Fn = std::function<Tuple(Tuple)>;

  /// `assigns_key` declares (for the plan analyzer) that `fn` rewrites the
  /// partition key; the key-assigning factories below set it. `expr_note`
  /// feeds the I317 expression-compilation report.
  explicit MapOperator(Fn fn, std::string label = "map",
                       bool assigns_key = false,
                       const char* expr_note = "user-supplied lambda")
      : fn_(std::move(fn)),
        label_(std::move(label)),
        assigns_key_(assigns_key),
        expr_note_(expr_note) {}

  /// Map assigning a constant partition key: the paper's workaround for
  /// missing Cartesian-product support (§4.2.1) — a precedent map
  /// operation that assigns a uniform key to each event.
  static std::unique_ptr<MapOperator> AssignConstantKey(int64_t key) {
    auto op = std::make_unique<MapOperator>(
        [key](Tuple t) {
          t.set_key(key);
          return t;
        },
        "map(key:=const)", /*assigns_key=*/true, "interpreted key:=const");
    op->key_is_constant_ = true;
    op->key_constant_ = key;
    return op;
  }

  /// Map assigning the key from an attribute of one constituent event
  /// (enables Equi-Join partitioning, O3). Key contract: the attribute
  /// must hold integral finite values — AttributeToKey asserts the
  /// round-trip in debug builds, and plans keying by a continuous
  /// attribute are flagged by the analyzer (W213).
  static std::unique_ptr<MapOperator> KeyByAttribute(size_t event_index,
                                                     Attribute attr) {
    auto op = std::make_unique<MapOperator>(
        [event_index, attr](Tuple t) {
          t.set_key(AttributeToKey(GetAttribute(t.event(event_index), attr)));
          return t;
        },
        "map(key:=attr)", /*assigns_key=*/true, "interpreted key:=attr");
    op->key_source_event_ = static_cast<int>(event_index);
    op->key_source_attr_ = attr;
    return op;
  }

  std::string name() const override { return label_; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.assigns_key = assigns_key_;
    traits.expr_exec = ExprExec::kInterpreted;
    traits.expr_note = expr_note_;
    traits.key_source_event = key_source_event_;
    traits.key_source_attr = key_source_attr_;
    traits.key_is_constant = key_is_constant_;
    traits.key_constant = key_constant_;
    return traits;
  }

  Status Process(int input, Tuple tuple, Collector* out) override {
    (void)input;
    out->Emit(fn_(std::move(tuple)));
    return Status::OK();
  }

  std::unique_ptr<Operator> CloneForSubtask() const override {
    auto clone =
        std::make_unique<MapOperator>(fn_, label_, assigns_key_, expr_note_);
    clone->key_source_event_ = key_source_event_;
    clone->key_source_attr_ = key_source_attr_;
    clone->key_is_constant_ = key_is_constant_;
    clone->key_constant_ = key_constant_;
    return clone;
  }

 private:
  Fn fn_;
  std::string label_;
  bool assigns_key_;
  const char* expr_note_;
  /// Key provenance of the factory-built key maps (range-pass metadata).
  int key_source_event_ = -1;
  Attribute key_source_attr_ = Attribute::kId;
  bool key_is_constant_ = false;
  int64_t key_constant_ = 0;
};

/// \brief Set union of n input streams (paper Eq. 11 target). Streams
/// share the common schema, so union compatibility holds by construction;
/// heterogeneous schemas would be aligned by a preceding MapOperator.
class UnionOperator : public Operator {
 public:
  explicit UnionOperator(int num_inputs) : num_inputs_(num_inputs) {}

  std::string name() const override {
    return "union" + std::to_string(num_inputs_);
  }

  int num_inputs() const override { return num_inputs_; }

  Status Process(int input, Tuple tuple, Collector* out) override {
    (void)input;
    out->Emit(std::move(tuple));
    return Status::OK();
  }

  std::unique_ptr<Operator> CloneForSubtask() const override {
    return std::make_unique<UnionOperator>(num_inputs_);
  }

 private:
  int num_inputs_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ASP_STATELESS_H_
