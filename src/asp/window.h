#ifndef CEP2ASP_ASP_WINDOW_H_
#define CEP2ASP_ASP_WINDOW_H_

#include <cstdint>

#include "common/clock.h"
#include "common/logging.h"

namespace cep2asp {

/// Floor division for possibly negative numerators (window indices near
/// stream start).
inline int64_t FloorDiv(int64_t a, int64_t b) {
  CEP2ASP_DCHECK(b > 0);
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// \brief Time-based sliding window specification (paper §3.1.2).
///
/// Window k covers the interval [k*slide, k*slide + size). The
/// intra-window semantic (Eq. 4) assigns event ts to every window whose
/// interval contains it; the inter-window semantic (Eq. 5) advances starts
/// by `slide`. Theorem 2 requires slide <= the smallest inter-arrival gap
/// (slide-by-one) for lossless detection; the translator defaults to the
/// paper's one-minute slide for minute-resolution streams.
struct SlidingWindowSpec {
  Timestamp size = 0;
  Timestamp slide = 0;

  bool valid() const { return size > 0 && slide > 0 && slide <= size; }

  /// First window index containing `ts`.
  int64_t FirstWindow(Timestamp ts) const { return FloorDiv(ts - size, slide) + 1; }

  /// Last window index containing `ts`.
  int64_t LastWindow(Timestamp ts) const { return FloorDiv(ts, slide); }

  Timestamp WindowStart(int64_t k) const { return k * slide; }
  Timestamp WindowEnd(int64_t k) const { return k * slide + size; }

  /// True when window k may fire: every event with ts < WindowEnd(k) has
  /// been observed (watermark semantics: future events have ts >= wm).
  bool CanFire(int64_t k, Timestamp watermark) const {
    return WindowEnd(k) <= watermark;
  }
};

}  // namespace cep2asp

#endif  // CEP2ASP_ASP_WINDOW_H_
