#include "asp/sliding_window_join.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cep2asp {

namespace {

bool TupleTsLess(const Tuple& a, const Tuple& b) {
  return a.event_time() < b.event_time();
}

}  // namespace

void SlidingWindowJoinOperator::SortIfNeeded(SideBuffer* side) {
  if (!side->sorted) {
    std::stable_sort(side->tuples.begin() + static_cast<ptrdiff_t>(side->head),
                     side->tuples.end(), TupleTsLess);
    side->sorted = true;
  }
}

SlidingWindowJoinOperator::SlidingWindowJoinOperator(SlidingWindowSpec window,
                                                     Predicate condition,
                                                     TimestampMode ts_mode,
                                                     std::string label,
                                                     bool dedup_pairs)
    : window_(window),
      condition_(std::move(condition)),
      ts_mode_(ts_mode),
      label_(std::move(label)),
      dedup_pairs_(dedup_pairs) {}

Status SlidingWindowJoinOperator::Open() {
  if (!window_.valid()) {
    return Status::InvalidArgument("invalid sliding window spec");
  }
  return Status::OK();
}

SlidingWindowJoinOperator::KeyState& SlidingWindowJoinOperator::StateForKey(
    int64_t key) {
  auto it = std::lower_bound(
      keys_.begin(), keys_.end(), key,
      [](const KeyEntry& e, int64_t k) { return e.key < k; });
  if (it == keys_.end() || it->key != key) {
    it = keys_.insert(it, KeyEntry{key, KeyState{}});
  }
  return it->state;
}

Status SlidingWindowJoinOperator::Process(int input, Tuple tuple, Collector*) {
  CEP2ASP_DCHECK(input == 0 || input == 1);
  KeyState& key_state = StateForKey(tuple.key());
  SideBuffer& side = key_state.sides[input];
  state_bytes_ += tuple.MemoryBytes();
  if (!side.empty() && tuple.event_time() < side.tuples.back().event_time()) {
    side.sorted = false;
  }
  side.min_ts = std::min(side.min_ts, tuple.event_time());
  min_buffered_ts_ = std::min(min_buffered_ts_, tuple.event_time());
  side.tuples.push_back(std::move(tuple));
  return Status::OK();
}

Status SlidingWindowJoinOperator::OnWatermark(Timestamp watermark,
                                              Collector* out) {
  FireWindows(watermark, out);
  return Status::OK();
}

void SlidingWindowJoinOperator::FireWindows(Timestamp watermark,
                                            Collector* out) {
  while (true) {
    Timestamp min_ts = MinBufferedTs();
    if (min_ts == kMaxTimestamp) {
      // Nothing buffered; the cursor stays where it is (monotone — resuming
      // at a later event's first window happens via the jump below) so a
      // window can never fire twice.
      return;
    }
    // Skip empty stretches, but only over windows that are provably dead:
    // a skipped window must hold no buffered tuple (before FirstWindow of
    // the buffered minimum) AND be closed (before FirstWindow(watermark),
    // the first window that can still receive on-time tuples). Skipping an
    // empty-but-open window would silently drop tuples that arrive for it
    // later — under partitioned input a subtask's buffer is sparse, so the
    // unclamped jump overshoots. The first firing initializes the cursor
    // the same way, which also makes it independent of the arrival
    // interleaving across producer subtasks.
    const int64_t skip_to = std::min(window_.FirstWindow(min_ts),
                                     window_.FirstWindow(watermark));
    if (!have_window_cursor_) {
      next_window_ = skip_to;
      have_window_cursor_ = true;
    } else {
      next_window_ = std::max(next_window_, skip_to);
    }
    if (!window_.CanFire(next_window_, watermark)) return;
    FireWindow(next_window_, out);
    ++next_window_;
    // Amortized eviction: the evict walk touches every key, so running it
    // per fired window makes it a fixed per-window tax. Deferring it a few
    // slides is safe — stale tuples sit below the fire range's lower_bound
    // and min_buffered_ts_ stays exact (they are still buffered) — at the
    // cost of retaining at most kEvictStride-1 slides of dead tuples.
    if (++windows_since_evict_ >= kEvictStride) {
      windows_since_evict_ = 0;
      EvictBefore(window_.WindowStart(next_window_));
    }
  }
}

void SlidingWindowJoinOperator::FireWindow(int64_t k, Collector* out) {
  const Timestamp begin = window_.WindowStart(k);
  const Timestamp end = window_.WindowEnd(k);
  for (KeyEntry& entry : keys_) {
    KeyState& key_state = entry.state;
    SideBuffer& left = key_state.sides[0];
    SideBuffer& right = key_state.sides[1];
    if (left.empty() || right.empty()) continue;
    SortIfNeeded(&left);
    SortIfNeeded(&right);

    auto range = [begin, end](SideBuffer& side) {
      const auto live_begin =
          side.tuples.begin() + static_cast<ptrdiff_t>(side.head);
      auto lo = std::lower_bound(live_begin, side.tuples.end(), begin,
                                 [](const Tuple& t, Timestamp ts) {
                                   return t.event_time() < ts;
                                 });
      auto hi = std::lower_bound(lo, side.tuples.end(), end,
                                 [](const Tuple& t, Timestamp ts) {
                                   return t.event_time() < ts;
                                 });
      return std::pair(lo, hi);
    };
    auto [l_lo, l_hi] = range(left);
    auto [r_lo, r_hi] = range(right);
    for (auto l = l_lo; l != l_hi; ++l) {
      for (auto r = r_lo; r != r_hi; ++r) {
        ++pairs_evaluated_;
        if (dedup_pairs_) {
          // First window containing both sides; skip re-emissions from
          // later overlapping windows.
          int64_t first_common = std::max(window_.FirstWindow(l->event_time()),
                                          window_.FirstWindow(r->event_time()));
          if (first_common != k) continue;
        }
        Tuple joined = Tuple::Concat(*l, *r);
        if (!condition_.IsTrue() && !condition_.EvalOnTuple(joined)) continue;
        joined.set_event_time(ts_mode_ == TimestampMode::kMax ? joined.tse()
                                                              : joined.tsb());
        out->Emit(std::move(joined));
      }
    }
  }
}

void SlidingWindowJoinOperator::EvictBefore(Timestamp min_keep_ts) {
  Timestamp global_min = kMaxTimestamp;
  for (auto it = keys_.begin(); it != keys_.end();) {
    KeyState& key_state = it->state;
    const Timestamp key_min =
        std::min(key_state.sides[0].min_ts, key_state.sides[1].min_ts);
    if (key_min >= min_keep_ts) {
      // Nothing evictable under this key (side minima are exact even while
      // a side is unsorted): skip the sort + erase entirely. A key can
      // only become all-empty through eviction, and that path erases it
      // below, so skipped keys always still hold tuples.
      global_min = std::min(global_min, key_min);
      ++it;
      continue;
    }
    bool all_empty = true;
    for (SideBuffer& side : key_state.sides) {
      SortIfNeeded(&side);
      const auto live_begin =
          side.tuples.begin() + static_cast<ptrdiff_t>(side.head);
      auto keep_from = std::lower_bound(
          live_begin, side.tuples.end(), min_keep_ts,
          [](const Tuple& t, Timestamp ts) { return t.event_time() < ts; });
      for (auto e = live_begin; e != keep_from; ++e) {
        state_bytes_ -= e->MemoryBytes();
      }
      side.head = static_cast<size_t>(keep_from - side.tuples.begin());
      // Reclaim the dead prefix only once it outweighs the live suffix;
      // each survivor is then moved at most once per doubling of evicted
      // tuples, keeping eviction amortized O(1) per tuple.
      const size_t live = side.tuples.size() - side.head;
      if (side.head >= live) {
        side.tuples.erase(
            side.tuples.begin(),
            side.tuples.begin() + static_cast<ptrdiff_t>(side.head));
        side.head = 0;
      }
      // Sides are sorted here, so the surviving front is the new minimum.
      side.min_ts =
          side.empty() ? kMaxTimestamp : side.tuples[side.head].event_time();
      if (!side.empty()) all_empty = false;
    }
    if (all_empty) {
      it = keys_.erase(it);
    } else {
      global_min = std::min(
          global_min,
          std::min(key_state.sides[0].min_ts, key_state.sides[1].min_ts));
      ++it;
    }
  }
  min_buffered_ts_ = global_min;
}

Timestamp SlidingWindowJoinOperator::MinBufferedTs() const {
  // Exact: Process folds arrivals in, EvictBefore re-derives after
  // removals, and those are the only mutations of the buffers.
  return min_buffered_ts_;
}

}  // namespace cep2asp
