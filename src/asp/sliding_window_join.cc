#include "asp/sliding_window_join.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cep2asp {

namespace {

bool TupleTsLess(const Tuple& a, const Tuple& b) {
  return a.event_time() < b.event_time();
}

void SortIfNeeded(std::vector<Tuple>* tuples, bool* sorted) {
  if (!*sorted) {
    std::stable_sort(tuples->begin(), tuples->end(), TupleTsLess);
    *sorted = true;
  }
}

}  // namespace

SlidingWindowJoinOperator::SlidingWindowJoinOperator(SlidingWindowSpec window,
                                                     Predicate condition,
                                                     TimestampMode ts_mode,
                                                     std::string label,
                                                     bool dedup_pairs)
    : window_(window),
      condition_(std::move(condition)),
      ts_mode_(ts_mode),
      label_(std::move(label)),
      dedup_pairs_(dedup_pairs) {}

Status SlidingWindowJoinOperator::Open() {
  if (!window_.valid()) {
    return Status::InvalidArgument("invalid sliding window spec");
  }
  return Status::OK();
}

Status SlidingWindowJoinOperator::Process(int input, Tuple tuple, Collector*) {
  CEP2ASP_DCHECK(input == 0 || input == 1);
  KeyState& key_state = keys_[tuple.key()];
  SideBuffer& side = key_state.sides[input];
  state_bytes_ += tuple.MemoryBytes();
  if (!side.tuples.empty() &&
      tuple.event_time() < side.tuples.back().event_time()) {
    side.sorted = false;
  }
  side.min_ts = std::min(side.min_ts, tuple.event_time());
  side.tuples.push_back(std::move(tuple));
  return Status::OK();
}

Status SlidingWindowJoinOperator::OnWatermark(Timestamp watermark,
                                              Collector* out) {
  FireWindows(watermark, out);
  return Status::OK();
}

void SlidingWindowJoinOperator::FireWindows(Timestamp watermark,
                                            Collector* out) {
  while (true) {
    Timestamp min_ts = MinBufferedTs();
    if (min_ts == kMaxTimestamp) {
      // Nothing buffered; the cursor stays where it is (monotone — resuming
      // at a later event's first window happens via the jump below) so a
      // window can never fire twice.
      return;
    }
    // Skip empty stretches, but only over windows that are provably dead:
    // a skipped window must hold no buffered tuple (before FirstWindow of
    // the buffered minimum) AND be closed (before FirstWindow(watermark),
    // the first window that can still receive on-time tuples). Skipping an
    // empty-but-open window would silently drop tuples that arrive for it
    // later — under partitioned input a subtask's buffer is sparse, so the
    // unclamped jump overshoots. The first firing initializes the cursor
    // the same way, which also makes it independent of the arrival
    // interleaving across producer subtasks.
    const int64_t skip_to = std::min(window_.FirstWindow(min_ts),
                                     window_.FirstWindow(watermark));
    if (!have_window_cursor_) {
      next_window_ = skip_to;
      have_window_cursor_ = true;
    } else {
      next_window_ = std::max(next_window_, skip_to);
    }
    if (!window_.CanFire(next_window_, watermark)) return;
    FireWindow(next_window_, out);
    ++next_window_;
    EvictBefore(window_.WindowStart(next_window_));
  }
}

void SlidingWindowJoinOperator::FireWindow(int64_t k, Collector* out) {
  const Timestamp begin = window_.WindowStart(k);
  const Timestamp end = window_.WindowEnd(k);
  for (auto& [key, key_state] : keys_) {
    (void)key;
    SideBuffer& left = key_state.sides[0];
    SideBuffer& right = key_state.sides[1];
    if (left.tuples.empty() || right.tuples.empty()) continue;
    SortIfNeeded(&left.tuples, &left.sorted);
    SortIfNeeded(&right.tuples, &right.sorted);

    auto range = [begin, end](std::vector<Tuple>& tuples) {
      auto lo = std::lower_bound(tuples.begin(), tuples.end(), begin,
                                 [](const Tuple& t, Timestamp ts) {
                                   return t.event_time() < ts;
                                 });
      auto hi = std::lower_bound(tuples.begin(), tuples.end(), end,
                                 [](const Tuple& t, Timestamp ts) {
                                   return t.event_time() < ts;
                                 });
      return std::pair(lo, hi);
    };
    auto [l_lo, l_hi] = range(left.tuples);
    auto [r_lo, r_hi] = range(right.tuples);
    for (auto l = l_lo; l != l_hi; ++l) {
      for (auto r = r_lo; r != r_hi; ++r) {
        ++pairs_evaluated_;
        if (dedup_pairs_) {
          // First window containing both sides; skip re-emissions from
          // later overlapping windows.
          int64_t first_common = std::max(window_.FirstWindow(l->event_time()),
                                          window_.FirstWindow(r->event_time()));
          if (first_common != k) continue;
        }
        Tuple joined = Tuple::Concat(*l, *r);
        if (!condition_.IsTrue() && !condition_.EvalOnTuple(joined)) continue;
        joined.set_event_time(ts_mode_ == TimestampMode::kMax ? joined.tse()
                                                              : joined.tsb());
        out->Emit(std::move(joined));
      }
    }
  }
}

void SlidingWindowJoinOperator::EvictBefore(Timestamp min_keep_ts) {
  for (auto it = keys_.begin(); it != keys_.end();) {
    KeyState& key_state = it->second;
    bool all_empty = true;
    for (SideBuffer& side : key_state.sides) {
      SortIfNeeded(&side.tuples, &side.sorted);
      auto keep_from = std::lower_bound(
          side.tuples.begin(), side.tuples.end(), min_keep_ts,
          [](const Tuple& t, Timestamp ts) { return t.event_time() < ts; });
      for (auto e = side.tuples.begin(); e != keep_from; ++e) {
        state_bytes_ -= e->MemoryBytes();
      }
      side.tuples.erase(side.tuples.begin(), keep_from);
      // Sides are sorted here, so the surviving front is the new minimum.
      side.min_ts =
          side.tuples.empty() ? kMaxTimestamp : side.tuples.front().event_time();
      if (!side.tuples.empty()) all_empty = false;
    }
    if (all_empty) {
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }
}

Timestamp SlidingWindowJoinOperator::MinBufferedTs() const {
  Timestamp min_ts = kMaxTimestamp;
  for (const auto& [key, key_state] : keys_) {
    (void)key;
    for (const SideBuffer& side : key_state.sides) {
      min_ts = std::min(min_ts, side.min_ts);
    }
  }
  return min_ts;
}

}  // namespace cep2asp
