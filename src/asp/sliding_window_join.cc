#include "asp/sliding_window_join.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cep2asp {

namespace {

/// Index of the first element of ts[lo, hi) not below `v` (the columns are
/// sorted ranges once SortIfNeeded ran).
size_t LowerBoundTs(const Timestamp* ts, size_t lo, size_t hi, Timestamp v) {
  return static_cast<size_t>(std::lower_bound(ts + lo, ts + hi, v) - ts);
}

}  // namespace

void SlidingWindowJoinOperator::SortIfNeeded(SideBuffer* side) {
  if (!side->sorted) {
    side->rows.StableSortByEventTime(side->head);
    side->sorted = true;
  }
}

SlidingWindowJoinOperator::SlidingWindowJoinOperator(SlidingWindowSpec window,
                                                     Predicate condition,
                                                     TimestampMode ts_mode,
                                                     std::string label,
                                                     bool dedup_pairs)
    : window_(window),
      condition_(std::move(condition)),
      ts_mode_(ts_mode),
      label_(std::move(label)),
      dedup_pairs_(dedup_pairs) {}

Status SlidingWindowJoinOperator::Open() {
  if (!window_.valid()) {
    return Status::InvalidArgument("invalid sliding window spec");
  }
  return Status::OK();
}

SlidingWindowJoinOperator::KeyState& SlidingWindowJoinOperator::StateForKey(
    int64_t key) {
  auto it = std::lower_bound(
      keys_.begin(), keys_.end(), key,
      [](const KeyEntry& e, int64_t k) { return e.key < k; });
  if (it == keys_.end() || it->key != key) {
    it = keys_.insert(it, KeyEntry{key, KeyState{}});
  }
  return it->state;
}

Status SlidingWindowJoinOperator::Process(int input, Tuple tuple, Collector*) {
  CEP2ASP_DCHECK(input == 0 || input == 1);
  KeyState& key_state = StateForKey(tuple.key());
  SideBuffer& side = key_state.sides[input];
  if (side.rows.rows() == 0 && side.rows.num_slots() != tuple.size()) {
    side.rows.Reset(tuple.size());  // shape the SoA store on first append
  }
  state_bytes_ += RowBytes(tuple.size());
  if (!side.empty() &&
      tuple.event_time() < side.rows.event_time(side.rows.rows() - 1)) {
    side.sorted = false;
  }
  side.min_ts = std::min(side.min_ts, tuple.event_time());
  min_buffered_ts_ = std::min(min_buffered_ts_, tuple.event_time());
  side.rows.AppendTuple(tuple);
  return Status::OK();
}

void SlidingWindowJoinOperator::AppendRun(SideBuffer* side,
                                          const ColumnarBatch& block,
                                          size_t begin, size_t end) {
  if (side->rows.rows() == 0 && side->rows.num_slots() != block.num_slots()) {
    side->rows.Reset(block.num_slots());
  }
  CEP2ASP_DCHECK(side->rows.num_slots() == block.num_slots())
      << "block shape " << block.num_slots() << " vs side "
      << side->rows.num_slots();
  const Timestamp* ets = block.event_times();
  Timestamp prev = side->empty()
                       ? kMinTimestamp
                       : side->rows.event_time(side->rows.rows() - 1);
  Timestamp run_min = kMaxTimestamp;
  for (size_t r = begin; r < end; ++r) {
    if (ets[r] < prev) side->sorted = false;
    prev = ets[r];
    run_min = std::min(run_min, ets[r]);
  }
  side->min_ts = std::min(side->min_ts, run_min);
  min_buffered_ts_ = std::min(min_buffered_ts_, run_min);
  side->rows.AppendRows(block, begin, end);
  state_bytes_ += (end - begin) * RowBytes(block.num_slots());
}

Status SlidingWindowJoinOperator::ProcessColumnar(
    int input, std::unique_ptr<ColumnarBatch> block, Collector*) {
  CEP2ASP_DCHECK(input == 0 || input == 1);
  const size_t n = block->rows();
  const int64_t* keys = block->keys();
  const uint8_t* mask = block->mask();
  // Ingest runs of equal keys with one key lookup and one column-wise
  // append each: hash-partitioned sub-blocks and constant-key (cartesian)
  // inputs arrive as few long runs, per-key-interleaved inputs degrade to
  // per-row appends that still skip the RowTuple gather.
  size_t i = 0;
  while (i < n) {
    if (!mask[i]) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < n && mask[j] && keys[j] == keys[i]) ++j;
    KeyState& key_state = StateForKey(keys[i]);
    AppendRun(&key_state.sides[input], *block, i, j);
    i = j;
  }
  return Status::OK();
}

Status SlidingWindowJoinOperator::OnWatermark(Timestamp watermark,
                                              Collector* out) {
  FireWindows(watermark, out);
  return Status::OK();
}

void SlidingWindowJoinOperator::FireWindows(Timestamp watermark,
                                            Collector* out) {
  while (true) {
    Timestamp min_ts = MinBufferedTs();
    if (min_ts == kMaxTimestamp) {
      // Nothing buffered; the cursor stays where it is (monotone — resuming
      // at a later event's first window happens via the jump below) so a
      // window can never fire twice.
      return;
    }
    // Skip empty stretches, but only over windows that are provably dead:
    // a skipped window must hold no buffered tuple (before FirstWindow of
    // the buffered minimum) AND be closed (before FirstWindow(watermark),
    // the first window that can still receive on-time tuples). Skipping an
    // empty-but-open window would silently drop tuples that arrive for it
    // later — under partitioned input a subtask's buffer is sparse, so the
    // unclamped jump overshoots. The first firing initializes the cursor
    // the same way, which also makes it independent of the arrival
    // interleaving across producer subtasks.
    const int64_t skip_to = std::min(window_.FirstWindow(min_ts),
                                     window_.FirstWindow(watermark));
    if (!have_window_cursor_) {
      next_window_ = skip_to;
      have_window_cursor_ = true;
    } else {
      next_window_ = std::max(next_window_, skip_to);
    }
    if (!window_.CanFire(next_window_, watermark)) return;
    FireWindow(next_window_, out);
    ++next_window_;
    // Amortized eviction: the evict walk touches every key, so running it
    // per fired window makes it a fixed per-window tax. Deferring it a few
    // slides is safe — stale tuples sit below the fire range's lower_bound
    // and min_buffered_ts_ stays exact (they are still buffered) — at the
    // cost of retaining at most kEvictStride-1 slides of dead tuples.
    if (++windows_since_evict_ >= kEvictStride) {
      windows_since_evict_ = 0;
      EvictBefore(window_.WindowStart(next_window_));
    }
  }
}

void SlidingWindowJoinOperator::FireWindow(int64_t k, Collector* out) {
  const Timestamp begin = window_.WindowStart(k);
  const Timestamp end = window_.WindowEnd(k);
  for (KeyEntry& entry : keys_) {
    KeyState& key_state = entry.state;
    SideBuffer& left = key_state.sides[0];
    SideBuffer& right = key_state.sides[1];
    if (left.empty() || right.empty()) continue;
    SortIfNeeded(&left);
    SortIfNeeded(&right);

    // Range binary searches walk the contiguous event-time columns.
    const Timestamp* lts = left.rows.event_times();
    const Timestamp* rts = right.rows.event_times();
    const size_t l_lo = LowerBoundTs(lts, left.head, left.rows.rows(), begin);
    const size_t l_hi = LowerBoundTs(lts, l_lo, left.rows.rows(), end);
    if (l_lo == l_hi) continue;
    const size_t r_lo = LowerBoundTs(rts, right.head, right.rows.rows(), begin);
    const size_t r_hi = LowerBoundTs(rts, r_lo, right.rows.rows(), end);
    if (r_lo == r_hi) continue;

    const size_t ln = left.rows.num_slots();
    const size_t rn = right.rows.num_slots();
    const size_t r_cnt = r_hi - r_lo;
    // Pre-gather the right range once per (key, window): every (l, r)
    // pair then reuses it with one contiguous copy, where the row-major
    // probe concatenated two Tuples per evaluated pair.
    right_scratch_.resize(r_cnt * rn);
    for (size_t r = 0; r < r_cnt; ++r) {
      for (size_t s = 0; s < rn; ++s) {
        right_scratch_[r * rn + s] = right.rows.RowEvent(s, r_lo + r);
      }
    }
    scratch_.resize(ln + rn);
    for (size_t l = l_lo; l != l_hi; ++l) {
      for (size_t s = 0; s < ln; ++s) scratch_[s] = left.rows.RowEvent(s, l);
      const int64_t l_first = dedup_pairs_ ? window_.FirstWindow(lts[l]) : 0;
      for (size_t r = 0; r < r_cnt; ++r) {
        ++pairs_evaluated_;
        if (dedup_pairs_) {
          // First window containing both sides; skip re-emissions from
          // later overlapping windows.
          const int64_t first_common =
              std::max(l_first, window_.FirstWindow(rts[r_lo + r]));
          if (first_common != k) continue;
        }
        std::copy(right_scratch_.begin() + static_cast<ptrdiff_t>(r * rn),
                  right_scratch_.begin() + static_cast<ptrdiff_t>((r + 1) * rn),
                  scratch_.begin() + static_cast<ptrdiff_t>(ln));
        if (!condition_.IsTrue() &&
            !condition_.EvalOnEvents(scratch_.data(), ln + rn)) {
          continue;
        }
        // Materialize the output tuple only for matches: concatenated
        // events, the left side's key, event time redefined per §4.2.2.
        Tuple joined;
        Timestamp tsb = scratch_[0].ts;
        Timestamp tse = scratch_[0].ts;
        for (const SimpleEvent& e : scratch_) {
          joined.AppendEvent(e);
          tsb = std::min(tsb, e.ts);
          tse = std::max(tse, e.ts);
        }
        joined.set_key(entry.key);
        joined.set_event_time(ts_mode_ == TimestampMode::kMax ? tse : tsb);
        out->Emit(std::move(joined));
      }
    }
  }
}

void SlidingWindowJoinOperator::EvictBefore(Timestamp min_keep_ts) {
  Timestamp global_min = kMaxTimestamp;
  for (auto it = keys_.begin(); it != keys_.end();) {
    KeyState& key_state = it->state;
    const Timestamp key_min =
        std::min(key_state.sides[0].min_ts, key_state.sides[1].min_ts);
    if (key_min >= min_keep_ts) {
      // Nothing evictable under this key (side minima are exact even while
      // a side is unsorted): skip the sort + erase entirely. A key can
      // only become all-empty through eviction, and that path erases it
      // below, so skipped keys always still hold tuples.
      global_min = std::min(global_min, key_min);
      ++it;
      continue;
    }
    bool all_empty = true;
    for (SideBuffer& side : key_state.sides) {
      SortIfNeeded(&side);
      const Timestamp* ts = side.rows.event_times();
      const size_t keep_from =
          LowerBoundTs(ts, side.head, side.rows.rows(), min_keep_ts);
      state_bytes_ -=
          (keep_from - side.head) * RowBytes(side.rows.num_slots());
      side.head = keep_from;
      // Reclaim the dead prefix only once it outweighs the live suffix;
      // each survivor is then moved at most once per doubling of evicted
      // rows, keeping eviction amortized O(1) per row.
      const size_t live = side.rows.rows() - side.head;
      if (side.head >= live) {
        side.rows.ErasePrefix(side.head);
        side.head = 0;
      }
      // Sides are sorted here, so the surviving front is the new minimum.
      side.min_ts =
          side.empty() ? kMaxTimestamp : side.rows.event_time(side.head);
      if (!side.empty()) all_empty = false;
    }
    if (all_empty) {
      it = keys_.erase(it);
    } else {
      global_min = std::min(
          global_min,
          std::min(key_state.sides[0].min_ts, key_state.sides[1].min_ts));
      ++it;
    }
  }
  min_buffered_ts_ = global_min;
}

Timestamp SlidingWindowJoinOperator::MinBufferedTs() const {
  // Exact: Process/ProcessColumnar fold arrivals in, EvictBefore
  // re-derives after removals, and those are the only buffer mutations.
  return min_buffered_ts_;
}

}  // namespace cep2asp
