#ifndef CEP2ASP_ASP_WINDOW_APPLY_H_
#define CEP2ASP_ASP_WINDOW_APPLY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "asp/window.h"
#include "event/event.h"
#include "runtime/operator.h"

namespace cep2asp {

/// \brief Keyed sliding-window UDF operator (the "UDF window function" of
/// the paper's O2 discussion): the user function receives the window's
/// events sorted by timestamp and may emit any number of output tuples.
///
/// The function also receives the window bounds so it can implement
/// semantics anchored at the window start (e.g. per-window Kleene+ with
/// conditions between contributing events, or custom selection policies).
class WindowApplyOperator : public Operator {
 public:
  /// (key, window_start, window_end, sorted events) -> emissions via `out`.
  using Fn = std::function<void(int64_t key, Timestamp begin, Timestamp end,
                                const std::vector<SimpleEvent>& events,
                                Collector* out)>;

  WindowApplyOperator(SlidingWindowSpec window, Fn fn,
                      std::string label = "win-apply");

  std::string name() const override { return label_; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.stateful = true;
    traits.keyed = true;
    traits.windowed = true;
    traits.window_size = window_.size;
    traits.window_slide = window_.slide;
    traits.drains_on_final_watermark = true;
    return traits;
  }

  Status Open() override;
  Status Process(int input, Tuple tuple, Collector* out) override;
  Status OnWatermark(Timestamp watermark, Collector* out) override;
  size_t StateBytes() const override { return state_bytes_; }

  /// Partition-safe: absolute window indices, per-key state, and the UDF
  /// is shared (it must be stateless/thread-compatible by contract).
  std::unique_ptr<Operator> CloneForSubtask() const override {
    return std::make_unique<WindowApplyOperator>(window_, fn_, label_);
  }

 private:
  struct KeyState {
    std::vector<SimpleEvent> events;
    bool sorted = true;
  };

  void FireWindows(Timestamp watermark, Collector* out);
  Timestamp MinBufferedTs() const;
  void SortKey(KeyState* key_state);

  SlidingWindowSpec window_;
  Fn fn_;
  std::string label_;

  std::unordered_map<int64_t, KeyState> keys_;
  int64_t next_window_ = 0;
  bool have_window_cursor_ = false;
  size_t state_bytes_ = 0;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ASP_WINDOW_APPLY_H_
