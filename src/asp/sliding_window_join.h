#ifndef CEP2ASP_ASP_SLIDING_WINDOW_JOIN_H_
#define CEP2ASP_ASP_SLIDING_WINDOW_JOIN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "asp/window.h"
#include "event/predicate.h"
#include "runtime/columnar_batch.h"
#include "runtime/operator.h"

namespace cep2asp {

/// How the join redefines the output tuple's event time (paper §4.2.2:
/// after each Window Join the event time attribute must be redefined — the
/// minimum timestamp of the pair for a partial match of a nested pattern,
/// the maximum for a complete match).
enum class TimestampMode : uint8_t { kMin, kMax };

/// \brief Two-input sliding-window join over keyed streams.
///
/// Realizes the mapping targets of Table 1:
///  * Cartesian product (AND): both inputs carry the same constant key
///    (assigned by a preceding map) and `condition` is empty.
///  * Theta Join (SEQ / ITER): `condition` holds the timestamp-order
///    comparison (and any cross-variable pattern predicates). Per §4.2.1
///    the Theta Join is realized as the product filtered by theta.
///  * Equi Join (O3): inputs are keyed by the matching attribute, so the
///    product is computed per key and parallelizable.
///
/// Windows follow the explicit sliding semantics of §3.1.2; overlapping
/// windows duplicate matches by design (deduplication is part of semantic
/// equivalence, not of the operator). Per-window work is recomputed for
/// every overlap, which is exactly the sliding-window cost the paper's O1
/// optimization avoids.
///
/// The `condition` predicate addresses constituent events positionally in
/// the *concatenated* output tuple (left events first).
class SlidingWindowJoinOperator : public Operator {
 public:
  /// `dedup_pairs`: emit each qualifying pair only in the first window
  /// containing both sides. Detection stays complete (that window always
  /// exists) and downstream operators see each logical match once —
  /// used for the intermediate joins of decomposed patterns, where
  /// per-overlap duplicates would otherwise multiply through the chain.
  /// The final join keeps the sliding duplicates the paper describes
  /// (§3.1.4). Pair *evaluation* is still repeated per overlapping window
  /// either way (the cost O1 removes).
  SlidingWindowJoinOperator(SlidingWindowSpec window, Predicate condition,
                            TimestampMode ts_mode, std::string label = "win-join",
                            bool dedup_pairs = false);

  std::string name() const override { return label_; }
  int num_inputs() const override { return 2; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.stateful = true;
    traits.keyed = true;
    traits.windowed = true;
    traits.window_size = window_.size;
    traits.window_slide = window_.slide;
    traits.emits_window_duplicates = !dedup_pairs_;
    traits.drains_on_final_watermark = true;
    traits.predicate = &condition_;  // positional over the joined tuple
    traits.selectivity_bound = selectivity_bound_;
    // Window buffers are SoA (per-side ColumnarBatch): arriving column
    // blocks append column-wise via ProcessColumnar, so upstream edges —
    // including hash edges, via PartitionByKey — may carry blocks whole.
    traits.columnar_capable = true;
    return traits;
  }

  void AttachSelectivityBound(double bound) override {
    selectivity_bound_ = bound;
  }

  Status Open() override;
  Status Process(int input, Tuple tuple, Collector* out) override;

  /// Columnar ingest: appends the block's rows column-wise into the
  /// per-(key, side) SoA window buffers — one StateForKey lookup and one
  /// contiguous per-column insert per run of equal keys, instead of a
  /// RowTuple gather + per-tuple Process per row. Hash-partitioned and
  /// constant-key (cartesian) inputs arrive as long runs.
  Status ProcessColumnar(int input, std::unique_ptr<ColumnarBatch> block,
                         Collector* out) override;

  Status OnWatermark(Timestamp watermark, Collector* out) override;
  size_t StateBytes() const override { return state_bytes_; }

  /// Partition-safe: window indices are absolute (derived from event
  /// time), state is per key, and dedup_pairs dedups within a (key,
  /// window) scope — so any key-disjoint split of the input reproduces
  /// the exact match multiset.
  std::unique_ptr<Operator> CloneForSubtask() const override {
    auto clone = std::make_unique<SlidingWindowJoinOperator>(
        window_, condition_, ts_mode_, label_, dedup_pairs_);
    clone->selectivity_bound_ = selectivity_bound_;
    return clone;
  }

  /// Total (left, right) pairs evaluated; exposes the duplicate
  /// computation across overlapping windows for benchmarks.
  int64_t pairs_evaluated() const { return pairs_evaluated_; }

 private:
  /// Per-(key, side) window store, struct-of-arrays: rows live in a
  /// ColumnarBatch (one contiguous column per event attribute plus exact
  /// key/event-time columns), shaped to the side's tuple arity on first
  /// append. The probe walks the contiguous event-time column for its
  /// range binary searches and gathers events only for pairs that reach
  /// condition evaluation — instead of lower_bound over ~280-byte-strided
  /// row-major Tuples.
  struct SideBuffer {
    ColumnarBatch rows;
    // Index of the first live row: [head, rows) are buffered, [0, head)
    // are evicted-but-not-yet-reclaimed. Eviction advances `head` and
    // compacts (ErasePrefix) only once the dead prefix reaches the live
    // size, so each row is moved O(1) amortized times over its lifetime —
    // a plain erase-from-front would instead move every survivor on every
    // evict, a cost that balloons when batched execution lets the buffers
    // run deep ahead of the watermark.
    size_t head = 0;
    bool sorted = true;
    // Smallest buffered event time, maintained incrementally on append
    // and re-derived from the sorted front on eviction, so the watermark
    // path (MinBufferedTs) is O(keys) instead of rescanning every row.
    Timestamp min_ts = kMaxTimestamp;

    bool empty() const { return head >= rows.rows(); }
  };

  struct KeyState {
    SideBuffer sides[2];
  };

  /// Key table entry; kept in a flat vector sorted by key. The firing path
  /// (FireWindow + EvictBefore) walks every key once per fired window, so
  /// iteration locality dominates: ~a hundred contiguous entries stay
  /// L1-resident where an unordered_map walk chases a pointer per key.
  /// Lookup in Process is a binary search; inserts (one per distinct key)
  /// shift the tail, which is negligible next to the per-tuple work.
  struct KeyEntry {
    int64_t key;
    KeyState state;
  };

  KeyState& StateForKey(int64_t key);
  static void SortIfNeeded(SideBuffer* side);

  /// Per-row state accounting, matching the row-major Tuple footprint so
  /// figure-5 style byte timelines stay comparable across layouts.
  static size_t RowBytes(size_t arity) {
    return sizeof(Tuple) + (arity > 4 ? arity * sizeof(SimpleEvent) : 0);
  }

  /// Appends rows [begin, end) of `block` (all one key) to `side`,
  /// maintaining the sorted flag and the min-ts caches.
  void AppendRun(SideBuffer* side, const ColumnarBatch& block, size_t begin,
                 size_t end);

  void FireWindows(Timestamp watermark, Collector* out);
  void FireWindow(int64_t k, Collector* out);
  void EvictBefore(Timestamp min_keep_ts);
  Timestamp MinBufferedTs() const;

  SlidingWindowSpec window_;
  Predicate condition_;
  TimestampMode ts_mode_;
  std::string label_;
  bool dedup_pairs_;
  double selectivity_bound_ = -1.0;

  /// Fired windows between evict walks; trades up to kEvictStride-1 slides
  /// of retained dead tuples for a proportional cut in whole-table scans.
  static constexpr int kEvictStride = 4;
  int windows_since_evict_ = 0;

  std::vector<KeyEntry> keys_;  // sorted by key
  /// Smallest event time buffered across all keys and sides; folded in by
  /// Process and re-derived by EvictBefore, so the per-watermark firing
  /// loop costs O(1) instead of a full key scan per iteration.
  Timestamp min_buffered_ts_ = kMaxTimestamp;
  int64_t next_window_ = 0;
  bool have_window_cursor_ = false;
  size_t state_bytes_ = 0;
  int64_t pairs_evaluated_ = 0;

  /// Probe scratch, reused across windows: `scratch_` holds the events of
  /// the current (left, right) pair for positional condition evaluation
  /// without materializing a Tuple; `right_scratch_` pre-gathers the right
  /// range once per (key, window) so every pair reuses it via one
  /// contiguous copy.
  std::vector<SimpleEvent> scratch_;
  std::vector<SimpleEvent> right_scratch_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ASP_SLIDING_WINDOW_JOIN_H_
