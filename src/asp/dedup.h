#ifndef CEP2ASP_ASP_DEDUP_H_
#define CEP2ASP_ASP_DEDUP_H_

#include <string>
#include <unordered_map>
#include <utility>

#include "event/event.h"
#include "runtime/operator.h"

namespace cep2asp {

/// \brief Removes duplicate matches produced by overlapping sliding
/// windows (paper §3.1.4: duplicates "need to be maintained ... e.g. by
/// the operator state" when actions are not idempotent).
///
/// Keeps one state entry per distinct match, evicted once the watermark
/// passes the match's end timestamp by `horizon` (a duplicate of a match
/// can only be produced while some window still covers it, i.e. within
/// one window length).
class DedupOperator : public Operator {
 public:
  explicit DedupOperator(Timestamp horizon) : horizon_(horizon) {}

  std::string name() const override { return "dedup"; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.stateful = true;  // unkeyed: a match's duplicates may arrive on
                             // any partition after the merging root join
    traits.drains_on_final_watermark = true;
    return traits;
  }

  Status Process(int input, Tuple tuple, Collector* out) override {
    (void)input;
    std::string key = MatchKey(tuple);
    Timestamp tse = tuple.tse();
    auto [it, inserted] = seen_.emplace(std::move(key), tse);
    (void)it;
    if (inserted) out->Emit(std::move(tuple));
    return Status::OK();
  }

  Status OnWatermark(Timestamp watermark, Collector* out) override {
    (void)out;
    if (watermark == kMaxTimestamp) {
      seen_.clear();
      return Status::OK();
    }
    for (auto it = seen_.begin(); it != seen_.end();) {
      if (it->second + horizon_ < watermark) {
        it = seen_.erase(it);
      } else {
        ++it;
      }
    }
    return Status::OK();
  }

  size_t StateBytes() const override {
    return seen_.size() * (sizeof(Timestamp) + 48);  // key strings are short
  }

 private:
  Timestamp horizon_;
  std::unordered_map<std::string, Timestamp> seen_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_ASP_DEDUP_H_
