#ifndef CEP2ASP_HARNESS_BENCH_UTIL_H_
#define CEP2ASP_HARNESS_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "common/strings.h"
#include "runtime/executor.h"
#include "translator/translator.h"
#include "workload/generator.h"

namespace cep2asp {

/// \brief One measured data point: an approach run on a workload.
struct ApproachResult {
  std::string approach;        // "FCEP", "FASP", "FASP-O1", ...
  bool ok = false;
  std::string error;           // e.g. simulated memory exhaustion
  double throughput_tps = 0;   // max sustainable: ingested / elapsed
  double latency_mean_ms = 0;  // detection latency (§5.1.3)
  double latency_p99_ms = 0;
  int64_t matches = 0;         // emitted matches (with duplicates)
  int64_t tuples = 0;
  size_t peak_state_bytes = 0;
  double output_selectivity = 0;  // matches / events, %
};

/// Runs the translated FASP query on the workload and measures it. The
/// sink discards tuples (benchmark mode). `memory_limit` simulates a
/// bounded heap (0 = unlimited).
ApproachResult MeasureFasp(const Pattern& pattern, const Workload& workload,
                           const TranslatorOptions& options,
                           const std::string& label,
                           size_t memory_limit_bytes = 0);

/// Runs the FCEP baseline job and measures it.
ApproachResult MeasureFcep(const Pattern& pattern, const Workload& workload,
                           const CepJobOptions& options = {},
                           size_t memory_limit_bytes = 0);

/// \brief Fixed-width console table, one row per measurement, plus CSV
/// output under bench_results/ for the EXPERIMENTS.md bookkeeping.
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  /// Prints the table to stdout.
  void Print() const;

  /// Writes `bench_results/<file_stem>.csv` (directory created on demand).
  Status WriteCsv(const std::string& file_stem) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders throughput as "123.4k" style.
std::string FormatTps(double tps);

/// Formats a full ApproachResult row (approach, tput, latency, matches,
/// state) for the standard table layout.
std::vector<std::string> ResultRow(const std::string& scenario,
                                   const ApproachResult& result);

/// The standard column set matching ResultRow.
std::vector<std::string> StandardColumns();

}  // namespace cep2asp

#endif  // CEP2ASP_HARNESS_BENCH_UTIL_H_
