#include "harness/bench_util.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/strings.h"

namespace cep2asp {

namespace {

ApproachResult Measure(Result<CompiledQuery> compiled, const std::string& label,
                       int64_t total_events, size_t memory_limit_bytes) {
  ApproachResult out;
  out.approach = label;
  if (!compiled.ok()) {
    out.error = compiled.status().ToString();
    return out;
  }
  ExecutorOptions options;
  options.watermark_interval = 256;
  options.state_sample_interval = 0;
  if (memory_limit_bytes > 0) options.memory_limit_bytes = memory_limit_bytes;
  ExecutionResult result = RunJob(&compiled->graph, compiled->sink, options);
  out.ok = result.ok;
  out.error = result.error;
  out.throughput_tps = result.throughput_tps();
  out.latency_mean_ms = result.latency.mean_ms;
  out.latency_p99_ms = result.latency.p99_ms;
  out.matches = result.matches_emitted;
  out.tuples = result.tuples_ingested;
  out.peak_state_bytes = result.peak_state_bytes;
  if (total_events > 0) {
    out.output_selectivity =
        100.0 * static_cast<double>(out.matches) /
        static_cast<double>(total_events);
  }
  return out;
}

}  // namespace

ApproachResult MeasureFasp(const Pattern& pattern, const Workload& workload,
                           const TranslatorOptions& options,
                           const std::string& label,
                           size_t memory_limit_bytes) {
  return Measure(TranslatePattern(pattern, options,
                                  workload.MakeSourceFactory(),
                                  /*store_matches=*/false),
                 label, workload.TotalEvents(), memory_limit_bytes);
}

ApproachResult MeasureFcep(const Pattern& pattern, const Workload& workload,
                           const CepJobOptions& options,
                           size_t memory_limit_bytes) {
  CepJobOptions run_options = options;
  run_options.store_matches = false;
  return Measure(
      BuildCepJob(pattern, workload.MakeSourceFactory(), run_options), "FCEP",
      workload.TotalEvents(), memory_limit_bytes);
}

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ResultTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void ResultTable::Print() const {
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

Status ResultTable::WriteCsv(const std::string& file_stem) const {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::string path = "bench_results/" + file_stem + ".csv";
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot write " + path);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out << ",";
    out << columns_[i];
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << row[i];
    }
    out << "\n";
  }
  return Status::OK();
}

std::string FormatTps(double tps) { return HumanCount(tps) + " tpl/s"; }

std::vector<std::string> StandardColumns() {
  return {"scenario", "approach", "throughput", "latency(mean)",
          "latency(p99)", "matches", "peak state", "status"};
}

std::vector<std::string> ResultRow(const std::string& scenario,
                                   const ApproachResult& result) {
  char mean[32], p99[32];
  std::snprintf(mean, sizeof(mean), "%.1f ms", result.latency_mean_ms);
  std::snprintf(p99, sizeof(p99), "%.1f ms", result.latency_p99_ms);
  return {scenario,
          result.approach,
          result.ok ? FormatTps(result.throughput_tps) : "-",
          result.ok ? mean : "-",
          result.ok ? p99 : "-",
          std::to_string(result.matches),
          HumanBytes(static_cast<double>(result.peak_state_bytes)),
          result.ok ? "ok" : ("FAIL: " + result.error)};
}

}  // namespace cep2asp
