#ifndef CEP2ASP_HARNESS_PAPER_PATTERNS_H_
#define CEP2ASP_HARNESS_PAPER_PATTERNS_H_

#include "sea/pattern.h"
#include "workload/presets.h"

namespace cep2asp {

/// \brief The evaluation patterns of paper §5, parameterized by filter
/// selectivity and window.
///
/// Generated values are uniform in [0, 100), so a filter `value < 100*s`
/// keeps fraction s of a stream; the resulting output selectivity is
/// reported by the harness.
class PaperPatterns {
 public:
  explicit PaperPatterns(SensorTypes types = SensorTypes::Get())
      : types_(types) {}

  /// SEQ1(2): SEQ(Q q1, V v1) with per-stream filter selectivity
  /// (§5.2.1/5.2.2).
  Result<Pattern> Seq1(double filter_selectivity, Timestamp window,
                       Timestamp slide) const;

  /// ITER^m_1/ITER^m_3(1): iteration over V with a threshold filter
  /// (§5.2.1 baseline and Figure 3f).
  Result<Pattern> IterThreshold(int m, double filter_selectivity,
                                Timestamp window, Timestamp slide) const;

  /// ITER^m_2(1): iteration over V with the constraint between subsequent
  /// events v_n.value < v_{n+1}.value (Figure 3e). `filter_selectivity`
  /// additionally thins the stream to keep enumeration tractable.
  Result<Pattern> IterConsecutive(int m, double filter_selectivity,
                                  Timestamp window, Timestamp slide) const;

  /// NSEQ1(3): SEQ(Q, !PM10, V) — traffic pattern negated by an air
  /// quality event (§5.2.1; the paper's NSEQ draws one stream from
  /// AQ-Data).
  Result<Pattern> Nseq1(double filter_selectivity, double negated_selectivity,
                        Timestamp window, Timestamp slide) const;

  /// SEQn(n): nested sequence over n of the six event types in the fixed
  /// order Q, V, PM10, PM2.5, Temp, Hum (Figure 3d), n in [2, 6].
  Result<Pattern> SeqN(int n, double filter_selectivity, Timestamp window,
                       Timestamp slide) const;

  /// SEQ7(3): keyed sequence SEQ(Q, V, PM10) with Equi-Join predicates on
  /// the sensor id (Figures 4-6).
  Result<Pattern> Seq7(double filter_selectivity, Timestamp window,
                       Timestamp slide) const;

  /// ITER4(1): keyed iteration over V, all events from the same sensor
  /// (Figures 4-6).
  Result<Pattern> Iter4(int m, double filter_selectivity, Timestamp window,
                        Timestamp slide) const;

  const SensorTypes& types() const { return types_; }

 private:
  Predicate ThresholdFilter(double selectivity) const;

  SensorTypes types_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_HARNESS_PAPER_PATTERNS_H_
