#include "harness/paper_patterns.h"

namespace cep2asp {

Predicate PaperPatterns::ThresholdFilter(double selectivity) const {
  Predicate filter;
  if (selectivity < 1.0) {
    filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt,
                                     100.0 * selectivity));
  }
  return filter;
}

Result<Pattern> PaperPatterns::Seq1(double filter_selectivity,
                                    Timestamp window, Timestamp slide) const {
  return PatternBuilder()
      .Seq(PatternBuilder::Atom(types_.q, "q1",
                                ThresholdFilter(filter_selectivity)),
           PatternBuilder::Atom(types_.v, "v1",
                                ThresholdFilter(filter_selectivity)))
      .Within(window)
      .SlideBy(slide)
      .Build();
}

Result<Pattern> PaperPatterns::IterThreshold(int m, double filter_selectivity,
                                             Timestamp window,
                                             Timestamp slide) const {
  return PatternBuilder()
      .Root(PatternBuilder::Iter(types_.v, "v",
                                 m, ThresholdFilter(filter_selectivity)))
      .Within(window)
      .SlideBy(slide)
      .Build();
}

Result<Pattern> PaperPatterns::IterConsecutive(int m, double filter_selectivity,
                                               Timestamp window,
                                               Timestamp slide) const {
  return PatternBuilder()
      .Root(PatternBuilder::Iter(
          types_.v, "v", m, ThresholdFilter(filter_selectivity),
          ConsecutiveConstraint{Attribute::kValue, CmpOp::kLt}))
      .Within(window)
      .SlideBy(slide)
      .Build();
}

Result<Pattern> PaperPatterns::Nseq1(double filter_selectivity,
                                     double negated_selectivity,
                                     Timestamp window, Timestamp slide) const {
  PatternAtom t1{types_.q, "q1", ThresholdFilter(filter_selectivity)};
  PatternAtom t2{types_.pm10, "p1", ThresholdFilter(negated_selectivity)};
  PatternAtom t3{types_.v, "v1", ThresholdFilter(filter_selectivity)};
  return PatternBuilder()
      .Nseq(std::move(t1), std::move(t2), std::move(t3))
      .Within(window)
      .SlideBy(slide)
      .Build();
}

Result<Pattern> PaperPatterns::SeqN(int n, double filter_selectivity,
                                    Timestamp window, Timestamp slide) const {
  if (n < 2 || n > 6) {
    return Status::InvalidArgument("SEQn supports n in [2, 6]");
  }
  const EventTypeId order[6] = {types_.q,    types_.v,    types_.pm10,
                                types_.pm25, types_.temp, types_.hum};
  PatternBuilder builder;
  std::vector<std::unique_ptr<PatternNode>> children;
  for (int i = 0; i < n; ++i) {
    children.push_back(PatternBuilder::Atom(
        order[i], "e" + std::to_string(i + 1),
        ThresholdFilter(filter_selectivity)));
  }
  return builder.Seq(std::move(children)).Within(window).SlideBy(slide).Build();
}

Result<Pattern> PaperPatterns::Seq7(double filter_selectivity,
                                    Timestamp window, Timestamp slide) const {
  return PatternBuilder()
      .Seq(PatternBuilder::Atom(types_.q, "q1",
                                ThresholdFilter(filter_selectivity)),
           PatternBuilder::Atom(types_.v, "v1",
                                ThresholdFilter(filter_selectivity)),
           PatternBuilder::Atom(types_.pm10, "p1",
                                ThresholdFilter(filter_selectivity)))
      .Where(Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                  {1, Attribute::kId}))
      .Where(Comparison::AttrAttr({1, Attribute::kId}, CmpOp::kEq,
                                  {2, Attribute::kId}))
      .Within(window)
      .SlideBy(slide)
      .Build();
}

Result<Pattern> PaperPatterns::Iter4(int m, double filter_selectivity,
                                     Timestamp window, Timestamp slide) const {
  PatternBuilder builder;
  builder.Root(PatternBuilder::Iter(types_.v, "v", m,
                                    ThresholdFilter(filter_selectivity)));
  // All iteration events stem from the same sensor: Equi-Join key on id.
  for (int i = 0; i + 1 < m; ++i) {
    builder.Where(Comparison::AttrAttr({i, Attribute::kId}, CmpOp::kEq,
                                       {i + 1, Attribute::kId}));
  }
  return builder.Within(window).SlideBy(slide).Build();
}

}  // namespace cep2asp
