#ifndef CEP2ASP_TRANSLATOR_LOGICAL_PLAN_H_
#define CEP2ASP_TRANSLATOR_LOGICAL_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asp/interval_join.h"
#include "asp/window.h"
#include "asp/window_aggregate.h"
#include "event/predicate.h"
#include "sea/pattern.h"

namespace cep2asp {

/// Logical operators a translated query is composed of (paper Table 1).
enum class LogicalOpKind : uint8_t {
  kScan,          // Stream T_i
  kFilter,        // pushed-down selection
  kKeyByAttr,     // partition by attribute (Equi Join key, O3)
  kKeyByConst,    // uniform key (Cartesian-product workaround, §4.2.1)
  kUnion,         // disjunction target / NSEQ pre-union
  kWindowJoin,    // sliding-window Cross/Theta/Equi join
  kIntervalJoin,  // O1 windowing
  kAggregate,     // O2 window aggregation
  kIterChainApply,// O2 variant for constrained iterations (UDF window fn)
  kNseqMark,      // the NSEQ "ats" UDF
  kReorder,       // restore match-position order after join reordering
};

const char* LogicalOpKindToString(LogicalOpKind kind);

/// \brief Node of the logical query plan the translator produces before
/// physical compilation. A thin, inspectable IR: optimizer passes (O1–O3,
/// join reordering) rewrite this tree, and tests assert its shape.
struct LogicalOp {
  LogicalOpKind kind = LogicalOpKind::kScan;
  std::vector<std::unique_ptr<LogicalOp>> inputs;

  /// Match positions (original pattern positions) covered by this node's
  /// output tuples, in concatenation order.
  std::vector<int> positions;

  // --- per-kind payloads -------------------------------------------------
  EventTypeId scan_type = kInvalidEventType;   // kScan
  Predicate predicate;        // kFilter (var 0 = head event) / join condition
                              // in *concatenated output* index space
  Attribute key_attr = Attribute::kId;         // kKeyByAttr
  /// Keyed stages only (joins/aggregations under O3 attribute keys, and
  /// the key-assigning maps feeding them): the stage computes per key and
  /// may run with parallelism > 1 behind a hash-partitioned exchange
  /// (paper §4.2.3). Constant-key stages stay sequential — every tuple
  /// shares one key, so hash routing would address a single subtask.
  bool parallelizable = false;
  int64_t const_key = 0;                       // kKeyByConst
  SlidingWindowSpec window;                    // kWindowJoin/kAggregate/...
  bool dedup_pairs = false;                    // kWindowJoin: intermediate join
  IntervalBounds interval;                     // kIntervalJoin
  TimestampMode ts_mode = TimestampMode::kMax; // joins
  AggregateFn aggregate_fn = AggregateFn::kCount;  // kAggregate
  Attribute aggregate_attr = Attribute::kValue;    // kAggregate
  int64_t min_count = 0;                       // kAggregate / kIterChainApply
  std::optional<ConsecutiveConstraint> chain_constraint;  // kIterChainApply
  EventTypeId nseq_positive = kInvalidEventType;  // kNseqMark
  EventTypeId nseq_negated = kInvalidEventType;   // kNseqMark
  Timestamp nseq_window = 0;                      // kNseqMark
  std::vector<int> reorder_permutation;           // kReorder

  /// Recursively renders the plan as an indented tree.
  std::string ToString(int indent = 0) const;

  /// Number of nodes of `kind` in this subtree (test helper).
  int CountKind(LogicalOpKind kind) const;
};

/// \brief A complete logical query: plan root plus the window parameters
/// shared by all stateful operators.
struct LogicalPlan {
  std::unique_ptr<LogicalOp> root;
  Timestamp window_size = 0;
  Timestamp slide = 0;
  /// Requested subtask count for parallelizable stages (from
  /// TranslatorOptions::parallelism); physical compilation expands the
  /// marked stages to this parallelism behind hash-partitioned edges.
  int parallelism = 1;
  /// Declared distinct-key count (0 = unknown); becomes the compiled
  /// nodes' key-domain hint.
  int64_t num_keys_hint = 0;
  /// Compile filters / key maps to ExprProgram bytecode (from
  /// TranslatorOptions::compile_expressions).
  bool compile_expressions = true;

  std::string ToString() const {
    return root ? root->ToString() : "(empty plan)";
  }
};

}  // namespace cep2asp

#endif  // CEP2ASP_TRANSLATOR_LOGICAL_PLAN_H_
