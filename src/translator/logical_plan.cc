#include "translator/logical_plan.h"

#include "event/event_type.h"

namespace cep2asp {

const char* LogicalOpKindToString(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kScan:
      return "Scan";
    case LogicalOpKind::kFilter:
      return "Filter";
    case LogicalOpKind::kKeyByAttr:
      return "KeyByAttr";
    case LogicalOpKind::kKeyByConst:
      return "KeyByConst";
    case LogicalOpKind::kUnion:
      return "Union";
    case LogicalOpKind::kWindowJoin:
      return "WindowJoin";
    case LogicalOpKind::kIntervalJoin:
      return "IntervalJoin";
    case LogicalOpKind::kAggregate:
      return "Aggregate";
    case LogicalOpKind::kIterChainApply:
      return "IterChainApply";
    case LogicalOpKind::kNseqMark:
      return "NseqMark";
    case LogicalOpKind::kReorder:
      return "Reorder";
  }
  return "?";
}

std::string LogicalOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + LogicalOpKindToString(kind);
  switch (kind) {
    case LogicalOpKind::kScan:
      out += "(" + EventTypeRegistry::Global()->Name(scan_type) + ")";
      break;
    case LogicalOpKind::kFilter:
      out += "(" + predicate.ToString() + ")";
      break;
    case LogicalOpKind::kKeyByAttr:
      out += "(" + std::string(AttributeName(key_attr)) + ")";
      break;
    case LogicalOpKind::kKeyByConst:
      out += "(" + std::to_string(const_key) + ")";
      break;
    case LogicalOpKind::kWindowJoin:
      out += "[W=" + std::to_string(window.size) +
             ",s=" + std::to_string(window.slide) + "]";
      if (!predicate.IsTrue()) out += "(" + predicate.ToString() + ")";
      break;
    case LogicalOpKind::kIntervalJoin:
      out += "[" + std::to_string(interval.lower) + "," +
             std::to_string(interval.upper) + "]";
      if (!predicate.IsTrue()) out += "(" + predicate.ToString() + ")";
      break;
    case LogicalOpKind::kAggregate:
      out += "(" + std::string(AggregateFnToString(aggregate_fn)) +
             ", n>=" + std::to_string(min_count) + ")";
      break;
    case LogicalOpKind::kIterChainApply:
      out += "(chain>=" + std::to_string(min_count) + ")";
      break;
    case LogicalOpKind::kNseqMark:
      out += "(" + EventTypeRegistry::Global()->Name(nseq_positive) + " vs !" +
             EventTypeRegistry::Global()->Name(nseq_negated) + ")";
      break;
    default:
      break;
  }
  out += "\n";
  for (const auto& input : inputs) out += input->ToString(indent + 1);
  return out;
}

int LogicalOp::CountKind(LogicalOpKind target) const {
  int count = kind == target ? 1 : 0;
  for (const auto& input : inputs) count += input->CountKind(target);
  return count;
}

}  // namespace cep2asp
