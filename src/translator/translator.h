#ifndef CEP2ASP_TRANSLATOR_TRANSLATOR_H_
#define CEP2ASP_TRANSLATOR_TRANSLATOR_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "analysis/interval.h"
#include "cep/nfa.h"
#include "common/result.h"
#include "runtime/executor.h"
#include "runtime/job_graph.h"
#include "runtime/sink.h"
#include "sea/pattern.h"
#include "translator/logical_plan.h"

namespace cep2asp {

/// \brief Per-stream characteristics driving the automated application of
/// the optimization opportunities (paper §7 future work: "collecting
/// information on data and pattern characteristics such as frequency and
/// selectivity enables the automated application of the proposed
/// optimization opportunities").
struct StreamStatistics {
  /// Raw events per minute per event type.
  std::unordered_map<EventTypeId, double> rate_per_minute;
  /// Fraction of events surviving the pushed-down filter, per type.
  std::unordered_map<EventTypeId, double> filter_selectivity;
  /// Declared per-attribute value ranges per event type. When present,
  /// the translator consults the interval analysis on every leaf filter:
  /// provably always-true filters are dropped from the plan, provably
  /// always-false ones refuse translation (CEP2ASP-E318 — the whole plan
  /// is dead). Self-contradictory filters are caught even with no ranges
  /// declared (term-by-term refinement needs no priors).
  SourceRangeCatalog source_ranges;

  double EffectiveRate(EventTypeId type) const {
    double rate = 1.0;
    if (auto it = rate_per_minute.find(type); it != rate_per_minute.end()) {
      rate = it->second;
    }
    double sel = 1.0;
    if (auto it = filter_selectivity.find(type);
        it != filter_selectivity.end()) {
      sel = it->second;
    }
    return rate * sel;
  }
};

/// \brief Options selecting the optimization opportunities of Table 1.
struct TranslatorOptions {
  /// O1: windowing via Interval Joins instead of Sliding Window Joins.
  bool use_interval_join = false;
  /// O2: approximate iterations by window aggregations (or the UDF chain
  /// variant when the iteration constrains consecutive events).
  bool use_aggregation_for_iter = false;
  /// O3: partition by Equi-Join keys extracted from cross-variable
  /// equality predicates; falls back to a uniform key when the equality
  /// graph does not connect all variables.
  bool use_equi_join_keys = false;
  /// Statistics-driven choices: reorder AND children by effective rate
  /// and pick O1 per join when the left stream is the rarer one.
  bool auto_optimize = false;
  /// Append a duplicate-elimination stage (overlapping sliding windows
  /// produce duplicates; O1 plans never need this).
  bool deduplicate_output = false;
  /// Subtask instances for the parallelizable stages of the compiled job
  /// (paper §4.2.3: the Equi Join "is computed per key and
  /// parallelizable"). Takes effect only when O3 finds attribute keys —
  /// the keyed joins/aggregations then run with this parallelism behind
  /// hash-partitioned exchanges, and the key-assigning maps scale with
  /// them. 1 (default) compiles the historical sequential job.
  int parallelism = 1;
  /// Declared number of distinct partition-key values (0 = unknown);
  /// forwarded to the job graph as key-domain hint so the lint can flag
  /// parallelism the key space cannot utilize (W313).
  int64_t num_keys_hint = 0;
  /// Compile translator-generated predicates and key assignments to
  /// ExprProgram bytecode (CompiledStatelessOperator, batch execution,
  /// filter→key fusion). Off = the historical interpreted operators;
  /// user-supplied lambdas always stay interpreted either way.
  bool compile_expressions = true;
};

/// \brief The paper's operator mapping (§4): SEA patterns -> ASP query
/// plans.
///
/// Mapping per Table 1: AND -> Cartesian product (constant-key window
/// join), SEQ -> Theta Join on timestamp order, OR -> union,
/// ITER^m -> chain of m-1 self Theta Joins (or O2 aggregation),
/// NSEQ -> union + "ats" UDF + Theta Join with the negated-quantifier
/// selection. Nested patterns decompose into consecutive binary joins with
/// event-time redefinition (min timestamp for partial matches, max for the
/// complete match, §4.2.2).
class Translator {
 public:
  explicit Translator(TranslatorOptions options = {},
                      StreamStatistics statistics = {})
      : options_(options), statistics_(std::move(statistics)) {}

  /// Builds the logical query plan for `pattern`.
  Result<LogicalPlan> ToLogicalPlan(const Pattern& pattern) const;

  const TranslatorOptions& options() const { return options_; }

 private:
  TranslatorOptions options_;
  StreamStatistics statistics_;
};

/// Supplies a fresh Source for an event type; called once per logical
/// scan (self joins read the stream once per join side, like the paper's
/// FROM Stream T, Stream T).
using SourceFactory = std::function<std::unique_ptr<Source>(EventTypeId)>;

/// \brief A runnable translated query.
struct CompiledQuery {
  JobGraph graph;
  /// Result-collecting sink; owned by `graph`.
  CollectSink* sink = nullptr;
};

/// Compiles a logical plan into a physical JobGraph over the operators of
/// src/asp. `store_matches` controls whether the sink retains tuples.
Result<CompiledQuery> CompilePlan(const LogicalPlan& plan,
                                  const SourceFactory& source_factory,
                                  bool store_matches = true,
                                  Clock* clock = nullptr);

/// Translate + compile in one step.
Result<CompiledQuery> TranslatePattern(const Pattern& pattern,
                                       const TranslatorOptions& options,
                                       const SourceFactory& source_factory,
                                       bool store_matches = true,
                                       Clock* clock = nullptr);

/// \brief Builds the baseline single-operator job (FCEP, §5.1.2): union of
/// all pattern input streams -> (optional key-by) -> unary CEP operator ->
/// sink. Returns Unimplemented for patterns FCEP cannot express (Table 2).
struct CepJobOptions {
  SelectionPolicy policy = SelectionPolicy::kSkipTillAnyMatch;
  /// Partition by the Equi-Join key when the pattern provides one.
  bool keyed = false;
  bool store_matches = true;
  Clock* clock = nullptr;
};

Result<CompiledQuery> BuildCepJob(const Pattern& pattern,
                                  const SourceFactory& source_factory,
                                  const CepJobOptions& options = {});

}  // namespace cep2asp

#endif  // CEP2ASP_TRANSLATOR_TRANSLATOR_H_
