#ifndef CEP2ASP_TRANSLATOR_SQL_TEXT_H_
#define CEP2ASP_TRANSLATOR_SQL_TEXT_H_

#include <string>

#include "common/result.h"
#include "sea/pattern.h"

namespace cep2asp {

/// \brief Renders the declarative query a pattern translates to, in the
/// paper's listing style (Listings 4, 6, 8):
///
///   SELECT *
///   FROM Stream Q q1, Stream V v1
///   WHERE q1.ts < v1.ts AND q1.value <= v1.value
///   WINDOW [Range 15min, Slide 1min]
///
/// Negated sequences render the NOT EXISTS subquery of Listing 6;
/// disjunctions render a UNION; iterations render self joins over the same
/// stream. Purely explanatory (the runnable artifact is the LogicalPlan) —
/// the textual form documents the mapping and feeds EXPLAIN-style output
/// in the examples.
Result<std::string> RenderSqlQuery(const Pattern& pattern);

}  // namespace cep2asp

#endif  // CEP2ASP_TRANSLATOR_SQL_TEXT_H_
