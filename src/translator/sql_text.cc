#include "translator/sql_text.h"

#include <vector>

#include "common/strings.h"
#include "event/event_type.h"

namespace cep2asp {

namespace {

struct SqlVar {
  std::string name;          // SQL alias, e.g. "q1"
  EventTypeId type;          // stream
  const Predicate* filter;   // single-variable predicates
};

std::string AttrText(const std::string& var, Attribute attr) {
  return var + "." + AttributeName(attr);
}

std::string ComparisonText(const Comparison& c,
                           const std::vector<SqlVar>& vars) {
  std::string out =
      AttrText(vars[static_cast<size_t>(c.lhs.var)].name, c.lhs.attr);
  out += " ";
  out += CmpOpToString(c.op);
  out += " ";
  if (c.rhs_is_attr) {
    out += AttrText(vars[static_cast<size_t>(c.rhs_attr.var)].name,
                    c.rhs_attr.attr);
    if (c.rhs_offset != 0.0) out += " + " + FormatDouble(c.rhs_offset);
  } else {
    out += FormatDouble(c.rhs_const);
  }
  return out;
}

std::string FilterText(const SqlVar& var) {
  std::string out;
  for (const Comparison& c : var.filter->terms()) {
    if (!out.empty()) out += " AND ";
    // Filters reference their own variable as index 0.
    Comparison self = c;
    std::vector<SqlVar> self_vars = {var};
    out += ComparisonText(self, self_vars);
  }
  return out;
}

std::string WindowClause(const Pattern& pattern) {
  return "WINDOW [Range " +
         std::to_string(pattern.window_size() / kMillisPerMinute) +
         "min, Slide " + std::to_string(pattern.slide() / kMillisPerMinute) +
         "min]";
}

void AppendConjunct(std::string* where, const std::string& conjunct) {
  if (conjunct.empty()) return;
  if (!where->empty()) *where += "\n  AND ";
  *where += conjunct;
}

std::string VarName(const PatternAtom& atom, int position) {
  if (!atom.variable.empty()) return atom.variable;
  return "e" + std::to_string(position + 1);
}

}  // namespace

Result<std::string> RenderSqlQuery(const Pattern& pattern) {
  CEP2ASP_RETURN_IF_ERROR(pattern.Validate());
  EventTypeRegistry* registry = EventTypeRegistry::Global();
  const PatternNode& root = pattern.root();

  // Disjunction: a UNION of per-branch selections (Eq. 11 target).
  if (root.op == PatternOp::kOr) {
    std::string out;
    for (size_t i = 0; i < root.children.size(); ++i) {
      const PatternAtom& atom = root.children[i]->atom;
      if (i > 0) out += "UNION\n";
      out += "SELECT * FROM Stream " + registry->Name(atom.type) + " " +
             VarName(atom, static_cast<int>(i));
      SqlVar var{VarName(atom, static_cast<int>(i)), atom.type, &atom.filter};
      std::string filter = FilterText(var);
      if (!filter.empty()) out += " WHERE " + filter;
      out += "\n";
    }
    out += WindowClause(pattern);
    return out;
  }

  // Negated sequence: Listing 6's NOT EXISTS form.
  if (root.op == PatternOp::kNseq) {
    const PatternAtom& t1 = root.nseq_atoms[0];
    const PatternAtom& t2 = root.nseq_atoms[1];
    const PatternAtom& t3 = root.nseq_atoms[2];
    std::string v1 = VarName(t1, 0), v2 = VarName(t2, 1), v3 = VarName(t3, 2);

    std::string where;
    AppendConjunct(&where, FilterText({v1, t1.type, &t1.filter}));
    AppendConjunct(&where, FilterText({v3, t3.type, &t3.filter}));
    AppendConjunct(&where, v1 + ".ts < " + v3 + ".ts");
    std::string sub_where;
    AppendConjunct(&sub_where, FilterText({v2, t2.type, &t2.filter}));
    AppendConjunct(&sub_where, v1 + ".ts < " + v2 + ".ts");
    AppendConjunct(&sub_where, v2 + ".ts < " + v3 + ".ts");
    AppendConjunct(&where, "NOT EXISTS (SELECT * FROM Stream " +
                               registry->Name(t2.type) + " " + v2 +
                               "\n    WHERE " + sub_where + ")");

    std::string out = "SELECT *\nFROM Stream " + registry->Name(t1.type) +
                      " " + v1 + ", Stream " + registry->Name(t3.type) + " " +
                      v3 + "\nWHERE " + where + "\n" + WindowClause(pattern);
    return out;
  }

  // SEQ / AND / ITER / single atom: a (self-)join over the streams of all
  // match positions, with ts-order predicates for the ordered operators.
  std::vector<const PatternAtom*> atoms = MatchPositionAtoms(root);
  std::vector<SqlVar> vars;
  std::vector<bool> ordered_edges;  // between position i and i+1
  for (size_t i = 0; i < atoms.size(); ++i) {
    std::string name = VarName(*atoms[i], static_cast<int>(i));
    // Iterations reuse one variable name; disambiguate per position.
    if (root.op == PatternOp::kIter) {
      name = atoms[i]->variable + std::to_string(i + 1);
    } else if (i > 0 && name == vars.back().name) {
      name += std::to_string(i + 1);
    }
    vars.push_back(SqlVar{name, atoms[i]->type, &atoms[i]->filter});
  }
  const bool ordered =
      root.op == PatternOp::kSeq || root.op == PatternOp::kIter;

  std::string from;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) from += ", ";
    from += "Stream " + registry->Name(vars[i].type) + " " + vars[i].name;
  }

  std::string where;
  if (ordered) {
    for (size_t i = 0; i + 1 < vars.size(); ++i) {
      AppendConjunct(&where, vars[i].name + ".ts < " + vars[i + 1].name + ".ts");
    }
  }
  if (root.op == PatternOp::kIter && root.iter_constraint.has_value()) {
    const ConsecutiveConstraint& c = *root.iter_constraint;
    for (size_t i = 0; i + 1 < vars.size(); ++i) {
      AppendConjunct(&where, AttrText(vars[i].name, c.attr) + " " +
                                 CmpOpToString(c.op) + " " +
                                 AttrText(vars[i + 1].name, c.attr));
    }
  }
  for (const SqlVar& var : vars) {
    AppendConjunct(&where, FilterText(var));
    if (root.op == PatternOp::kIter) break;  // one shared filter
  }
  if (root.op == PatternOp::kIter) {
    // The shared filter applies per position.
    for (size_t i = 1; i < vars.size(); ++i) {
      AppendConjunct(&where, FilterText(vars[i]));
    }
  }
  for (const Comparison& c : pattern.cross_predicates().terms()) {
    AppendConjunct(&where, ComparisonText(c, vars));
  }

  std::string out = "SELECT *\nFROM " + from;
  if (!where.empty()) out += "\nWHERE " + where;
  out += "\n" + WindowClause(pattern);
  return out;
}

}  // namespace cep2asp
