#include "translator/translator.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "analysis/diagnostic.h"
#include "analysis/range_rules.h"
#include "asp/compiled_stateless.h"
#include "asp/dedup.h"
#include "asp/nseq_mark.h"
#include "asp/sliding_window_join.h"
#include "asp/stateless.h"
#include "asp/window_aggregate.h"
#include "asp/window_apply.h"
#include "cep/cep_operator.h"
#include "common/logging.h"

namespace cep2asp {

namespace {

// ---------------------------------------------------------------------------
// Equi-Join key extraction (O3, §4.3.3)
// ---------------------------------------------------------------------------

struct KeyPlan {
  bool by_attr = false;
  Attribute attr = Attribute::kId;
  /// Indices (into pattern.cross_predicates().terms()) of the equality
  /// terms consumed by key partitioning.
  std::vector<size_t> consumed_terms;
};

/// Determines whether the pattern's cross-variable equalities connect all
/// match positions on a single attribute; if so, every stream can be
/// partitioned by that attribute and the equalities become the join key.
KeyPlan ExtractKeyPlan(const Pattern& pattern) {
  KeyPlan plan;
  const int arity = pattern.OutputArity();
  if (arity < 2) return plan;

  // Union-find over match positions.
  std::vector<int> parent(static_cast<size_t>(arity));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      x = parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
    }
    return x;
  };

  bool have_attr = false;
  Attribute attr = Attribute::kId;
  const auto& terms = pattern.cross_predicates().terms();
  std::vector<size_t> candidates;
  for (size_t i = 0; i < terms.size(); ++i) {
    const Comparison& c = terms[i];
    if (!c.IsCrossVarEquality()) continue;
    if (c.lhs.attr != c.rhs_attr.attr) continue;
    if (have_attr && c.lhs.attr != attr) continue;  // single-attribute keys
    have_attr = true;
    attr = c.lhs.attr;
    parent[static_cast<size_t>(find(c.lhs.var))] = find(c.rhs_attr.var);
    candidates.push_back(i);
  }
  if (!have_attr) return plan;
  int root = find(0);
  for (int i = 1; i < arity; ++i) {
    if (find(i) != root) return plan;  // not fully connected: no key plan
  }
  plan.by_attr = true;
  plan.attr = attr;
  plan.consumed_terms = std::move(candidates);
  return plan;
}

// ---------------------------------------------------------------------------
// Logical plan construction
// ---------------------------------------------------------------------------

struct PendingTerm {
  Comparison comparison;  // match-position variable space
  bool attached = false;
};

struct BuildContext {
  const Pattern* pattern = nullptr;
  const TranslatorOptions* options = nullptr;
  const StreamStatistics* stats = nullptr;
  Timestamp window = 0;
  Timestamp slide = 0;
  KeyPlan key_plan;
  std::vector<PendingTerm> pending;
  bool used_sliding_join = false;
  /// Set when a leaf filter is provably always-false for the declared
  /// source ranges: the plan is dead and translation refuses (E318).
  std::string dead_filter_error;
};

std::unique_ptr<LogicalOp> MakeKeyOp(const BuildContext& ctx,
                                     std::unique_ptr<LogicalOp> input) {
  auto key = std::make_unique<LogicalOp>();
  key->kind = ctx.key_plan.by_attr ? LogicalOpKind::kKeyByAttr
                                   : LogicalOpKind::kKeyByConst;
  key->key_attr = ctx.key_plan.attr;
  key->const_key = 0;
  key->parallelizable = ctx.key_plan.by_attr;
  key->positions = input->positions;
  key->inputs.push_back(std::move(input));
  return key;
}

/// Scan -> (Filter) -> KeyBy chain for one atom occurrence. Consumes the
/// interval analysis on the pushed-down filter: a filter the declared
/// source ranges prove always-true is dropped from the plan, one proven
/// always-false poisons the build (the caller refuses translation with
/// E318 — the whole plan is dead). With no declared ranges the analysis
/// still catches self-contradictory filters by term refinement.
std::unique_ptr<LogicalOp> BuildLeaf(BuildContext& ctx,
                                     const PatternAtom& atom, int position) {
  auto scan = std::make_unique<LogicalOp>();
  scan->kind = LogicalOpKind::kScan;
  scan->scan_type = atom.type;
  scan->positions = {position};

  std::unique_ptr<LogicalOp> head = std::move(scan);
  if (!atom.filter.IsTrue()) {
    const EventRanges* declared = ctx.stats->source_ranges.Find(atom.type);
    const Truth truth = PredicateTruthOnEvent(
        atom.filter, declared != nullptr ? *declared : EventRanges{});
    if (truth == Truth::kNever && ctx.dead_filter_error.empty()) {
      ctx.dead_filter_error =
          DiagnosticCodeName(DiagnosticCode::kGraphFilterAlwaysFalse) +
          ": filter on event type " + std::to_string(atom.type) +
          " can never hold for the declared source ranges; the plan "
          "matches nothing";
    }
    if (truth != Truth::kAlways) {
      auto filter = std::make_unique<LogicalOp>();
      filter->kind = LogicalOpKind::kFilter;
      filter->predicate = atom.filter;
      filter->positions = {position};
      filter->inputs.push_back(std::move(head));
      head = std::move(filter);
    }
    // truth == kAlways: the declared ranges prove the filter a no-op —
    // the W319 case, resolved here by simply not emitting the operator.
  }
  return MakeKeyOp(ctx, std::move(head));
}

/// Remaps a match-position comparison into the concatenated index space
/// described by `positions` (positions[i] = match position at concat
/// slot i).
Comparison RemapToConcat(const Comparison& c, const std::vector<int>& positions) {
  int max_pos = 0;
  for (int p : positions) max_pos = std::max(max_pos, p);
  std::vector<int> mapping(static_cast<size_t>(max_pos) + 1, -1);
  for (size_t i = 0; i < positions.size(); ++i) {
    mapping[static_cast<size_t>(positions[i])] = static_cast<int>(i);
  }
  return c.Remap(mapping);
}

bool ContainsAll(const std::vector<int>& positions, const Comparison& c) {
  auto has = [&positions](int var) {
    return std::find(positions.begin(), positions.end(), var) != positions.end();
  };
  if (!has(c.lhs.var)) return false;
  if (c.rhs_is_attr && !has(c.rhs_attr.var)) return false;
  return true;
}

/// Collects cross predicates that become evaluable with `positions` and
/// have not been attached yet, remapped to concat space.
Predicate TakeAttachableTerms(BuildContext* ctx,
                              const std::vector<int>& positions) {
  Predicate out;
  for (PendingTerm& term : ctx->pending) {
    if (term.attached) continue;
    if (!ContainsAll(positions, term.comparison)) continue;
    out.Add(RemapToConcat(term.comparison, positions));
    term.attached = true;
  }
  return out;
}

/// Estimated post-filter rate for ordering decisions; composites use
/// their head scan's type.
double EstimateRate(const BuildContext& ctx, const LogicalOp& node) {
  const LogicalOp* cursor = &node;
  while (!cursor->inputs.empty()) cursor = cursor->inputs[0].get();
  if (cursor->kind != LogicalOpKind::kScan) return 1.0;
  return ctx.stats->EffectiveRate(cursor->scan_type);
}

/// Builds a binary join of `left` and `right`. `ordered` selects SEQ
/// adjacency semantics (every left-side event of the previous child
/// precedes every right-side event); `adjacency_left_positions` holds the
/// previous child's positions (subset of left->positions) for SEQ.
std::unique_ptr<LogicalOp> BuildJoin(BuildContext* ctx,
                                     std::unique_ptr<LogicalOp> left,
                                     std::unique_ptr<LogicalOp> right,
                                     bool ordered,
                                     const std::vector<int>& adjacency_left_positions) {
  std::vector<int> combined = left->positions;
  combined.insert(combined.end(), right->positions.begin(),
                  right->positions.end());

  Predicate condition;
  const size_t left_arity = left->positions.size();

  if (ordered) {
    // SEQ: temporal order between the adjacent children (Eq. 10 /
    // Listing 8: consecutive ts constraints).
    for (int p : adjacency_left_positions) {
      auto it = std::find(left->positions.begin(), left->positions.end(), p);
      CEP2ASP_CHECK(it != left->positions.end());
      int left_idx = static_cast<int>(it - left->positions.begin());
      for (size_t r = 0; r < right->positions.size(); ++r) {
        condition.Add(Comparison::AttrAttr(
            AttrRef{left_idx, Attribute::kTs}, CmpOp::kLt,
            AttrRef{static_cast<int>(left_arity + r), Attribute::kTs}));
      }
    }
  } else {
    // AND with a composite left side: the partial match's redefined event
    // time (min ts) no longer witnesses all pairwise window constraints,
    // so they survive explicitly as predicates: |l.ts - r.ts| < W.
    if (left_arity > 1) {
      double w = static_cast<double>(ctx->window);
      for (size_t l = 0; l < left_arity; ++l) {
        for (size_t r = 0; r < right->positions.size(); ++r) {
          int ri = static_cast<int>(left_arity + r);
          condition.Add(Comparison::AttrAttr(AttrRef{static_cast<int>(l), Attribute::kTs},
                                             CmpOp::kLt,
                                             AttrRef{ri, Attribute::kTs}, w));
          condition.Add(Comparison::AttrAttr(AttrRef{ri, Attribute::kTs},
                                             CmpOp::kLt,
                                             AttrRef{static_cast<int>(l), Attribute::kTs},
                                             w));
        }
      }
    }
  }

  // Attach newly evaluable cross predicates.
  Predicate attachable = TakeAttachableTerms(ctx, combined);
  for (const Comparison& c : attachable.terms()) condition.Add(c);

  auto join = std::make_unique<LogicalOp>();
  bool interval = ctx->options->use_interval_join;
  if (ctx->options->auto_optimize && !interval) {
    // O1 pays off when the (window-defining) left stream is the rarer one
    // (§4.3.1).
    interval = EstimateRate(*ctx, *left) <= EstimateRate(*ctx, *right);
  }
  if (interval) {
    join->kind = LogicalOpKind::kIntervalJoin;
    join->interval = ordered ? IntervalBounds::ForSequence(ctx->window)
                             : IntervalBounds::ForConjunction(ctx->window);
  } else {
    join->kind = LogicalOpKind::kWindowJoin;
    join->window = SlidingWindowSpec{ctx->window, ctx->slide};
    // Intermediate joins forward each logical match once so per-overlap
    // duplicates do not multiply through the chain; the root join is
    // switched back to duplicate-emitting in MarkRootJoinComplete.
    join->dedup_pairs = true;
    ctx->used_sliding_join = true;
  }
  join->predicate = std::move(condition);
  join->ts_mode = TimestampMode::kMin;  // partial match; root fixed later
  // Under O3 attribute keys the join computes per key (§4.2.3) and may
  // run data-parallel; constant-key joins cannot spread over subtasks.
  join->parallelizable = ctx->key_plan.by_attr;
  join->positions = std::move(combined);
  join->inputs.push_back(std::move(left));
  join->inputs.push_back(std::move(right));
  return join;
}

Result<std::unique_ptr<LogicalOp>> BuildNode(BuildContext* ctx,
                                             const PatternNode& node,
                                             int* position_cursor);

/// ITER^m as a chain of m-1 self Theta Joins (Table 1).
Result<std::unique_ptr<LogicalOp>> BuildIterJoins(BuildContext* ctx,
                                                  const PatternNode& node,
                                                  int* position_cursor) {
  const int m = node.iter_count;
  int base_position = *position_cursor;
  *position_cursor += m;

  std::unique_ptr<LogicalOp> plan = BuildLeaf(*ctx, node.atom, base_position);
  for (int i = 1; i < m; ++i) {
    std::unique_ptr<LogicalOp> next = BuildLeaf(*ctx, node.atom, base_position + i);
    std::vector<int> adjacency = {base_position + i - 1};
    std::unique_ptr<LogicalOp> join =
        BuildJoin(ctx, std::move(plan), std::move(next), /*ordered=*/true,
                  adjacency);
    if (node.iter_constraint.has_value()) {
      const ConsecutiveConstraint& c = *node.iter_constraint;
      join->predicate.Add(Comparison::AttrAttr(AttrRef{i - 1, c.attr}, c.op,
                                               AttrRef{i, c.attr}));
    }
    plan = std::move(join);
  }
  return plan;
}

/// ITER^m via O2: window aggregation (count) or, when the iteration
/// constrains consecutive events, the UDF chain variant (§4.3.2: UDF
/// aggregations can sort window content to support such conditions).
Result<std::unique_ptr<LogicalOp>> BuildIterAggregate(BuildContext* ctx,
                                                      const PatternNode& node,
                                                      int* position_cursor) {
  int base_position = *position_cursor;
  *position_cursor += node.iter_count;
  // The aggregate collapses the iteration into one output tuple; cross
  // predicates over its positions cannot be evaluated any more.
  for (const PendingTerm& term : ctx->pending) {
    const Comparison& c = term.comparison;
    auto in_iter = [&](int var) {
      return var >= base_position && var < base_position + node.iter_count;
    };
    if (in_iter(c.lhs.var) || (c.rhs_is_attr && in_iter(c.rhs_attr.var))) {
      return Status::FailedPrecondition(
          "O2 aggregation cannot honor cross predicates over iteration "
          "positions");
    }
  }

  std::unique_ptr<LogicalOp> leaf = BuildLeaf(*ctx, node.atom, base_position);
  auto agg = std::make_unique<LogicalOp>();
  if (node.iter_constraint.has_value()) {
    agg->kind = LogicalOpKind::kIterChainApply;
    agg->chain_constraint = node.iter_constraint;
  } else {
    agg->kind = LogicalOpKind::kAggregate;
    agg->aggregate_fn = AggregateFn::kCount;
    agg->aggregate_attr = Attribute::kValue;
  }
  agg->min_count = node.iter_count;
  agg->window = SlidingWindowSpec{ctx->window, ctx->slide};
  agg->parallelizable = ctx->key_plan.by_attr;
  agg->positions = {base_position};  // approximate single-tuple output
  agg->inputs.push_back(std::move(leaf));
  return agg;
}

Result<std::unique_ptr<LogicalOp>> BuildNseq(BuildContext* ctx,
                                             const PatternNode& node,
                                             int* position_cursor) {
  const PatternAtom& t1 = node.nseq_atoms[0];
  const PatternAtom& t2 = node.nseq_atoms[1];
  const PatternAtom& t3 = node.nseq_atoms[2];
  int p1 = (*position_cursor)++;
  int p3 = (*position_cursor)++;

  std::unique_ptr<LogicalOp> left1 = BuildLeaf(*ctx, t1, p1);
  std::unique_ptr<LogicalOp> left2 = BuildLeaf(*ctx, t2, p1);  // no own position

  auto union_op = std::make_unique<LogicalOp>();
  union_op->kind = LogicalOpKind::kUnion;
  union_op->positions = {p1};
  union_op->inputs.push_back(std::move(left1));
  union_op->inputs.push_back(std::move(left2));

  auto mark = std::make_unique<LogicalOp>();
  mark->kind = LogicalOpKind::kNseqMark;
  mark->nseq_positive = t1.type;
  mark->nseq_negated = t2.type;
  mark->nseq_window = ctx->window;
  mark->parallelizable = ctx->key_plan.by_attr;  // marking is per key
  mark->positions = {p1};
  mark->inputs.push_back(std::move(union_op));

  std::unique_ptr<LogicalOp> right = BuildLeaf(*ctx, t3, p3);
  std::unique_ptr<LogicalOp> join = BuildJoin(
      ctx, std::move(mark), std::move(right), /*ordered=*/true, {p1});
  // The negated quantifier: no e2 in the *open* interval (e1.ts, e3.ts)
  // <=> ats >= e3.ts. (Non-strict: an e2 at exactly e3.ts does not block
  // the match, so ats == e3.ts must pass.)
  join->predicate.Add(Comparison::AttrAttr(AttrRef{0, Attribute::kAuxTs},
                                           CmpOp::kGe,
                                           AttrRef{1, Attribute::kTs}));
  return join;
}

Result<std::unique_ptr<LogicalOp>> BuildComposite(BuildContext* ctx,
                                                  const PatternNode& node,
                                                  int* position_cursor) {
  const bool ordered = node.op == PatternOp::kSeq;

  // Build children in pattern order (positions are assigned in order).
  std::vector<std::unique_ptr<LogicalOp>> children;
  std::vector<std::vector<int>> child_positions;
  children.reserve(node.children.size());
  for (const auto& child : node.children) {
    auto result = BuildNode(ctx, *child, position_cursor);
    if (!result.ok()) return result.status();
    child_positions.push_back(result.ValueOrDie()->positions);
    children.push_back(std::move(result).ValueOrDie());
  }

  // AND is commutative: with statistics, join the rarer streams first
  // (§4.2.2: "leverage the commutative and associative properties ... and
  // reorder joins"). SEQ is not commutative; its children join in pattern
  // order so adjacency constraints stay between neighbouring children.
  std::vector<size_t> order(children.size());
  std::iota(order.begin(), order.end(), 0);
  if (!ordered && ctx->options->auto_optimize) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return EstimateRate(*ctx, *children[a]) < EstimateRate(*ctx, *children[b]);
    });
  }

  std::unique_ptr<LogicalOp> plan = std::move(children[order[0]]);
  for (size_t i = 1; i < order.size(); ++i) {
    // SEQ: the adjacency constraint links pattern child i-1 with child i
    // (Listing 8: consecutive ts predicates; transitivity orders the rest).
    std::vector<int> adjacency;
    if (ordered) adjacency = child_positions[order[i] - 1];
    plan = BuildJoin(ctx, std::move(plan), std::move(children[order[i]]),
                     ordered, adjacency);
  }
  return plan;
}

Result<std::unique_ptr<LogicalOp>> BuildNode(BuildContext* ctx,
                                             const PatternNode& node,
                                             int* position_cursor) {
  switch (node.op) {
    case PatternOp::kAtom: {
      int position = (*position_cursor)++;
      return BuildLeaf(*ctx, node.atom, position);
    }
    case PatternOp::kOr: {
      int position = (*position_cursor)++;
      auto union_op = std::make_unique<LogicalOp>();
      union_op->kind = LogicalOpKind::kUnion;
      union_op->positions = {position};
      for (const auto& child : node.children) {
        union_op->inputs.push_back(BuildLeaf(*ctx, child->atom, position));
      }
      return union_op;
    }
    case PatternOp::kIter:
      if (node.iter_unbounded && !ctx->options->use_aggregation_for_iter) {
        // Kleene+-style iterations (n >= m) have no Theta-Join mapping
        // (Table 1: "unbounded m" requires O2); the aggregation path
        // checks count >= m per window.
        return Status::Unimplemented(
            "unbounded iteration requires O2 (use_aggregation_for_iter)");
      }
      if (ctx->options->use_aggregation_for_iter) {
        auto result = BuildIterAggregate(ctx, node, position_cursor);
        if (result.ok() || node.iter_unbounded) return result;
        // Fall back to joins when O2 cannot express the bounded pattern.
        CEP2ASP_LOG(Warning)
            << "O2 fallback to self joins: " << result.status().message();
        *position_cursor -= node.iter_count;
      }
      return BuildIterJoins(ctx, node, position_cursor);
    case PatternOp::kNseq:
      return BuildNseq(ctx, node, position_cursor);
    case PatternOp::kSeq:
    case PatternOp::kAnd:
      return BuildComposite(ctx, node, position_cursor);
  }
  return Status::Internal("unknown pattern op");
}

void MarkRootJoinComplete(LogicalOp* op) {
  if (op->kind == LogicalOpKind::kWindowJoin ||
      op->kind == LogicalOpKind::kIntervalJoin) {
    // Complete match: event time becomes the maximum constituent
    // timestamp (§4.2.2); the final join keeps the sliding duplicates
    // the paper describes (§3.1.4).
    op->ts_mode = TimestampMode::kMax;
    op->dedup_pairs = false;
    return;
  }
  // Look through order-preserving unary wrappers.
  if (op->kind == LogicalOpKind::kReorder && !op->inputs.empty()) {
    MarkRootJoinComplete(op->inputs[0].get());
  }
}

}  // namespace

Result<LogicalPlan> Translator::ToLogicalPlan(const Pattern& pattern) const {
  CEP2ASP_RETURN_IF_ERROR(pattern.Validate());

  BuildContext ctx;
  ctx.pattern = &pattern;
  ctx.options = &options_;
  ctx.stats = &statistics_;
  ctx.window = pattern.window_size();
  ctx.slide = pattern.slide();

  if (options_.use_equi_join_keys || options_.auto_optimize) {
    ctx.key_plan = ExtractKeyPlan(pattern);
    if ((options_.use_equi_join_keys) && !ctx.key_plan.by_attr &&
        pattern.OutputArity() > 1) {
      CEP2ASP_LOG(Info) << "O3 requested but no connecting Equi-Join "
                           "predicates; falling back to a uniform key";
    }
  }

  // Pending cross-variable predicates, minus the equalities consumed by
  // key partitioning.
  std::set<size_t> consumed(ctx.key_plan.consumed_terms.begin(),
                            ctx.key_plan.consumed_terms.end());
  const auto& terms = pattern.cross_predicates().terms();
  for (size_t i = 0; i < terms.size(); ++i) {
    if (consumed.count(i) > 0) continue;
    ctx.pending.push_back(PendingTerm{terms[i], false});
  }

  int cursor = 0;
  auto root_result = BuildNode(&ctx, pattern.root(), &cursor);
  if (!root_result.ok()) return root_result.status();
  if (!ctx.dead_filter_error.empty()) {
    return Status::FailedPrecondition(ctx.dead_filter_error);
  }
  std::unique_ptr<LogicalOp> root = std::move(root_result).ValueOrDie();

  for (const PendingTerm& term : ctx.pending) {
    if (!term.attached) {
      return Status::Internal("cross predicate not attachable: " +
                              term.comparison.ToString());
    }
  }

  MarkRootJoinComplete(root.get());

  // Restore match-position order if reordering shuffled the output.
  bool shuffled = false;
  for (size_t i = 0; i < root->positions.size(); ++i) {
    if (root->positions[i] != static_cast<int>(i)) shuffled = true;
  }
  if (shuffled) {
    auto reorder = std::make_unique<LogicalOp>();
    reorder->kind = LogicalOpKind::kReorder;
    reorder->reorder_permutation.resize(root->positions.size());
    for (size_t i = 0; i < root->positions.size(); ++i) {
      reorder->reorder_permutation[static_cast<size_t>(root->positions[i])] =
          static_cast<int>(i);
    }
    reorder->positions.resize(root->positions.size());
    std::iota(reorder->positions.begin(), reorder->positions.end(), 0);
    reorder->inputs.push_back(std::move(root));
    root = std::move(reorder);
  }

  LogicalPlan plan;
  plan.root = std::move(root);
  plan.window_size = ctx.window;
  plan.slide = ctx.slide;
  plan.parallelism = std::max(1, options_.parallelism);
  plan.num_keys_hint = options_.num_keys_hint;
  plan.compile_expressions = options_.compile_expressions;
  (void)ctx.used_sliding_join;
  return plan;
}

// ---------------------------------------------------------------------------
// Physical compilation
// ---------------------------------------------------------------------------

namespace {

struct CompileContext {
  const SourceFactory* factory = nullptr;
  JobGraph* graph = nullptr;
  /// From LogicalPlan: subtask count for parallelizable stages and the
  /// declared key-domain size (lint metadata).
  int parallelism = 1;
  int64_t num_keys_hint = 0;
  /// Emit CompiledStatelessOperator for translator-generated filters and
  /// key maps (TranslatorOptions::compile_expressions).
  bool compile_expressions = true;
};

/// Expands a compiled stage to the requested parallelism when the logical
/// node is marked parallelizable; no-op for sequential plans.
Status ApplyParallelism(const LogicalOp& op, NodeId id, CompileContext* ctx) {
  if (ctx->parallelism <= 1 || !op.parallelizable) return Status::OK();
  CEP2ASP_RETURN_IF_ERROR(ctx->graph->SetParallelism(id, ctx->parallelism));
  if (ctx->num_keys_hint > 0) {
    CEP2ASP_RETURN_IF_ERROR(
        ctx->graph->SetKeyDomainHint(id, ctx->num_keys_hint));
  }
  return Status::OK();
}

/// Edge mode into a keyed stateful stage: hash-partitioned when the stage
/// runs parallel (each key's events must meet in one subtask), plain
/// forward otherwise. Key-assigning maps themselves take forward
/// (rebalance) input — their tuples carry no partition key yet.
PartitionMode KeyedInputMode(const LogicalOp& op, const CompileContext& ctx) {
  return (ctx.parallelism > 1 && op.parallelizable) ? PartitionMode::kHash
                                                    : PartitionMode::kForward;
}

/// The key program of a key-assigning logical node, or a failed program
/// for other kinds.
ExprProgram KeyProgramFor(const LogicalOp& op) {
  if (op.kind == LogicalOpKind::kKeyByAttr) {
    return ExprProgram::KeyByAttribute(0, op.key_attr);
  }
  if (op.kind == LogicalOpKind::kKeyByConst) {
    return ExprProgram::KeyByConstant(op.const_key);
  }
  ExprProgram none;
  return none;
}

Result<NodeId> CompileNode(const LogicalOp& op, CompileContext* ctx) {
  // Filter→key fusion: a key-assigning node directly over a filter
  // compiles both into one bytecode program running as a single operator
  // — the whole stateless prefix of an O3 plan becomes one tight loop.
  if (ctx->compile_expressions &&
      (op.kind == LogicalOpKind::kKeyByAttr ||
       op.kind == LogicalOpKind::kKeyByConst) &&
      op.inputs.size() == 1 &&
      op.inputs[0]->kind == LogicalOpKind::kFilter) {
    const LogicalOp& filter = *op.inputs[0];
    ExprProgram fused = ExprProgram::Fuse(
        ExprProgram::Filter(filter.predicate, ExprProgram::VarMode::kBroadcast),
        KeyProgramFor(op));
    if (fused.ok()) {
      CEP2ASP_ASSIGN_OR_RETURN(NodeId in,
                               CompileNode(*filter.inputs[0], ctx));
      NodeId id = ctx->graph->AddOperator(
          std::make_unique<CompiledStatelessOperator>(std::move(fused),
                                                      "filter+key"));
      CEP2ASP_RETURN_IF_ERROR(ctx->graph->Connect(in, id, 0));
      CEP2ASP_RETURN_IF_ERROR(ApplyParallelism(op, id, ctx));
      return id;
    }
  }

  std::vector<NodeId> inputs;
  inputs.reserve(op.inputs.size());
  for (const auto& input : op.inputs) {
    CEP2ASP_ASSIGN_OR_RETURN(NodeId id, CompileNode(*input, ctx));
    inputs.push_back(id);
  }
  const SourceFactory& factory = *ctx->factory;
  JobGraph* graph = ctx->graph;

  switch (op.kind) {
    case LogicalOpKind::kScan: {
      std::unique_ptr<Source> source = factory(op.scan_type);
      if (source == nullptr) {
        return Status::NotFound("no source for event type " +
                                EventTypeRegistry::Global()->Name(op.scan_type));
      }
      return graph->AddSource(std::move(source), op.scan_type);
    }
    case LogicalOpKind::kFilter: {
      std::unique_ptr<Operator> filter;
      if (ctx->compile_expressions) {
        ExprProgram program = ExprProgram::Filter(
            op.predicate, ExprProgram::VarMode::kBroadcast);
        if (program.ok()) {
          filter = std::make_unique<CompiledStatelessOperator>(
              std::move(program), "filter");
        }
      }
      if (filter == nullptr) {
        filter = FilterOperator::FromPredicate(op.predicate, "filter");
      }
      NodeId id = graph->AddOperator(std::move(filter));
      CEP2ASP_RETURN_IF_ERROR(graph->Connect(inputs[0], id, 0));
      return id;
    }
    case LogicalOpKind::kKeyByAttr:
    case LogicalOpKind::kKeyByConst: {
      std::unique_ptr<Operator> map;
      if (ctx->compile_expressions) {
        ExprProgram program = KeyProgramFor(op);
        if (program.ok()) {
          map = std::make_unique<CompiledStatelessOperator>(
              std::move(program), op.kind == LogicalOpKind::kKeyByAttr
                                      ? "map(key:=attr)"
                                      : "map(key:=const)");
        }
      }
      if (map == nullptr) {
        map = op.kind == LogicalOpKind::kKeyByAttr
                  ? MapOperator::KeyByAttribute(0, op.key_attr)
                  : MapOperator::AssignConstantKey(op.const_key);
      }
      NodeId id = graph->AddOperator(std::move(map));
      CEP2ASP_RETURN_IF_ERROR(graph->Connect(inputs[0], id, 0));
      if (op.kind == LogicalOpKind::kKeyByAttr) {
        CEP2ASP_RETURN_IF_ERROR(ApplyParallelism(op, id, ctx));
      }
      return id;
    }
    case LogicalOpKind::kUnion: {
      NodeId id = graph->AddOperator(
          std::make_unique<UnionOperator>(static_cast<int>(inputs.size())));
      for (size_t i = 0; i < inputs.size(); ++i) {
        CEP2ASP_RETURN_IF_ERROR(
            graph->Connect(inputs[i], id, static_cast<int>(i)));
      }
      return id;
    }
    case LogicalOpKind::kWindowJoin: {
      NodeId id = graph->AddOperator(std::make_unique<SlidingWindowJoinOperator>(
          op.window, op.predicate, op.ts_mode,
          op.dedup_pairs ? "win-join(dedup)" : "win-join", op.dedup_pairs));
      const PartitionMode mode = KeyedInputMode(op, *ctx);
      CEP2ASP_RETURN_IF_ERROR(graph->Connect(inputs[0], id, 0, mode));
      CEP2ASP_RETURN_IF_ERROR(graph->Connect(inputs[1], id, 1, mode));
      CEP2ASP_RETURN_IF_ERROR(ApplyParallelism(op, id, ctx));
      return id;
    }
    case LogicalOpKind::kIntervalJoin: {
      NodeId id = graph->AddOperator(std::make_unique<IntervalJoinOperator>(
          op.interval, op.predicate, op.ts_mode));
      const PartitionMode mode = KeyedInputMode(op, *ctx);
      CEP2ASP_RETURN_IF_ERROR(graph->Connect(inputs[0], id, 0, mode));
      CEP2ASP_RETURN_IF_ERROR(graph->Connect(inputs[1], id, 1, mode));
      CEP2ASP_RETURN_IF_ERROR(ApplyParallelism(op, id, ctx));
      return id;
    }
    case LogicalOpKind::kAggregate: {
      NodeId id = graph->AddOperator(std::make_unique<WindowAggregateOperator>(
          op.window, op.aggregate_fn, op.aggregate_attr, op.min_count));
      CEP2ASP_RETURN_IF_ERROR(
          graph->Connect(inputs[0], id, 0, KeyedInputMode(op, *ctx)));
      CEP2ASP_RETURN_IF_ERROR(ApplyParallelism(op, id, ctx));
      return id;
    }
    case LogicalOpKind::kIterChainApply: {
      const ConsecutiveConstraint constraint = *op.chain_constraint;
      const int64_t min_count = op.min_count;
      auto chain_fn = [constraint, min_count](
                          int64_t key, Timestamp, Timestamp,
                          const std::vector<SimpleEvent>& events,
                          Collector* out) {
        // Longest chain (by ts order) whose consecutive members satisfy
        // the constraint; fires when it reaches the iteration length.
        std::vector<int> best(events.size(), 1);
        int longest = events.empty() ? 0 : 1;
        for (size_t i = 1; i < events.size(); ++i) {
          for (size_t j = 0; j < i; ++j) {
            if (events[j].ts < events[i].ts &&
                EvalCmp(GetAttribute(events[j], constraint.attr), constraint.op,
                        GetAttribute(events[i], constraint.attr))) {
              best[i] = std::max(best[i], best[j] + 1);
            }
          }
          longest = std::max(longest, best[i]);
        }
        if (longest >= min_count) {
          SimpleEvent agg = events.back();
          agg.value = static_cast<double>(longest);
          Tuple tuple(agg);
          tuple.set_key(key);
          out->Emit(std::move(tuple));
        }
      };
      NodeId id = graph->AddOperator(std::make_unique<WindowApplyOperator>(
          op.window, chain_fn, "iter-chain"));
      CEP2ASP_RETURN_IF_ERROR(
          graph->Connect(inputs[0], id, 0, KeyedInputMode(op, *ctx)));
      CEP2ASP_RETURN_IF_ERROR(ApplyParallelism(op, id, ctx));
      return id;
    }
    case LogicalOpKind::kNseqMark: {
      NodeId id = graph->AddOperator(std::make_unique<NseqMarkOperator>(
          op.nseq_positive, op.nseq_negated, op.nseq_window));
      CEP2ASP_RETURN_IF_ERROR(
          graph->Connect(inputs[0], id, 0, KeyedInputMode(op, *ctx)));
      CEP2ASP_RETURN_IF_ERROR(ApplyParallelism(op, id, ctx));
      return id;
    }
    case LogicalOpKind::kReorder: {
      std::vector<int> permutation = op.reorder_permutation;
      auto fn = [permutation](Tuple t) {
        Tuple out;
        for (int idx : permutation) {
          out.AppendEvent(t.event(static_cast<size_t>(idx)));
        }
        out.set_key(t.key());
        out.set_event_time(t.event_time());
        return out;
      };
      NodeId id = graph->AddOperator(
          std::make_unique<MapOperator>(fn, "reorder"));
      CEP2ASP_RETURN_IF_ERROR(graph->Connect(inputs[0], id, 0));
      return id;
    }
  }
  return Status::Internal("unknown logical op kind");
}

/// Chain-friendly parallelism alignment: a stateless, cloneable operator
/// whose single forward out-edge is the only input of a wider parallel
/// consumer is widened to that consumer's parallelism. Without this, the
/// pre-key stages (filter -> key-assigning map) stay at parallelism 1 and
/// every parallel plan pays a rebalance exchange in front of each keyed
/// stage; with it, the whole stateless prefix fuses into the parallel
/// chain (see ComputeChainLayout). Iterates to a fixpoint so prefixes of
/// any length widen together. Results are unaffected: the rebalance this
/// removes was already spreading tuples over subtasks arbitrarily, and
/// key-based routing only starts at the hash edges downstream.
void AlignStatelessPrefixParallelism(JobGraph* graph) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < graph->num_nodes(); ++id) {
      const JobGraph::Node& node = graph->node(id);
      if (node.is_source() || node.outputs.size() != 1) continue;
      const JobGraph::Edge& edge = node.outputs[0];
      if (edge.partition != PartitionMode::kForward) continue;
      if (graph->fan_in(edge.to) != 1) continue;
      const int consumer_parallelism = graph->parallelism(edge.to);
      if (node.parallelism >= consumer_parallelism) continue;
      if (node.op->Traits().stateful) continue;
      if (node.op->CloneForSubtask() == nullptr) continue;
      CEP2ASP_CHECK_OK(graph->SetParallelism(id, consumer_parallelism));
      changed = true;
    }
  }
}

/// Final gate before handing out a runnable graph: the empty-catalog range
/// pass costs one topological sweep and still proves self-contradictory
/// filters dead (E318) and malformed bytecode (E321) without any declared
/// source ranges. Plans carrying such errors are refused here rather than
/// left to match nothing at runtime.
Status RefuseDeadPlans(const JobGraph& graph) {
  const RangeAnalysis ranges = AnalyzeRanges(graph, SourceRangeCatalog{});
  return ranges.report.ToStatus();
}

}  // namespace

Result<CompiledQuery> CompilePlan(const LogicalPlan& plan,
                                  const SourceFactory& source_factory,
                                  bool store_matches, Clock* clock) {
  if (!plan.root) return Status::InvalidArgument("empty logical plan");
  CompiledQuery query;
  CompileContext ctx;
  ctx.factory = &source_factory;
  ctx.graph = &query.graph;
  ctx.parallelism = plan.parallelism;
  ctx.num_keys_hint = plan.num_keys_hint;
  ctx.compile_expressions = plan.compile_expressions;
  CEP2ASP_ASSIGN_OR_RETURN(NodeId last, CompileNode(*plan.root, &ctx));
  auto sink = std::make_unique<CollectSink>(store_matches, clock);
  query.sink = sink.get();
  NodeId sink_id = query.graph.AddOperator(std::move(sink));
  CEP2ASP_RETURN_IF_ERROR(query.graph.Connect(last, sink_id, 0));
  if (plan.parallelism > 1) AlignStatelessPrefixParallelism(&query.graph);
  CEP2ASP_RETURN_IF_ERROR(query.graph.Validate());
  CEP2ASP_RETURN_IF_ERROR(RefuseDeadPlans(query.graph));
  return query;
}

Result<CompiledQuery> TranslatePattern(const Pattern& pattern,
                                       const TranslatorOptions& options,
                                       const SourceFactory& source_factory,
                                       bool store_matches, Clock* clock) {
  Translator translator(options);
  CEP2ASP_ASSIGN_OR_RETURN(LogicalPlan plan, translator.ToLogicalPlan(pattern));
  if (options.deduplicate_output) {
    CompiledQuery query;
    CompileContext ctx;
    ctx.factory = &source_factory;
    ctx.graph = &query.graph;
    ctx.parallelism = plan.parallelism;
    ctx.num_keys_hint = plan.num_keys_hint;
    ctx.compile_expressions = plan.compile_expressions;
    CEP2ASP_ASSIGN_OR_RETURN(NodeId last, CompileNode(*plan.root, &ctx));
    NodeId dedup_id = query.graph.AddOperator(
        std::make_unique<DedupOperator>(2 * plan.window_size));
    CEP2ASP_RETURN_IF_ERROR(query.graph.Connect(last, dedup_id, 0));
    auto sink = std::make_unique<CollectSink>(store_matches, clock);
    query.sink = sink.get();
    NodeId sink_id = query.graph.AddOperator(std::move(sink));
    CEP2ASP_RETURN_IF_ERROR(query.graph.Connect(dedup_id, sink_id, 0));
    if (plan.parallelism > 1) AlignStatelessPrefixParallelism(&query.graph);
    CEP2ASP_RETURN_IF_ERROR(query.graph.Validate());
    CEP2ASP_RETURN_IF_ERROR(RefuseDeadPlans(query.graph));
    return query;
  }
  return CompilePlan(plan, source_factory, store_matches, clock);
}

// ---------------------------------------------------------------------------
// FCEP baseline job
// ---------------------------------------------------------------------------

namespace {

void CollectTypes(const PatternNode& node, std::set<EventTypeId>* types) {
  switch (node.op) {
    case PatternOp::kAtom:
    case PatternOp::kIter:
      types->insert(node.atom.type);
      break;
    case PatternOp::kNseq:
      for (const PatternAtom& atom : node.nseq_atoms) types->insert(atom.type);
      break;
    case PatternOp::kSeq:
    case PatternOp::kAnd:
    case PatternOp::kOr:
      for (const auto& child : node.children) CollectTypes(*child, types);
      break;
  }
}

}  // namespace

Result<CompiledQuery> BuildCepJob(const Pattern& pattern,
                                  const SourceFactory& source_factory,
                                  const CepJobOptions& options) {
  CEP2ASP_RETURN_IF_ERROR(pattern.Validate());
  CepOperatorOptions cep_options;
  cep_options.policy = options.policy;
  cep_options.keyed = options.keyed;
  CEP2ASP_ASSIGN_OR_RETURN(std::unique_ptr<CepOperator> cep,
                           CepOperator::FromPattern(pattern, cep_options));

  CompiledQuery query;
  std::set<EventTypeId> types;
  CollectTypes(pattern.root(), &types);

  // The unary CEP operator applies to a single stream: union all inputs
  // first (§5.1.2).
  std::vector<NodeId> sources;
  for (EventTypeId type : types) {
    std::unique_ptr<Source> source = source_factory(type);
    if (source == nullptr) {
      return Status::NotFound("no source for event type " +
                              EventTypeRegistry::Global()->Name(type));
    }
    sources.push_back(query.graph.AddSource(std::move(source)));
  }
  NodeId upstream;
  if (sources.size() == 1) {
    upstream = sources[0];
  } else {
    upstream = query.graph.AddOperator(
        std::make_unique<UnionOperator>(static_cast<int>(sources.size())));
    for (size_t i = 0; i < sources.size(); ++i) {
      CEP2ASP_RETURN_IF_ERROR(
          query.graph.Connect(sources[i], upstream, static_cast<int>(i)));
    }
  }

  if (options.keyed) {
    KeyPlan key_plan = ExtractKeyPlan(pattern);
    if (key_plan.by_attr) {
      NodeId key_id = query.graph.AddOperator(
          MapOperator::KeyByAttribute(0, key_plan.attr));
      CEP2ASP_RETURN_IF_ERROR(query.graph.Connect(upstream, key_id, 0));
      upstream = key_id;
    }
  }

  NodeId cep_id = query.graph.AddOperator(std::move(cep));
  CEP2ASP_RETURN_IF_ERROR(query.graph.Connect(upstream, cep_id, 0));
  auto sink = std::make_unique<CollectSink>(options.store_matches, options.clock);
  query.sink = sink.get();
  NodeId sink_id = query.graph.AddOperator(std::move(sink));
  CEP2ASP_RETURN_IF_ERROR(query.graph.Connect(cep_id, sink_id, 0));
  CEP2ASP_RETURN_IF_ERROR(query.graph.Validate());
  return query;
}

}  // namespace cep2asp
