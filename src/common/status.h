#ifndef CEP2ASP_COMMON_STATUS_H_
#define CEP2ASP_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace cep2asp {

/// \brief Machine-readable category of a Status.
///
/// The codes loosely follow the Arrow/Abseil canonical set, restricted to the
/// categories this project actually produces.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // a named entity does not exist
  kAlreadyExists = 3,     // duplicate registration
  kOutOfRange = 4,        // index / timestamp outside the valid domain
  kFailedPrecondition = 5,// object in the wrong state for the call
  kResourceExhausted = 6, // queue full, memory budget exceeded
  kUnimplemented = 7,     // feature intentionally not supported
  kInternal = 8,          // invariant violation inside the library
  kIoError = 9,           // file / CSV problems
  kParseError = 10,       // PSL text could not be parsed
  kCancelled = 11,        // job stopped before completion
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Error-or-success result of an operation, Arrow-style.
///
/// The library does not use C++ exceptions; every fallible function returns a
/// Status (or a Result<T>, see result.h). An OK status carries no allocation.
class Status {
 public:
  /// Creates an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// \brief Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// \brief Prepends context to the message, keeping the code.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code(), context + ": " + message());
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }

  std::unique_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace cep2asp

/// Propagates a non-OK Status to the caller.
#define CEP2ASP_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::cep2asp::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

#define CEP2ASP_CONCAT_IMPL(x, y) x##y
#define CEP2ASP_CONCAT(x, y) CEP2ASP_CONCAT_IMPL(x, y)

/// Evaluates an expression yielding Result<T>; on success binds the value to
/// `lhs`, otherwise returns the error Status to the caller.
#define CEP2ASP_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto CEP2ASP_CONCAT(_res_, __LINE__) = (rexpr);                       \
  if (!CEP2ASP_CONCAT(_res_, __LINE__).ok())                            \
    return CEP2ASP_CONCAT(_res_, __LINE__).status();                    \
  lhs = std::move(CEP2ASP_CONCAT(_res_, __LINE__)).ValueOrDie()

#endif  // CEP2ASP_COMMON_STATUS_H_
