#ifndef CEP2ASP_COMMON_RESULT_H_
#define CEP2ASP_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cep2asp {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// A Result constructed from an OK status is a programming error and aborts.
template <typename T>
class Result {
 public:
  /// Constructs a successful result. Intentionally implicit so functions can
  /// `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result. Intentionally implicit so functions can
  /// `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status" << std::endl;
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// Returns the contained value; aborts if the result holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_.ToString()
                << std::endl;
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_COMMON_RESULT_H_
