#ifndef CEP2ASP_COMMON_CLOCK_H_
#define CEP2ASP_COMMON_CLOCK_H_

#include <cstdint>

namespace cep2asp {

/// Event time and processing time are both expressed in milliseconds.
using Timestamp = int64_t;

/// Sentinel for "no watermark / time unknown".
inline constexpr Timestamp kMinTimestamp = INT64_MIN;
/// Watermark value signalling end-of-stream (all windows may fire).
inline constexpr Timestamp kMaxTimestamp = INT64_MAX;

inline constexpr Timestamp kMillisPerSecond = 1000;
inline constexpr Timestamp kMillisPerMinute = 60 * kMillisPerSecond;

/// \brief Wall-clock source, virtualizable for deterministic tests.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current processing time in milliseconds.
  virtual Timestamp NowMillis() const = 0;
  /// Current time in nanoseconds (for fine-grained cost measurement).
  virtual int64_t NowNanos() const = 0;
};

/// Real monotonic clock (offset so values are positive and comparable).
class SystemClock : public Clock {
 public:
  Timestamp NowMillis() const override;
  int64_t NowNanos() const override;

  /// Shared process-wide instance.
  static SystemClock* Get();
};

/// Manually advanced clock for deterministic unit tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Timestamp start_millis = 0) : now_millis_(start_millis) {}

  Timestamp NowMillis() const override { return now_millis_; }
  int64_t NowNanos() const override { return now_millis_ * 1000000; }

  void AdvanceMillis(Timestamp delta) { now_millis_ += delta; }
  void SetMillis(Timestamp now) { now_millis_ = now; }

 private:
  Timestamp now_millis_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_COMMON_CLOCK_H_
