#include "common/clock.h"

#include <chrono>

namespace cep2asp {

Timestamp SystemClock::NowMillis() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SystemClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SystemClock* SystemClock::Get() {
  static SystemClock* const kInstance = new SystemClock();
  return kInstance;
}

}  // namespace cep2asp
