#ifndef CEP2ASP_COMMON_SMALL_VECTOR_H_
#define CEP2ASP_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.h"

namespace cep2asp {

/// \brief Vector with inline storage for the first N elements.
///
/// Stream tuples carry a handful of constituent events; keeping them inline
/// avoids one heap allocation per tuple on the hot path. Only supports
/// trivially copyable T, which covers SimpleEvent.
template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector supports trivially copyable types only");

 public:
  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) { CopyFrom(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      FreeHeap();
      size_ = 0;
      capacity_ = N;
      heap_ = nullptr;
      CopyFrom(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { FreeHeap(); }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data()[size_++] = value;
  }

  void append(const T* values, size_t count) {
    if (size_ + count > capacity_) {
      size_t cap = capacity_;
      while (cap < size_ + count) cap *= 2;
      Grow(cap);
    }
    std::copy(values, values + count, data() + size_);
    size_ += count;
  }

  void append(const SmallVector& other) { append(other.data(), other.size()); }

  void clear() { size_ = 0; }

  void resize(size_t new_size) {
    if (new_size > capacity_) Grow(new_size);
    if (new_size > size_) std::fill(data() + size_, data() + new_size, T{});
    size_ = new_size;
  }

  T* data() { return heap_ ? heap_ : reinterpret_cast<T*>(inline_); }
  const T* data() const {
    return heap_ ? heap_ : reinterpret_cast<const T*>(inline_);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T& operator[](size_t i) {
    CEP2ASP_DCHECK(i < size_);
    return data()[i];
  }
  const T& operator[](size_t i) const {
    CEP2ASP_DCHECK(i < size_);
    return data()[i];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void Grow(size_t new_capacity) {
    T* new_heap = new T[new_capacity];
    std::copy(data(), data() + size_, new_heap);
    FreeHeap();
    heap_ = new_heap;
    capacity_ = new_capacity;
  }

  void FreeHeap() {
    delete[] heap_;
    heap_ = nullptr;
  }

  void CopyFrom(const SmallVector& other) {
    if (other.size_ > N) Grow(other.size_);
    std::copy(other.data(), other.data() + other.size_, data());
    size_ = other.size_;
  }

  void MoveFrom(SmallVector&& other) {
    if (other.heap_) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      capacity_ = N;
      size_ = other.size_;
      std::copy(other.data(), other.data() + other.size_, data());
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace cep2asp

#endif  // CEP2ASP_COMMON_SMALL_VECTOR_H_
