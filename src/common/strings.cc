#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cep2asp {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, long long* out) {
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string HumanCount(double value) {
  char buf[64];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  }
  return buf;
}

std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

}  // namespace cep2asp
