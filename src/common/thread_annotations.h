#ifndef CEP2ASP_COMMON_THREAD_ANNOTATIONS_H_
#define CEP2ASP_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/// \file
/// Clang thread-safety annotations plus the annotated synchronization
/// primitives they require.
///
/// The macros expand to Clang's `capability` attribute family when the
/// compiler supports it (-Wthread-safety then proves lock discipline at
/// compile time; CI runs a clang job with -Werror=thread-safety) and to
/// nothing elsewhere, so GCC builds are unaffected.
///
/// std::mutex itself carries no annotations, so annotated code uses the
/// `Mutex` / `MutexLock` / `CondVar` wrappers below. Two rules of thumb
/// the analysis enforces:
///  - every access to a CEP2ASP_GUARDED_BY(mu) member must hold `mu`
///    (via MutexLock or a REQUIRES(mu) precondition);
///  - condition waits are explicit `while (!cond) cv.Wait(mu);` loops —
///    the predicate-lambda overloads of std::condition_variable run the
///    lambda without any capability context, which the analysis cannot
///    see through.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CEP2ASP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CEP2ASP_THREAD_ANNOTATION
#define CEP2ASP_THREAD_ANNOTATION(x)  // not Clang: annotations vanish
#endif

#define CEP2ASP_CAPABILITY(x) CEP2ASP_THREAD_ANNOTATION(capability(x))
#define CEP2ASP_SCOPED_CAPABILITY CEP2ASP_THREAD_ANNOTATION(scoped_lockable)
#define CEP2ASP_GUARDED_BY(x) CEP2ASP_THREAD_ANNOTATION(guarded_by(x))
#define CEP2ASP_PT_GUARDED_BY(x) CEP2ASP_THREAD_ANNOTATION(pt_guarded_by(x))
#define CEP2ASP_REQUIRES(...) \
  CEP2ASP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CEP2ASP_EXCLUDES(...) \
  CEP2ASP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CEP2ASP_ACQUIRE(...) \
  CEP2ASP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CEP2ASP_RELEASE(...) \
  CEP2ASP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CEP2ASP_TRY_ACQUIRE(...) \
  CEP2ASP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CEP2ASP_NO_THREAD_SAFETY_ANALYSIS \
  CEP2ASP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cep2asp {

/// std::mutex with the `mutex` capability: lockable by MutexLock /
/// std::lock_guard / std::unique_lock (lowercase member names keep it a
/// drop-in BasicLockable) and waitable via CondVar.
class CEP2ASP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CEP2ASP_ACQUIRE() { mu_.lock(); }
  void unlock() CEP2ASP_RELEASE() { mu_.unlock(); }
  bool try_lock() CEP2ASP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock holding a Mutex for the enclosing scope — std::lock_guard
/// with the scoped-capability annotation the analysis understands.
class CEP2ASP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CEP2ASP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CEP2ASP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waitable on an annotated Mutex (via
/// condition_variable_any — Mutex is a BasicLockable). Wait atomically
/// releases and re-acquires `mu`, so to the analysis the capability is
/// held across the call: REQUIRES(mu) is the correct contract. Callers
/// wrap waits in explicit while loops.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) CEP2ASP_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      CEP2ASP_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_COMMON_THREAD_ANNOTATIONS_H_
