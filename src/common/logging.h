#ifndef CEP2ASP_COMMON_LOGGING_H_
#define CEP2ASP_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace cep2asp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Process-wide minimum level below which log statements are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// One log statement; flushes to stderr on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows an entire disabled log statement (used by CEP2ASP_DCHECK in
/// release builds) without evaluating the streamed expressions' insertion.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace cep2asp

#define CEP2ASP_LOG(level)                                     \
  ::cep2asp::internal_logging::LogMessage(                     \
      ::cep2asp::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Active in all builds:
/// the checked invariants guard correctness of the engines, not hot loops.
#define CEP2ASP_CHECK(condition)                                        \
  if (!(condition))                                                     \
  CEP2ASP_LOG(Fatal) << "Check failed: " #condition " "

#define CEP2ASP_CHECK_OK(expr)                            \
  do {                                                    \
    ::cep2asp::Status _st = (expr);                       \
    if (!_st.ok())                                        \
      CEP2ASP_LOG(Fatal) << "Status not OK: " << _st;     \
  } while (0)

#ifndef NDEBUG
#define CEP2ASP_DCHECK(condition) CEP2ASP_CHECK(condition)
#else
#define CEP2ASP_DCHECK(condition) \
  if (false) ::cep2asp::internal_logging::NullStream()
#endif

#endif  // CEP2ASP_COMMON_LOGGING_H_
