#ifndef CEP2ASP_COMMON_STRINGS_H_
#define CEP2ASP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cep2asp {

/// Splits `text` at every occurrence of `sep`; adjacent separators yield
/// empty pieces.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII letters.
std::string ToUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a double; returns false on trailing garbage or empty input.
bool ParseDouble(std::string_view text, double* out);

/// Parses a signed 64-bit integer; returns false on trailing garbage.
bool ParseInt64(std::string_view text, long long* out);

/// Renders a double compactly (up to 6 significant digits, no trailing
/// zeros), suitable for benchmark tables.
std::string FormatDouble(double value);

/// Renders a quantity with SI-ish suffix, e.g. 1530000 -> "1.53M".
std::string HumanCount(double value);

/// Renders bytes as "12.3 MB" style.
std::string HumanBytes(double bytes);

}  // namespace cep2asp

#endif  // CEP2ASP_COMMON_STRINGS_H_
