#include "cep/shared_buffer.h"

#include <algorithm>

#include "common/logging.h"

namespace cep2asp {

SharedBuffer::EntryId SharedBuffer::Append(const SimpleEvent& event,
                                           EntryId previous) {
  EntryId id = next_id_++;
  Entry entry;
  entry.event = event;
  entry.previous = previous;
  entry.ref_count = 1;  // the owning run
  if (previous != kNoEntry) AddRef(previous);
  entries_.emplace(id, std::move(entry));
  return id;
}

void SharedBuffer::AddRef(EntryId entry) {
  auto it = entries_.find(entry);
  CEP2ASP_DCHECK(it != entries_.end());
  it->second.ref_count++;
}

void SharedBuffer::Release(EntryId entry) {
  while (entry != kNoEntry) {
    auto it = entries_.find(entry);
    CEP2ASP_DCHECK(it != entries_.end());
    if (--it->second.ref_count > 0) return;
    EntryId previous = it->second.previous;
    entries_.erase(it);
    entry = previous;
  }
}

std::vector<SimpleEvent> SharedBuffer::ExtractPath(EntryId entry) const {
  std::vector<SimpleEvent> path;
  while (entry != kNoEntry) {
    auto it = entries_.find(entry);
    CEP2ASP_DCHECK(it != entries_.end());
    path.push_back(it->second.event);
    entry = it->second.previous;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

const SimpleEvent& SharedBuffer::EventAt(EntryId entry) const {
  auto it = entries_.find(entry);
  CEP2ASP_CHECK(it != entries_.end()) << "dangling shared buffer entry";
  return it->second.event;
}

const SimpleEvent& SharedBuffer::EventAtPosition(EntryId entry, int length,
                                                 int position) const {
  CEP2ASP_DCHECK(position >= 0 && position < length);
  int hops = length - 1 - position;
  while (hops-- > 0) {
    auto it = entries_.find(entry);
    CEP2ASP_CHECK(it != entries_.end()) << "dangling shared buffer entry";
    entry = it->second.previous;
  }
  return EventAt(entry);
}

}  // namespace cep2asp
