#ifndef CEP2ASP_CEP_NFA_H_
#define CEP2ASP_CEP_NFA_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "sea/pattern.h"

namespace cep2asp {

/// \brief Event selection policies of order-based CEP engines
/// (paper §3.1.4 and Table 2).
enum class SelectionPolicy : uint8_t {
  /// skip-till-any-match: any combination of relevant events, branching
  /// partial matches (FlinkCEP followedByAny / allowCombinations).
  kSkipTillAnyMatch,
  /// skip-till-next-match: each partial match extends with the next
  /// relevant event only (FlinkCEP followedBy).
  kSkipTillNextMatch,
  /// strict contiguity: matching events must be adjacent in the input
  /// stream (FlinkCEP next).
  kStrictContiguity,
};

const char* SelectionPolicyToString(SelectionPolicy policy);

/// \brief One accepting state transition of the compiled NFA: the event
/// type expected at this match position, its pushed-down filter, and the
/// optional constraint against the previous accepted event (iterations).
struct NfaStage {
  EventTypeId type = kInvalidEventType;
  Predicate filter;  // single-variable, var index 0 = the candidate event
  /// Set when this stage and the previous one belong to the same ITER
  /// block and the pattern constrains consecutive events.
  std::optional<ConsecutiveConstraint> consecutive;
};

/// \brief Absence constraint between two adjacent match positions
/// (negated sequence): no qualifying event of `type` may occur strictly
/// between the events accepted at `after_position` and after_position+1.
struct NfaNegation {
  EventTypeId type = kInvalidEventType;
  Predicate filter;
  int after_position = 0;
};

/// \brief Compiled order-based pattern: the linear prefix automaton used
/// by FlinkCEP-style engines (paper §2.3).
///
/// State q_n represents a partial match holding the first n positions;
/// the final state is reached after `stages.size()` accepted events.
struct NfaSpec {
  std::vector<NfaStage> stages;
  std::vector<NfaNegation> negations;
  /// Cross-variable comparisons, grouped by the stage at which they first
  /// become evaluable (index = max variable referenced).
  std::vector<std::vector<Comparison>> stage_predicates;
  Timestamp window_size = 0;

  int num_positions() const { return static_cast<int>(stages.size()); }
};

/// Compiles a pattern into the order-based NFA. Returns Unimplemented for
/// patterns outside the FCEP-supported subset: conjunction, disjunction,
/// and unbounded iterations are not expressible (paper Table 2 — FCEP
/// supports SEQ, ITER, NSEQ only).
Result<NfaSpec> CompileNfa(const Pattern& pattern);

}  // namespace cep2asp

#endif  // CEP2ASP_CEP_NFA_H_
