#ifndef CEP2ASP_CEP_SHARED_BUFFER_H_
#define CEP2ASP_CEP_SHARED_BUFFER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "event/event.h"

namespace cep2asp {

/// \brief Versioned, reference-counted storage for the events of partial
/// matches — the SharedBuffer of order-based CEP engines (FlinkCEP's NFA
/// keeps accepted events exactly like this).
///
/// Runs do not copy their accepted prefixes; they hold the id of their
/// last buffer entry, and entries chain backwards to their predecessor.
/// Branching runs (skip-till-any-match) share prefixes, which keeps
/// memory sub-combinatorial, at the price of per-accept bookkeeping
/// (entry allocation, reference counting) and per-match path extraction —
/// the "cumbersome maintenance process" whose cost the paper observes
/// (§5.2.4).
class SharedBuffer {
 public:
  using EntryId = int64_t;
  static constexpr EntryId kNoEntry = 0;

  SharedBuffer() = default;

  SharedBuffer(const SharedBuffer&) = delete;
  SharedBuffer& operator=(const SharedBuffer&) = delete;

  /// Appends `event` after `previous` (kNoEntry for a run start). The new
  /// entry starts with one reference (the owning run); `previous` gains a
  /// reference from the new entry.
  EntryId Append(const SimpleEvent& event, EntryId previous);

  /// Registers an additional owner of `entry` (a branching run).
  void AddRef(EntryId entry);

  /// Drops one owner of `entry`; unreferenced entries are removed and
  /// release their predecessors transitively.
  void Release(EntryId entry);

  /// Reconstructs the accepted event sequence ending at `entry`, oldest
  /// first (match materialization; linear in run length, one hash lookup
  /// per position).
  std::vector<SimpleEvent> ExtractPath(EntryId entry) const;

  /// The event stored at `entry`.
  const SimpleEvent& EventAt(EntryId entry) const;

  /// The event at `position` (0-based from the run start) of the path
  /// ending at `entry`, of a run of `length` events. Lazily walks the
  /// chain — the cost a cross-variable predicate pays in this
  /// architecture.
  const SimpleEvent& EventAtPosition(EntryId entry, int length,
                                     int position) const;

  size_t num_entries() const { return entries_.size(); }

  size_t StateBytes() const {
    return entries_.size() *
           (sizeof(Entry) + sizeof(EntryId) + 32 /* hash node overhead */);
  }

 private:
  struct Entry {
    SimpleEvent event;
    EntryId previous = kNoEntry;
    int32_t ref_count = 0;
  };

  std::unordered_map<EntryId, Entry> entries_;
  EntryId next_id_ = 1;
};

}  // namespace cep2asp

#endif  // CEP2ASP_CEP_SHARED_BUFFER_H_
