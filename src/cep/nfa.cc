#include "cep/nfa.h"

#include "common/logging.h"

namespace cep2asp {

const char* SelectionPolicyToString(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kSkipTillAnyMatch:
      return "skip-till-any-match";
    case SelectionPolicy::kSkipTillNextMatch:
      return "skip-till-next-match";
    case SelectionPolicy::kStrictContiguity:
      return "strict-contiguity";
  }
  return "?";
}

namespace {

Status AppendNode(const PatternNode& node, NfaSpec* spec) {
  switch (node.op) {
    case PatternOp::kAtom: {
      NfaStage stage;
      stage.type = node.atom.type;
      stage.filter = node.atom.filter;
      spec->stages.push_back(std::move(stage));
      return Status::OK();
    }
    case PatternOp::kIter: {
      if (node.iter_unbounded) {
        return Status::Unimplemented(
            "FCEP path: unbounded iteration (Kleene+) is not part of the "
            "SEA ITER^m operator");
      }
      for (int i = 0; i < node.iter_count; ++i) {
        NfaStage stage;
        stage.type = node.atom.type;
        stage.filter = node.atom.filter;
        if (i > 0) stage.consecutive = node.iter_constraint;
        spec->stages.push_back(std::move(stage));
      }
      return Status::OK();
    }
    case PatternOp::kNseq: {
      NfaStage first;
      first.type = node.nseq_atoms[0].type;
      first.filter = node.nseq_atoms[0].filter;
      spec->stages.push_back(std::move(first));

      NfaNegation negation;
      negation.type = node.nseq_atoms[1].type;
      negation.filter = node.nseq_atoms[1].filter;
      negation.after_position = static_cast<int>(spec->stages.size()) - 1;
      spec->negations.push_back(std::move(negation));

      NfaStage third;
      third.type = node.nseq_atoms[2].type;
      third.filter = node.nseq_atoms[2].filter;
      spec->stages.push_back(std::move(third));
      return Status::OK();
    }
    case PatternOp::kSeq: {
      for (const auto& child : node.children) {
        if (child->op == PatternOp::kSeq) {
          return Status::Internal("SEQ children should be pre-flattened");
        }
        CEP2ASP_RETURN_IF_ERROR(AppendNode(*child, spec));
      }
      return Status::OK();
    }
    case PatternOp::kAnd:
      return Status::Unimplemented(
          "FCEP does not support the conjunction operator (Table 2)");
    case PatternOp::kOr:
      return Status::Unimplemented(
          "FCEP does not support the disjunction operator (Table 2)");
  }
  return Status::Internal("unknown pattern op");
}

}  // namespace

Result<NfaSpec> CompileNfa(const Pattern& pattern) {
  CEP2ASP_RETURN_IF_ERROR(pattern.Validate());
  NfaSpec spec;
  spec.window_size = pattern.window_size();
  CEP2ASP_RETURN_IF_ERROR(AppendNode(pattern.root(), &spec));

  spec.stage_predicates.resize(spec.stages.size());
  for (const Comparison& c : pattern.cross_predicates().terms()) {
    int stage = c.MaxVar();
    CEP2ASP_CHECK(stage >= 0 &&
                  stage < static_cast<int>(spec.stage_predicates.size()));
    spec.stage_predicates[static_cast<size_t>(stage)].push_back(c);
  }
  return spec;
}

}  // namespace cep2asp
