#ifndef CEP2ASP_CEP_CEP_OPERATOR_H_
#define CEP2ASP_CEP_CEP_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cep/nfa.h"
#include "cep/shared_buffer.h"
#include "runtime/operator.h"

namespace cep2asp {

/// \brief Options of the unary CEP operator.
struct CepOperatorOptions {
  SelectionPolicy policy = SelectionPolicy::kSkipTillAnyMatch;
  /// Partition partial matches by the tuple key (FCEP "can leverage
  /// partitioning by key and otherwise runs on a single thread", §5.1.2).
  bool keyed = false;
};

/// \brief The single-operator CEP approach (FlinkCEP analog, §5.1.2).
///
/// A unary stateful operator over the union of all input streams. It
/// maintains an order-based NFA whose partial matches (runs) store their
/// accepted prefixes in a versioned SharedBuffer, exactly like FlinkCEP:
/// branching runs share prefixes; every accept allocates a buffer entry
/// and bumps reference counts; match emission materializes the path;
/// expiry cascades releases. Negated sequences are handled
/// retrospectively: SEQ(T1,T3) matches are detected first, then the
/// absence constraint is evaluated against a buffer of T2 events. Implicit
/// windowing turns the WITHIN constraint into run-lifetime predicates.
///
/// The operator processes events in event-time order; input is staged in
/// an ordering buffer released by watermarks (FlinkCEP's event-time
/// buffering).
///
/// Its costs are the paper's measured pathologies: per-event work is
/// linear in live runs, skip-till-any-match branches runs combinatorially
/// with selectivity, and run/buffer state grows with the window — the
/// sources of FCEP's throughput collapse and memory exhaustion.
class CepOperator : public Operator {
 public:
  CepOperator(NfaSpec spec, CepOperatorOptions options,
              std::string label = "cep");

  /// Compiles `pattern` and builds the operator. Returns Unimplemented for
  /// patterns outside the FCEP-supported subset (AND, OR, unbounded ITER).
  static Result<std::unique_ptr<CepOperator>> FromPattern(
      const Pattern& pattern, CepOperatorOptions options = {});

  std::string name() const override { return label_; }

  OperatorTraits Traits() const override {
    OperatorTraits traits;
    traits.stateful = true;
    traits.keyed = options_.keyed;
    // Implicit windowing: WITHIN bounds run lifetime (0 = unwindowed NFA).
    traits.windowed = spec_.window_size > 0;
    traits.window_size = spec_.window_size;
    traits.window_slide = 0;
    return traits;
  }

  Status Process(int input, Tuple tuple, Collector* out) override;
  Status OnWatermark(Timestamp watermark, Collector* out) override;
  size_t StateBytes() const override;

  /// Live partial matches across all keys (observability for benchmarks).
  int64_t live_runs() const { return live_runs_; }
  int64_t peak_runs() const { return peak_runs_; }

 private:
  /// A partial match: its accepted prefix lives in the shared buffer; the
  /// run holds the last entry plus the scalars every transition needs.
  struct Run {
    SharedBuffer::EntryId last_entry = SharedBuffer::kNoEntry;
    int32_t length = 0;
    Timestamp first_ts = 0;
    Timestamp last_ts = 0;
  };

  struct KeyState {
    SharedBuffer buffer;
    std::vector<Run> runs;
    /// One buffer per negation constraint, ordered by ts.
    std::vector<std::vector<SimpleEvent>> negation_buffers;
  };

  void ProcessOrderedEvent(int64_t key, const SimpleEvent& event,
                           Collector* out);
  bool Accepts(const KeyState& state, const Run& run,
               const SimpleEvent& event) const;
  bool PassesNegations(const KeyState& state,
                       const std::vector<SimpleEvent>& path) const;
  void EmitPath(int64_t key, const std::vector<SimpleEvent>& path,
                Collector* out) const;

  NfaSpec spec_;
  CepOperatorOptions options_;
  std::string label_;

  std::unordered_map<int64_t, KeyState> keys_;
  /// Event-time ordering stage: (key, event) pairs awaiting the watermark.
  std::vector<std::pair<int64_t, SimpleEvent>> pending_;
  int64_t live_runs_ = 0;
  int64_t peak_runs_ = 0;
  size_t negation_buffer_events_ = 0;
};

}  // namespace cep2asp

#endif  // CEP2ASP_CEP_CEP_OPERATOR_H_
