#include "cep/cep_operator.h"

#include <algorithm>

#include "common/logging.h"

namespace cep2asp {

CepOperator::CepOperator(NfaSpec spec, CepOperatorOptions options,
                         std::string label)
    : spec_(std::move(spec)), options_(options), label_(std::move(label)) {}

Result<std::unique_ptr<CepOperator>> CepOperator::FromPattern(
    const Pattern& pattern, CepOperatorOptions options) {
  CEP2ASP_ASSIGN_OR_RETURN(NfaSpec spec, CompileNfa(pattern));
  return std::make_unique<CepOperator>(std::move(spec), options);
}

Status CepOperator::Process(int input, Tuple tuple, Collector*) {
  (void)input;
  CEP2ASP_DCHECK(tuple.size() == 1) << "CEP operator consumes simple events";
  int64_t key = options_.keyed ? tuple.key() : 0;
  pending_.emplace_back(key, tuple.event(0));
  return Status::OK();
}

Status CepOperator::OnWatermark(Timestamp watermark, Collector* out) {
  // Release and process, in event-time order, everything that can no
  // longer be reordered by late arrivals.
  auto ready_end = std::stable_partition(
      pending_.begin(), pending_.end(),
      [watermark](const std::pair<int64_t, SimpleEvent>& p) {
        return watermark == kMaxTimestamp || p.second.ts < watermark;
      });
  std::stable_sort(pending_.begin(), ready_end,
                   [](const auto& a, const auto& b) {
                     return a.second.ts < b.second.ts;
                   });
  for (auto it = pending_.begin(); it != ready_end; ++it) {
    ProcessOrderedEvent(it->first, it->second, out);
  }
  pending_.erase(pending_.begin(), ready_end);
  return Status::OK();
}

bool CepOperator::Accepts(const KeyState& state, const Run& run,
                          const SimpleEvent& event) const {
  const int stage_idx = run.length;
  const NfaStage& stage = spec_.stages[static_cast<size_t>(stage_idx)];
  if (event.type != stage.type) return false;
  if (!stage.filter.IsTrue() && !stage.filter.EvalOnEvent(event)) return false;
  if (run.length > 0) {
    // Temporal order between accepted positions (sequence semantics).
    if (!(run.last_ts < event.ts)) return false;
    // Implicit windowing: the window constraint as a predicate.
    if (event.ts - run.first_ts >= spec_.window_size) return false;
    if (stage.consecutive.has_value()) {
      const ConsecutiveConstraint& c = *stage.consecutive;
      const SimpleEvent& last = state.buffer.EventAt(run.last_entry);
      if (!EvalCmp(GetAttribute(last, c.attr), c.op, GetAttribute(event, c.attr))) {
        return false;
      }
    }
  }
  // Cross-variable predicates that become evaluable at this stage fetch
  // earlier positions lazily from the shared buffer (as FlinkCEP's
  // iterative conditions do).
  for (const Comparison& cmp :
       spec_.stage_predicates[static_cast<size_t>(stage_idx)]) {
    bool ok = cmp.Eval([&](int var) -> const SimpleEvent& {
      if (var == stage_idx) return event;
      return state.buffer.EventAtPosition(run.last_entry, run.length, var);
    });
    if (!ok) return false;
  }
  return true;
}

bool CepOperator::PassesNegations(
    const KeyState& state, const std::vector<SimpleEvent>& path) const {
  for (size_t i = 0; i < spec_.negations.size(); ++i) {
    const NfaNegation& negation = spec_.negations[i];
    const SimpleEvent& before =
        path[static_cast<size_t>(negation.after_position)];
    const SimpleEvent& after =
        path[static_cast<size_t>(negation.after_position) + 1];
    for (const SimpleEvent& e2 : state.negation_buffers[i]) {
      if (before.ts < e2.ts && e2.ts < after.ts) return false;
    }
  }
  return true;
}

void CepOperator::EmitPath(int64_t key, const std::vector<SimpleEvent>& path,
                           Collector* out) const {
  Tuple match;
  for (const SimpleEvent& e : path) match.AppendEvent(e);
  match.set_event_time(match.tse());
  match.set_key(key);
  out->Emit(std::move(match));
}

void CepOperator::ProcessOrderedEvent(int64_t key, const SimpleEvent& event,
                                      Collector* out) {
  KeyState& state = keys_[key];
  if (state.negation_buffers.size() != spec_.negations.size()) {
    state.negation_buffers.resize(spec_.negations.size());
  }

  // Retrospective negation support: buffer qualifying events of every
  // negated type.
  for (size_t i = 0; i < spec_.negations.size(); ++i) {
    const NfaNegation& negation = spec_.negations[i];
    if (event.type == negation.type &&
        (negation.filter.IsTrue() || negation.filter.EvalOnEvent(event))) {
      state.negation_buffers[i].push_back(event);
      ++negation_buffer_events_;
    }
  }

  const int final_length = spec_.num_positions();
  std::vector<Run> spawned;  // stam branches created this event

  size_t existing = state.runs.size();
  size_t write = 0;
  for (size_t i = 0; i < existing; ++i) {
    Run& run = state.runs[i];
    // Implicit-window pruning: the run can never complete once the current
    // event time is >= first_ts + W (all future events are at least as
    // late). Dropping a run releases its shared-buffer chain.
    if (event.ts - run.first_ts >= spec_.window_size) {
      state.buffer.Release(run.last_entry);
      --live_runs_;
      continue;
    }
    bool keep = true;
    if (Accepts(state, run, event)) {
      switch (options_.policy) {
        case SelectionPolicy::kSkipTillAnyMatch: {
          SharedBuffer::EntryId extended =
              state.buffer.Append(event, run.last_entry);
          if (run.length + 1 == final_length) {
            std::vector<SimpleEvent> path = state.buffer.ExtractPath(extended);
            if (PassesNegations(state, path)) EmitPath(key, path, out);
            state.buffer.Release(extended);
          } else {
            Run branch;
            branch.last_entry = extended;
            branch.length = run.length + 1;
            branch.first_ts = run.first_ts;
            branch.last_ts = event.ts;
            spawned.push_back(branch);
            ++live_runs_;
          }
          break;  // original run stays alive (branching)
        }
        case SelectionPolicy::kSkipTillNextMatch:
        case SelectionPolicy::kStrictContiguity: {
          SharedBuffer::EntryId extended =
              state.buffer.Append(event, run.last_entry);
          // The run's ownership moves from the old tip to the new one.
          state.buffer.Release(run.last_entry);
          run.last_entry = extended;
          run.length += 1;
          run.last_ts = event.ts;
          if (run.length == final_length) {
            std::vector<SimpleEvent> path = state.buffer.ExtractPath(extended);
            if (PassesNegations(state, path)) EmitPath(key, path, out);
            state.buffer.Release(extended);
            --live_runs_;
            keep = false;
          }
          break;
        }
      }
    } else if (options_.policy == SelectionPolicy::kStrictContiguity) {
      // Any non-matching event between accepted positions kills the run.
      state.buffer.Release(run.last_entry);
      --live_runs_;
      keep = false;
    }
    if (keep) {
      if (write != i) state.runs[write] = state.runs[i];
      ++write;
    }
  }
  state.runs.resize(write);
  for (const Run& run : spawned) state.runs.push_back(run);

  // The event may also start a fresh run at the initial state.
  {
    Run empty;
    if (Accepts(state, empty, event)) {
      SharedBuffer::EntryId entry =
          state.buffer.Append(event, SharedBuffer::kNoEntry);
      if (final_length == 1) {
        std::vector<SimpleEvent> path = state.buffer.ExtractPath(entry);
        if (PassesNegations(state, path)) EmitPath(key, path, out);
        state.buffer.Release(entry);
      } else {
        Run started;
        started.last_entry = entry;
        started.length = 1;
        started.first_ts = event.ts;
        started.last_ts = event.ts;
        state.runs.push_back(started);
        ++live_runs_;
      }
    }
  }
  peak_runs_ = std::max(peak_runs_, live_runs_);

  // Prune negation buffers: a buffered e2 only matters while some live or
  // future run can hold an accepted event older than e2; those events are
  // younger than event.ts - W.
  for (std::vector<SimpleEvent>& buffer : state.negation_buffers) {
    size_t before = buffer.size();
    auto keep_from = std::lower_bound(
        buffer.begin(), buffer.end(), event.ts - spec_.window_size,
        [](const SimpleEvent& e, Timestamp ts) { return e.ts <= ts; });
    buffer.erase(buffer.begin(), keep_from);
    negation_buffer_events_ -= before - buffer.size();
  }
}

size_t CepOperator::StateBytes() const {
  size_t bytes = 0;
  for (const auto& [key, state] : keys_) {
    (void)key;
    bytes += state.buffer.StateBytes();
    bytes += state.runs.capacity() * sizeof(Run);
  }
  return bytes + negation_buffer_events_ * sizeof(SimpleEvent) +
         pending_.size() * sizeof(std::pair<int64_t, SimpleEvent>);
}

}  // namespace cep2asp
