#ifndef CEP2ASP_EVENT_EXPR_PROGRAM_H_
#define CEP2ASP_EVENT_EXPR_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "event/event.h"
#include "event/predicate.h"

namespace cep2asp {

/// Opcodes of the predicate/key bytecode. The machine is a tiny stack
/// machine over doubles: comparisons push 1.0 / 0.0, the conjunction
/// short-circuits via kAndFail, and key stores write the tuple's partition
/// key as a side effect. Programs are straight-line (no jumps other than
/// the fail exit), so one linear pass executes a whole fused filter→map
/// prefix with no virtual calls and no std::function.
enum class ExprOp : uint8_t {
  /// push GetAttribute(events[a], Attribute(b))
  kLoadAttr,
  /// push const_pool[imm]
  kLoadConst,
  /// stack.top += const_pool[imm]  (rhs_offset of window-style terms)
  kAddOffset,
  /// rhs = pop, lhs = pop, push EvalCmp(lhs, CmpOp(a), rhs) ? 1.0 : 0.0
  kCmp,
  /// if pop == 0.0: halt returning false  (AND short-circuit)
  kAndFail,
  /// key := int64(GetAttribute(events[a], Attribute(b))); debug builds
  /// CEP2ASP_DCHECK the cast round-trips (non-integral key attributes are
  /// a plan bug — see W213)
  kStoreKeyAttr,
  /// key := key_pool[imm]  (exact int64, not squeezed through a double)
  kStoreKeyConst,
  /// halt returning true
  kHalt,

  // --- fused term forms ----------------------------------------------------
  // One whole conjunction term per instruction. Dispatch is the dominant
  // interpreter cost, and every term the compiler sees is exactly
  // load, load[, add-offset], cmp, and-fail — so the emitter folds the
  // sequence into a single opcode (one indirect jump per term instead of
  // four or five). The stack ops above remain the definitional semantics;
  // Filter(..., fuse_terms=false) emits them for differential testing.

  /// halt returning false unless
  /// EvalCmp(attr(events[a], b), CmpOp(c), const_pool[imm])
  kCmpAttrConstFail,
  /// halt returning false unless
  /// EvalCmp(attr(events[a], b), CmpOp(c), attr(events[d], e))
  kCmpAttrAttrFail,
  /// like kCmpAttrAttrFail with const_pool[imm] added to the rhs
  kCmpAttrAttrOffFail,
};

/// One 8-byte instruction. Operand meaning depends on the opcode: for the
/// stack ops `a` is a variable index or CmpOp, `b` an Attribute and `imm`
/// a pool index; the fused term forms use a/b = lhs (var, attr), c = the
/// CmpOp, d/e = rhs (var, attr), imm = a const-pool index.
struct ExprInsn {
  ExprOp op = ExprOp::kHalt;
  uint8_t a = 0;
  uint8_t b = 0;
  uint8_t c = 0;
  uint8_t d = 0;
  uint8_t e = 0;
  uint8_t imm = 0;
  uint8_t pad = 0;
};

/// \brief Borrowed columnar (SoA) view a program executes against:
/// per-(event slot, attribute) contiguous double columns instead of
/// strided row-major tuples. Raw pointers only — the runtime's
/// ColumnarBatch produces one, but this layer stays free of runtime
/// dependencies.
///
/// `attr_cols[slot * kNumEventAttrs + attr]` points at `count` doubles
/// holding that attribute for every row. `keys` (may be null to skip key
/// stores) receives kStoreKey* side effects for rows whose mask is still
/// set. `mask` has `count` bytes and is fully (re)initialized by
/// RunColumnar.
struct ExprColumnarView {
  const double* const* attr_cols = nullptr;
  size_t num_slots = 0;
  int64_t* keys = nullptr;
  size_t count = 0;
  uint8_t* mask = nullptr;
};

/// \brief A compiled predicate / key-assignment: the "compile, don't
/// interpret" replacement for Predicate::EvalOnTuple + MapOperator key
/// lambdas on translator-generated stateless prefixes.
///
/// Compilation can fail only on capacity (more than 255 pooled constants
/// or a variable index above 255) — callers test `ok()` and fall back to
/// the interpreted path. Execution semantics are bit-identical to the
/// interpreter: comparisons go through the shared EvalCmp, so NaN ordering
/// matches IEEE (all comparisons but != are false).
class ExprProgram {
 public:
  /// How predicate variable indices address the tuple's events.
  enum class VarMode : uint8_t {
    /// Every variable reads event 0 (Predicate::EvalOnEvent semantics —
    /// the per-type source filters).
    kBroadcast,
    /// Variable i reads event i (Predicate::EvalOnTuple semantics).
    kPositional,
  };

  ExprProgram() = default;

  /// Compiles a conjunction into a filter program (ends in kHalt = pass).
  /// `fuse_terms` selects the fused one-instruction-per-term encoding
  /// (default, what production plans run); false emits the unfused stack
  /// sequence — same semantics, used to differential-test the base ISA.
  static ExprProgram Filter(const Predicate& pred, VarMode mode,
                            bool fuse_terms = true);

  /// Compiles key := events[event_index].attr.
  static ExprProgram KeyByAttribute(int event_index, Attribute attr);

  /// Compiles key := constant (kept as exact int64 in the key pool).
  static ExprProgram KeyByConstant(int64_t key);

  /// Fuses `first` then `second` into one program: first's kHalt is
  /// dropped, second's pool indices are rebased. A tuple failing first
  /// never reaches second — exactly the operator pipeline's semantics for
  /// a filter feeding a map.
  static ExprProgram Fuse(const ExprProgram& first, const ExprProgram& second);

  /// False when compilation overflowed an 8-bit operand; such a program
  /// must not be run (callers keep the interpreted operator instead).
  bool ok() const { return ok_; }

  /// True when the program writes the partition key.
  bool assigns_key() const;

  size_t num_instructions() const { return code_.size(); }
  bool empty() const { return code_.empty(); }

  /// Runs the program against the tuple's events; key stores mutate the
  /// tuple. Returns the filter verdict (true when no filter terms exist).
  bool Run(Tuple* tuple) const;

  /// Vectorized execution: runs the program over `count` tuples laid out
  /// `stride_bytes` apart (tuple i at `(char*)first + i * stride_bytes` —
  /// a strided view over e.g. an executor MessageBatch, without this
  /// layer knowing the surrounding struct). Writes the filter verdict
  /// into mask[i] (1 pass / 0 fail) and applies key stores to passing
  /// tuples.
  ///
  /// The point is loop interchange: instead of dispatching every
  /// instruction per tuple, each fused term opcode runs as one tight
  /// branch-predictable loop across the whole batch, ANDing into the
  /// selection mask — the columnar execution model of vectorized query
  /// engines. Programs containing stack-form instructions fall back to
  /// per-tuple Run (the production compiler only emits fused terms, so
  /// this path is tests-only).
  void RunBatch(Tuple* first, size_t stride_bytes, size_t count,
                uint8_t* mask) const;

  /// Columnar execution: runs the program over SoA columns (see
  /// ExprColumnarView). Each fused term opcode becomes one tight loop
  /// over two contiguous double columns ANDing into the mask — unlike
  /// RunBatch's strided tuple loads this vectorizes (explicit SSE2/AVX2
  /// kernels when built with CEP2ASP_SIMD, auto-vectorizable scalar loops
  /// otherwise). Comparison semantics are bit-identical to EvalCmp
  /// including IEEE NaN ordering (every comparison but != is false).
  ///
  /// Only fused-form programs are columnar-executable; returns false
  /// without touching the mask when the program contains stack-form
  /// opcodes (callers gate on IsColumnarExecutable and fall back to the
  /// row-major path). Returns true after writing mask[0..count) and
  /// applying key stores to still-masked rows.
  bool RunColumnar(const ExprColumnarView& view) const;

  /// True when every instruction has a columnar kernel (fused terms, key
  /// stores, halt) — i.e. RunColumnar will execute it. Stack-form
  /// programs (tests / differential corpora) are not.
  bool IsColumnarExecutable() const;

  /// Runs the filter portion against positional events without a tuple;
  /// key stores are skipped. For tests and join-condition reuse.
  bool EvalOnEvents(const SimpleEvent* events, size_t count) const;

  /// Disassembly, one instruction per line ("0: load e0.value" ...).
  std::string ToString() const;

  // --- introspection (verifier / analysis / tooling) -----------------------

  const std::vector<ExprInsn>& code() const { return code_; }
  const std::vector<double>& const_pool() const { return const_pool_; }
  const std::vector<int64_t>& key_pool() const { return key_pool_; }

  /// Assembles a program directly from raw encodings, bypassing the
  /// emitter. The result is NOT validated — that is the point: it feeds
  /// the verifier's mutation corpus and lets tooling reconstruct programs
  /// from serialized form. `ok()` is true regardless of content.
  static ExprProgram FromRaw(std::vector<ExprInsn> code,
                             std::vector<double> const_pool,
                             std::vector<int64_t> key_pool);

 private:
  uint8_t InternConst(double value);
  uint8_t InternKey(int64_t value);
  void EmitComparison(const Comparison& term, VarMode mode, bool fuse_terms);
  void Fail() { ok_ = false; }

  std::vector<ExprInsn> code_;
  std::vector<double> const_pool_;
  std::vector<int64_t> key_pool_;
  bool ok_ = true;
};

}  // namespace cep2asp

#endif  // CEP2ASP_EVENT_EXPR_PROGRAM_H_
