#ifndef CEP2ASP_EVENT_EVENT_H_
#define CEP2ASP_EVENT_EVENT_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/logging.h"
#include "common/small_vector.h"
#include "event/event_type.h"

namespace cep2asp {

/// \brief Attributes of the common sensor schema (paper §5.1.3:
/// (id, lat, lon, ts, value) shared by all data sources).
///
/// kAuxTs is the additional timestamp attribute "ats" introduced by the
/// NSEQ mapping (paper §4.1, Negated Sequence discussion).
enum class Attribute : uint8_t {
  kValue = 0,
  kLat = 1,
  kLon = 2,
  kTs = 3,
  kId = 4,
  kAuxTs = 5,
};

/// Number of Attribute slots per event. Columnar (SoA) layouts allocate
/// one double column per (event slot, attribute) pair and index them as
/// `slot * kNumEventAttrs + attr`.
inline constexpr size_t kNumEventAttrs = 6;

/// Parses an attribute name ("value", "lat", "lon", "ts", "id", "ats").
/// Returns false for unknown names.
bool ParseAttribute(const std::string& name, Attribute* out);

const char* AttributeName(Attribute attr);

/// \brief One primitive event: a time-stamped tuple of the common schema.
///
/// The paper's data model (§2.1): an event is an ASP tuple with a time
/// attribute ts; producers emit events with increasing timestamps.
/// `create_ts` records wall-clock creation time, used to measure detection
/// latency exactly as the paper does (§5.1.3 Metrics).
struct SimpleEvent {
  EventTypeId type = kInvalidEventType;
  int64_t id = 0;          // producer / sensor identifier
  Timestamp ts = 0;        // event time (ms)
  Timestamp create_ts = 0; // processing-time creation stamp (ms)
  Timestamp aux_ts = 0;    // "ats" scratch attribute for the NSEQ mapping
  double value = 0.0;
  double lat = 0.0;
  double lon = 0.0;
};

/// Returns the attribute value as a double (timestamps are exact in double
/// for the ranges this library produces). Inline: this is the innermost
/// load of every predicate evaluation, interpreted or compiled.
inline double GetAttribute(const SimpleEvent& event, Attribute attr) {
  switch (attr) {
    case Attribute::kValue:
      return event.value;
    case Attribute::kLat:
      return event.lat;
    case Attribute::kLon:
      return event.lon;
    case Attribute::kTs:
      return static_cast<double>(event.ts);
    case Attribute::kId:
      return static_cast<double>(event.id);
    case Attribute::kAuxTs:
      return static_cast<double>(event.aux_ts);
  }
  return 0.0;
}

/// Converts an attribute value to a partition key. Key-by-attribute
/// contract: the attribute must hold integral, finite values (ids,
/// timestamps) — the cast truncates anything else, which silently
/// mis-partitions keys. Debug builds assert the cast round-trips;
/// release builds keep the historical truncation. Plans keying by a
/// continuous attribute are flagged by the analyzer (CEP2ASP-W213).
inline int64_t AttributeToKey(double value) {
  CEP2ASP_DCHECK(std::isfinite(value))
      << "non-finite key attribute value (plan bug, see CEP2ASP-W213)";
  const int64_t key = static_cast<int64_t>(value);
  CEP2ASP_DCHECK(value == static_cast<double>(key))
      << "non-integral key attribute value " << value << " truncated to "
      << key << " (plan bug, see CEP2ASP-W213)";
  return key;
}

/// \brief A stream element: either a single event or a composition
/// (partial or complete match) of several events.
///
/// Matches are tuples ce(e1..en, tsb, tse) per §2.1; tsb/tse are derived
/// from the constituent events. `event_time` starts as the head event's ts
/// and is redefined after joins (paper §4.2.2: min ts for partial matches,
/// max ts for complete matches).
class Tuple {
 public:
  Tuple() = default;

  /// Wraps a single event; event time and key default to the event's own.
  explicit Tuple(const SimpleEvent& event)
      : event_time_(event.ts), key_(event.id) {
    events_.push_back(event);
  }

  /// Builds the concatenation of two tuples (join output). The caller
  /// redefines event time afterwards via set_event_time.
  static Tuple Concat(const Tuple& left, const Tuple& right) {
    Tuple out;
    out.events_ = left.events_;
    out.events_.append(right.events_);
    out.key_ = left.key_;
    out.event_time_ = std::max(left.event_time_, right.event_time_);
    return out;
  }

  Timestamp event_time() const { return event_time_; }
  void set_event_time(Timestamp ts) { event_time_ = ts; }

  int64_t key() const { return key_; }
  void set_key(int64_t key) { key_ = key; }

  size_t size() const { return events_.size(); }
  const SimpleEvent& event(size_t i) const { return events_[i]; }
  SimpleEvent& mutable_event(size_t i) { return events_[i]; }
  const SimpleEvent* begin() const { return events_.begin(); }
  const SimpleEvent* end() const { return events_.end(); }

  void AppendEvent(const SimpleEvent& event) { events_.push_back(event); }

  /// Timestamp of the first occurred constituent event (ce.tsb).
  Timestamp tsb() const;
  /// Timestamp of the last occurred constituent event (ce.tse).
  Timestamp tse() const;
  /// Latest wall-clock creation time among constituents (latency basis).
  Timestamp max_create_ts() const;

  /// Approximate heap + inline footprint, for state accounting.
  size_t MemoryBytes() const {
    return sizeof(Tuple) + (events_.size() > 4 ? events_.size() * sizeof(SimpleEvent) : 0);
  }

  /// Debug rendering "[Q@100 V@160]".
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    if (a.events_.size() != b.events_.size()) return false;
    for (size_t i = 0; i < a.events_.size(); ++i) {
      const SimpleEvent& x = a.events_[i];
      const SimpleEvent& y = b.events_[i];
      if (x.type != y.type || x.id != y.id || x.ts != y.ts || x.value != y.value) {
        return false;
      }
    }
    return true;
  }

 private:
  Timestamp event_time_ = 0;
  int64_t key_ = 0;
  SmallVector<SimpleEvent, 4> events_;
};

/// \brief Canonical identity of a match for duplicate elimination.
///
/// Two queries are semantically equivalent if their outputs agree after
/// eliminating duplicates (paper §4, Negri et al.). The key identifies the
/// multiset of constituent events by (type, id, ts) triples. `ordered`
/// keeps positional order (SEQ/ITER); unordered sorts first (AND/OR where
/// engines may emit operands in different orders).
std::string MatchKey(const Tuple& tuple, bool ordered = true);

}  // namespace cep2asp

#endif  // CEP2ASP_EVENT_EVENT_H_
