#include "event/predicate.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace cep2asp {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

int Comparison::MaxVar() const {
  int out = lhs.var;
  if (rhs_is_attr) out = std::max(out, rhs_attr.var);
  return out;
}

bool Comparison::ReferencesOnly(int var) const {
  if (lhs.var != var) return false;
  if (rhs_is_attr && rhs_attr.var != var) return false;
  return true;
}

bool Comparison::IsCrossVarEquality() const {
  return op == CmpOp::kEq && rhs_is_attr && lhs.var != rhs_attr.var &&
         rhs_offset == 0.0;
}

Comparison Comparison::Remap(const std::vector<int>& mapping) const {
  Comparison out = *this;
  CEP2ASP_CHECK(lhs.var >= 0 && static_cast<size_t>(lhs.var) < mapping.size())
      << "remap out of range";
  out.lhs.var = mapping[lhs.var];
  if (rhs_is_attr) {
    CEP2ASP_CHECK(rhs_attr.var >= 0 &&
                  static_cast<size_t>(rhs_attr.var) < mapping.size())
        << "remap out of range";
    out.rhs_attr.var = mapping[rhs_attr.var];
  }
  return out;
}

bool Comparison::Eval(
    const std::function<const SimpleEvent&(int)>& resolve) const {
  double left = GetAttribute(resolve(lhs.var), lhs.attr);
  double right = rhs_is_attr
                     ? GetAttribute(resolve(rhs_attr.var), rhs_attr.attr) +
                           rhs_offset
                     : rhs_const;
  return EvalCmp(left, op, right);
}

bool Comparison::EvalOnEvents(const SimpleEvent* events, size_t count) const {
  (void)count;
  CEP2ASP_DCHECK(lhs.var >= 0 && static_cast<size_t>(lhs.var) < count);
  const double left = GetAttribute(events[lhs.var], lhs.attr);
  double right;
  if (rhs_is_attr) {
    CEP2ASP_DCHECK(rhs_attr.var >= 0 &&
                   static_cast<size_t>(rhs_attr.var) < count);
    right = GetAttribute(events[rhs_attr.var], rhs_attr.attr) + rhs_offset;
  } else {
    right = rhs_const;
  }
  return EvalCmp(left, op, right);
}

bool Comparison::EvalOnEvent(const SimpleEvent& event) const {
  const double left = GetAttribute(event, lhs.attr);
  const double right =
      rhs_is_attr ? GetAttribute(event, rhs_attr.attr) + rhs_offset : rhs_const;
  return EvalCmp(left, op, right);
}

std::string Comparison::ToString() const {
  std::string out = "e" + std::to_string(lhs.var) + "." + AttributeName(lhs.attr);
  out += " ";
  out += CmpOpToString(op);
  out += " ";
  if (rhs_is_attr) {
    out += "e" + std::to_string(rhs_attr.var) + "." + AttributeName(rhs_attr.attr);
    if (rhs_offset != 0.0) out += " + " + FormatDouble(rhs_offset);
  } else {
    out += FormatDouble(rhs_const);
  }
  return out;
}

int Predicate::MaxVar() const {
  int out = -1;
  for (const Comparison& c : terms_) out = std::max(out, c.MaxVar());
  return out;
}

bool Predicate::Eval(
    const std::function<const SimpleEvent&(int)>& resolve) const {
  for (const Comparison& c : terms_) {
    if (!c.Eval(resolve)) return false;
  }
  return true;
}

bool Predicate::EvalOnEvents(const SimpleEvent* events, size_t count) const {
  for (const Comparison& c : terms_) {
    if (!c.EvalOnEvents(events, count)) return false;
  }
  return true;
}

bool Predicate::EvalOnTuple(const Tuple& tuple) const {
  return EvalOnEvents(tuple.begin(), tuple.size());
}

bool Predicate::EvalOnEvent(const SimpleEvent& event) const {
  for (const Comparison& c : terms_) {
    if (!c.EvalOnEvent(event)) return false;
  }
  return true;
}

Predicate Predicate::Remap(const std::vector<int>& mapping) const {
  std::vector<Comparison> out;
  out.reserve(terms_.size());
  for (const Comparison& c : terms_) out.push_back(c.Remap(mapping));
  return Predicate(std::move(out));
}

std::string Predicate::ToString() const {
  if (terms_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += terms_[i].ToString();
  }
  return out;
}

}  // namespace cep2asp
