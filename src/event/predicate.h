#ifndef CEP2ASP_EVENT_PREDICATE_H_
#define CEP2ASP_EVENT_PREDICATE_H_

#include <functional>
#include <string>
#include <vector>

#include "event/event.h"

namespace cep2asp {

enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CmpOpToString(CmpOp op);

/// Applies `op` to two doubles. Inline: this is the innermost branch of
/// every predicate evaluation — the bytecode interpreter (expr_program.cc)
/// and the interpreted term loop (predicate.cc) live in different TUs and
/// both need it folded into their dispatch, not a call.
inline bool EvalCmp(double lhs, CmpOp op, double rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

/// \brief Reference to an attribute of one pattern variable.
///
/// `var` is the variable's position in the pattern (e.g. in
/// SEQ(T1 e1, T2 e2) variable e1 has var = 0). After translation the same
/// index addresses the constituent event's position inside a composed
/// tuple; the translator remaps indices when joins reorder variables.
struct AttrRef {
  int var = 0;
  Attribute attr = Attribute::kValue;

  friend bool operator==(const AttrRef& a, const AttrRef& b) {
    return a.var == b.var && a.attr == b.attr;
  }
};

/// \brief One comparison: attr OP (attr [+ offset] | constant).
///
/// The optional `rhs_offset` expresses window-style constraints such as
/// e2.ts < e1.ts + W directly in the predicate IR (needed when the window
/// constraint survives as a predicate, e.g. pairwise bounds of n-ary
/// conjunctions under interval joins).
struct Comparison {
  AttrRef lhs;
  CmpOp op = CmpOp::kLt;
  bool rhs_is_attr = false;
  AttrRef rhs_attr;
  double rhs_const = 0.0;
  double rhs_offset = 0.0;  // added to the rhs attribute value

  static Comparison AttrConst(AttrRef lhs, CmpOp op, double constant) {
    Comparison c;
    c.lhs = lhs;
    c.op = op;
    c.rhs_is_attr = false;
    c.rhs_const = constant;
    return c;
  }

  static Comparison AttrAttr(AttrRef lhs, CmpOp op, AttrRef rhs,
                             double rhs_offset = 0.0) {
    Comparison c;
    c.lhs = lhs;
    c.op = op;
    c.rhs_is_attr = true;
    c.rhs_attr = rhs;
    c.rhs_offset = rhs_offset;
    return c;
  }

  /// Largest variable index mentioned.
  int MaxVar() const;

  /// True if every referenced variable equals `var`.
  bool ReferencesOnly(int var) const;

  /// True if this is `a.x = b.y` with a != b (an Equi Join candidate, O3).
  bool IsCrossVarEquality() const;

  /// Rewrites variable indices: new_index = mapping[old_index].
  /// Indices outside `mapping` are a programming error.
  Comparison Remap(const std::vector<int>& mapping) const;

  /// Evaluates against a variable resolver. The resolver must return the
  /// event bound to the given variable index. Kept for callers with
  /// non-positional bindings (CEP partial matches, SEA semantics); the
  /// hot paths below avoid the std::function indirection entirely.
  bool Eval(const std::function<const SimpleEvent&(int)>& resolve) const;

  /// Evaluates against events stored positionally — no resolver, no
  /// allocation, just two attribute loads and a compare.
  bool EvalOnEvents(const SimpleEvent* events, size_t count) const;

  /// Evaluates with every variable reference bound to `event` (broadcast;
  /// caller guarantees the term is single-variable).
  bool EvalOnEvent(const SimpleEvent& event) const;

  std::string ToString() const;
};

/// \brief A conjunction of comparisons (the WHERE clause of a pattern).
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Comparison> terms) : terms_(std::move(terms)) {}

  static Predicate True() { return Predicate(); }

  void Add(Comparison term) { terms_.push_back(std::move(term)); }

  const std::vector<Comparison>& terms() const { return terms_; }
  bool IsTrue() const { return terms_.empty(); }

  int MaxVar() const;

  bool Eval(const std::function<const SimpleEvent&(int)>& resolve) const;

  /// Evaluates against events stored positionally (variable i = events[i]).
  bool EvalOnEvents(const SimpleEvent* events, size_t count) const;

  /// Evaluates against a composed tuple whose event positions correspond to
  /// variable indices.
  bool EvalOnTuple(const Tuple& tuple) const;

  /// Evaluates a single-variable predicate against one event, treating all
  /// refs as that event (caller guarantees ReferencesOnly).
  bool EvalOnEvent(const SimpleEvent& event) const;

  Predicate Remap(const std::vector<int>& mapping) const;

  std::string ToString() const;

 private:
  std::vector<Comparison> terms_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_EVENT_PREDICATE_H_
