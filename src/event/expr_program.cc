#include "event/expr_program.h"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"

// Explicit SIMD kernels for the columnar comparison loops: SSE2 is
// unconditional on x86-64, AVX2 is compiled with a per-function target
// attribute and selected at runtime via __builtin_cpu_supports, so no
// -mavx2 build flag is needed. CEP2ASP_SIMD (a CMake option) gates the
// whole block; without it the scalar loops below remain — they carry the
// same semantics and still auto-vectorize under -O3.
#if defined(CEP2ASP_SIMD) && defined(__x86_64__) && defined(__SSE2__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CEP2ASP_EXPR_SIMD 1
#include <immintrin.h>
#else
#define CEP2ASP_EXPR_SIMD 0
#endif

namespace cep2asp {
namespace {

/// Fixed evaluation stack: straight-line comparison code never holds more
/// than two operands, the slack is headroom for future ops.
constexpr size_t kMaxStack = 8;

/// Builds a stack-form instruction (a/b operands + pool index).
ExprInsn StackInsn(ExprOp op, uint8_t a, uint8_t b, uint8_t imm) {
  ExprInsn insn;
  insn.op = op;
  insn.a = a;
  insn.b = b;
  insn.imm = imm;
  return insn;
}

/// Builds a fused term instruction: lhs (var, attr), cmp, rhs (var, attr),
/// const-pool index.
ExprInsn TermInsn(ExprOp op, uint8_t lvar, uint8_t lattr, CmpOp cmp,
                  uint8_t rvar, uint8_t rattr, uint8_t imm) {
  ExprInsn insn;
  insn.op = op;
  insn.a = lvar;
  insn.b = lattr;
  insn.c = static_cast<uint8_t>(cmp);
  insn.d = rvar;
  insn.e = rattr;
  insn.imm = imm;
  return insn;
}

}  // namespace

uint8_t ExprProgram::InternConst(double value) {
  // Compare bit patterns, not values: NaN constants must intern too, and
  // comparing through uint64_t (rather than memcmp on doubles) keeps the
  // intent explicit for both readers and flp37-style lints.
  uint64_t value_bits = 0;
  std::memcpy(&value_bits, &value, sizeof(value_bits));
  for (size_t i = 0; i < const_pool_.size(); ++i) {
    uint64_t pool_bits = 0;
    std::memcpy(&pool_bits, &const_pool_[i], sizeof(pool_bits));
    if (pool_bits == value_bits) {
      return static_cast<uint8_t>(i);
    }
  }
  if (const_pool_.size() >= 256) {
    Fail();
    return 0;
  }
  const_pool_.push_back(value);
  return static_cast<uint8_t>(const_pool_.size() - 1);
}

uint8_t ExprProgram::InternKey(int64_t value) {
  for (size_t i = 0; i < key_pool_.size(); ++i) {
    if (key_pool_[i] == value) return static_cast<uint8_t>(i);
  }
  if (key_pool_.size() >= 256) {
    Fail();
    return 0;
  }
  key_pool_.push_back(value);
  return static_cast<uint8_t>(key_pool_.size() - 1);
}

void ExprProgram::EmitComparison(const Comparison& term, VarMode mode,
                                 bool fuse_terms) {
  const auto var_of = [mode](int var) { return mode == VarMode::kBroadcast ? 0 : var; };
  const int lhs_var = var_of(term.lhs.var);
  if (lhs_var < 0 || lhs_var > 255) {
    Fail();
    return;
  }
  const uint8_t lvar = static_cast<uint8_t>(lhs_var);
  const uint8_t lattr = static_cast<uint8_t>(term.lhs.attr);
  if (term.rhs_is_attr) {
    const int rhs_var = var_of(term.rhs_attr.var);
    if (rhs_var < 0 || rhs_var > 255) {
      Fail();
      return;
    }
    const uint8_t rvar = static_cast<uint8_t>(rhs_var);
    const uint8_t rattr = static_cast<uint8_t>(term.rhs_attr.attr);
    if (fuse_terms) {
      if (term.rhs_offset != 0.0) {
        code_.push_back(TermInsn(ExprOp::kCmpAttrAttrOffFail, lvar, lattr,
                                 term.op, rvar, rattr,
                                 InternConst(term.rhs_offset)));
      } else {
        code_.push_back(
            TermInsn(ExprOp::kCmpAttrAttrFail, lvar, lattr, term.op, rvar,
                     rattr, 0));
      }
      return;
    }
    code_.push_back(StackInsn(ExprOp::kLoadAttr, lvar, lattr, 0));
    code_.push_back(StackInsn(ExprOp::kLoadAttr, rvar, rattr, 0));
    if (term.rhs_offset != 0.0) {
      code_.push_back(
          StackInsn(ExprOp::kAddOffset, 0, 0, InternConst(term.rhs_offset)));
    }
  } else {
    if (fuse_terms) {
      code_.push_back(TermInsn(ExprOp::kCmpAttrConstFail, lvar, lattr, term.op,
                               0, 0, InternConst(term.rhs_const)));
      return;
    }
    code_.push_back(StackInsn(ExprOp::kLoadAttr, lvar, lattr, 0));
    code_.push_back(
        StackInsn(ExprOp::kLoadConst, 0, 0, InternConst(term.rhs_const)));
  }
  code_.push_back(
      StackInsn(ExprOp::kCmp, static_cast<uint8_t>(term.op), 0, 0));
  code_.push_back(StackInsn(ExprOp::kAndFail, 0, 0, 0));
}

ExprProgram ExprProgram::Filter(const Predicate& pred, VarMode mode,
                                bool fuse_terms) {
  ExprProgram out;
  for (const Comparison& term : pred.terms()) {
    out.EmitComparison(term, mode, fuse_terms);
  }
  out.code_.push_back(StackInsn(ExprOp::kHalt, 0, 0, 0));
  return out;
}

ExprProgram ExprProgram::KeyByAttribute(int event_index, Attribute attr) {
  ExprProgram out;
  if (event_index < 0 || event_index > 255) {
    out.Fail();
    return out;
  }
  out.code_.push_back(StackInsn(ExprOp::kStoreKeyAttr,
                                static_cast<uint8_t>(event_index),
                                static_cast<uint8_t>(attr), 0));
  out.code_.push_back(StackInsn(ExprOp::kHalt, 0, 0, 0));
  return out;
}

ExprProgram ExprProgram::KeyByConstant(int64_t key) {
  ExprProgram out;
  out.code_.push_back(
      StackInsn(ExprOp::kStoreKeyConst, 0, 0, out.InternKey(key)));
  out.code_.push_back(StackInsn(ExprOp::kHalt, 0, 0, 0));
  return out;
}

ExprProgram ExprProgram::FromRaw(std::vector<ExprInsn> code,
                                 std::vector<double> const_pool,
                                 std::vector<int64_t> key_pool) {
  ExprProgram out;
  out.code_ = std::move(code);
  out.const_pool_ = std::move(const_pool);
  out.key_pool_ = std::move(key_pool);
  return out;
}

ExprProgram ExprProgram::Fuse(const ExprProgram& first,
                              const ExprProgram& second) {
  ExprProgram out;
  out.ok_ = first.ok_ && second.ok_;
  out.const_pool_ = first.const_pool_;
  out.key_pool_ = first.key_pool_;
  out.code_ = first.code_;
  // Drop first's terminating kHalt; a failing kAndFail inside still exits
  // before second runs, which is exactly the pipeline's filter→map order.
  if (!out.code_.empty() && out.code_.back().op == ExprOp::kHalt) {
    out.code_.pop_back();
  }
  for (ExprInsn insn : second.code_) {
    switch (insn.op) {
      case ExprOp::kLoadConst:
      case ExprOp::kAddOffset:
      case ExprOp::kCmpAttrConstFail:
      case ExprOp::kCmpAttrAttrOffFail:
        insn.imm = out.InternConst(second.const_pool_[insn.imm]);
        break;
      case ExprOp::kStoreKeyConst:
        insn.imm = out.InternKey(second.key_pool_[insn.imm]);
        break;
      default:
        break;
    }
    out.code_.push_back(insn);
  }
  return out;
}

bool ExprProgram::assigns_key() const {
  for (const ExprInsn& insn : code_) {
    if (insn.op == ExprOp::kStoreKeyAttr || insn.op == ExprOp::kStoreKeyConst) {
      return true;
    }
  }
  return false;
}

/// The interpreter core. `tuple` is null when key stores must be skipped
/// (EvalOnEvents). Threaded dispatch (computed goto) under GCC/Clang: one
/// indirect jump per instruction instead of a loop + switch, the idiom
/// behind every fast bytecode VM. The portable switch fallback is
/// semantically identical.
static bool ExecProgram(const ExprInsn* pc, const double* const_pool,
                        const int64_t* key_pool, const SimpleEvent* events,
                        size_t count, Tuple* tuple) {
  double stack[kMaxStack];
  size_t sp = 0;
  (void)count;

#if defined(__GNUC__) || defined(__clang__)
  // Table order must match the ExprOp enumerator order.
  static const void* kDispatch[] = {
      &&op_load_attr,       &&op_load_const, &&op_add_offset,
      &&op_cmp,             &&op_and_fail,   &&op_store_key_attr,
      &&op_store_key_const, &&op_halt,       &&op_cmp_attr_const_fail,
      &&op_cmp_attr_attr_fail, &&op_cmp_attr_attr_off_fail,
  };
#define CEP2ASP_EXPR_NEXT() goto* kDispatch[static_cast<uint8_t>((pc)->op)]
  CEP2ASP_EXPR_NEXT();

op_load_attr:
  CEP2ASP_DCHECK(pc->a < count) << "expr var out of range";
  CEP2ASP_DCHECK(sp < kMaxStack);
  stack[sp++] = GetAttribute(events[pc->a], static_cast<Attribute>(pc->b));
  ++pc;
  CEP2ASP_EXPR_NEXT();

op_load_const:
  CEP2ASP_DCHECK(sp < kMaxStack);
  stack[sp++] = const_pool[pc->imm];
  ++pc;
  CEP2ASP_EXPR_NEXT();

op_add_offset:
  CEP2ASP_DCHECK(sp > 0);
  stack[sp - 1] += const_pool[pc->imm];
  ++pc;
  CEP2ASP_EXPR_NEXT();

op_cmp : {
  CEP2ASP_DCHECK(sp >= 2);
  const double rhs = stack[--sp];
  const double lhs = stack[--sp];
  stack[sp++] = EvalCmp(lhs, static_cast<CmpOp>(pc->a), rhs) ? 1.0 : 0.0;
  ++pc;
  CEP2ASP_EXPR_NEXT();
}

op_and_fail:
  CEP2ASP_DCHECK(sp > 0);
  if (stack[--sp] == 0.0) return false;
  ++pc;
  CEP2ASP_EXPR_NEXT();

op_store_key_attr:
  CEP2ASP_DCHECK(pc->a < count) << "expr var out of range";
  if (tuple != nullptr) {
    tuple->set_key(AttributeToKey(
        GetAttribute(events[pc->a], static_cast<Attribute>(pc->b))));
  }
  ++pc;
  CEP2ASP_EXPR_NEXT();

op_store_key_const:
  if (tuple != nullptr) tuple->set_key(key_pool[pc->imm]);
  ++pc;
  CEP2ASP_EXPR_NEXT();

op_halt:
  return true;

op_cmp_attr_const_fail : {
  CEP2ASP_DCHECK(pc->a < count) << "expr var out of range";
  const double lhs = GetAttribute(events[pc->a], static_cast<Attribute>(pc->b));
  if (!EvalCmp(lhs, static_cast<CmpOp>(pc->c), const_pool[pc->imm])) {
    return false;
  }
  ++pc;
  CEP2ASP_EXPR_NEXT();
}

op_cmp_attr_attr_fail : {
  CEP2ASP_DCHECK(pc->a < count && pc->d < count) << "expr var out of range";
  const double lhs = GetAttribute(events[pc->a], static_cast<Attribute>(pc->b));
  const double rhs = GetAttribute(events[pc->d], static_cast<Attribute>(pc->e));
  if (!EvalCmp(lhs, static_cast<CmpOp>(pc->c), rhs)) return false;
  ++pc;
  CEP2ASP_EXPR_NEXT();
}

op_cmp_attr_attr_off_fail : {
  CEP2ASP_DCHECK(pc->a < count && pc->d < count) << "expr var out of range";
  const double lhs = GetAttribute(events[pc->a], static_cast<Attribute>(pc->b));
  const double rhs =
      GetAttribute(events[pc->d], static_cast<Attribute>(pc->e)) +
      const_pool[pc->imm];
  if (!EvalCmp(lhs, static_cast<CmpOp>(pc->c), rhs)) return false;
  ++pc;
  CEP2ASP_EXPR_NEXT();
}
#undef CEP2ASP_EXPR_NEXT

#else  // portable fallback
  for (;; ++pc) {
    switch (pc->op) {
      case ExprOp::kLoadAttr:
        CEP2ASP_DCHECK(pc->a < count) << "expr var out of range";
        CEP2ASP_DCHECK(sp < kMaxStack);
        stack[sp++] = GetAttribute(events[pc->a], static_cast<Attribute>(pc->b));
        break;
      case ExprOp::kLoadConst:
        CEP2ASP_DCHECK(sp < kMaxStack);
        stack[sp++] = const_pool[pc->imm];
        break;
      case ExprOp::kAddOffset:
        CEP2ASP_DCHECK(sp > 0);
        stack[sp - 1] += const_pool[pc->imm];
        break;
      case ExprOp::kCmp: {
        CEP2ASP_DCHECK(sp >= 2);
        const double rhs = stack[--sp];
        const double lhs = stack[--sp];
        stack[sp++] = EvalCmp(lhs, static_cast<CmpOp>(pc->a), rhs) ? 1.0 : 0.0;
        break;
      }
      case ExprOp::kAndFail:
        CEP2ASP_DCHECK(sp > 0);
        if (stack[--sp] == 0.0) return false;
        break;
      case ExprOp::kStoreKeyAttr:
        CEP2ASP_DCHECK(pc->a < count) << "expr var out of range";
        if (tuple != nullptr) {
          tuple->set_key(AttributeToKey(
              GetAttribute(events[pc->a], static_cast<Attribute>(pc->b))));
        }
        break;
      case ExprOp::kStoreKeyConst:
        if (tuple != nullptr) tuple->set_key(key_pool[pc->imm]);
        break;
      case ExprOp::kHalt:
        return true;
      case ExprOp::kCmpAttrConstFail: {
        CEP2ASP_DCHECK(pc->a < count) << "expr var out of range";
        const double lhs =
            GetAttribute(events[pc->a], static_cast<Attribute>(pc->b));
        if (!EvalCmp(lhs, static_cast<CmpOp>(pc->c), const_pool[pc->imm])) {
          return false;
        }
        break;
      }
      case ExprOp::kCmpAttrAttrFail: {
        CEP2ASP_DCHECK(pc->a < count && pc->d < count)
            << "expr var out of range";
        const double lhs =
            GetAttribute(events[pc->a], static_cast<Attribute>(pc->b));
        const double rhs =
            GetAttribute(events[pc->d], static_cast<Attribute>(pc->e));
        if (!EvalCmp(lhs, static_cast<CmpOp>(pc->c), rhs)) return false;
        break;
      }
      case ExprOp::kCmpAttrAttrOffFail: {
        CEP2ASP_DCHECK(pc->a < count && pc->d < count)
            << "expr var out of range";
        const double lhs =
            GetAttribute(events[pc->a], static_cast<Attribute>(pc->b));
        const double rhs =
            GetAttribute(events[pc->d], static_cast<Attribute>(pc->e)) +
            const_pool[pc->imm];
        if (!EvalCmp(lhs, static_cast<CmpOp>(pc->c), rhs)) return false;
        break;
      }
    }
  }
#endif
}

namespace {

/// Monomorphizes a comparison loop over its CmpOp: the comparator becomes
/// a template parameter of the inner loop instead of a per-element branch.
template <typename F>
void WithCmp(CmpOp op, F f) {
  switch (op) {
    case CmpOp::kLt:
      f([](double l, double r) { return l < r; });
      return;
    case CmpOp::kLe:
      f([](double l, double r) { return l <= r; });
      return;
    case CmpOp::kGt:
      f([](double l, double r) { return l > r; });
      return;
    case CmpOp::kGe:
      f([](double l, double r) { return l >= r; });
      return;
    case CmpOp::kEq:
      f([](double l, double r) { return l == r; });
      return;
    case CmpOp::kNe:
      f([](double l, double r) { return l != r; });
      return;
  }
}

inline Tuple* TupleAt(char* base, size_t stride_bytes, size_t i) {
  return reinterpret_cast<Tuple*>(base + i * stride_bytes);
}

}  // namespace

void ExprProgram::RunBatch(Tuple* first, size_t stride_bytes, size_t count,
                           uint8_t* mask) const {
  char* base = reinterpret_cast<char*>(first);
  for (size_t i = 0; i < count; ++i) mask[i] = 1;
  if (code_.empty()) return;
  CEP2ASP_DCHECK(ok_) << "running a failed compilation";
  for (const ExprInsn& insn : code_) {
    switch (insn.op) {
      case ExprOp::kCmpAttrConstFail: {
        const Attribute attr = static_cast<Attribute>(insn.b);
        const double rhs = const_pool_[insn.imm];
        WithCmp(static_cast<CmpOp>(insn.c), [&](auto cmp) {
          for (size_t i = 0; i < count; ++i) {
            const Tuple* t = TupleAt(base, stride_bytes, i);
            CEP2ASP_DCHECK(insn.a < t->size()) << "expr var out of range";
            mask[i] &= static_cast<uint8_t>(
                cmp(GetAttribute(t->begin()[insn.a], attr), rhs));
          }
        });
        break;
      }
      case ExprOp::kCmpAttrAttrFail:
      case ExprOp::kCmpAttrAttrOffFail: {
        const Attribute lattr = static_cast<Attribute>(insn.b);
        const Attribute rattr = static_cast<Attribute>(insn.e);
        const double offset = insn.op == ExprOp::kCmpAttrAttrOffFail
                                  ? const_pool_[insn.imm]
                                  : 0.0;
        WithCmp(static_cast<CmpOp>(insn.c), [&](auto cmp) {
          for (size_t i = 0; i < count; ++i) {
            const Tuple* t = TupleAt(base, stride_bytes, i);
            CEP2ASP_DCHECK(insn.a < t->size() && insn.d < t->size())
                << "expr var out of range";
            mask[i] &= static_cast<uint8_t>(
                cmp(GetAttribute(t->begin()[insn.a], lattr),
                    GetAttribute(t->begin()[insn.d], rattr) + offset));
          }
        });
        break;
      }
      case ExprOp::kStoreKeyAttr: {
        const Attribute attr = static_cast<Attribute>(insn.b);
        for (size_t i = 0; i < count; ++i) {
          if (!mask[i]) continue;
          Tuple* t = TupleAt(base, stride_bytes, i);
          CEP2ASP_DCHECK(insn.a < t->size()) << "expr var out of range";
          t->set_key(AttributeToKey(GetAttribute(t->begin()[insn.a], attr)));
        }
        break;
      }
      case ExprOp::kStoreKeyConst: {
        const int64_t key = key_pool_[insn.imm];
        for (size_t i = 0; i < count; ++i) {
          if (mask[i]) TupleAt(base, stride_bytes, i)->set_key(key);
        }
        break;
      }
      case ExprOp::kHalt:
        return;
      default:
        // Stack-form program (tests / hand-fused): per-tuple semantics.
        for (size_t i = 0; i < count; ++i) {
          Tuple* t = TupleAt(base, stride_bytes, i);
          mask[i] = static_cast<uint8_t>(Run(t));
        }
        return;
    }
  }
}

// ---------------------------------------------------------------------------
// Columnar (SoA) execution

namespace {

#if CEP2ASP_EXPR_SIMD

/// Generates the four kernels of one comparator: {column vs constant,
/// column vs column + offset} x {SSE2, AVX2}. The compare intrinsics
/// implement exactly EvalCmp's IEEE semantics: ordered predicates
/// (LT/LE/GT/GE/EQ) are false on NaN operands, NEQ is unordered-true —
/// the same truth table as the C operators in EvalCmp. The movemask sign
/// bits become per-row bytes ANDed into the selection mask; the scalar
/// tail finishes rows past the last full vector.
#define CEP2ASP_DEF_SIMD_CMP(NAME, SCALAR_OP, SSE_CMP, AVX_IMM)               \
  void NAME##ConstSse2(const double* lhs, double rhs, size_t n,               \
                       uint8_t* mask) {                                       \
    const __m128d vr = _mm_set1_pd(rhs);                                      \
    size_t i = 0;                                                             \
    for (; i + 2 <= n; i += 2) {                                              \
      const int m = _mm_movemask_pd(SSE_CMP(_mm_loadu_pd(lhs + i), vr));      \
      mask[i] &= static_cast<uint8_t>(m & 1);                                 \
      mask[i + 1] &= static_cast<uint8_t>((m >> 1) & 1);                      \
    }                                                                         \
    for (; i < n; ++i) {                                                      \
      mask[i] &= static_cast<uint8_t>(lhs[i] SCALAR_OP rhs);                  \
    }                                                                         \
  }                                                                           \
  void NAME##ColsSse2(const double* lhs, const double* rhs, double offset,    \
                      size_t n, uint8_t* mask) {                              \
    const __m128d voff = _mm_set1_pd(offset);                                 \
    size_t i = 0;                                                             \
    for (; i + 2 <= n; i += 2) {                                              \
      const __m128d vr = _mm_add_pd(_mm_loadu_pd(rhs + i), voff);             \
      const int m = _mm_movemask_pd(SSE_CMP(_mm_loadu_pd(lhs + i), vr));      \
      mask[i] &= static_cast<uint8_t>(m & 1);                                 \
      mask[i + 1] &= static_cast<uint8_t>((m >> 1) & 1);                      \
    }                                                                         \
    for (; i < n; ++i) {                                                      \
      mask[i] &= static_cast<uint8_t>(lhs[i] SCALAR_OP(rhs[i] + offset));     \
    }                                                                         \
  }                                                                           \
  __attribute__((target("avx2"))) void NAME##ConstAvx2(                       \
      const double* lhs, double rhs, size_t n, uint8_t* mask) {               \
    const __m256d vr = _mm256_set1_pd(rhs);                                   \
    size_t i = 0;                                                             \
    for (; i + 4 <= n; i += 4) {                                              \
      const int m = _mm256_movemask_pd(                                       \
          _mm256_cmp_pd(_mm256_loadu_pd(lhs + i), vr, AVX_IMM));              \
      mask[i] &= static_cast<uint8_t>(m & 1);                                 \
      mask[i + 1] &= static_cast<uint8_t>((m >> 1) & 1);                      \
      mask[i + 2] &= static_cast<uint8_t>((m >> 2) & 1);                      \
      mask[i + 3] &= static_cast<uint8_t>((m >> 3) & 1);                      \
    }                                                                         \
    for (; i < n; ++i) {                                                      \
      mask[i] &= static_cast<uint8_t>(lhs[i] SCALAR_OP rhs);                  \
    }                                                                         \
  }                                                                           \
  __attribute__((target("avx2"))) void NAME##ColsAvx2(                        \
      const double* lhs, const double* rhs, double offset, size_t n,          \
      uint8_t* mask) {                                                        \
    const __m256d voff = _mm256_set1_pd(offset);                              \
    size_t i = 0;                                                             \
    for (; i + 4 <= n; i += 4) {                                              \
      const __m256d vr = _mm256_add_pd(_mm256_loadu_pd(rhs + i), voff);       \
      const int m = _mm256_movemask_pd(                                       \
          _mm256_cmp_pd(_mm256_loadu_pd(lhs + i), vr, AVX_IMM));              \
      mask[i] &= static_cast<uint8_t>(m & 1);                                 \
      mask[i + 1] &= static_cast<uint8_t>((m >> 1) & 1);                      \
      mask[i + 2] &= static_cast<uint8_t>((m >> 2) & 1);                      \
      mask[i + 3] &= static_cast<uint8_t>((m >> 3) & 1);                      \
    }                                                                         \
    for (; i < n; ++i) {                                                      \
      mask[i] &= static_cast<uint8_t>(lhs[i] SCALAR_OP(rhs[i] + offset));     \
    }                                                                         \
  }

CEP2ASP_DEF_SIMD_CMP(Lt, <, _mm_cmplt_pd, _CMP_LT_OQ)
CEP2ASP_DEF_SIMD_CMP(Le, <=, _mm_cmple_pd, _CMP_LE_OQ)
CEP2ASP_DEF_SIMD_CMP(Gt, >, _mm_cmpgt_pd, _CMP_GT_OQ)
CEP2ASP_DEF_SIMD_CMP(Ge, >=, _mm_cmpge_pd, _CMP_GE_OQ)
CEP2ASP_DEF_SIMD_CMP(Eq, ==, _mm_cmpeq_pd, _CMP_EQ_OQ)
CEP2ASP_DEF_SIMD_CMP(Ne, !=, _mm_cmpneq_pd, _CMP_NEQ_UQ)
#undef CEP2ASP_DEF_SIMD_CMP

/// Kernel table indexed by CmpOp; resolved once per process to AVX2 when
/// the CPU supports it, SSE2 otherwise.
struct SimdKernels {
  using ConstFn = void (*)(const double*, double, size_t, uint8_t*);
  using ColsFn = void (*)(const double*, const double*, double, size_t,
                          uint8_t*);
  ConstFn cmp_const[6] = {};
  ColsFn cmp_cols[6] = {};
};

const SimdKernels& Kernels() {
  static const SimdKernels kernels = [] {
    SimdKernels k;
    if (__builtin_cpu_supports("avx2")) {
      k.cmp_const[0] = LtConstAvx2;
      k.cmp_const[1] = LeConstAvx2;
      k.cmp_const[2] = GtConstAvx2;
      k.cmp_const[3] = GeConstAvx2;
      k.cmp_const[4] = EqConstAvx2;
      k.cmp_const[5] = NeConstAvx2;
      k.cmp_cols[0] = LtColsAvx2;
      k.cmp_cols[1] = LeColsAvx2;
      k.cmp_cols[2] = GtColsAvx2;
      k.cmp_cols[3] = GeColsAvx2;
      k.cmp_cols[4] = EqColsAvx2;
      k.cmp_cols[5] = NeColsAvx2;
    } else {
      k.cmp_const[0] = LtConstSse2;
      k.cmp_const[1] = LeConstSse2;
      k.cmp_const[2] = GtConstSse2;
      k.cmp_const[3] = GeConstSse2;
      k.cmp_const[4] = EqConstSse2;
      k.cmp_const[5] = NeConstSse2;
      k.cmp_cols[0] = LtColsSse2;
      k.cmp_cols[1] = LeColsSse2;
      k.cmp_cols[2] = GtColsSse2;
      k.cmp_cols[3] = GeColsSse2;
      k.cmp_cols[4] = EqColsSse2;
      k.cmp_cols[5] = NeColsSse2;
    }
    return k;
  }();
  return kernels;
}

#endif  // CEP2ASP_EXPR_SIMD

/// mask[i] &= (lhs[i] op rhs), over a contiguous column.
void MaskCmpColConst(CmpOp op, const double* lhs, double rhs, size_t n,
                     uint8_t* mask) {
#if CEP2ASP_EXPR_SIMD
  Kernels().cmp_const[static_cast<size_t>(op)](lhs, rhs, n, mask);
#else
  WithCmp(op, [&](auto cmp) {
    for (size_t i = 0; i < n; ++i) {
      mask[i] &= static_cast<uint8_t>(cmp(lhs[i], rhs));
    }
  });
#endif
}

/// mask[i] &= (lhs[i] op rhs[i] + offset), over two contiguous columns.
/// offset 0.0 is exact for every operand (x + 0.0 compares equal to x,
/// NaN stays NaN), matching the row-major path which adds it too.
void MaskCmpCols(CmpOp op, const double* lhs, const double* rhs, double offset,
                 size_t n, uint8_t* mask) {
#if CEP2ASP_EXPR_SIMD
  Kernels().cmp_cols[static_cast<size_t>(op)](lhs, rhs, offset, n, mask);
#else
  WithCmp(op, [&](auto cmp) {
    for (size_t i = 0; i < n; ++i) {
      mask[i] &= static_cast<uint8_t>(cmp(lhs[i], rhs[i] + offset));
    }
  });
#endif
}

}  // namespace

bool ExprProgram::IsColumnarExecutable() const {
  if (!ok_) return false;
  for (const ExprInsn& insn : code_) {
    switch (insn.op) {
      case ExprOp::kCmpAttrConstFail:
      case ExprOp::kCmpAttrAttrFail:
      case ExprOp::kCmpAttrAttrOffFail:
      case ExprOp::kStoreKeyAttr:
      case ExprOp::kStoreKeyConst:
      case ExprOp::kHalt:
        break;
      default:
        return false;  // stack-form opcode: row-major execution only
    }
  }
  return true;
}

bool ExprProgram::RunColumnar(const ExprColumnarView& view) const {
  if (!IsColumnarExecutable()) return false;
  uint8_t* mask = view.mask;
  const size_t n = view.count;
  std::memset(mask, 1, n);
  for (const ExprInsn& insn : code_) {
    switch (insn.op) {
      case ExprOp::kCmpAttrConstFail: {
        CEP2ASP_DCHECK(insn.a < view.num_slots) << "expr var out of range";
        const double* lhs = view.attr_cols[insn.a * kNumEventAttrs + insn.b];
        MaskCmpColConst(static_cast<CmpOp>(insn.c), lhs, const_pool_[insn.imm],
                        n, mask);
        break;
      }
      case ExprOp::kCmpAttrAttrFail:
      case ExprOp::kCmpAttrAttrOffFail: {
        CEP2ASP_DCHECK(insn.a < view.num_slots && insn.d < view.num_slots)
            << "expr var out of range";
        const double* lhs = view.attr_cols[insn.a * kNumEventAttrs + insn.b];
        const double* rhs = view.attr_cols[insn.d * kNumEventAttrs + insn.e];
        const double offset = insn.op == ExprOp::kCmpAttrAttrOffFail
                                  ? const_pool_[insn.imm]
                                  : 0.0;
        MaskCmpCols(static_cast<CmpOp>(insn.c), lhs, rhs, offset, n, mask);
        break;
      }
      case ExprOp::kStoreKeyAttr: {
        if (view.keys == nullptr) break;
        CEP2ASP_DCHECK(insn.a < view.num_slots) << "expr var out of range";
        const double* col = view.attr_cols[insn.a * kNumEventAttrs + insn.b];
        for (size_t i = 0; i < n; ++i) {
          if (mask[i]) view.keys[i] = AttributeToKey(col[i]);
        }
        break;
      }
      case ExprOp::kStoreKeyConst: {
        if (view.keys == nullptr) break;
        const int64_t key = key_pool_[insn.imm];
        for (size_t i = 0; i < n; ++i) {
          if (mask[i]) view.keys[i] = key;
        }
        break;
      }
      case ExprOp::kHalt:
        return true;
      default:
        return false;  // unreachable: gated by IsColumnarExecutable
    }
  }
  return true;
}

bool ExprProgram::Run(Tuple* tuple) const {
  if (code_.empty()) return true;
  CEP2ASP_DCHECK(ok_) << "running a failed compilation";
  return ExecProgram(code_.data(), const_pool_.data(), key_pool_.data(),
                     tuple->begin(), tuple->size(), tuple);
}

bool ExprProgram::EvalOnEvents(const SimpleEvent* events, size_t count) const {
  if (code_.empty()) return true;
  CEP2ASP_DCHECK(ok_) << "running a failed compilation";
  return ExecProgram(code_.data(), const_pool_.data(), key_pool_.data(), events,
                     count, nullptr);
}

std::string ExprProgram::ToString() const {
  std::string out;
  for (size_t i = 0; i < code_.size(); ++i) {
    const ExprInsn& insn = code_[i];
    out += std::to_string(i);
    out += ": ";
    switch (insn.op) {
      case ExprOp::kLoadAttr:
        out += "load e" + std::to_string(insn.a) + "." +
               AttributeName(static_cast<Attribute>(insn.b));
        break;
      case ExprOp::kLoadConst:
        out += "const " + FormatDouble(const_pool_[insn.imm]);
        break;
      case ExprOp::kAddOffset:
        out += "add " + FormatDouble(const_pool_[insn.imm]);
        break;
      case ExprOp::kCmp:
        out += "cmp ";
        out += CmpOpToString(static_cast<CmpOp>(insn.a));
        break;
      case ExprOp::kAndFail:
        out += "and-fail";
        break;
      case ExprOp::kStoreKeyAttr:
        out += "key := e" + std::to_string(insn.a) + "." +
               AttributeName(static_cast<Attribute>(insn.b));
        break;
      case ExprOp::kStoreKeyConst:
        out += "key := " + std::to_string(key_pool_[insn.imm]);
        break;
      case ExprOp::kHalt:
        out += "halt";
        break;
      case ExprOp::kCmpAttrConstFail:
        out += "fail unless e" + std::to_string(insn.a) + "." +
               AttributeName(static_cast<Attribute>(insn.b)) + " " +
               CmpOpToString(static_cast<CmpOp>(insn.c)) + " " +
               FormatDouble(const_pool_[insn.imm]);
        break;
      case ExprOp::kCmpAttrAttrFail:
        out += "fail unless e" + std::to_string(insn.a) + "." +
               AttributeName(static_cast<Attribute>(insn.b)) + " " +
               CmpOpToString(static_cast<CmpOp>(insn.c)) + " e" +
               std::to_string(insn.d) + "." +
               AttributeName(static_cast<Attribute>(insn.e));
        break;
      case ExprOp::kCmpAttrAttrOffFail:
        out += "fail unless e" + std::to_string(insn.a) + "." +
               AttributeName(static_cast<Attribute>(insn.b)) + " " +
               CmpOpToString(static_cast<CmpOp>(insn.c)) + " e" +
               std::to_string(insn.d) + "." +
               AttributeName(static_cast<Attribute>(insn.e)) + " + " +
               FormatDouble(const_pool_[insn.imm]);
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace cep2asp
