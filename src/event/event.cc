#include "event/event.h"

#include <algorithm>
#include <tuple>
#include <vector>

namespace cep2asp {

bool ParseAttribute(const std::string& name, Attribute* out) {
  if (name == "value") {
    *out = Attribute::kValue;
  } else if (name == "lat") {
    *out = Attribute::kLat;
  } else if (name == "lon") {
    *out = Attribute::kLon;
  } else if (name == "ts") {
    *out = Attribute::kTs;
  } else if (name == "id") {
    *out = Attribute::kId;
  } else if (name == "ats") {
    *out = Attribute::kAuxTs;
  } else {
    return false;
  }
  return true;
}

const char* AttributeName(Attribute attr) {
  switch (attr) {
    case Attribute::kValue:
      return "value";
    case Attribute::kLat:
      return "lat";
    case Attribute::kLon:
      return "lon";
    case Attribute::kTs:
      return "ts";
    case Attribute::kId:
      return "id";
    case Attribute::kAuxTs:
      return "ats";
  }
  return "?";
}

Timestamp Tuple::tsb() const {
  CEP2ASP_DCHECK(!events_.empty());
  Timestamp out = events_[0].ts;
  for (const SimpleEvent& e : events_) out = std::min(out, e.ts);
  return out;
}

Timestamp Tuple::tse() const {
  CEP2ASP_DCHECK(!events_.empty());
  Timestamp out = events_[0].ts;
  for (const SimpleEvent& e : events_) out = std::max(out, e.ts);
  return out;
}

Timestamp Tuple::max_create_ts() const {
  Timestamp out = 0;
  for (const SimpleEvent& e : events_) out = std::max(out, e.create_ts);
  return out;
}

std::string Tuple::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out += " ";
    out += EventTypeRegistry::Global()->Name(events_[i].type);
    out += "#" + std::to_string(events_[i].id);
    out += "@" + std::to_string(events_[i].ts);
  }
  out += "]";
  return out;
}

std::string MatchKey(const Tuple& tuple, bool ordered) {
  std::vector<std::tuple<EventTypeId, int64_t, Timestamp>> parts;
  parts.reserve(tuple.size());
  for (const SimpleEvent& e : tuple) {
    parts.emplace_back(e.type, e.id, e.ts);
  }
  if (!ordered) std::sort(parts.begin(), parts.end());
  std::string key;
  key.reserve(parts.size() * 16);
  for (const auto& [type, id, ts] : parts) {
    key += std::to_string(type);
    key += ':';
    key += std::to_string(id);
    key += ':';
    key += std::to_string(ts);
    key += ';';
  }
  return key;
}

}  // namespace cep2asp
