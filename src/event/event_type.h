#ifndef CEP2ASP_EVENT_EVENT_TYPE_H_
#define CEP2ASP_EVENT_EVENT_TYPE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cep2asp {

/// Numeric identifier of an event type (paper §2: the universe of event
/// types epsilon = {T1..Tn}; each event instantiates one Ti).
using EventTypeId = uint16_t;

inline constexpr EventTypeId kInvalidEventType = 0xFFFF;

/// \brief Maps event type names (e.g. "QnVQ", "PM10") to dense ids.
///
/// Thread-safe. A process-global instance backs the PSL parser and the
/// workload generators; tests may create private registries.
class EventTypeRegistry {
 public:
  EventTypeRegistry() = default;

  EventTypeRegistry(const EventTypeRegistry&) = delete;
  EventTypeRegistry& operator=(const EventTypeRegistry&) = delete;

  /// Returns the id of `name`, registering it if unseen.
  EventTypeId RegisterOrGet(const std::string& name);

  /// Returns the id of `name` or NotFound.
  Result<EventTypeId> Lookup(const std::string& name) const;

  /// Returns the registered name for `id`, or "type<id>" for unknown ids.
  std::string Name(EventTypeId id) const;

  size_t size() const;

  /// Shared process-wide registry.
  static EventTypeRegistry* Global();

 private:
  mutable Mutex mutex_;
  std::unordered_map<std::string, EventTypeId> by_name_
      CEP2ASP_GUARDED_BY(mutex_);
  std::vector<std::string> names_ CEP2ASP_GUARDED_BY(mutex_);
};

}  // namespace cep2asp

#endif  // CEP2ASP_EVENT_EVENT_TYPE_H_
