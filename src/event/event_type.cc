#include "event/event_type.h"

#include "common/logging.h"

namespace cep2asp {

EventTypeId EventTypeRegistry::RegisterOrGet(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  CEP2ASP_CHECK(names_.size() < kInvalidEventType) << "event type space exhausted";
  EventTypeId id = static_cast<EventTypeId>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

Result<EventTypeId> EventTypeRegistry::Lookup(const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("unknown event type: " + name);
  }
  return it->second;
}

std::string EventTypeRegistry::Name(EventTypeId id) const {
  MutexLock lock(mutex_);
  if (id < names_.size()) return names_[id];
  return "type" + std::to_string(id);
}

size_t EventTypeRegistry::size() const {
  MutexLock lock(mutex_);
  return names_.size();
}

EventTypeRegistry* EventTypeRegistry::Global() {
  static EventTypeRegistry* const kRegistry = new EventTypeRegistry();
  return kRegistry;
}

}  // namespace cep2asp
