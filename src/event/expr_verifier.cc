#include "event/expr_verifier.h"

#include <string>

namespace cep2asp {
namespace {

Status Bad(size_t pc, const std::string& what) {
  return Status::InvalidArgument("expr program insn " + std::to_string(pc) +
                                 ": " + what);
}

bool ValidAttr(uint8_t attr) {
  return attr <= static_cast<uint8_t>(Attribute::kAuxTs);
}

bool ValidCmp(uint8_t cmp) { return cmp <= static_cast<uint8_t>(CmpOp::kNe); }

}  // namespace

Status ExprVerifier::Verify(const ExprProgram& program, size_t max_events) {
  if (!program.ok()) {
    return Status::InvalidArgument("expr program: compilation failed (ok()==false)");
  }
  const std::vector<ExprInsn>& code = program.code();
  if (code.empty()) return Status::OK();  // empty program == accept-all
  if (max_events == 0) {
    return Status::InvalidArgument("expr program: schema capacity is zero");
  }

  const size_t consts = program.const_pool().size();
  const size_t keys = program.key_pool().size();
  size_t depth = 0;      // abstract evaluation stack depth
  bool halted = false;   // a kHalt has been seen

  for (size_t pc = 0; pc < code.size(); ++pc) {
    const ExprInsn& insn = code[pc];
    if (halted) {
      return Bad(pc, "instruction after kHalt (unreachable code)");
    }
    if (static_cast<uint8_t>(insn.op) >
        static_cast<uint8_t>(ExprOp::kCmpAttrAttrOffFail)) {
      return Bad(pc, "undefined opcode " +
                         std::to_string(static_cast<int>(insn.op)));
    }
    switch (insn.op) {
      case ExprOp::kLoadAttr:
        if (insn.a >= max_events) return Bad(pc, "event operand out of range");
        if (!ValidAttr(insn.b)) return Bad(pc, "invalid attribute slot");
        if (depth >= kMaxStack) return Bad(pc, "stack overflow");
        ++depth;
        break;
      case ExprOp::kLoadConst:
        if (insn.imm >= consts) return Bad(pc, "const-pool index out of range");
        if (depth >= kMaxStack) return Bad(pc, "stack overflow");
        ++depth;
        break;
      case ExprOp::kAddOffset:
        if (insn.imm >= consts) return Bad(pc, "const-pool index out of range");
        if (depth == 0) return Bad(pc, "stack underflow");
        break;
      case ExprOp::kCmp:
        if (!ValidCmp(insn.a)) return Bad(pc, "invalid comparator");
        if (depth < 2) return Bad(pc, "stack underflow");
        --depth;  // pop 2, push 1
        break;
      case ExprOp::kAndFail:
        if (depth == 0) return Bad(pc, "stack underflow");
        --depth;
        break;
      case ExprOp::kStoreKeyAttr:
        if (insn.a >= max_events) return Bad(pc, "event operand out of range");
        if (!ValidAttr(insn.b)) return Bad(pc, "invalid attribute slot");
        break;
      case ExprOp::kStoreKeyConst:
        if (insn.imm >= keys) return Bad(pc, "key-pool index out of range");
        break;
      case ExprOp::kHalt:
        if (depth != 0) {
          return Bad(pc, "non-empty stack at kHalt (dropped value)");
        }
        halted = true;
        break;
      case ExprOp::kCmpAttrConstFail:
        if (insn.a >= max_events) return Bad(pc, "event operand out of range");
        if (!ValidAttr(insn.b)) return Bad(pc, "invalid attribute slot");
        if (!ValidCmp(insn.c)) return Bad(pc, "invalid comparator");
        if (insn.imm >= consts) return Bad(pc, "const-pool index out of range");
        break;
      case ExprOp::kCmpAttrAttrFail:
        if (insn.a >= max_events || insn.d >= max_events) {
          return Bad(pc, "event operand out of range");
        }
        if (!ValidAttr(insn.b) || !ValidAttr(insn.e)) {
          return Bad(pc, "invalid attribute slot");
        }
        if (!ValidCmp(insn.c)) return Bad(pc, "invalid comparator");
        break;
      case ExprOp::kCmpAttrAttrOffFail:
        if (insn.a >= max_events || insn.d >= max_events) {
          return Bad(pc, "event operand out of range");
        }
        if (!ValidAttr(insn.b) || !ValidAttr(insn.e)) {
          return Bad(pc, "invalid attribute slot");
        }
        if (!ValidCmp(insn.c)) return Bad(pc, "invalid comparator");
        if (insn.imm >= consts) return Bad(pc, "const-pool index out of range");
        break;
    }
  }
  if (!halted) {
    return Status::InvalidArgument(
        "expr program: falls through past the last instruction (no kHalt)");
  }
  return Status::OK();
}

Status ExprVerifier::VerifyColumnar(const ExprProgram& program,
                                    size_t max_events) {
  Status base = Verify(program, max_events);
  if (!base.ok()) return base;
  const std::vector<ExprInsn>& code = program.code();
  for (size_t pc = 0; pc < code.size(); ++pc) {
    switch (code[pc].op) {
      case ExprOp::kCmpAttrConstFail:
      case ExprOp::kCmpAttrAttrFail:
      case ExprOp::kCmpAttrAttrOffFail:
      case ExprOp::kStoreKeyAttr:
      case ExprOp::kStoreKeyConst:
      case ExprOp::kHalt:
        break;
      default:
        return Bad(pc, "stack-form opcode is not columnar-executable");
    }
  }
  return Status::OK();
}

}  // namespace cep2asp
