#ifndef CEP2ASP_EVENT_EXPR_VERIFIER_H_
#define CEP2ASP_EVENT_EXPR_VERIFIER_H_

#include <cstddef>

#include "common/status.h"
#include "event/expr_program.h"

namespace cep2asp {

/// \brief Static well-formedness checker for ExprProgram bytecode.
///
/// The interpreter trusts its input: operands index pools and the event
/// array without bounds checks in release builds, and the dispatch table
/// is indexed by the raw opcode byte. Verify() proves the properties the
/// executors rely on, so a malformed encoding (a bug in the emitter, a
/// corrupted serialized program, a hand-assembled test program) is
/// rejected before it can read out of bounds:
///
///  - every opcode is a defined ExprOp enumerator;
///  - the program is empty or ends in kHalt, and no instruction follows
///    the first kHalt (straight-line code has exactly one fall-through
///    exit — anything after it would be unreachable or, worse, reachable
///    through a decoder bug);
///  - event operands are < `max_events` (the declared schema capacity),
///    Attribute operands are valid slots, CmpOp operands are valid
///    comparators, and pool indices are within the respective pool;
///  - the abstract evaluation stack never underflows, never exceeds the
///    interpreter's fixed kMaxStack, and is exactly empty at kHalt
///    (a non-empty stack at halt means a comparison result was computed
///    and silently dropped — always an emitter bug).
///
/// Both encodings are covered: fused term opcodes are stack-neutral,
/// stack-form opcodes are modeled push/pop exactly as the interpreter
/// executes them. Straight-line code means a single linear pass verifies
/// all paths (the only branch — kAndFail / fused-fail exits — leaves the
/// program, so every instruction has exactly one in-program successor).
class ExprVerifier {
 public:
  /// Interpreter stack capacity the verifier checks against; mirrors the
  /// constant in expr_program.cc.
  static constexpr size_t kMaxStack = 8;

  /// Verifies `program` against a schema of `max_events` events per tuple.
  /// Translator-emitted programs run in VarMode::kBroadcast where every
  /// operand was already resolved to event 0, so they verify with
  /// `max_events == 1`; positional programs pass the pattern arity.
  /// Returns OK or an InvalidArgument naming the offending instruction.
  static Status Verify(const ExprProgram& program, size_t max_events);

  /// Verifies `program` for the columnar execution mode (RunColumnar
  /// against an ExprColumnarView of `max_events` event slots): everything
  /// Verify checks, plus every opcode must have a columnar kernel —
  /// stack-form instructions are rejected by name. The shared operand
  /// bounds double as column bounds: an event operand < max_events and an
  /// attribute slot <= kAuxTs together bound the column index
  /// `event * kNumEventAttrs + attr` below the view's
  /// `max_events * kNumEventAttrs` columns, and RunColumnar's mask is
  /// always written for exactly `count` rows (its width invariant needs
  /// no per-instruction check because fused terms never index the mask
  /// beyond the row loop).
  static Status VerifyColumnar(const ExprProgram& program, size_t max_events);
};

}  // namespace cep2asp

#endif  // CEP2ASP_EVENT_EXPR_VERIFIER_H_
