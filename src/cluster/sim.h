#ifndef CEP2ASP_CLUSTER_SIM_H_
#define CEP2ASP_CLUSTER_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/clock.h"

namespace cep2asp {

/// \brief The execution approach a simulated job uses (paper §5.2.3–5.2.5).
enum class SimApproach : uint8_t {
  kFcep,          // unary NFA operator, keyed
  kFaspSliding,   // decomposed joins, sliding windows (FASP-O3)
  kFaspInterval,  // decomposed joins, interval windows (FASP-O1+O3)
  kFaspAggregate, // O2 aggregation (FASP-O2+O3, iterations only)
};

const char* SimApproachToString(SimApproach approach);

/// \brief Abstract description of a pattern workload for the simulator.
///
/// Mirrors the Figure 4/6 experiments: n event types (or n iterations of
/// one type), per-stream rates, pushed-down filter selectivity, window,
/// and key partitioning by sensor id.
struct SimJobSpec {
  SimApproach approach = SimApproach::kFaspSliding;
  /// Number of match positions (SEQ length n or ITER count m).
  int pattern_length = 2;
  /// Distinct input streams unioned by FCEP / scanned by FASP. For
  /// iterations this is 1 (self joins re-read the same stream).
  int num_streams = 2;
  /// Fraction of each stream surviving its pushed-down filter.
  double filter_selectivity = 0.1;
  /// Join/transition predicate selectivity between adjacent positions
  /// (drives partial-match survival and intermediate result rates).
  double step_selectivity = 0.05;
  Timestamp window_ms = 15 * kMillisPerMinute;
  Timestamp slide_ms = kMillisPerMinute;
  int num_keys = 16;
};

/// \brief Simulated cluster resources (paper §5.1.1: nodes with 16 task
/// slots and large main memory each).
struct ClusterSpec {
  int num_workers = 1;
  int slots_per_worker = 16;
  double memory_per_worker_bytes = 200.0 * 1024 * 1024 * 1024;

  int total_slots() const { return num_workers * slots_per_worker; }
};

/// One sample of the simulated resource timeline (Figure 5).
struct SimSample {
  double time_seconds = 0;
  double memory_bytes = 0;   // total job state across workers
  double cpu_fraction = 0;   // busiest-worker CPU utilization [0,1]
};

/// \brief Outcome of simulating a job at a fixed offered ingestion rate.
struct SimResult {
  bool failed = false;           // simulated memory exhaustion
  std::string failure_reason;
  bool backpressured = false;    // offered rate above CPU capacity
  double achieved_tps = 0;       // sustained tuples/second (all streams)
  double peak_memory_bytes = 0;
  double steady_cpu_fraction = 0;
  std::vector<SimSample> timeline;
};

/// \brief Discrete-time simulator of distributed execution.
///
/// Substitutes the paper's five-node Flink cluster (unavailable here; the
/// build machine has a single core, so real thread scale-out cannot show
/// speedup). The simulator models exactly the mechanisms the paper
/// attributes its Figure 4–6 results to:
///
///  * slot-limited key parallelism: keys are hashed onto
///    min(num_keys, total_slots) subtasks; the most loaded subtask bounds
///    throughput, so imbalance at key counts near the slot count costs
///    capacity while many keys smooth it out;
///  * per-approach operator costs from the calibrated CostProfile:
///    sliding joins recompute overlapping windows (× W/slide), interval
///    joins evaluate each pair once, the NFA pays per live run per event;
///  * state: window buffers are evicted at the window horizon, while the
///    NFA's partial matches grow with rate × window × branching — the
///    memory-exhaustion failure mode of FCEP (§5.2.3);
///  * managed-runtime overhead: CPU lost to memory reclamation grows with
///    heap occupancy (GC stalls, §5.2.4).
class ClusterSimulator {
 public:
  ClusterSimulator(ClusterSpec cluster, CostProfile costs)
      : cluster_(cluster), costs_(costs) {}

  /// Simulates `duration_seconds` of execution at `offered_tps` total
  /// ingestion (across all streams), sampling every `sample_seconds`.
  SimResult Run(const SimJobSpec& job, double offered_tps,
                double duration_seconds = 120.0,
                double sample_seconds = 5.0) const;

  /// Maximum sustainable throughput: largest offered rate that neither
  /// backpressures nor fails, found by bisection (paper §5.1.3 metric).
  double FindMaxSustainableTps(const SimJobSpec& job, double upper_bound_tps,
                               double tolerance = 0.01) const;

  const ClusterSpec& cluster() const { return cluster_; }

 private:
  struct LoadModel;

  /// Derives steady-state per-subtask CPU and memory demands.
  LoadModel BuildLoadModel(const SimJobSpec& job, double offered_tps) const;

  ClusterSpec cluster_;
  CostProfile costs_;
};

}  // namespace cep2asp

#endif  // CEP2ASP_CLUSTER_SIM_H_
