#ifndef CEP2ASP_CLUSTER_COST_MODEL_H_
#define CEP2ASP_CLUSTER_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace cep2asp {

/// \brief Per-operation cost constants of the execution engines, in
/// nanoseconds (CPU) and bytes (state).
///
/// The cluster simulator is calibrated against the *real* single-threaded
/// engine of this repository (see calibration.h), so its absolute numbers
/// inherit this machine's speed while the *relative* behaviour across
/// approaches follows the modeled mechanisms. Defaults below are the
/// constants measured on the development machine; call Calibrate() to
/// refit them locally.
struct CostProfile {
  // --- ASP engine -----------------------------------------------------------
  /// Handling one tuple in a stateless operator (source/filter/map/union).
  double stateless_ns = 60;
  /// Inserting one tuple into a windowed operator's buffer (incl. later
  /// eviction bookkeeping).
  double buffer_insert_ns = 110;
  /// Evaluating one candidate (left, right) pair in a join, including the
  /// concat + predicate evaluation.
  double join_pair_ns = 55;
  /// Re-visiting an already-emitted pair in a later overlapping window
  /// (intermediate joins skip concat/predicate for repeats; only the scan
  /// iteration remains).
  double join_pair_repeat_ns = 8;
  /// Touching one event during a window aggregation scan.
  double aggregate_event_ns = 8;
  /// Retained bytes per buffered tuple in window state.
  double tuple_state_bytes = 96;

  // --- CEP engine (order-based NFA) ------------------------------------------
  /// Fixed per-event work of the unary CEP operator (ordering buffer,
  /// negation buffers, run-list traversal overhead).
  double cep_event_ns = 90;
  /// Checking/extending one live run against one event.
  double cep_run_check_ns = 28;
  /// Retained bytes per live partial match (run).
  double run_state_bytes = 160;

  // --- Cluster environment -----------------------------------------------------
  /// Serialization + network hand-off per tuple crossing a shuffle edge.
  double shuffle_ns = 250;
  /// Managed-runtime overhead: extra CPU fraction spent reclaiming memory,
  /// as a function of node heap occupancy (the paper's garbage-collection
  /// stalls, §5.2.4). Modeled as gc_factor * occupancy^2.
  double gc_factor = 0.9;

  // --- Modeling the paper's substrate -------------------------------------------
  /// FlinkCEP's NFA bookkeeping (state-backend access, shared-buffer
  /// versioning, per-run object churn on the JVM) costs an order of
  /// magnitude more per run than this repository's lean C++ NFA. The
  /// simulator scales the cep_* constants by this factor so the modeled
  /// FCEP matches the system the paper measured rather than our engine.
  double flink_cep_overhead = 25.0;
  /// Short-lived allocation garbage per processed event awaiting
  /// reclamation; with `reclaim_lag_seconds` this makes heap pressure grow
  /// with the ingestion rate — FCEP's failure mode beyond ~1.3M tpl/s
  /// (§5.2.3). The NFA churns far more per event than the join pipeline.
  double fcep_garbage_bytes_per_event = 2500;
  double fasp_garbage_bytes_per_event = 150;
  double reclaim_lag_seconds = 60;

  std::string ToString() const;
};

}  // namespace cep2asp

#endif  // CEP2ASP_CLUSTER_COST_MODEL_H_
