#ifndef CEP2ASP_CLUSTER_CALIBRATION_H_
#define CEP2ASP_CLUSTER_CALIBRATION_H_

#include "cluster/cost_model.h"

namespace cep2asp {

/// \brief Fits the CostProfile constants by running micro-workloads on the
/// real single-threaded engine of this repository.
///
/// The cluster simulator then extrapolates distributed behaviour from
/// costs this machine actually exhibits, rather than from guessed
/// constants. Takes a few hundred milliseconds.
CostProfile CalibrateCostProfile();

}  // namespace cep2asp

#endif  // CEP2ASP_CLUSTER_CALIBRATION_H_
