#include "cluster/sim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/logging.h"

namespace cep2asp {

const char* SimApproachToString(SimApproach approach) {
  switch (approach) {
    case SimApproach::kFcep:
      return "FCEP";
    case SimApproach::kFaspSliding:
      return "FASP-O3";
    case SimApproach::kFaspInterval:
      return "FASP-O1+O3";
    case SimApproach::kFaspAggregate:
      return "FASP-O2+O3";
  }
  return "?";
}

std::string CostProfile::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "stateless=%.0fns insert=%.0fns pair=%.0fns agg=%.0fns "
                "cep_event=%.0fns run_check=%.0fns shuffle=%.0fns",
                stateless_ns, buffer_insert_ns, join_pair_ns,
                aggregate_event_ns, cep_event_ns, cep_run_check_ns, shuffle_ns);
  return buf;
}

namespace {

/// Deterministic 64-bit mix for hashing keys onto subtasks.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

/// Steady-state demand derived from the workload's *event-time*
/// characteristics: sensors report once per minute per stream, so window
/// contents (and thus state and per-event work) are fixed by W and the
/// filter selectivity, independent of how fast the data is replayed. The
/// processing (ingestion) rate only scales how many events per wall-clock
/// second each subtask must push through that per-event cost — and how
/// fast allocation garbage accrues.
struct ClusterSimulator::LoadModel {
  double cost_ns_per_event = 0;   // CPU work per raw ingested event
  double state_bytes_per_key = 0; // steady window/run state of one key
  double garbage_bytes_per_event = 0;
  int parallelism = 1;
  std::vector<int> keys_per_subtask;
  bool fcep_like = false;
};

ClusterSimulator::LoadModel ClusterSimulator::BuildLoadModel(
    const SimJobSpec& job, double /*offered_tps*/) const {
  LoadModel model;
  const double window_min =
      static_cast<double>(job.window_ms) / kMillisPerMinute;
  const double slide_min =
      std::max(1.0, static_cast<double>(job.slide_ms) / kMillisPerMinute);
  // Each key contributes one reading per minute per stream (QnV/AQ-style
  // minute sampling); q = relevant (post-filter) readings/min/key/stream.
  const double q = job.filter_selectivity;
  // Relevant events of one stream side alive in a window, per key.
  const double content = q * window_min;
  // Raw events per event-time minute per key (all streams).
  const double raw_per_min = static_cast<double>(job.num_streams);

  const int n = std::max(2, job.pattern_length);
  double cost_per_min = 0;  // ns of work per event-time minute per key
  double state = 0;         // bytes per key

  switch (job.approach) {
    case SimApproach::kFcep: {
      // Live runs per key: relevant stage-1 events in the window, plus
      // branches per further stage (skip-till-any-match).
      double partials = content;
      double live_runs = partials;
      for (int s = 2; s < n; ++s) {
        partials *= std::max(0.0, content * job.step_selectivity);
        live_runs += partials;
      }
      const double event_ns = costs_.cep_event_ns * costs_.flink_cep_overhead;
      const double run_ns = costs_.cep_run_check_ns * costs_.flink_cep_overhead;
      cost_per_min = raw_per_min * (event_ns + live_runs * run_ns);
      state = live_runs * costs_.run_state_bytes * costs_.flink_cep_overhead +
              raw_per_min * window_min * costs_.tuple_state_bytes;
      model.garbage_bytes_per_event = costs_.fcep_garbage_bytes_per_event;
      model.fcep_like = true;
      break;
    }
    case SimApproach::kFaspSliding:
    case SimApproach::kFaspInterval: {
      const bool sliding = job.approach == SimApproach::kFaspSliding;
      // Left-deep chain; intermediate logical match rate per minute.
      double left_rate = q;  // matches/min entering as the left side
      for (int j = 1; j < n; ++j) {
        double left_content = left_rate * window_min;
        // Fresh pairs appear once (full concat + predicate cost); sliding
        // windows additionally re-visit every co-resident pair on each of
        // the W/slide overlapping fires, at scan-iteration cost only
        // (intermediate joins skip re-emission of known pairs).
        double fresh_pairs_per_min = left_rate * content + q * left_content;
        double revisit_pairs_per_min =
            sliding ? std::max(0.0, (left_content * content) / slide_min -
                                        fresh_pairs_per_min)
                    : 0.0;
        cost_per_min += (left_rate + q) * costs_.buffer_insert_ns +
                        fresh_pairs_per_min * costs_.join_pair_ns +
                        revisit_pairs_per_min * costs_.join_pair_repeat_ns;
        state += (left_content + content) * costs_.tuple_state_bytes;
        left_rate = left_rate * content * job.step_selectivity;
      }
      cost_per_min += raw_per_min * costs_.stateless_ns;
      model.garbage_bytes_per_event = costs_.fasp_garbage_bytes_per_event;
      break;
    }
    case SimApproach::kFaspAggregate: {
      // One window scan (`content` events) per slide tick, on top of the
      // stateless chain and buffer maintenance.
      cost_per_min = raw_per_min * costs_.stateless_ns +
                     q * costs_.buffer_insert_ns +
                     (content / slide_min) * costs_.aggregate_event_ns;
      state = content * costs_.tuple_state_bytes;
      model.garbage_bytes_per_event = costs_.fasp_garbage_bytes_per_event * 0.5;
      break;
    }
  }

  cost_per_min += raw_per_min * costs_.shuffle_ns;

  model.cost_ns_per_event = cost_per_min / std::max(1.0, raw_per_min);
  model.state_bytes_per_key = state;
  model.parallelism = std::min(job.num_keys, cluster_.total_slots());
  model.keys_per_subtask.assign(static_cast<size_t>(model.parallelism), 0);
  for (int key = 0; key < job.num_keys; ++key) {
    size_t subtask = static_cast<size_t>(
        Mix(static_cast<uint64_t>(key)) %
        static_cast<uint64_t>(model.parallelism));
    model.keys_per_subtask[subtask]++;
  }
  return model;
}

SimResult ClusterSimulator::Run(const SimJobSpec& job, double offered_tps,
                                double duration_seconds,
                                double sample_seconds) const {
  SimResult result;
  LoadModel model = BuildLoadModel(job, offered_tps);

  int max_keys_on_subtask = 0;
  for (int keys : model.keys_per_subtask) {
    max_keys_on_subtask = std::max(max_keys_on_subtask, keys);
  }

  // Window/run state, spread across workers by subtask placement.
  std::vector<double> worker_state(static_cast<size_t>(cluster_.num_workers), 0);
  for (int s = 0; s < model.parallelism; ++s) {
    int worker = s % cluster_.num_workers;
    worker_state[static_cast<size_t>(worker)] +=
        model.keys_per_subtask[static_cast<size_t>(s)] *
        model.state_bytes_per_key;
  }

  // Heap pressure from allocation churn grows with the per-worker
  // ingestion share.
  const double per_worker_tps = offered_tps / cluster_.num_workers;
  const double garbage_bytes =
      per_worker_tps * model.garbage_bytes_per_event * costs_.reclaim_lag_seconds;

  const double window_s = static_cast<double>(job.window_ms) / 1000.0;

  // The busiest subtask bounds sustained progress (one slot, one core):
  // it must process its key share of the offered rate.
  const double subtask_share =
      static_cast<double>(max_keys_on_subtask) / std::max(1, job.num_keys);
  const double base_util =
      offered_tps * subtask_share * model.cost_ns_per_event * 1e-9;

  double peak_memory = 0;
  for (double t = 0; t <= duration_seconds; t += sample_seconds) {
    double ramp = window_s > 0 ? std::min(1.0, t / window_s) : 1.0;
    // The NFA accretes outdated partial matches reclaimed lazily (§5.2.4):
    // slow linear creep on top of the steady state.
    double creep = model.fcep_like ? 1.0 + 0.15 * (t / 600.0) : 1.0;

    double max_worker_mem = 0;
    double total_mem = 0;
    for (double base : worker_state) {
      // FCEP's creep also applies to its reclamation backlog: outdated
      // partial matches keep accruing while the job runs (§5.2.4).
      double mem = base * ramp * creep +
                   garbage_bytes * std::min(1.0, ramp * 4) * creep;
      max_worker_mem = std::max(max_worker_mem, mem);
      total_mem += mem;
    }
    peak_memory = std::max(peak_memory, total_mem);

    double occupancy =
        std::min(1.0, max_worker_mem / cluster_.memory_per_worker_bytes);
    double gc_mult = 1.0 + costs_.gc_factor * occupancy * occupancy;
    double util = base_util * ramp * gc_mult;

    SimSample sample;
    sample.time_seconds = t;
    sample.memory_bytes = total_mem;
    sample.cpu_fraction = std::min(1.0, util);
    result.timeline.push_back(sample);

    if (max_worker_mem > cluster_.memory_per_worker_bytes) {
      result.failed = true;
      result.failure_reason = "worker memory exhausted";
      result.achieved_tps = 0;
      result.peak_memory_bytes = peak_memory;
      return result;
    }
    if (util > 1.0) result.backpressured = true;
    result.steady_cpu_fraction = std::min(1.0, util);
  }

  result.peak_memory_bytes = peak_memory;
  if (result.backpressured) {
    double occupancy = std::min(
        1.0, (peak_memory / cluster_.num_workers) /
                 cluster_.memory_per_worker_bytes);
    double gc_mult = 1.0 + costs_.gc_factor * occupancy * occupancy;
    double capacity_util = base_util * gc_mult;
    result.achieved_tps =
        capacity_util > 0 ? offered_tps / capacity_util : offered_tps;
  } else {
    result.achieved_tps = offered_tps;
  }
  return result;
}

double ClusterSimulator::FindMaxSustainableTps(const SimJobSpec& job,
                                               double upper_bound_tps,
                                               double tolerance) const {
  double lo = 0;
  double hi = upper_bound_tps;
  for (int i = 0; i < 8; ++i) {
    SimResult probe = Run(job, hi, /*duration_seconds=*/1800.0);
    if (probe.failed || probe.backpressured) break;
    lo = hi;
    hi *= 2;
  }
  while (hi - lo > tolerance * hi) {
    double mid = 0.5 * (lo + hi);
    SimResult probe = Run(job, mid, /*duration_seconds=*/1800.0);
    if (probe.failed || probe.backpressured) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

}  // namespace cep2asp
