#include "cluster/calibration.h"

#include <algorithm>
#include <memory>

#include "asp/sliding_window_join.h"
#include "asp/stateless.h"
#include "asp/window_aggregate.h"
#include "cep/cep_operator.h"
#include "common/clock.h"
#include "runtime/executor.h"
#include "runtime/vector_source.h"
#include "sea/pattern.h"

namespace cep2asp {

namespace {

std::vector<SimpleEvent> MakeEvents(EventTypeId type, int count,
                                    Timestamp step_ms) {
  std::vector<SimpleEvent> events;
  events.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    SimpleEvent e;
    e.type = type;
    e.id = 1;
    e.ts = static_cast<Timestamp>(i) * step_ms;
    e.value = static_cast<double>(i % 100);
    events.push_back(e);
  }
  return events;
}

/// Runs the graph and returns elapsed nanoseconds.
double TimeRun(JobGraph* graph, CollectSink* sink) {
  ExecutorOptions options;
  options.watermark_interval = 512;
  options.state_sample_interval = 0;
  SystemClock* clock = SystemClock::Get();
  int64_t begin = clock->NowNanos();
  ExecutionResult result = RunJob(graph, sink, options);
  CEP2ASP_CHECK(result.ok) << result.error;
  return static_cast<double>(clock->NowNanos() - begin);
}

}  // namespace

CostProfile CalibrateCostProfile() {
  CostProfile profile;
  EventTypeRegistry* registry = EventTypeRegistry::Global();
  const EventTypeId ca = registry->RegisterOrGet("CalibA");
  const EventTypeId cb = registry->RegisterOrGet("CalibB");
  const int kN = 200000;

  // --- stateless_ns: source -> filter -> sink -------------------------------
  {
    JobGraph graph;
    NodeId src = graph.AddSource(std::make_unique<VectorSource>(
        "s", MakeEvents(ca, kN, 10)));
    NodeId filter = graph.AddOperatorAfter(
        src, std::make_unique<FilterOperator>(
                 [](const Tuple& t) { return t.event(0).value < 0; }));
    auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(filter, std::move(sink_op));
    profile.stateless_ns = std::max(5.0, TimeRun(&graph, sink) / kN);
  }

  // --- buffer_insert_ns: join whose sides never share a key -----------------
  {
    std::vector<SimpleEvent> left = MakeEvents(ca, kN / 2, 10);
    std::vector<SimpleEvent> right = MakeEvents(cb, kN / 2, 10);
    for (SimpleEvent& e : right) e.id = 2;  // disjoint key: no pairs
    JobGraph graph;
    NodeId l = graph.AddSource(std::make_unique<VectorSource>("l", left));
    NodeId r = graph.AddSource(std::make_unique<VectorSource>("r", right));
    NodeId join = graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
        SlidingWindowSpec{10000, 10000}, Predicate(), TimestampMode::kMax));
    CEP2ASP_CHECK_OK(graph.Connect(l, join, 0));
    CEP2ASP_CHECK_OK(graph.Connect(r, join, 1));
    auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(join, std::move(sink_op));
    profile.buffer_insert_ns =
        std::max(10.0, TimeRun(&graph, sink) / kN - profile.stateless_ns);
  }

  // --- join_pair_ns: dense cross join, pair count dominates -----------------
  {
    const int kSide = 3000;
    std::vector<SimpleEvent> left = MakeEvents(ca, kSide, 10);
    std::vector<SimpleEvent> right = MakeEvents(cb, kSide, 10);
    JobGraph graph;
    NodeId l = graph.AddSource(std::make_unique<VectorSource>("l", left));
    NodeId r = graph.AddSource(std::make_unique<VectorSource>("r", right));
    auto join_op = std::make_unique<SlidingWindowJoinOperator>(
        SlidingWindowSpec{10000, 10000}, Predicate(), TimestampMode::kMax);
    SlidingWindowJoinOperator* join_ptr = join_op.get();
    NodeId join = graph.AddOperator(std::move(join_op));
    CEP2ASP_CHECK_OK(graph.Connect(l, join, 0));
    CEP2ASP_CHECK_OK(graph.Connect(r, join, 1));
    auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(join, std::move(sink_op));
    double elapsed = TimeRun(&graph, sink);
    int64_t pairs = std::max<int64_t>(1, join_ptr->pairs_evaluated());
    profile.join_pair_ns = std::max(
        5.0, (elapsed - 2.0 * kSide * profile.buffer_insert_ns) /
                 static_cast<double>(pairs));
  }

  // --- aggregate_event_ns ----------------------------------------------------
  {
    JobGraph graph;
    NodeId src = graph.AddSource(std::make_unique<VectorSource>(
        "s", MakeEvents(ca, kN, 10)));
    // Sliding windows with 10x overlap: each event scanned ~10 times.
    NodeId agg = graph.AddOperatorAfter(
        src, std::make_unique<WindowAggregateOperator>(
                 SlidingWindowSpec{10000, 1000}, AggregateFn::kCount,
                 Attribute::kValue));
    auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(agg, std::move(sink_op));
    double per_scan_events = 10.0;  // overlap factor
    profile.aggregate_event_ns = std::max(
        1.0, (TimeRun(&graph, sink) / kN - profile.buffer_insert_ns) /
                 per_scan_events);
  }

  // --- cep_event_ns: CEP with a never-starting pattern ------------------------
  Pattern seq = PatternBuilder()
                    .Seq(PatternBuilder::Atom(cb, "e1"),
                         PatternBuilder::Atom(cb, "e2"))
                    .Within(10 * kMillisPerMinute)
                    .Build()
                    .ValueOrDie();
  {
    JobGraph graph;
    NodeId src = graph.AddSource(std::make_unique<VectorSource>(
        "s", MakeEvents(ca, kN, 10)));  // wrong type: zero runs
    NodeId cep = graph.AddOperatorAfter(
        src, CepOperator::FromPattern(seq).ValueOrDie());
    auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(cep, std::move(sink_op));
    profile.cep_event_ns = std::max(10.0, TimeRun(&graph, sink) / kN);
  }

  // --- cep_run_check_ns: run-heavy CEP ---------------------------------------
  {
    const int kEvents = 4000;
    JobGraph graph;
    // All events are of the accepting type with a wide window: the run
    // list grows linearly, so total checks ~ kEvents^2 / 2.
    NodeId src = graph.AddSource(std::make_unique<VectorSource>(
        "s", MakeEvents(cb, kEvents, 1)));
    Pattern blocked = PatternBuilder()
                          .Seq(PatternBuilder::Atom(cb, "e1"),
                               PatternBuilder::Atom(ca, "e2"))
                          .Within(60 * kMillisPerMinute)
                          .Build()
                          .ValueOrDie();
    NodeId cep = graph.AddOperatorAfter(
        src, CepOperator::FromPattern(blocked).ValueOrDie());
    auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(cep, std::move(sink_op));
    double elapsed = TimeRun(&graph, sink);
    double checks = 0.5 * static_cast<double>(kEvents) * kEvents;
    profile.cep_run_check_ns =
        std::max(2.0, (elapsed - kEvents * profile.cep_event_ns) / checks);
  }

  return profile;
}

}  // namespace cep2asp
