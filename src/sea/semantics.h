#ifndef CEP2ASP_SEA_SEMANTICS_H_
#define CEP2ASP_SEA_SEMANTICS_H_

#include <cstdint>
#include <vector>

#include "sea/pattern.h"

namespace cep2asp::sea {

/// \brief Brute-force reference implementation of the SEA operator
/// semantics (paper Eqs. 9–14) on one finite substream.
///
/// Intended as the correctness oracle for the engines, not for
/// performance: enumeration is exponential in pattern arity.
///
/// Semantics per node:
///  * atom: events of the type passing the filter (Eq. 3);
///  * AND: set product of children (Eq. 9);
///  * SEQ: product with temporal order between adjacent children —
///    every event of child i precedes every event of child i+1,
///    degenerating to e_i.ts < e_{i+1}.ts for atoms (Eq. 10);
///  * OR: union of single events (Eq. 11);
///  * ITER^m: strictly ts-increasing m-tuples of one type (Eq. 12), with
///    the optional constraint between consecutive events;
///  * NSEQ: pairs (e1, e3) with e1.ts < e3.ts and no qualifying T2 event
///    strictly inside (e1.ts, e3.ts) (Eq. 14).
///
/// Cross-variable predicates are applied to complete matches. Events of
/// the substream need not be sorted.
std::vector<Tuple> EvaluateOnSubstream(const Pattern& pattern,
                                       const std::vector<SimpleEvent>& events);

/// \brief Result of evaluating a pattern over a whole stream with
/// explicit sliding windows (paper Eqs. 4–5).
struct WindowedEvaluation {
  /// Distinct matches (duplicates across overlapping windows removed, per
  /// the semantic-equivalence definition of §4).
  std::vector<Tuple> matches;
  /// Total emissions including duplicates from overlapping windows.
  int64_t emissions_with_duplicates = 0;
  /// Number of non-empty windows evaluated.
  int64_t windows_evaluated = 0;
};

/// Discretizes the stream into sliding substreams (size = pattern window,
/// slide = pattern slide), evaluates each via EvaluateOnSubstream, and
/// deduplicates by match identity.
WindowedEvaluation EvaluateWithWindows(const Pattern& pattern,
                                       const std::vector<SimpleEvent>& stream);

/// Deduplicates tuples by ordered match identity, preserving first
/// occurrence order.
std::vector<Tuple> Deduplicate(const std::vector<Tuple>& tuples);

}  // namespace cep2asp::sea

#endif  // CEP2ASP_SEA_SEMANTICS_H_
