#include "sea/parser.h"

#include <cctype>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace cep2asp::sea {

namespace {

enum class TokenKind : uint8_t {
  kIdent,
  kNumber,
  kSymbol,  // ( ) , . ! + *
  kCompare, // < <= > >= == = !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token token;
      token.offset = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_')) {
          ++i;
        }
        token.kind = TokenKind::kIdent;
        token.text = text_.substr(start, i - start);
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && i + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        size_t start = i;
        if (c == '-') ++i;
        while (i < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '.')) {
          ++i;
        }
        token.kind = TokenKind::kNumber;
        token.text = text_.substr(start, i - start);
        if (!ParseDouble(token.text, &token.number)) {
          return Status::ParseError("bad number '" + token.text + "'");
        }
      } else if (c == '<' || c == '>' || c == '=' || c == '!') {
        size_t start = i;
        ++i;
        if (i < text_.size() && text_[i] == '=') ++i;
        token.text = text_.substr(start, i - start);
        if (token.text == "!") {
          token.kind = TokenKind::kSymbol;
        } else {
          token.kind = TokenKind::kCompare;
          if (token.text == "=") token.text = "==";
        }
      } else if (c == '(' || c == ')' || c == ',' || c == '.' || c == '+' ||
                 c == '*') {
        token.kind = TokenKind::kSymbol;
        token.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError("unexpected character '" + std::string(1, c) +
                                  "' at offset " + std::to_string(i));
      }
      out->push_back(std::move(token));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.offset = text_.size();
    out->push_back(end);
    return Status::OK();
  }

 private:
  const std::string& text_;
};

/// Variable binding info collected while parsing the structure.
struct VarInfo {
  int position = -1;       // first match position; -1 for negated vars
  bool is_iteration = false;
  bool is_negated = false;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, EventTypeRegistry* registry)
      : tokens_(std::move(tokens)), registry_(registry) {}

  Result<Pattern> Parse() {
    CEP2ASP_RETURN_IF_ERROR(ExpectKeyword("PATTERN"));
    auto root_result = ParseStructure();
    if (!root_result.ok()) return root_result.status();
    std::unique_ptr<PatternNode> root = std::move(root_result).ValueOrDie();
    AssignPositions(*root, nullptr);

    std::vector<RawComparison> raw_comparisons;
    if (PeekKeyword("WHERE")) {
      Advance();
      CEP2ASP_RETURN_IF_ERROR(ParsePredicates(&raw_comparisons));
    }
    CEP2ASP_RETURN_IF_ERROR(ExpectKeyword("WITHIN"));
    auto window_result = ParseDuration();
    if (!window_result.ok()) return window_result.status();
    Timestamp window = *window_result;

    Timestamp slide = kMillisPerMinute;
    if (PeekKeyword("SLIDE")) {
      Advance();
      auto slide_result = ParseDuration();
      if (!slide_result.ok()) return slide_result.status();
      slide = *slide_result;
    }
    if (slide > window) slide = window;
    if (PeekKeyword("RETURN")) {
      Advance();
      if (Peek().kind == TokenKind::kSymbol && Peek().text == "*") Advance();
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(Peek().offset));
    }

    // Distribute WHERE comparisons: single-variable terms become atom
    // filters (pushed down); cross-variable terms become the pattern's
    // cross predicates over match positions.
    Predicate cross;
    for (const RawComparison& raw : raw_comparisons) {
      Status st = PlaceComparison(raw, *root, &cross);
      if (!st.ok()) return st;
    }

    PatternBuilder builder;
    builder.Root(std::move(root));
    builder.Within(window);
    builder.SlideBy(slide);
    for (const Comparison& c : cross.terms()) builder.Where(c);
    return builder.Build();
  }

 private:
  struct RawOperand {
    bool is_attr = false;
    std::string var;
    Attribute attr = Attribute::kValue;
    double number = 0;
  };
  struct RawComparison {
    RawOperand lhs;
    CmpOp op = CmpOp::kLt;
    RawOperand rhs;
    size_t offset = 0;
  };

  const Token& Peek(size_t ahead = 0) const {
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool PeekKeyword(const std::string& keyword) const {
    return Peek().kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek().text, keyword);
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!PeekKeyword(keyword)) {
      return Status::ParseError("expected '" + keyword + "' at offset " +
                                std::to_string(Peek().offset) + ", found '" +
                                Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const std::string& symbol) {
    if (Peek().kind != TokenKind::kSymbol || Peek().text != symbol) {
      return Status::ParseError("expected '" + symbol + "' at offset " +
                                std::to_string(Peek().offset));
    }
    Advance();
    return Status::OK();
  }

  Result<PatternAtom> ParseAtom() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::ParseError("expected event type name at offset " +
                                std::to_string(Peek().offset));
    }
    std::string type_name = Peek().text;
    Advance();
    auto type_result = registry_->Lookup(type_name);
    if (!type_result.ok()) {
      return Status::ParseError("unknown event type '" + type_name + "'");
    }
    PatternAtom atom;
    atom.type = *type_result;
    if (Peek().kind == TokenKind::kIdent && !IsStructureKeyword(Peek().text)) {
      atom.variable = Peek().text;
      Advance();
    } else {
      atom.variable = "v" + std::to_string(anon_counter_++);
    }
    if (vars_.count(atom.variable) > 0) {
      return Status::ParseError("duplicate variable '" + atom.variable + "'");
    }
    vars_[atom.variable] = VarInfo{};
    return atom;
  }

  static bool IsStructureKeyword(const std::string& text) {
    return EqualsIgnoreCase(text, "SEQ") || EqualsIgnoreCase(text, "AND") ||
           EqualsIgnoreCase(text, "OR") || EqualsIgnoreCase(text, "NSEQ") ||
           EqualsIgnoreCase(text, "ITER") || EqualsIgnoreCase(text, "WHERE") ||
           EqualsIgnoreCase(text, "WITHIN") || EqualsIgnoreCase(text, "SLIDE") ||
           EqualsIgnoreCase(text, "RETURN");
  }

  Result<std::unique_ptr<PatternNode>> ParseStructure() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::ParseError("expected pattern structure at offset " +
                                std::to_string(Peek().offset));
    }
    const std::string head = ToUpper(Peek().text);
    if (head == "SEQ" || head == "AND" || head == "OR") {
      Advance();
      return ParseNary(head);
    }
    if (head == "NSEQ") {
      Advance();
      return ParseNseq();
    }
    if (StartsWith(head, "ITER")) {
      return ParseIter();
    }
    // Bare atom.
    auto atom_result = ParseAtom();
    if (!atom_result.ok()) return atom_result.status();
    auto node = std::make_unique<PatternNode>();
    node->op = PatternOp::kAtom;
    node->atom = std::move(*atom_result);
    return node;
  }

  Result<std::unique_ptr<PatternNode>> ParseNary(const std::string& head) {
    CEP2ASP_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::unique_ptr<PatternNode>> children;
    std::vector<bool> negated;
    while (true) {
      bool neg = false;
      if (Peek().kind == TokenKind::kSymbol && Peek().text == "!") {
        if (head != "SEQ") {
          return Status::ParseError("negation only allowed inside SEQ");
        }
        neg = true;
        Advance();
      }
      if (neg) {
        auto atom_result = ParseAtom();
        if (!atom_result.ok()) return atom_result.status();
        auto node = std::make_unique<PatternNode>();
        node->op = PatternOp::kAtom;
        node->atom = std::move(*atom_result);
        children.push_back(std::move(node));
      } else {
        auto child_result = ParseStructure();
        if (!child_result.ok()) return child_result.status();
        children.push_back(std::move(child_result).ValueOrDie());
      }
      negated.push_back(neg);
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    CEP2ASP_RETURN_IF_ERROR(ExpectSymbol(")"));

    // SEQ(T1 a, !T2 b, T3 c) normalizes to NSEQ.
    size_t neg_count = 0;
    for (bool n : negated) neg_count += n ? 1 : 0;
    if (neg_count > 0) {
      if (head != "SEQ" || children.size() != 3 || !negated[1] || negated[0] ||
          negated[2]) {
        return Status::ParseError(
            "negation is only supported as the middle element of a ternary "
            "SEQ (negated sequence, paper Eq. 14)");
      }
      for (const auto& child : children) {
        if (child->op != PatternOp::kAtom) {
          return Status::ParseError("NSEQ elements must be atoms");
        }
      }
      auto node = std::make_unique<PatternNode>();
      node->op = PatternOp::kNseq;
      node->nseq_atoms = {children[0]->atom, children[1]->atom,
                          children[2]->atom};
      vars_[children[1]->atom.variable].is_negated = true;
      return node;
    }

    std::vector<std::unique_ptr<PatternNode>> flat;
    PatternOp op = head == "SEQ"   ? PatternOp::kSeq
                   : head == "AND" ? PatternOp::kAnd
                                   : PatternOp::kOr;
    auto node = std::make_unique<PatternNode>();
    node->op = op;
    for (auto& child : children) {
      if (child->op == op) {
        for (auto& grandchild : child->children) {
          node->children.push_back(std::move(grandchild));
        }
      } else {
        node->children.push_back(std::move(child));
      }
    }
    return node;
  }

  Result<std::unique_ptr<PatternNode>> ParseNseq() {
    CEP2ASP_RETURN_IF_ERROR(ExpectSymbol("("));
    auto t1 = ParseAtom();
    if (!t1.ok()) return t1.status();
    CEP2ASP_RETURN_IF_ERROR(ExpectSymbol(","));
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "!") Advance();
    auto t2 = ParseAtom();
    if (!t2.ok()) return t2.status();
    CEP2ASP_RETURN_IF_ERROR(ExpectSymbol(","));
    auto t3 = ParseAtom();
    if (!t3.ok()) return t3.status();
    CEP2ASP_RETURN_IF_ERROR(ExpectSymbol(")"));
    auto node = std::make_unique<PatternNode>();
    node->op = PatternOp::kNseq;
    node->nseq_atoms = {std::move(*t1), std::move(*t2), std::move(*t3)};
    vars_[node->nseq_atoms[1].variable].is_negated = true;
    return node;
  }

  Result<std::unique_ptr<PatternNode>> ParseIter() {
    // Forms: ITER3(V v), ITER3+(V v), ITER(V v, 3).
    std::string head = Peek().text;
    Advance();
    int m = 0;
    bool unbounded = false;
    if (head.size() > 4) {
      long long parsed = 0;
      if (!ParseInt64(head.substr(4), &parsed) || parsed < 1) {
        return Status::ParseError("bad iteration count in '" + head + "'");
      }
      m = static_cast<int>(parsed);
    }
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "+") {
      unbounded = true;
      Advance();
    }
    CEP2ASP_RETURN_IF_ERROR(ExpectSymbol("("));
    auto atom_result = ParseAtom();
    if (!atom_result.ok()) return atom_result.status();
    if (m == 0) {
      CEP2ASP_RETURN_IF_ERROR(ExpectSymbol(","));
      if (Peek().kind != TokenKind::kNumber) {
        return Status::ParseError("expected iteration count");
      }
      m = static_cast<int>(Peek().number);
      Advance();
    }
    CEP2ASP_RETURN_IF_ERROR(ExpectSymbol(")"));
    auto node = std::make_unique<PatternNode>();
    node->op = PatternOp::kIter;
    node->atom = std::move(*atom_result);
    node->iter_count = m;
    node->iter_unbounded = unbounded;
    vars_[node->atom.variable].is_iteration = true;
    return node;
  }

  /// Walks the structure assigning match positions to variables.
  void AssignPositions(PatternNode& node, int* cursor_in) {
    int local = 0;
    int* cursor = cursor_in ? cursor_in : &local;
    switch (node.op) {
      case PatternOp::kAtom:
        vars_[node.atom.variable].position = (*cursor)++;
        break;
      case PatternOp::kIter:
        vars_[node.atom.variable].position = *cursor;
        *cursor += node.iter_count;
        break;
      case PatternOp::kNseq:
        vars_[node.nseq_atoms[0].variable].position = (*cursor)++;
        vars_[node.nseq_atoms[2].variable].position = (*cursor)++;
        break;
      case PatternOp::kOr:
        for (auto& child : node.children) {
          vars_[child->atom.variable].position = *cursor;  // branches alias
        }
        (*cursor)++;
        break;
      case PatternOp::kSeq:
      case PatternOp::kAnd:
        for (auto& child : node.children) AssignPositions(*child, cursor);
        break;
    }
  }

  Status ParsePredicates(std::vector<RawComparison>* out) {
    while (true) {
      RawComparison raw;
      raw.offset = Peek().offset;
      CEP2ASP_RETURN_IF_ERROR(ParseOperand(&raw.lhs));
      if (Peek().kind != TokenKind::kCompare) {
        return Status::ParseError("expected comparison operator at offset " +
                                  std::to_string(Peek().offset));
      }
      const std::string& op_text = Peek().text;
      if (op_text == "<") {
        raw.op = CmpOp::kLt;
      } else if (op_text == "<=") {
        raw.op = CmpOp::kLe;
      } else if (op_text == ">") {
        raw.op = CmpOp::kGt;
      } else if (op_text == ">=") {
        raw.op = CmpOp::kGe;
      } else if (op_text == "==") {
        raw.op = CmpOp::kEq;
      } else if (op_text == "!=") {
        raw.op = CmpOp::kNe;
      } else {
        return Status::ParseError("unknown operator '" + op_text + "'");
      }
      Advance();
      CEP2ASP_RETURN_IF_ERROR(ParseOperand(&raw.rhs));
      out->push_back(std::move(raw));
      if (PeekKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseOperand(RawOperand* out) {
    if (Peek().kind == TokenKind::kNumber) {
      out->is_attr = false;
      out->number = Peek().number;
      Advance();
      return Status::OK();
    }
    if (Peek().kind == TokenKind::kIdent) {
      out->is_attr = true;
      out->var = Peek().text;
      Advance();
      CEP2ASP_RETURN_IF_ERROR(ExpectSymbol("."));
      if (Peek().kind != TokenKind::kIdent ||
          !ParseAttribute(Peek().text, &out->attr)) {
        return Status::ParseError("unknown attribute '" + Peek().text + "'");
      }
      Advance();
      return Status::OK();
    }
    return Status::ParseError("expected operand at offset " +
                              std::to_string(Peek().offset));
  }

  /// Routes one WHERE comparison to an atom filter or the cross predicate.
  Status PlaceComparison(const RawComparison& raw, PatternNode& root,
                         Predicate* cross) {
    auto resolve = [this](const RawOperand& operand) -> Result<VarInfo> {
      auto it = vars_.find(operand.var);
      if (it == vars_.end()) {
        return Status::ParseError("unknown variable '" + operand.var + "'");
      }
      return it->second;
    };

    const bool lhs_attr = raw.lhs.is_attr;
    const bool rhs_attr = raw.rhs.is_attr;
    if (!lhs_attr && !rhs_attr) {
      return Status::ParseError("comparison between two constants");
    }
    if (lhs_attr && rhs_attr && raw.lhs.var == raw.rhs.var) {
      // Same variable on both sides: still a single-variable filter.
    }
    if (lhs_attr && rhs_attr && raw.lhs.var != raw.rhs.var) {
      auto l = resolve(raw.lhs);
      if (!l.ok()) return l.status();
      auto r = resolve(raw.rhs);
      if (!r.ok()) return r.status();
      if (l->is_iteration || r->is_iteration) {
        return Status::ParseError(
            "cross predicates over iteration variables are not supported; "
            "use the consecutive-constraint form");
      }
      if (l->is_negated || r->is_negated) {
        return Status::ParseError(
            "cross predicates over negated variables are not supported");
      }
      cross->Add(Comparison::AttrAttr(AttrRef{l->position, raw.lhs.attr},
                                      raw.op,
                                      AttrRef{r->position, raw.rhs.attr}));
      return Status::OK();
    }

    // Single-variable comparison: push into the atom's filter.
    const RawOperand& attr_side = lhs_attr ? raw.lhs : raw.rhs;
    auto info = resolve(attr_side);
    if (!info.ok()) return info.status();
    Comparison c;
    if (lhs_attr && !rhs_attr) {
      c = Comparison::AttrConst(AttrRef{0, raw.lhs.attr}, raw.op,
                                raw.rhs.number);
    } else if (!lhs_attr && rhs_attr) {
      // const OP attr  ->  attr OP' const with mirrored operator.
      CmpOp mirrored = raw.op;
      switch (raw.op) {
        case CmpOp::kLt:
          mirrored = CmpOp::kGt;
          break;
        case CmpOp::kLe:
          mirrored = CmpOp::kGe;
          break;
        case CmpOp::kGt:
          mirrored = CmpOp::kLt;
          break;
        case CmpOp::kGe:
          mirrored = CmpOp::kLe;
          break;
        default:
          break;
      }
      c = Comparison::AttrConst(AttrRef{0, raw.rhs.attr}, mirrored,
                                raw.lhs.number);
    } else {
      // Both sides the same variable, e.g. v.value < v.lat.
      c = Comparison::AttrAttr(AttrRef{0, raw.lhs.attr}, raw.op,
                               AttrRef{0, raw.rhs.attr});
    }
    if (!AttachFilter(root, attr_side.var, c)) {
      return Status::ParseError("could not attach filter to variable '" +
                                attr_side.var + "'");
    }
    return Status::OK();
  }

  bool AttachFilter(PatternNode& node, const std::string& var,
                    const Comparison& c) {
    switch (node.op) {
      case PatternOp::kAtom:
      case PatternOp::kIter:
        if (node.atom.variable == var) {
          node.atom.filter.Add(c);
          return true;
        }
        return false;
      case PatternOp::kNseq:
        for (PatternAtom& atom : node.nseq_atoms) {
          if (atom.variable == var) {
            atom.filter.Add(c);
            return true;
          }
        }
        return false;
      case PatternOp::kSeq:
      case PatternOp::kAnd:
      case PatternOp::kOr:
        for (auto& child : node.children) {
          if (AttachFilter(*child, var, c)) return true;
        }
        return false;
    }
    return false;
  }

  Result<Timestamp> ParseDuration() {
    if (Peek().kind != TokenKind::kNumber) {
      return Status::ParseError("expected duration number at offset " +
                                std::to_string(Peek().offset));
    }
    double amount = Peek().number;
    Advance();
    Timestamp unit = kMillisPerMinute;  // default: minutes
    if (Peek().kind == TokenKind::kIdent) {
      const std::string u = ToUpper(Peek().text);
      if (u == "MS" || u == "MILLIS" || u == "MILLISECONDS") {
        unit = 1;
      } else if (u == "S" || u == "SECOND" || u == "SECONDS") {
        unit = kMillisPerSecond;
      } else if (u == "MIN" || u == "MINUTE" || u == "MINUTES") {
        unit = kMillisPerMinute;
      } else if (u == "H" || u == "HOUR" || u == "HOURS") {
        unit = 60 * kMillisPerMinute;
      } else {
        return Status::ParseError("unknown time unit '" + Peek().text + "'");
      }
      Advance();
    }
    return static_cast<Timestamp>(amount * static_cast<double>(unit));
  }

  std::vector<Token> tokens_;
  EventTypeRegistry* registry_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
  std::map<std::string, VarInfo> vars_;
};

}  // namespace

Result<Pattern> ParsePattern(const std::string& text,
                             EventTypeRegistry* registry) {
  if (registry == nullptr) registry = EventTypeRegistry::Global();
  std::vector<Token> tokens;
  Lexer lexer(text);
  CEP2ASP_RETURN_IF_ERROR(lexer.Tokenize(&tokens));
  Parser parser(std::move(tokens), registry);
  return parser.Parse();
}

}  // namespace cep2asp::sea
