#include "sea/semantics.h"

#include <algorithm>
#include <unordered_set>

#include "asp/window.h"
#include "common/logging.h"

namespace cep2asp::sea {

namespace {

using EventList = std::vector<SimpleEvent>;
using SubMatch = std::vector<SimpleEvent>;  // events in match-position order

Timestamp MaxTs(const SubMatch& match) {
  Timestamp out = kMinTimestamp;
  for (const SimpleEvent& e : match) out = std::max(out, e.ts);
  return out;
}

Timestamp MinTs(const SubMatch& match) {
  Timestamp out = kMaxTimestamp;
  for (const SimpleEvent& e : match) out = std::min(out, e.ts);
  return out;
}

std::vector<SubMatch> EvalNode(const PatternNode& node, const EventList& events);

std::vector<SubMatch> EvalAtom(const PatternAtom& atom, const EventList& events) {
  std::vector<SubMatch> out;
  for (const SimpleEvent& e : events) {
    if (e.type != atom.type) continue;
    if (!atom.filter.IsTrue() && !atom.filter.EvalOnEvent(e)) continue;
    out.push_back({e});
  }
  return out;
}

std::vector<SubMatch> EvalIter(const PatternNode& node, const EventList& events) {
  // Qualifying events, sorted strictly by ts for Eq. 12's order.
  EventList qualifying;
  for (const SimpleEvent& e : events) {
    if (e.type != node.atom.type) continue;
    if (!node.atom.filter.IsTrue() && !node.atom.filter.EvalOnEvent(e)) continue;
    qualifying.push_back(e);
  }
  std::sort(qualifying.begin(), qualifying.end(),
            [](const SimpleEvent& a, const SimpleEvent& b) { return a.ts < b.ts; });

  std::vector<SubMatch> out;
  const int m = node.iter_count;
  SubMatch current;
  // Depth-first enumeration of strictly increasing-ts m-combinations.
  std::function<void(size_t)> recurse = [&](size_t start) {
    if (static_cast<int>(current.size()) == m) {
      out.push_back(current);
      return;
    }
    for (size_t i = start; i < qualifying.size(); ++i) {
      const SimpleEvent& e = qualifying[i];
      if (!current.empty()) {
        if (e.ts <= current.back().ts) continue;  // strict temporal order
        if (node.iter_constraint.has_value()) {
          const ConsecutiveConstraint& c = *node.iter_constraint;
          if (!EvalCmp(GetAttribute(current.back(), c.attr), c.op,
                       GetAttribute(e, c.attr))) {
            continue;
          }
        }
      }
      current.push_back(e);
      recurse(i + 1);
      current.pop_back();
    }
  };
  recurse(0);
  return out;
}

std::vector<SubMatch> EvalNseq(const PatternNode& node, const EventList& events) {
  const PatternAtom& t1 = node.nseq_atoms[0];
  const PatternAtom& t2 = node.nseq_atoms[1];
  const PatternAtom& t3 = node.nseq_atoms[2];
  std::vector<SubMatch> firsts = EvalAtom(t1, events);
  std::vector<SubMatch> thirds = EvalAtom(t3, events);
  EventList negated;
  for (const SimpleEvent& e : events) {
    if (e.type != t2.type) continue;
    if (!t2.filter.IsTrue() && !t2.filter.EvalOnEvent(e)) continue;
    negated.push_back(e);
  }
  std::vector<SubMatch> out;
  for (const SubMatch& a : firsts) {
    for (const SubMatch& b : thirds) {
      const SimpleEvent& e1 = a[0];
      const SimpleEvent& e3 = b[0];
      if (!(e1.ts < e3.ts)) continue;
      bool blocked = false;
      for (const SimpleEvent& e2 : negated) {
        if (e1.ts < e2.ts && e2.ts < e3.ts) {
          blocked = true;
          break;
        }
      }
      if (!blocked) out.push_back({e1, e3});
    }
  }
  return out;
}

/// Combines children left-to-right; `require_order` adds the SEQ adjacency
/// constraint max_ts(left accumulation's last child) < min_ts(right).
std::vector<SubMatch> Combine(const std::vector<const PatternNode*>& children,
                              const EventList& events, bool require_order) {
  std::vector<SubMatch> acc = EvalNode(*children[0], events);
  std::vector<Timestamp> acc_last_max;  // max ts of the previous child part
  acc_last_max.reserve(acc.size());
  for (const SubMatch& m : acc) acc_last_max.push_back(MaxTs(m));

  for (size_t c = 1; c < children.size(); ++c) {
    std::vector<SubMatch> next = EvalNode(*children[c], events);
    std::vector<SubMatch> combined;
    std::vector<Timestamp> combined_last_max;
    for (size_t i = 0; i < acc.size(); ++i) {
      for (const SubMatch& right : next) {
        if (require_order && !(acc_last_max[i] < MinTs(right))) continue;
        SubMatch merged = acc[i];
        merged.insert(merged.end(), right.begin(), right.end());
        combined.push_back(std::move(merged));
        combined_last_max.push_back(MaxTs(right));
      }
    }
    acc = std::move(combined);
    acc_last_max = std::move(combined_last_max);
  }
  return acc;
}

std::vector<SubMatch> EvalNode(const PatternNode& node, const EventList& events) {
  switch (node.op) {
    case PatternOp::kAtom:
      return EvalAtom(node.atom, events);
    case PatternOp::kIter:
      return EvalIter(node, events);
    case PatternOp::kNseq:
      return EvalNseq(node, events);
    case PatternOp::kOr: {
      std::vector<SubMatch> out;
      for (const auto& child : node.children) {
        std::vector<SubMatch> part = EvalNode(*child, events);
        out.insert(out.end(), part.begin(), part.end());
      }
      return out;
    }
    case PatternOp::kSeq: {
      std::vector<const PatternNode*> children;
      for (const auto& child : node.children) children.push_back(child.get());
      return Combine(children, events, /*require_order=*/true);
    }
    case PatternOp::kAnd: {
      std::vector<const PatternNode*> children;
      for (const auto& child : node.children) children.push_back(child.get());
      return Combine(children, events, /*require_order=*/false);
    }
  }
  return {};
}

}  // namespace

std::vector<Tuple> EvaluateOnSubstream(const Pattern& pattern,
                                       const std::vector<SimpleEvent>& events) {
  CEP2ASP_CHECK(pattern.has_root());
  std::vector<SubMatch> raw = EvalNode(pattern.root(), events);
  std::vector<Tuple> out;
  out.reserve(raw.size());
  for (const SubMatch& match : raw) {
    // Apply cross-variable predicates on the complete match.
    if (!pattern.cross_predicates().IsTrue()) {
      bool pass = pattern.cross_predicates().Eval(
          [&match](int var) -> const SimpleEvent& {
            return match[static_cast<size_t>(var)];
          });
      if (!pass) continue;
    }
    Tuple tuple;
    for (const SimpleEvent& e : match) tuple.AppendEvent(e);
    tuple.set_event_time(tuple.tse());
    tuple.set_key(match.empty() ? 0 : match[0].id);
    out.push_back(std::move(tuple));
  }
  return out;
}

WindowedEvaluation EvaluateWithWindows(const Pattern& pattern,
                                       const std::vector<SimpleEvent>& stream) {
  WindowedEvaluation result;
  if (stream.empty()) return result;

  SlidingWindowSpec spec{pattern.window_size(), pattern.slide()};
  CEP2ASP_CHECK(spec.valid());
  Timestamp min_ts = stream[0].ts, max_ts = stream[0].ts;
  for (const SimpleEvent& e : stream) {
    min_ts = std::min(min_ts, e.ts);
    max_ts = std::max(max_ts, e.ts);
  }

  std::unordered_set<std::string> seen;
  for (int64_t k = spec.FirstWindow(min_ts); k <= spec.LastWindow(max_ts); ++k) {
    const Timestamp begin = spec.WindowStart(k);
    const Timestamp end = spec.WindowEnd(k);
    std::vector<SimpleEvent> content;
    for (const SimpleEvent& e : stream) {
      if (e.ts >= begin && e.ts < end) content.push_back(e);
    }
    if (content.empty()) continue;
    ++result.windows_evaluated;
    std::vector<Tuple> matches = EvaluateOnSubstream(pattern, content);
    result.emissions_with_duplicates += static_cast<int64_t>(matches.size());
    for (Tuple& match : matches) {
      if (seen.insert(MatchKey(match)).second) {
        result.matches.push_back(std::move(match));
      }
    }
  }
  return result;
}

std::vector<Tuple> Deduplicate(const std::vector<Tuple>& tuples) {
  std::vector<Tuple> out;
  std::unordered_set<std::string> seen;
  for (const Tuple& t : tuples) {
    if (seen.insert(MatchKey(t)).second) out.push_back(t);
  }
  return out;
}

}  // namespace cep2asp::sea
