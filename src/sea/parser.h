#ifndef CEP2ASP_SEA_PARSER_H_
#define CEP2ASP_SEA_PARSER_H_

#include <string>

#include "common/result.h"
#include "sea/pattern.h"

namespace cep2asp::sea {

/// \brief Parses a SASE+-style pattern specification (paper Listings 1/2,
/// and the "future work" declarative PSL + parser) into a Pattern.
///
/// Grammar (keywords case-insensitive):
///
///   spec      := PATTERN structure [WHERE predicates] WITHIN duration
///                [SLIDE duration] [RETURN '*']
///   structure := atom
///              | ('SEQ'|'AND'|'OR') '(' element (',' element)* ')'
///              | 'NSEQ' '(' atom ',' '!' atom ',' atom ')'
///              | 'ITER' INT ['+'] '(' atom ')'
///   element   := structure | '!' atom          (negation only inside SEQ3)
///   atom      := TYPE VAR
///   predicates:= comparison ('AND' comparison)*
///   comparison:= operand ('<'|'<='|'>'|'>='|'=='|'='|'!=') operand
///   operand   := VAR '.' ATTR | NUMBER
///   duration  := NUMBER ('MS'|'SECONDS'|'MINUTES'|'HOURS'|singular forms)
///
/// A SEQ with a '!'-prefixed middle element of three is normalized to
/// NSEQ. Event type names are resolved against `registry` (must be
/// pre-registered, e.g. by the workload generators). Single-variable
/// comparisons become atom filters (enabling filter pushdown); cross-
/// variable comparisons become the pattern's cross predicates. Cross
/// predicates may not reference iteration or negated variables.
Result<Pattern> ParsePattern(const std::string& text,
                             EventTypeRegistry* registry = nullptr);

}  // namespace cep2asp::sea

#endif  // CEP2ASP_SEA_PARSER_H_
