#ifndef CEP2ASP_SEA_PATTERN_H_
#define CEP2ASP_SEA_PATTERN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "event/predicate.h"

namespace cep2asp {

/// SEA operators beyond selection/projection (paper §3).
enum class PatternOp : uint8_t {
  kAtom,  // a single event type occurrence
  kSeq,   // temporal order (Eq. 10)
  kAnd,   // conjunction (Eq. 9)
  kOr,    // disjunction (Eq. 11)
  kIter,  // bounded iteration (Eq. 12)
  kNseq,  // negated sequence (Eq. 14)
};

const char* PatternOpToString(PatternOp op);

/// \brief One event-type occurrence within a pattern, with its
/// single-variable filter (the pushdown-able part of the WHERE clause).
struct PatternAtom {
  EventTypeId type = kInvalidEventType;
  std::string variable;  // user-facing name, e.g. "e1"
  Predicate filter;      // references only variable index 0 (the atom itself)
};

/// \brief Constraint between consecutive iteration events,
/// e.g. v_n.value < v_{n+1}.value (paper §5.2.2, ITER_2).
struct ConsecutiveConstraint {
  Attribute attr = Attribute::kValue;
  CmpOp op = CmpOp::kLt;
};

/// \brief Node of the pattern structure tree.
///
/// Shape restrictions follow SEA (paper §3.2):
///  * kIter is unary over one atom, repeated exactly m times (or >= m when
///    `unbounded` is set — the Kleene+-style extension of O2);
///  * kNseq is ternary over three atoms (T1, negated T2, T3);
///  * kOr children must contribute exactly one output event each (atoms or
///    nested kOr), since Eq. 11 yields single events;
///  * kSeq and kAnd are n-ary (nested forms are pre-flattened by the
///    builder, using associativity).
struct PatternNode {
  PatternOp op = PatternOp::kAtom;

  // kAtom / kIter / kNseq payloads.
  PatternAtom atom;                        // kAtom
  int iter_count = 0;                      // kIter: m
  bool iter_unbounded = false;             // kIter: accept n >= m
  std::optional<ConsecutiveConstraint> iter_constraint;  // kIter
  std::vector<PatternAtom> nseq_atoms;     // kNseq: {T1, T2(negated), T3}

  std::vector<std::unique_ptr<PatternNode>> children;  // kSeq/kAnd/kOr

  /// Number of events this node contributes to a match tuple.
  int OutputArity() const;
};

/// \brief A complete CEP pattern: structure + cross-variable predicates +
/// the mandatory window (paper §3.1.4: the window operator is a core
/// component of every pattern).
///
/// Cross-variable predicate indices address the match positions assigned
/// by an in-order traversal of the structure tree: each atom takes one
/// position, kIter takes m consecutive positions, kNseq takes two (T1 and
/// T3; the negated T2 does not appear in the output).
class Pattern {
 public:
  Pattern() = default;
  Pattern(std::unique_ptr<PatternNode> root, Predicate cross_predicates,
          Timestamp window_size)
      : root_(std::move(root)),
        cross_predicates_(std::move(cross_predicates)),
        window_size_(window_size) {}

  Pattern(Pattern&&) = default;
  Pattern& operator=(Pattern&&) = default;

  const PatternNode& root() const { return *root_; }
  bool has_root() const { return root_ != nullptr; }
  const Predicate& cross_predicates() const { return cross_predicates_; }
  Timestamp window_size() const { return window_size_; }

  /// Slide size for explicit windowing; defaults to one minute (paper
  /// §5.1.3 uses a one-minute slide for minute-resolution streams).
  Timestamp slide() const { return slide_; }
  void set_slide(Timestamp slide) { slide_ = slide; }

  /// Total number of events in a match of this pattern.
  int OutputArity() const { return root_ ? root_->OutputArity() : 0; }

  /// Validates structure restrictions and predicate variable ranges.
  Status Validate() const;

  /// Human-readable rendering, e.g.
  /// "SEQ(Q e1, V e2) WHERE e1.value > 100 WITHIN 15min".
  std::string ToString() const;

 private:
  std::unique_ptr<PatternNode> root_;
  Predicate cross_predicates_;
  Timestamp window_size_ = 0;
  Timestamp slide_ = kMillisPerMinute;
};

/// \brief Fluent construction of patterns from code (the programmatic
/// counterpart of the PSL; FlinkCEP-style functional API).
///
/// Example:
///   Pattern p = PatternBuilder()
///       .Seq({Atom(q_type, "e1"), Atom(v_type, "e2")})
///       .Where(Comparison::AttrAttr({0, Attribute::kValue}, CmpOp::kLe,
///                                   {1, Attribute::kValue}))
///       .Within(15 * kMillisPerMinute)
///       .Build()
///       .ValueOrDie();
class PatternBuilder {
 public:
  PatternBuilder() = default;

  static std::unique_ptr<PatternNode> Atom(EventTypeId type, std::string var,
                                           Predicate filter = Predicate());
  static std::unique_ptr<PatternNode> Iter(
      EventTypeId type, std::string var, int m, Predicate filter = Predicate(),
      std::optional<ConsecutiveConstraint> constraint = std::nullopt,
      bool unbounded = false);

  PatternBuilder& Seq(std::vector<std::unique_ptr<PatternNode>> children);
  PatternBuilder& And(std::vector<std::unique_ptr<PatternNode>> children);
  PatternBuilder& Or(std::vector<std::unique_ptr<PatternNode>> children);

  // Variadic conveniences (initializer lists cannot move unique_ptrs).
  template <typename... Nodes>
  PatternBuilder& Seq(std::unique_ptr<PatternNode> first, Nodes... rest) {
    return Seq(Collect(std::move(first), std::move(rest)...));
  }
  template <typename... Nodes>
  PatternBuilder& And(std::unique_ptr<PatternNode> first, Nodes... rest) {
    return And(Collect(std::move(first), std::move(rest)...));
  }
  template <typename... Nodes>
  PatternBuilder& Or(std::unique_ptr<PatternNode> first, Nodes... rest) {
    return Or(Collect(std::move(first), std::move(rest)...));
  }
  /// NSEQ(T1 e1, !T2 e2, T3 e3).
  PatternBuilder& Nseq(PatternAtom t1, PatternAtom negated_t2, PatternAtom t3);
  /// Uses an explicit prebuilt root (for nested compositions).
  PatternBuilder& Root(std::unique_ptr<PatternNode> root);

  PatternBuilder& Where(Comparison comparison);
  PatternBuilder& Within(Timestamp window_size);
  PatternBuilder& SlideBy(Timestamp slide);

  Result<Pattern> Build();

 private:
  template <typename... Nodes>
  static std::vector<std::unique_ptr<PatternNode>> Collect(Nodes... nodes) {
    std::vector<std::unique_ptr<PatternNode>> out;
    out.reserve(sizeof...(nodes));
    (out.push_back(std::move(nodes)), ...);
    return out;
  }

  std::unique_ptr<PatternNode> root_;
  Predicate cross_predicates_;
  Timestamp window_size_ = 0;
  Timestamp slide_ = kMillisPerMinute;
};

/// Collects the atoms in match-position order. kIter contributes its atom
/// once per repetition; kNseq contributes T1 and T3 (not the negated T2).
std::vector<const PatternAtom*> MatchPositionAtoms(const PatternNode& node);

}  // namespace cep2asp

#endif  // CEP2ASP_SEA_PATTERN_H_
