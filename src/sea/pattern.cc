#include "sea/pattern.h"

#include "common/logging.h"
#include "common/strings.h"
#include "event/event_type.h"

namespace cep2asp {

const char* PatternOpToString(PatternOp op) {
  switch (op) {
    case PatternOp::kAtom:
      return "ATOM";
    case PatternOp::kSeq:
      return "SEQ";
    case PatternOp::kAnd:
      return "AND";
    case PatternOp::kOr:
      return "OR";
    case PatternOp::kIter:
      return "ITER";
    case PatternOp::kNseq:
      return "NSEQ";
  }
  return "?";
}

int PatternNode::OutputArity() const {
  switch (op) {
    case PatternOp::kAtom:
      return 1;
    case PatternOp::kIter:
      return iter_count;
    case PatternOp::kNseq:
      return 2;  // T1 and T3; the negated T2 never appears in output
    case PatternOp::kOr:
      return 1;  // Eq. 11: the disjunction yields single events
    case PatternOp::kSeq:
    case PatternOp::kAnd: {
      int arity = 0;
      for (const auto& child : children) arity += child->OutputArity();
      return arity;
    }
  }
  return 0;
}

namespace {

Status ValidateNode(const PatternNode& node) {
  switch (node.op) {
    case PatternOp::kAtom:
      if (node.atom.type == kInvalidEventType) {
        return Status::InvalidArgument("atom without event type");
      }
      if (node.atom.filter.MaxVar() > 0) {
        return Status::InvalidArgument(
            "atom filter must reference only its own variable");
      }
      return Status::OK();
    case PatternOp::kIter:
      if (node.iter_count < 1) {
        return Status::InvalidArgument("ITER requires m >= 1");
      }
      if (node.atom.type == kInvalidEventType) {
        return Status::InvalidArgument("ITER atom without event type");
      }
      return Status::OK();
    case PatternOp::kNseq:
      if (node.nseq_atoms.size() != 3) {
        return Status::InvalidArgument("NSEQ requires exactly three atoms");
      }
      for (const PatternAtom& atom : node.nseq_atoms) {
        if (atom.type == kInvalidEventType) {
          return Status::InvalidArgument("NSEQ atom without event type");
        }
      }
      return Status::OK();
    case PatternOp::kOr:
      if (node.children.size() < 2) {
        return Status::InvalidArgument("OR requires at least two children");
      }
      for (const auto& child : node.children) {
        if (child->op != PatternOp::kAtom && child->op != PatternOp::kOr) {
          return Status::InvalidArgument(
              "OR children must be atoms (Eq. 11 yields single events)");
        }
        CEP2ASP_RETURN_IF_ERROR(ValidateNode(*child));
      }
      return Status::OK();
    case PatternOp::kSeq:
    case PatternOp::kAnd:
      if (node.children.size() < 2) {
        return Status::InvalidArgument(
            std::string(PatternOpToString(node.op)) +
            " requires at least two children");
      }
      for (const auto& child : node.children) {
        CEP2ASP_RETURN_IF_ERROR(ValidateNode(*child));
      }
      return Status::OK();
  }
  return Status::Internal("unknown pattern op");
}

std::string NodeToString(const PatternNode& node) {
  EventTypeRegistry* registry = EventTypeRegistry::Global();
  switch (node.op) {
    case PatternOp::kAtom:
      return registry->Name(node.atom.type) + " " + node.atom.variable;
    case PatternOp::kIter: {
      std::string out = "ITER" + std::to_string(node.iter_count);
      if (node.iter_unbounded) out += "+";
      out += "(" + registry->Name(node.atom.type) + " " + node.atom.variable + ")";
      return out;
    }
    case PatternOp::kNseq: {
      std::string out = "NSEQ(";
      out += registry->Name(node.nseq_atoms[0].type) + " " +
             node.nseq_atoms[0].variable;
      out += ", !" + registry->Name(node.nseq_atoms[1].type) + " " +
             node.nseq_atoms[1].variable;
      out += ", " + registry->Name(node.nseq_atoms[2].type) + " " +
             node.nseq_atoms[2].variable;
      out += ")";
      return out;
    }
    case PatternOp::kSeq:
    case PatternOp::kAnd:
    case PatternOp::kOr: {
      std::string out = PatternOpToString(node.op);
      out += "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += NodeToString(*node.children[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

void CollectAtoms(const PatternNode& node,
                  std::vector<const PatternAtom*>* out) {
  switch (node.op) {
    case PatternOp::kAtom:
      out->push_back(&node.atom);
      break;
    case PatternOp::kIter:
      for (int i = 0; i < node.iter_count; ++i) out->push_back(&node.atom);
      break;
    case PatternOp::kNseq:
      out->push_back(&node.nseq_atoms[0]);
      out->push_back(&node.nseq_atoms[2]);
      break;
    case PatternOp::kOr:
      // One output event; report the first branch's atom as representative.
      out->push_back(&node.children[0]->atom);
      break;
    case PatternOp::kSeq:
    case PatternOp::kAnd:
      for (const auto& child : node.children) CollectAtoms(*child, out);
      break;
  }
}

}  // namespace

Status Pattern::Validate() const {
  if (!root_) return Status::InvalidArgument("pattern has no structure");
  if (window_size_ <= 0) {
    return Status::InvalidArgument(
        "pattern has no window: the window operator is mandatory (paper "
        "§3.1.4)");
  }
  if (slide_ <= 0 || slide_ > window_size_) {
    return Status::InvalidArgument("slide must be in (0, window_size]");
  }
  CEP2ASP_RETURN_IF_ERROR(ValidateNode(*root_));
  int arity = OutputArity();
  if (cross_predicates_.MaxVar() >= arity) {
    return Status::InvalidArgument(
        "cross predicate references variable index " +
        std::to_string(cross_predicates_.MaxVar()) + " but pattern has only " +
        std::to_string(arity) + " match positions");
  }
  return Status::OK();
}

std::string Pattern::ToString() const {
  if (!root_) return "(empty pattern)";
  std::string out = NodeToString(*root_);
  if (!cross_predicates_.IsTrue()) {
    out += " WHERE " + cross_predicates_.ToString();
  }
  out += " WITHIN " + std::to_string(window_size_ / kMillisPerMinute) + "min";
  return out;
}

std::unique_ptr<PatternNode> PatternBuilder::Atom(EventTypeId type,
                                                  std::string var,
                                                  Predicate filter) {
  auto node = std::make_unique<PatternNode>();
  node->op = PatternOp::kAtom;
  node->atom.type = type;
  node->atom.variable = std::move(var);
  node->atom.filter = std::move(filter);
  return node;
}

std::unique_ptr<PatternNode> PatternBuilder::Iter(
    EventTypeId type, std::string var, int m, Predicate filter,
    std::optional<ConsecutiveConstraint> constraint, bool unbounded) {
  auto node = std::make_unique<PatternNode>();
  node->op = PatternOp::kIter;
  node->atom.type = type;
  node->atom.variable = std::move(var);
  node->atom.filter = std::move(filter);
  node->iter_count = m;
  node->iter_unbounded = unbounded;
  node->iter_constraint = constraint;
  return node;
}

namespace {
/// Flattens nested same-op children, using associativity (paper §3.2:
/// SEQ(T1, SEQ(T2, T3)) simplifies to SEQ(T1, T2, T3); likewise AND, OR).
std::unique_ptr<PatternNode> MakeNary(
    PatternOp op, std::vector<std::unique_ptr<PatternNode>> children) {
  auto node = std::make_unique<PatternNode>();
  node->op = op;
  for (auto& child : children) {
    if (child->op == op) {
      for (auto& grandchild : child->children) {
        node->children.push_back(std::move(grandchild));
      }
    } else {
      node->children.push_back(std::move(child));
    }
  }
  return node;
}
}  // namespace

PatternBuilder& PatternBuilder::Seq(
    std::vector<std::unique_ptr<PatternNode>> children) {
  root_ = MakeNary(PatternOp::kSeq, std::move(children));
  return *this;
}

PatternBuilder& PatternBuilder::And(
    std::vector<std::unique_ptr<PatternNode>> children) {
  root_ = MakeNary(PatternOp::kAnd, std::move(children));
  return *this;
}

PatternBuilder& PatternBuilder::Or(
    std::vector<std::unique_ptr<PatternNode>> children) {
  root_ = MakeNary(PatternOp::kOr, std::move(children));
  return *this;
}

PatternBuilder& PatternBuilder::Nseq(PatternAtom t1, PatternAtom negated_t2,
                                     PatternAtom t3) {
  auto node = std::make_unique<PatternNode>();
  node->op = PatternOp::kNseq;
  node->nseq_atoms = {std::move(t1), std::move(negated_t2), std::move(t3)};
  root_ = std::move(node);
  return *this;
}

PatternBuilder& PatternBuilder::Root(std::unique_ptr<PatternNode> root) {
  root_ = std::move(root);
  return *this;
}

PatternBuilder& PatternBuilder::Where(Comparison comparison) {
  cross_predicates_.Add(std::move(comparison));
  return *this;
}

PatternBuilder& PatternBuilder::Within(Timestamp window_size) {
  window_size_ = window_size;
  return *this;
}

PatternBuilder& PatternBuilder::SlideBy(Timestamp slide) {
  slide_ = slide;
  return *this;
}

Result<Pattern> PatternBuilder::Build() {
  Pattern pattern(std::move(root_), std::move(cross_predicates_), window_size_);
  pattern.set_slide(slide_);
  CEP2ASP_RETURN_IF_ERROR(pattern.Validate());
  return pattern;
}

std::vector<const PatternAtom*> MatchPositionAtoms(const PatternNode& node) {
  std::vector<const PatternAtom*> atoms;
  CollectAtoms(node, &atoms);
  return atoms;
}

}  // namespace cep2asp
