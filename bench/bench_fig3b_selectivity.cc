// Regenerates Figure 3b: impact of output selectivity on SEQ1.
//
// The filter selectivity of Q and V is increased so the output
// selectivity sigma_o sweeps over several orders of magnitude (the paper
// sweeps 0.003% .. 30%). Expected shape: FCEP's throughput collapses with
// rising selectivity (partial-match blow-up under skip-till-any-match,
// with latency growing in step), FASP degrades far more gracefully, and
// FASP-O1 overtakes FASP at the high end by avoiding duplicate
// computations of overlapping windows.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bench_util.h"
#include "harness/paper_patterns.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

int Main(int argc, char** argv) {
  int scale = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--scale") scale = std::atoi(argv[i + 1]);
  }
  const int rounds = 300 * scale;
  const Timestamp window = 15 * kMin;

  PaperPatterns patterns;
  PresetOptions preset;
  preset.num_sensors = 64;
  preset.events_per_sensor = rounds;
  Workload w = MakeQnVWorkload(preset);

  ResultTable table(
      "Figure 3b: SEQ1 throughput/latency under increasing selectivity",
      {"filter sel", "sigma_o (achieved)", "approach", "throughput",
       "latency(mean)", "matches", "status"});

  for (double sel : {0.002, 0.01, 0.03, 0.1}) {
    Pattern p = patterns.Seq1(sel, window, kMin).ValueOrDie();
    std::vector<ApproachResult> results;
    results.push_back(MeasureFcep(p, w));
    results.push_back(MeasureFasp(p, w, {}, "FASP"));
    TranslatorOptions o1;
    o1.use_interval_join = true;
    results.push_back(MeasureFasp(p, w, o1, "FASP-O1"));
    for (const ApproachResult& r : results) {
      char sel_buf[32], sigma_buf[32], lat_buf[32];
      std::snprintf(sel_buf, sizeof(sel_buf), "%.2f", sel);
      std::snprintf(sigma_buf, sizeof(sigma_buf), "%.4f%%",
                    r.output_selectivity);
      std::snprintf(lat_buf, sizeof(lat_buf), "%.1f ms", r.latency_mean_ms);
      table.AddRow({sel_buf, sigma_buf, r.approach,
                    r.ok ? FormatTps(r.throughput_tps) : "-",
                    r.ok ? lat_buf : "-", std::to_string(r.matches),
                    r.ok ? "ok" : ("FAIL: " + r.error)});
    }
  }

  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("fig3b_selectivity"));
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main(int argc, char** argv) { return cep2asp::Main(argc, argv); }
