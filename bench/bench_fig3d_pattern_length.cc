// Regenerates Figure 3d: nested sequences SEQn(n), n = 2..6.
//
// The pattern grows by one event type per step, drawing from QnV- and
// AQ-Data (Q, V, PM10, PM2.5, Temp, Hum). Expected shape: FCEP drops
// sharply as more source streams join the union (the single operator
// pays for every unioned event), while FASP decomposes the pattern into
// n-1 consecutive joins and holds its throughput.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bench_util.h"
#include "harness/paper_patterns.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

int Main(int argc, char** argv) {
  int scale = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--scale") scale = std::atoi(argv[i + 1]);
  }
  const int rounds = 600 * scale;
  const Timestamp window = 15 * kMin;
  const double sel = 0.015;

  PaperPatterns patterns;
  PresetOptions preset;
  preset.num_sensors = 48;
  preset.events_per_sensor = rounds;
  Workload w = MakeCombinedWorkload(preset);

  ResultTable table("Figure 3d: nested sequence SEQn(n), n = 2..6",
                    {"n", "approach", "throughput", "matches", "status"});

  for (int n = 2; n <= 6; ++n) {
    Pattern p = patterns.SeqN(n, sel, window, kMin).ValueOrDie();
    std::vector<ApproachResult> results;
    results.push_back(MeasureFcep(p, w));
    results.push_back(MeasureFasp(p, w, {}, "FASP"));
    TranslatorOptions o1;
    o1.use_interval_join = true;
    results.push_back(MeasureFasp(p, w, o1, "FASP-O1"));
    for (const ApproachResult& r : results) {
      table.AddRow({std::to_string(n), r.approach,
                    r.ok ? FormatTps(r.throughput_tps) : "-",
                    std::to_string(r.matches),
                    r.ok ? "ok" : ("FAIL: " + r.error)});
    }
  }

  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("fig3d_pattern_length"));
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main(int argc, char** argv) { return cep2asp::Main(argc, argv); }
