// Micro-benchmarks of the engine operators on google-benchmark: the raw
// costs the cluster simulator's CostProfile abstracts (per-tuple filter
// work, per-pair join work, per-run NFA work). Useful for regression
// tracking and for sanity-checking calibration constants.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "asp/compiled_stateless.h"
#include "asp/sliding_window_join.h"
#include "asp/interval_join.h"
#include "asp/stateless.h"
#include "event/expr_program.h"
#include "cep/cep_operator.h"
#include "runtime/bounded_queue.h"
#include "runtime/channel.h"
#include "runtime/columnar_batch.h"
#include "runtime/executor.h"
#include "runtime/spsc_ring.h"
#include "runtime/threaded_executor.h"
#include "runtime/vector_source.h"
#include "sea/pattern.h"
#include "translator/translator.h"
#include "workload/generator.h"

namespace cep2asp {
namespace {

std::vector<SimpleEvent> MakeEvents(EventTypeId type, int count,
                                    Timestamp step) {
  std::vector<SimpleEvent> events;
  events.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    SimpleEvent e;
    e.type = type;
    e.id = 1;
    e.ts = static_cast<Timestamp>(i) * step;
    e.value = static_cast<double>(i % 100);
    events.push_back(e);
  }
  return events;
}

EventTypeId TypeA() {
  static EventTypeId type = EventTypeRegistry::Global()->RegisterOrGet("uA");
  return type;
}
EventTypeId TypeB() {
  static EventTypeId type = EventTypeRegistry::Global()->RegisterOrGet("uB");
  return type;
}

void BM_FilterThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    JobGraph graph;
    NodeId src = graph.AddSource(
        std::make_unique<VectorSource>("s", MakeEvents(TypeA(), n, 10)));
    NodeId filter = graph.AddOperatorAfter(
        src, std::make_unique<FilterOperator>(
                 [](const Tuple& t) { return t.event(0).value < 50; }));
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(filter, std::move(sink_op));
    ExecutionResult result = RunJob(&graph, sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FilterThroughput)->Arg(100000);

void BM_SlidingWindowJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    JobGraph graph;
    NodeId l = graph.AddSource(
        std::make_unique<VectorSource>("l", MakeEvents(TypeA(), n, 100)));
    NodeId r = graph.AddSource(
        std::make_unique<VectorSource>("r", MakeEvents(TypeB(), n, 100)));
    Predicate seq;
    seq.Add(Comparison::AttrAttr({0, Attribute::kTs}, CmpOp::kLt,
                                 {1, Attribute::kTs}));
    NodeId join = graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
        SlidingWindowSpec{10000, 1000}, seq, TimestampMode::kMax));
    CEP2ASP_CHECK_OK(graph.Connect(l, join, 0));
    CEP2ASP_CHECK_OK(graph.Connect(r, join, 1));
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(join, std::move(sink_op));
    ExecutionResult result = RunJob(&graph, sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_SlidingWindowJoin)->Arg(20000);

void BM_IntervalJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    JobGraph graph;
    NodeId l = graph.AddSource(
        std::make_unique<VectorSource>("l", MakeEvents(TypeA(), n, 100)));
    NodeId r = graph.AddSource(
        std::make_unique<VectorSource>("r", MakeEvents(TypeB(), n, 100)));
    NodeId join = graph.AddOperator(std::make_unique<IntervalJoinOperator>(
        IntervalBounds::ForSequence(10000), Predicate(), TimestampMode::kMax));
    CEP2ASP_CHECK_OK(graph.Connect(l, join, 0));
    CEP2ASP_CHECK_OK(graph.Connect(r, join, 1));
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(join, std::move(sink_op));
    ExecutionResult result = RunJob(&graph, sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_IntervalJoin)->Arg(20000);

void BM_CepOperatorLowSelectivity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Pattern pattern = PatternBuilder()
                        .Seq(PatternBuilder::Atom(TypeA(), "e1"),
                             PatternBuilder::Atom(TypeB(), "e2"))
                        .Within(10000)
                        .SlideBy(1000)
                        .Build()
                        .ValueOrDie();
  // Interleave A and B sparsely: few runs alive at a time.
  std::vector<SimpleEvent> events;
  for (int i = 0; i < n; ++i) {
    SimpleEvent e;
    e.type = (i % 64 == 0) ? TypeA() : TypeB();
    e.id = 1;
    e.ts = static_cast<Timestamp>(i) * 500;
    events.push_back(e);
  }
  for (auto _ : state) {
    JobGraph graph;
    NodeId src = graph.AddSource(std::make_unique<VectorSource>("s", events));
    NodeId cep = graph.AddOperatorAfter(
        src, CepOperator::FromPattern(pattern).ValueOrDie());
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(cep, std::move(sink_op));
    ExecutionResult result = RunJob(&graph, sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CepOperatorLowSelectivity)->Arg(100000);

void BM_CepOperatorRunHeavy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Pattern pattern = PatternBuilder()
                        .Seq(PatternBuilder::Atom(TypeA(), "e1"),
                             PatternBuilder::Atom(TypeB(), "e2"))
                        .Within(60 * kMillisPerMinute)
                        .Build()
                        .ValueOrDie();
  std::vector<SimpleEvent> events = MakeEvents(TypeA(), n, 10);  // runs pile up
  for (auto _ : state) {
    JobGraph graph;
    NodeId src = graph.AddSource(std::make_unique<VectorSource>("s", events));
    NodeId cep = graph.AddOperatorAfter(
        src, CepOperator::FromPattern(pattern).ValueOrDie());
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(cep, std::move(sink_op));
    ExecutionResult result = RunJob(&graph, sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CepOperatorRunHeavy)->Arg(3000);

// --- Exchange / channel layer ----------------------------------------------
//
// The raw cost of moving elements between two threads: per-item mutex
// queue vs. batched mutex queue vs. batched lock-free SPSC ring. This is
// the synchronization cost every inter-operator edge of the threaded
// executor pays per tuple.

void BM_RawChannelTransfer(benchmark::State& state) {
  const bool spsc = state.range(0) != 0;
  const size_t batch = static_cast<size_t>(state.range(1));
  const int64_t n = 1 << 19;
  for (auto _ : state) {
    int64_t consumed_sum = 0;
    if (spsc) {
      SpscRing<int64_t> ring(4096);
      std::thread consumer([&ring, &consumed_sum] {
        std::vector<int64_t> popped;
        while (true) {
          if (ring.PopN(&popped, 64) == 0) break;
          for (int64_t v : popped) consumed_sum += v;
        }
      });
      std::vector<int64_t> out;
      out.reserve(batch);
      for (int64_t i = 0; i < n; ++i) {
        out.push_back(i);
        if (out.size() >= batch) ring.PushAll(&out);
      }
      ring.PushAll(&out);
      ring.Close();
      consumer.join();
    } else {
      BoundedQueue<int64_t> queue(4096);
      std::thread consumer([&queue, &consumed_sum] {
        std::vector<int64_t> popped;
        while (queue.PopBatch(&popped, 64) > 0) {
          for (int64_t v : popped) consumed_sum += v;
        }
      });
      std::vector<int64_t> out;
      out.reserve(batch);
      for (int64_t i = 0; i < n; ++i) {
        out.push_back(i);
        if (out.size() >= batch) queue.PushBatch(&out);
      }
      queue.PushBatch(&out);
      queue.Close();
      consumer.join();
    }
    benchmark::DoNotOptimize(consumed_sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(std::string(spsc ? "spsc" : "mutex") + " batch=" +
                 std::to_string(batch));
}
BENCHMARK(BM_RawChannelTransfer)
    ->Args({0, 1})
    ->Args({0, 64})
    ->Args({1, 1})
    ->Args({1, 64})
    ->UseRealTime();

// End-to-end exchange cost through the threaded executor: a pass-through
// pipeline (source -> 2 filters -> sink) where per-tuple operator work is
// trivial, so throughput is dominated by the channel layer. Args are
// (batch_size, enable_spsc); {1, 0} reproduces the historical per-tuple
// mutex exchange, {64, 1} is the micro-batched SPSC fast path.
void BM_ThreadedExchange(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const bool spsc = state.range(1) != 0;
  const int n = 100000;
  std::vector<SimpleEvent> events = MakeEvents(TypeA(), n, 10);
  for (auto _ : state) {
    JobGraph graph;
    NodeId src = graph.AddSource(std::make_unique<VectorSource>("s", events));
    NodeId f1 = graph.AddOperatorAfter(
        src, std::make_unique<FilterOperator>([](const Tuple&) { return true; }));
    NodeId f2 = graph.AddOperatorAfter(
        f1, std::make_unique<FilterOperator>([](const Tuple&) { return true; }));
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(f2, std::move(sink_op));
    ThreadedExecutorOptions options;
    options.batch_size = batch;
    options.enable_spsc = spsc;
    // This benchmark measures the exchange layer; with chaining on the
    // filters fuse and there would be no exchange left to measure.
    options.enable_chaining = false;
    ThreadedExecutor executor(&graph, options);
    ExecutionResult result = executor.Run(sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("batch=" + std::to_string(batch) +
                 (spsc ? " spsc" : " mutex"));
}
BENCHMARK(BM_ThreadedExchange)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->UseRealTime();

// --- Operator chaining -------------------------------------------------------
//
// The chain A/B: a forward pipeline (source -> filter -> map -> filter ->
// sink) where every operator edge is chainable. Chain on fuses the four
// operators into one subtask (tuples handed between Process calls, no
// exchange); chain off runs the historical one-thread-per-node layout with
// a real channel on every edge.

struct ChainPipeline {
  JobGraph graph;
  CollectSink* sink = nullptr;
};

ChainPipeline MakeForwardChainPipeline(const std::vector<SimpleEvent>& events) {
  ChainPipeline p;
  NodeId src = p.graph.AddSource(std::make_unique<VectorSource>("s", events));
  NodeId f1 = p.graph.AddOperatorAfter(
      src, std::make_unique<FilterOperator>(
               [](const Tuple& t) { return t.event(0).value < 90; }));
  NodeId m = p.graph.AddOperatorAfter(
      f1, std::make_unique<MapOperator>([](Tuple t) { return t; }));
  NodeId f2 = p.graph.AddOperatorAfter(
      m, std::make_unique<FilterOperator>(
             [](const Tuple& t) { return t.event(0).value < 80; }));
  auto sink_op = std::make_unique<CollectSink>(false);
  p.sink = sink_op.get();
  p.graph.AddOperatorAfter(f2, std::move(sink_op));
  return p;
}

void BM_ForwardChainPipeline(benchmark::State& state) {
  const bool chained = state.range(0) != 0;
  const int n = 100000;
  std::vector<SimpleEvent> events = MakeEvents(TypeA(), n, 10);
  for (auto _ : state) {
    ChainPipeline p = MakeForwardChainPipeline(events);
    ThreadedExecutorOptions options;
    options.enable_chaining = chained;
    ThreadedExecutor executor(&p.graph, options);
    ExecutionResult result = executor.Run(p.sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(chained ? "chained" : "unchained");
}
BENCHMARK(BM_ForwardChainPipeline)->Arg(0)->Arg(1)->UseRealTime();

// --- Chain A/B with machine-readable output ----------------------------------

struct ChainAbSide {
  double throughput_tps = 0;
  int threads = 0;
  int fused_edges = 0;
  int channels = 0;
};

ChainAbSide RunChainSide(bool chained, int n, int repetitions) {
  std::vector<SimpleEvent> events = MakeEvents(TypeA(), n, 10);
  ChainAbSide side;
  double best_seconds = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    ChainPipeline p = MakeForwardChainPipeline(events);
    ThreadedExecutorOptions options;
    options.enable_chaining = chained;
    ThreadedExecutor executor(&p.graph, options);
    const auto start = std::chrono::steady_clock::now();
    ExecutionResult result = executor.Run(p.sink);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (!result.ok) {
      std::fprintf(stderr, "chain A/B run failed: %s\n", result.error.c_str());
      std::exit(1);
    }
    if (rep == 0) {
      for (const ChannelStats& stats : result.channel_stats) {
        if (stats.fused) {
          ++side.fused_edges;
        } else {
          ++side.channels;
        }
      }
      const ChainLayout layout =
          ComputeChainLayout(p.graph, /*chaining_enabled=*/chained);
      side.threads = 0;
      for (NodeId id = 0; id < p.graph.num_nodes(); ++id) {
        if (p.graph.node(id).is_source()) ++side.threads;
      }
      for (const std::vector<NodeId>& chain : layout.chains) {
        side.threads += p.graph.parallelism(chain.front());
      }
    }
    if (best_seconds == 0 || elapsed.count() < best_seconds) {
      best_seconds = elapsed.count();
    }
  }
  side.throughput_tps = static_cast<double>(n) / best_seconds;
  return side;
}

void AppendSideJson(std::string* out, const char* key, const ChainAbSide& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"throughput_tps\": %.0f, \"threads\": %d, "
                "\"fused_edges\": %d, \"channels\": %d}",
                key, s.throughput_tps, s.threads, s.fused_edges, s.channels);
  *out += buf;
}

/// Runs the forward-chain A/B and writes bench_results/BENCH_chain.json;
/// `quick` shrinks the input and repetition count for CI smoke runs.
int RunChainAb(bool quick) {
  const int n = quick ? 200000 : 1000000;
  const int repetitions = quick ? 3 : 5;
  const ChainAbSide on = RunChainSide(/*chained=*/true, n, repetitions);
  const ChainAbSide off = RunChainSide(/*chained=*/false, n, repetitions);
  const double speedup = off.throughput_tps > 0
                             ? on.throughput_tps / off.throughput_tps
                             : 0;

  std::string json = "{\n";
  json += "  \"benchmark\": \"forward_chain_ab\",\n";
  json += "  \"pipeline\": \"source -> filter -> map -> filter -> sink\",\n";
  json += "  \"tuples_per_run\": " + std::to_string(n) + ",\n";
  json += "  \"repetitions\": " + std::to_string(repetitions) + ",\n";
  AppendSideJson(&json, "chain_on", on);
  json += ",\n";
  AppendSideJson(&json, "chain_off", off);
  json += ",\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  \"speedup\": %.2f\n", speedup);
  json += buf;
  json += "}\n";

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const char* path = "bench_results/BENCH_chain.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  std::printf("wrote %s\n", path);
  return 0;
}

// --- Scheduler A/B with machine-readable output ------------------------------
//
// Task-pool vs legacy thread-per-subtask on the fig6 join plan (keyed
// SEQ3 with equi-join predicates, O3 translation, 128 keys): the pipeline
// whose hash stages make parallelism cost real threads under the legacy
// executor. P=1 is the no-regression gate — on any host the task
// scheduler must not lose to dedicated threads when there is no
// oversubscription to win back; P=4 reports the multiplexed layout.

Pattern SchedKeyedSeq3() {
  Predicate filter;
  filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 45));
  EventTypeId a = EventTypeRegistry::Global()->RegisterOrGet("SchedA");
  EventTypeId b = EventTypeRegistry::Global()->RegisterOrGet("SchedB");
  EventTypeId c = EventTypeRegistry::Global()->RegisterOrGet("SchedC");
  return PatternBuilder()
      .Seq(PatternBuilder::Atom(a, "e1", filter),
           PatternBuilder::Atom(b, "e2", filter),
           PatternBuilder::Atom(c, "e3", filter))
      .Where(Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                  {1, Attribute::kId}))
      .Where(Comparison::AttrAttr({1, Attribute::kId}, CmpOp::kEq,
                                  {2, Attribute::kId}))
      .Within(6 * kMillisPerMinute)
      .Build()
      .ValueOrDie();
}

Workload SchedWorkload(int events_per_sensor) {
  Workload workload;
  for (const char* name : {"SchedA", "SchedB", "SchedC"}) {
    StreamSpec spec;
    spec.type = EventTypeRegistry::Global()->RegisterOrGet(name);
    spec.num_sensors = 128;
    spec.events_per_sensor = events_per_sensor;
    spec.period = kMillisPerMinute;
    spec.align_to_period = true;
    spec.seed = 977 + spec.type;
    workload.AddStream(spec);
  }
  return workload;
}

struct SchedAbSide {
  std::vector<double> tps;  // one throughput sample per repetition
  int64_t matches = 0;
  int num_tasks = 0;    // task scheduler only
  int workers = 0;      // task scheduler only
};

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2;
}

/// Speedup estimator for drifting hardware: each repetition runs both
/// engines back to back, so the ratio of that pair compares two runs
/// adjacent in time and the session-scale machine-speed drift divides
/// out; the median then rejects occasional outlier repetitions. (A ratio
/// of per-side maxima, by contrast, may compare runs minutes apart.)
double MedianPairedRatio(const SchedAbSide& task, const SchedAbSide& legacy) {
  std::vector<double> ratios;
  const size_t n = std::min(task.tps.size(), legacy.tps.size());
  for (size_t i = 0; i < n; ++i) {
    if (legacy.tps[i] > 0) ratios.push_back(task.tps[i] / legacy.tps[i]);
  }
  return Median(std::move(ratios));
}

/// One measured run; appends the observed throughput to `side`.
void RunSchedOnce(const Pattern& pattern, bool task_scheduler, int parallelism,
                  int events_per_sensor, SchedAbSide* side) {
  TranslatorOptions o3;
  o3.use_equi_join_keys = true;
  o3.parallelism = parallelism;
  Workload workload = SchedWorkload(events_per_sensor);
  auto compiled = TranslatePattern(pattern, o3, workload.MakeSourceFactory(),
                                   /*store_matches=*/false);
  CEP2ASP_CHECK(compiled.ok()) << compiled.status();
  ThreadedExecutorOptions options;
  options.use_task_scheduler = task_scheduler;
  ThreadedExecutor executor(&compiled->graph, options);
  ExecutionResult result = executor.Run(compiled->sink);
  if (!result.ok) {
    std::fprintf(stderr, "sched A/B run failed: %s\n", result.error.c_str());
    std::exit(1);
  }
  side->matches = result.matches_emitted;
  if (task_scheduler) {
    side->num_tasks = result.scheduler.num_tasks;
    side->workers = result.scheduler.worker_threads;
  }
  side->tps.push_back(result.throughput_tps());
}

/// Measures both engines at one parallelism with paired, order-alternating
/// repetitions: each rep runs both engines back to back, and the order
/// flips every rep, so slow drift in machine speed (thermal / noisy
/// neighbors) cancels out instead of biasing whichever side ran last.
/// One untimed warm-up run absorbs cold-start costs (first-touch faults,
/// allocator growth) before anything is measured.
void RunSchedPair(const Pattern& pattern, int parallelism,
                  int events_per_sensor, int repetitions, SchedAbSide* task,
                  SchedAbSide* legacy) {
  SchedAbSide warmup;
  RunSchedOnce(pattern, true, parallelism, events_per_sensor, &warmup);
  for (int rep = 0; rep < repetitions; ++rep) {
    const bool task_first = (rep % 2) == 0;
    RunSchedOnce(pattern, task_first, parallelism, events_per_sensor,
                 task_first ? task : legacy);
    RunSchedOnce(pattern, !task_first, parallelism, events_per_sensor,
                 task_first ? legacy : task);
  }
}

/// Runs the task-pool vs legacy A/B on the fig6 join plan and writes
/// bench_results/BENCH_sched.json. Exit status gates CI: at P=1 the task
/// scheduler must reach legacy throughput (5% measurement-noise floor).
int RunSchedAb(bool quick) {
  const int events_per_sensor = quick ? 60 : 300;
  const int repetitions = quick ? 3 : 7;
  const Pattern pattern = SchedKeyedSeq3();

  SchedAbSide task_p1, legacy_p1, task_p4, legacy_p4;
  RunSchedPair(pattern, 1, events_per_sensor, repetitions, &task_p1,
               &legacy_p1);
  RunSchedPair(pattern, 4, events_per_sensor, repetitions, &task_p4,
               &legacy_p4);

  if (task_p1.matches != legacy_p1.matches ||
      task_p4.matches != legacy_p4.matches) {
    std::fprintf(stderr, "sched A/B: match counts diverged between paths\n");
    return 1;
  }

  const double speedup_p1 = MedianPairedRatio(task_p1, legacy_p1);
  const double speedup_p4 = MedianPairedRatio(task_p4, legacy_p4);
  constexpr double kGateP1 = 0.95;  // >= 1.0x modulo 5% run-to-run noise
  const bool gate_passed = speedup_p1 >= kGateP1;

  char buf[512];
  std::string json = "{\n";
  json += "  \"benchmark\": \"sched_ab\",\n";
  json += "  \"plan\": \"fig6 SEQ3 equi-join (O3, 128 keys)\",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"events_per_sensor\": " + std::to_string(events_per_sensor) +
          ",\n";
  json += "  \"repetitions\": " + std::to_string(repetitions) + ",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"p1\": {\"task_tps\": %.0f, \"legacy_tps\": %.0f, "
                "\"speedup\": %.2f},\n",
                Median(task_p1.tps), Median(legacy_p1.tps), speedup_p1);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"p4\": {\"task_tps\": %.0f, \"legacy_tps\": %.0f, "
                "\"speedup\": %.2f, \"tasks\": %d, \"workers\": %d},\n",
                Median(task_p4.tps), Median(legacy_p4.tps), speedup_p4,
                task_p4.num_tasks, task_p4.workers);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"gate_p1_min_speedup\": %.2f,\n  \"gate_passed\": %s\n",
                kGateP1, gate_passed ? "true" : "false");
  json += buf;
  json += "}\n";

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const char* path = "bench_results/BENCH_sched.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  std::printf("wrote %s\n", path);
  if (!gate_passed) {
    std::fprintf(stderr,
                 "sched A/B gate FAILED: task scheduler %.2fx legacy at P=1 "
                 "(floor %.2f)\n",
                 speedup_p1, kGateP1);
    return 1;
  }
  return 0;
}

// --- Expression A/B with machine-readable output -----------------------------
//
// Compiled + batched vs interpreted per-tuple on a stateless filter→key
// prefix, the exact pair of plans the translator chooses between with
// compile_expressions on/off. The benchmark drives the operator stage
// directly — the same MessageBatches the executor would hand it — so the
// measured work is exactly what compilation changes: expression
// evaluation plus the per-tuple operator plumbing. (End-to-end numbers
// with source + channel on both sides are what fig3a and bench_pipeline
// report; there the identical transport cost dilutes the stage-level
// ratio.) One side is a single CompiledStatelessOperator running a fused
// ExprProgram over whole batches; the other is the historical interpreted
// FilterOperator + MapOperator pair taking per-tuple virtual hops through
// a chaining collector, which is how the executor runs them. The
// predicate's three terms (one with an rhs offset) all evaluate for every
// tuple; only ~10% survive, so almost every tuple pays full predicate
// cost and the survivors pay the key assignment.

Predicate ExprAbPredicate() {
  Predicate pred;
  pred.Add(Comparison::AttrConst({0, Attribute::kLat}, CmpOp::kGe, -100.0));
  pred.Add(Comparison::AttrAttr({0, Attribute::kLon}, CmpOp::kLe,
                                {0, Attribute::kValue}, 1e6));
  pred.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 10.0));
  return pred;
}

/// Terminal collector: counts survivors and checksums their keys, so the
/// key stores cannot be optimized away and both sides can be compared for
/// identical observable output.
class ExprAbSink final : public Collector {
 public:
  void Emit(Tuple tuple) override {
    ++count_;
    key_sum_ += static_cast<uint64_t>(tuple.key());
  }
  void EmitBatch(MessageBatch* batch) override {
    for (Message& msg : *batch) {
      ++count_;
      key_sum_ += static_cast<uint64_t>(msg.tuple.key());
    }
    batch->clear();
  }
  int64_t count() const { return count_; }
  uint64_t key_sum() const { return key_sum_; }

 private:
  int64_t count_ = 0;
  uint64_t key_sum_ = 0;
};

/// The executor's chained hand-off for the interpreted pair: each tuple
/// the filter passes takes one virtual Process call into the key map.
class ExprAbChainTo final : public Collector {
 public:
  ExprAbChainTo(Operator* next, Collector* out) : next_(next), out_(out) {}
  void Emit(Tuple tuple) override {
    CEP2ASP_CHECK(next_->Process(0, std::move(tuple), out_).ok());
  }

 private:
  Operator* next_;
  Collector* out_;
};

std::vector<MessageBatch> MakeExprBatches(
    const std::vector<SimpleEvent>& events, size_t batch_size) {
  std::vector<MessageBatch> batches;
  batches.reserve(events.size() / batch_size + 1);
  for (size_t i = 0; i < events.size(); i += batch_size) {
    MessageBatch batch;
    const size_t end = std::min(events.size(), i + batch_size);
    batch.reserve(end - i);
    for (size_t j = i; j < end; ++j) {
      batch.push_back(Message::Data(0, Tuple(events[j])));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void RunExprOnce(bool compiled, const std::vector<SimpleEvent>& events,
                 SchedAbSide* side) {
  // Batches are processed in cache-resident waves: the executor hands a
  // stage batches a channel hop after the producer wrote them, so the
  // stage never streams tens of megabytes cold from DRAM. Each wave's
  // batch set is built outside the timed region (the executor pays
  // source + channel cost on both sides identically, the stage does
  // not), then processed timed.
  constexpr size_t kWave = 4096;
  ExprAbSink sink;
  double elapsed = 0.0;

  ExprProgram fused = ExprProgram::Fuse(
      ExprProgram::Filter(ExprAbPredicate(), ExprProgram::VarMode::kBroadcast),
      ExprProgram::KeyByAttribute(0, Attribute::kId));
  CEP2ASP_CHECK(fused.ok());
  CompiledStatelessOperator compiled_op(std::move(fused), "filter+key");
  std::unique_ptr<Operator> filter =
      FilterOperator::FromPredicate(ExprAbPredicate());
  std::unique_ptr<Operator> keymap =
      MapOperator::KeyByAttribute(0, Attribute::kId);
  ExprAbChainTo chain(keymap.get(), &sink);

  for (size_t wave = 0; wave < events.size(); wave += kWave) {
    const std::vector<SimpleEvent> slice(
        events.begin() + wave,
        events.begin() + std::min(events.size(), wave + kWave));
    std::vector<MessageBatch> batches = MakeExprBatches(slice, 64);
    const auto start = std::chrono::steady_clock::now();
    if (compiled) {
      for (MessageBatch& batch : batches) {
        CEP2ASP_CHECK(compiled_op.ProcessBatch(0, &batch, &sink).ok());
      }
    } else {
      for (MessageBatch& batch : batches) {
        // The default Operator::ProcessBatch — per-tuple Process calls —
        // exactly what the executor runs for non-compiled operators.
        CEP2ASP_CHECK(filter->ProcessBatch(0, &batch, &chain).ok());
      }
    }
    elapsed += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count();
  }
  // Fold the key checksum into the match count so any divergence between
  // the two sides' observable output fails the run, not just the count.
  side->matches =
      sink.count() + static_cast<int64_t>(sink.key_sum() % 1000003);
  side->tps.push_back(static_cast<double>(events.size()) / elapsed);
}

/// Runs the compiled vs interpreted A/B on the filter→key prefix and
/// writes bench_results/BENCH_expr.json. Paired, order-alternating
/// repetitions with one untimed warm-up, exactly like the sched A/B.
/// Exit status gates CI: compiled + batched must reach 1.4x interpreted.
int RunExprAb(bool quick) {
  const int n = quick ? 300000 : 2000000;
  const int repetitions = quick ? 5 : 9;
  std::vector<SimpleEvent> events = MakeEvents(TypeA(), n, 10);

  SchedAbSide compiled, interpreted;
  {
    SchedAbSide warmup;
    RunExprOnce(/*compiled=*/true, events, &warmup);
    RunExprOnce(/*compiled=*/false, events, &warmup);
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    const bool compiled_first = (rep % 2) == 0;
    RunExprOnce(compiled_first, events,
                compiled_first ? &compiled : &interpreted);
    RunExprOnce(!compiled_first, events,
                compiled_first ? &interpreted : &compiled);
  }

  if (compiled.matches != interpreted.matches) {
    std::fprintf(stderr,
                 "expr A/B: match counts diverged (compiled %lld vs "
                 "interpreted %lld)\n",
                 static_cast<long long>(compiled.matches),
                 static_cast<long long>(interpreted.matches));
    return 1;
  }

  const double speedup = MedianPairedRatio(compiled, interpreted);
  constexpr double kGate = 1.4;
  const bool gate_passed = speedup >= kGate;

  char buf[256];
  std::string json = "{\n";
  json += "  \"benchmark\": \"expr_ab\",\n";
  json +=
      "  \"pipeline\": \"filter(3 terms)+key:=attr stage, 64-tuple "
      "batches\",\n";
  json += "  \"tuples_per_run\": " + std::to_string(n) + ",\n";
  json += "  \"repetitions\": " + std::to_string(repetitions) + ",\n";
  json += "  \"survivors\": " + std::to_string(compiled.matches) + ",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"compiled_tps\": %.0f,\n  \"interpreted_tps\": %.0f,\n",
                Median(compiled.tps), Median(interpreted.tps));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"speedup\": %.2f,\n  \"gate_min_speedup\": %.2f,\n"
                "  \"gate_passed\": %s\n",
                speedup, kGate, gate_passed ? "true" : "false");
  json += buf;
  json += "}\n";

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const char* path = "bench_results/BENCH_expr.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  std::printf("wrote %s\n", path);
  if (!gate_passed) {
    std::fprintf(stderr,
                 "expr A/B gate FAILED: compiled %.2fx interpreted "
                 "(floor %.2f)\n",
                 speedup, kGate);
    return 1;
  }
  return 0;
}

// --- SoA columnar A/B with machine-readable output ---------------------------
//
// Row-major vs columnar execution of the same compiled filter→key stage:
// the pair of paths the executor chooses between with enable_columnar
// on/off. Side A is CompiledStatelessOperator::ProcessBatch over 64-tuple
// MessageBatches — the PR's baseline, already batch-vectorized via
// RunBatch's strided loops. Side B is ProcessColumnar over pre-gathered
// 64-row ColumnarBatch blocks (the same rows the source gather stages per
// batch), where each fused term runs as one SIMD loop over two contiguous
// double columns instead of a 280-byte-strided walk. Gather cost is
// excluded on purpose: in the executor the source stages tuples either
// way, and the stage-level ratio is what the SoA layout changes. Both
// sides fold survivor count and key checksum into one value so any
// observable divergence fails the run.
//
// A second A/B measures the transfer layer the columnar envelope buys:
// pushing N rows through an SpscChannel as individual data Messages
// (64-message batches) vs as one kColumnar envelope per 256 rows — one
// ring slot and one Message move per block instead of per tuple.

/// Counts survivors and checksums keys on both the row and the columnar
/// interface, so either emission path produces the same observable value.
class SoaAbSink final : public Collector {
 public:
  void Emit(Tuple tuple) override {
    ++count_;
    key_sum_ += static_cast<uint64_t>(tuple.key());
  }
  void EmitColumnar(std::unique_ptr<ColumnarBatch> block) override {
    const int64_t* keys = block->keys();
    for (size_t i = 0; i < block->rows(); ++i) {
      key_sum_ += static_cast<uint64_t>(keys[i]);
    }
    count_ += static_cast<int64_t>(block->rows());
  }
  int64_t count() const { return count_; }
  uint64_t key_sum() const { return key_sum_; }

 private:
  int64_t count_ = 0;
  uint64_t key_sum_ = 0;
};

void RunSoaStageOnce(bool columnar, const std::vector<SimpleEvent>& events,
                     SchedAbSide* side) {
  // Same cache-resident wave scheme as RunExprOnce: inputs for one wave
  // are materialized untimed (the executor pays gather/batch-build cost
  // on its own clock), then the stage runs timed.
  constexpr size_t kWave = 4096;
  constexpr size_t kBlockRows = 64;  // matches the default source batch
  SoaAbSink sink;
  double elapsed = 0.0;

  ExprProgram fused = ExprProgram::Fuse(
      ExprProgram::Filter(ExprAbPredicate(), ExprProgram::VarMode::kBroadcast),
      ExprProgram::KeyByAttribute(0, Attribute::kId));
  CEP2ASP_CHECK(fused.ok());
  CompiledStatelessOperator op(std::move(fused), "filter+key");
  CEP2ASP_CHECK(op.Traits().columnar_capable);

  for (size_t wave = 0; wave < events.size(); wave += kWave) {
    const size_t wave_end = std::min(events.size(), wave + kWave);
    if (columnar) {
      std::vector<std::unique_ptr<ColumnarBatch>> blocks;
      for (size_t i = wave; i < wave_end; i += kBlockRows) {
        auto block = std::make_unique<ColumnarBatch>(1);
        const size_t end = std::min(wave_end, i + kBlockRows);
        block->Reserve(end - i);
        for (size_t j = i; j < end; ++j) {
          block->AppendTuple(Tuple(events[j]));
        }
        blocks.push_back(std::move(block));
      }
      const auto start = std::chrono::steady_clock::now();
      for (auto& block : blocks) {
        CEP2ASP_CHECK(op.ProcessColumnar(0, std::move(block), &sink).ok());
      }
      elapsed += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    } else {
      const std::vector<SimpleEvent> slice(events.begin() + wave,
                                           events.begin() + wave_end);
      std::vector<MessageBatch> batches = MakeExprBatches(slice, kBlockRows);
      const auto start = std::chrono::steady_clock::now();
      for (MessageBatch& batch : batches) {
        CEP2ASP_CHECK(op.ProcessBatch(0, &batch, &sink).ok());
      }
      elapsed += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    }
  }
  side->matches =
      sink.count() + static_cast<int64_t>(sink.key_sum() % 1000003);
  side->tps.push_back(static_cast<double>(events.size()) / elapsed);
}

void RunSoaChannelOnce(bool columnar, const std::vector<SimpleEvent>& events,
                       SchedAbSide* side) {
  constexpr size_t kRowBatch = 64;
  constexpr size_t kBlockRows = 256;  // one envelope per gathered block
  // Payloads are pre-built untimed — the transfer A/B measures ring
  // traffic, not tuple construction.
  std::vector<MessageBatch> batches;
  if (columnar) {
    for (size_t i = 0; i < events.size(); i += kBlockRows) {
      auto block = std::make_unique<ColumnarBatch>(1);
      const size_t end = std::min(events.size(), i + kBlockRows);
      block->Reserve(end - i);
      for (size_t j = i; j < end; ++j) block->AppendTuple(Tuple(events[j]));
      MessageBatch batch;
      batch.push_back(Message::Columnar(0, std::move(block), 0));
      batches.push_back(std::move(batch));
    }
  } else {
    batches = MakeExprBatches(events, kRowBatch);
  }

  SpscChannel channel(4096);
  int64_t consumed_rows = 0;
  const auto start = std::chrono::steady_clock::now();
  std::thread consumer([&channel, &consumed_rows] {
    MessageBatch popped;
    while (channel.PopBatch(&popped, 64)) {
      for (Message& msg : popped) {
        if (msg.kind == MessageKind::kTuple) {
          ++consumed_rows;
        } else if (msg.kind == MessageKind::kColumnar) {
          consumed_rows += msg.columnar_rows;
        }
      }
    }
  });
  for (MessageBatch& batch : batches) {
    CEP2ASP_CHECK(channel.PushBatch(&batch));
  }
  channel.Close();
  consumer.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  side->matches = consumed_rows;
  side->tps.push_back(static_cast<double>(events.size()) / elapsed.count());
}

/// Hash-edge A/B: what a hash-partitioned exchange edge costs per row with
/// and without block shipping. Columnar side: split each gathered block
/// into per-subtask sub-blocks (ColumnarBatch::PartitionByKey — batched
/// splitmix64 over the contiguous key column, then one pre-sized scatter
/// per column) and push each sub-block as one kColumnar envelope. Row
/// side: per row, a scalar KeyToSubtask plus one Message copy into the
/// target's staging batch, flushed at the executor's batch size — exactly
/// the RoutingCollector::Append path. Keys are spread pseudo-randomly so
/// neither side benefits from runs; the consumer folds (subtask+1)-weighted
/// row counts so any routing divergence fails the run.
void RunHashPartitionOnce(bool columnar, const std::vector<SimpleEvent>& events,
                          SchedAbSide* side) {
  constexpr size_t kBlockRows = 256;  // one partition call per gathered block
  constexpr int kParallelism = 4;
  constexpr size_t kStageFlush = 64;  // row staging batch, as in the executor

  // Payloads pre-built untimed, identically keyed on both sides.
  std::vector<std::unique_ptr<ColumnarBatch>> blocks;
  std::vector<Tuple> tuples;
  if (columnar) {
    for (size_t i = 0; i < events.size(); i += kBlockRows) {
      auto block = std::make_unique<ColumnarBatch>(1);
      const size_t end = std::min(events.size(), i + kBlockRows);
      block->Reserve(end - i);
      for (size_t j = i; j < end; ++j) {
        Tuple t(events[j]);
        t.set_key(static_cast<int64_t>(j * 7919) % 1024);
        block->AppendTuple(t);
      }
      blocks.push_back(std::move(block));
    }
  } else {
    tuples.reserve(events.size());
    for (size_t j = 0; j < events.size(); ++j) {
      Tuple t(events[j]);
      t.set_key(static_cast<int64_t>(j * 7919) % 1024);
      tuples.push_back(std::move(t));
    }
  }

  SpscChannel channel(4096);
  int64_t checksum = 0;
  const auto start = std::chrono::steady_clock::now();
  std::thread consumer([&channel, &checksum] {
    MessageBatch popped;
    while (channel.PopBatch(&popped, 64)) {
      for (Message& msg : popped) {
        if (msg.kind == MessageKind::kTuple) {
          checksum += msg.slot + 1;
        } else if (msg.kind == MessageKind::kColumnar) {
          checksum += (msg.slot + 1) * msg.columnar_rows;
        }
      }
    }
  });
  if (columnar) {
    for (auto& block : blocks) {
      std::vector<std::unique_ptr<ColumnarBatch>> parts =
          block->PartitionByKey(kParallelism);
      block.reset();
      for (int s = 0; s < kParallelism; ++s) {
        if (parts[static_cast<size_t>(s)] == nullptr) continue;
        MessageBatch envelope;
        envelope.push_back(
            Message::Columnar(0, std::move(parts[static_cast<size_t>(s)]), s));
        CEP2ASP_CHECK(channel.PushBatch(&envelope));
      }
    }
  } else {
    MessageBatch staging[kParallelism];
    for (const Tuple& t : tuples) {
      const int s = KeyToSubtask(t.key(), kParallelism);
      staging[s].push_back(Message::Data(0, t, s));
      if (staging[s].size() >= kStageFlush) {
        CEP2ASP_CHECK(channel.PushBatch(&staging[s]));
        staging[s].clear();
      }
    }
    for (int s = 0; s < kParallelism; ++s) {
      CEP2ASP_CHECK(channel.PushBatch(&staging[s]));
    }
  }
  channel.Close();
  consumer.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  side->matches = checksum;
  side->tps.push_back(static_cast<double>(events.size()) / elapsed.count());
}

/// Join-ingest A/B: SlidingWindowJoinOperator::ProcessColumnar (column-wise
/// append into the per-(key, side) SoA window buffers, one key lookup per
/// run of equal keys) vs the base-class scatter shim the join paid before
/// it was columnar-capable (explicitly `Operator::ProcessColumnar`: a
/// RowTuple gather plus per-tuple Process per row). Keys arrive in 16-row
/// bursts — the shape per-sensor sources and hash-partitioned sub-blocks
/// produce — and the right side receives 1/64 of the blocks with a
/// never-true condition, so firing and probing stay a small, identical
/// cost on both sides and the measured path is the ingest itself.
void RunJoinIngestOnce(bool columnar, const std::vector<SimpleEvent>& events,
                       SchedAbSide* side) {
  constexpr size_t kBlockRows = 256;
  constexpr int kWatermarkEveryBlocks = 16;

  Predicate never;  // values are 0..99: evaluated per pair, never true
  never.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, -1.0));
  SlidingWindowJoinOperator op(SlidingWindowSpec{5120, 5120}, never,
                               TimestampMode::kMax, "bench-join");
  CEP2ASP_CHECK(op.Open().ok());
  CEP2ASP_CHECK(op.Traits().columnar_capable);
  SoaAbSink sink;

  // Payloads pre-built untimed, identically for both sides.
  std::vector<std::unique_ptr<ColumnarBatch>> blocks;
  for (size_t i = 0; i < events.size(); i += kBlockRows) {
    auto block = std::make_unique<ColumnarBatch>(1);
    const size_t end = std::min(events.size(), i + kBlockRows);
    block->Reserve(end - i);
    for (size_t j = i; j < end; ++j) {
      Tuple t(events[j]);
      t.set_key(static_cast<int64_t>(j / 16) % 256);  // 16-row key bursts
      block->AppendTuple(t);
    }
    blocks.push_back(std::move(block));
  }

  const auto start = std::chrono::steady_clock::now();
  Timestamp max_ts = 0;
  for (size_t b = 0; b < blocks.size(); ++b) {
    const size_t rows = blocks[b]->rows();
    if (rows > 0) {
      max_ts = std::max(max_ts, blocks[b]->event_time(rows - 1));
    }
    const int input = (b % 64 == 63) ? 1 : 0;
    if (columnar) {
      CEP2ASP_CHECK(op.ProcessColumnar(input, std::move(blocks[b]), &sink).ok());
    } else {
      CEP2ASP_CHECK(
          op.Operator::ProcessColumnar(input, std::move(blocks[b]), &sink).ok());
    }
    if (b % kWatermarkEveryBlocks == kWatermarkEveryBlocks - 1) {
      CEP2ASP_CHECK(op.OnWatermark(max_ts, &sink).ok());
    }
  }
  CEP2ASP_CHECK(op.OnWatermark(max_ts + 2 * 5120, &sink).ok());
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  // Any divergence in buffered state, probe work, or emissions fails the
  // run: both ingest paths must be observationally identical.
  side->matches = sink.count() +
                  static_cast<int64_t>(sink.key_sum() % 1000003) +
                  op.pairs_evaluated() +
                  static_cast<int64_t>(op.StateBytes() % 1000003);
  side->tps.push_back(static_cast<double>(events.size()) / elapsed.count());
}

/// Runs the row-major vs columnar A/B (compiled stage + channel transfer
/// + hash partition + join ingest) and writes
/// bench_results/BENCH_soa.json. Paired, order-alternating repetitions
/// with one untimed warm-up, exactly like the expr A/B. Exit status gates
/// CI: the columnar stage must reach 1.5x row-major, block
/// hash-partitioning 1.3x the per-row scatter, and the join's columnar
/// ingest 1.2x the row-major shim.
int RunSoaAb(bool quick) {
  const int n = quick ? 300000 : 2000000;
  const int channel_rows = quick ? 1 << 16 : 1 << 17;
  const int partition_rows = quick ? 1 << 16 : 1 << 19;
  const int join_rows = quick ? 1 << 16 : 1 << 19;
  const int repetitions = quick ? 5 : 9;
  std::vector<SimpleEvent> events = MakeEvents(TypeA(), n, 10);
  std::vector<SimpleEvent> channel_events =
      MakeEvents(TypeA(), channel_rows, 10);
  std::vector<SimpleEvent> partition_events =
      MakeEvents(TypeA(), partition_rows, 10);
  std::vector<SimpleEvent> join_events = MakeEvents(TypeA(), join_rows, 10);

  SchedAbSide col, row;
  {
    SchedAbSide warmup;
    RunSoaStageOnce(/*columnar=*/true, events, &warmup);
    RunSoaStageOnce(/*columnar=*/false, events, &warmup);
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    const bool col_first = (rep % 2) == 0;
    RunSoaStageOnce(col_first, events, col_first ? &col : &row);
    RunSoaStageOnce(!col_first, events, col_first ? &row : &col);
  }
  if (col.matches != row.matches) {
    std::fprintf(stderr,
                 "soa A/B: stage checksums diverged (columnar %lld vs "
                 "row-major %lld)\n",
                 static_cast<long long>(col.matches),
                 static_cast<long long>(row.matches));
    return 1;
  }

  SchedAbSide chan_col, chan_row;
  {
    SchedAbSide warmup;
    RunSoaChannelOnce(/*columnar=*/true, channel_events, &warmup);
    RunSoaChannelOnce(/*columnar=*/false, channel_events, &warmup);
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    const bool col_first = (rep % 2) == 0;
    RunSoaChannelOnce(col_first, channel_events,
                      col_first ? &chan_col : &chan_row);
    RunSoaChannelOnce(!col_first, channel_events,
                      col_first ? &chan_row : &chan_col);
  }
  if (chan_col.matches != chan_row.matches) {
    std::fprintf(stderr, "soa A/B: channel row counts diverged\n");
    return 1;
  }

  SchedAbSide part_col, part_row;
  {
    SchedAbSide warmup;
    RunHashPartitionOnce(/*columnar=*/true, partition_events, &warmup);
    RunHashPartitionOnce(/*columnar=*/false, partition_events, &warmup);
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    const bool col_first = (rep % 2) == 0;
    RunHashPartitionOnce(col_first, partition_events,
                         col_first ? &part_col : &part_row);
    RunHashPartitionOnce(!col_first, partition_events,
                         col_first ? &part_row : &part_col);
  }
  if (part_col.matches != part_row.matches) {
    std::fprintf(stderr,
                 "soa A/B: hash-partition checksums diverged (columnar %lld "
                 "vs row-major %lld)\n",
                 static_cast<long long>(part_col.matches),
                 static_cast<long long>(part_row.matches));
    return 1;
  }

  SchedAbSide join_col, join_row;
  {
    SchedAbSide warmup;
    RunJoinIngestOnce(/*columnar=*/true, join_events, &warmup);
    RunJoinIngestOnce(/*columnar=*/false, join_events, &warmup);
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    const bool col_first = (rep % 2) == 0;
    RunJoinIngestOnce(col_first, join_events,
                      col_first ? &join_col : &join_row);
    RunJoinIngestOnce(!col_first, join_events,
                      col_first ? &join_row : &join_col);
  }
  if (join_col.matches != join_row.matches) {
    std::fprintf(stderr,
                 "soa A/B: join-ingest checksums diverged (columnar %lld vs "
                 "row-major %lld)\n",
                 static_cast<long long>(join_col.matches),
                 static_cast<long long>(join_row.matches));
    return 1;
  }

  const double stage_speedup = MedianPairedRatio(col, row);
  const double channel_speedup = MedianPairedRatio(chan_col, chan_row);
  const double partition_speedup = MedianPairedRatio(part_col, part_row);
  const double join_speedup = MedianPairedRatio(join_col, join_row);
  constexpr double kGate = 1.5;
  constexpr double kPartitionGate = 1.3;
  constexpr double kJoinGate = 1.2;
  const bool gate_passed = stage_speedup >= kGate &&
                           partition_speedup >= kPartitionGate &&
                           join_speedup >= kJoinGate;

  char buf[256];
  std::string json = "{\n";
  json += "  \"benchmark\": \"soa_ab\",\n";
  json +=
      "  \"stage\": \"compiled filter(3 terms)+key:=attr, 64-row blocks\",\n";
  json += "  \"simd\": ";
#ifdef CEP2ASP_SIMD
  json += "true,\n";
#else
  json += "false,\n";
#endif
  json += "  \"tuples_per_run\": " + std::to_string(n) + ",\n";
  json += "  \"repetitions\": " + std::to_string(repetitions) + ",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"stage_ab\": {\"columnar_tps\": %.0f, \"row_tps\": %.0f, "
                "\"speedup\": %.2f},\n",
                Median(col.tps), Median(row.tps), stage_speedup);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"channel_ab\": {\"rows\": %d, \"columnar_tps\": %.0f, "
                "\"row_tps\": %.0f, \"speedup\": %.2f},\n",
                channel_rows, Median(chan_col.tps), Median(chan_row.tps),
                channel_speedup);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"hash_partition_ab\": {\"rows\": %d, \"parallelism\": 4, "
                "\"columnar_tps\": %.0f, \"row_tps\": %.0f, "
                "\"speedup\": %.2f, \"gate_min_speedup\": %.2f},\n",
                partition_rows, Median(part_col.tps), Median(part_row.tps),
                partition_speedup, kPartitionGate);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"join_ingest_ab\": {\"rows\": %d, "
                "\"columnar_tps\": %.0f, \"row_tps\": %.0f, "
                "\"speedup\": %.2f, \"gate_min_speedup\": %.2f},\n",
                join_rows, Median(join_col.tps), Median(join_row.tps),
                join_speedup, kJoinGate);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"gate_min_stage_speedup\": %.2f,\n  \"gate_passed\": %s\n",
                kGate, gate_passed ? "true" : "false");
  json += buf;
  json += "}\n";

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const char* path = "bench_results/BENCH_soa.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  std::printf("wrote %s\n", path);
  if (!gate_passed) {
    std::fprintf(stderr,
                 "soa A/B gate FAILED: stage %.2fx (floor %.2f), "
                 "hash-partition %.2fx (floor %.2f), join ingest %.2fx "
                 "(floor %.2f)\n",
                 stage_speedup, kGate, partition_speedup, kPartitionGate,
                 join_speedup, kJoinGate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cep2asp

// Custom main: `--quick` / `--chain-ab` run the chain A/B and emit
// BENCH_chain.json; `--sched-ab` / `--sched-ab-quick` run the task-pool
// vs legacy A/B and emit BENCH_sched.json; `--expr-ab` /
// `--expr-ab-quick` run the compiled vs interpreted expression A/B and
// emit BENCH_expr.json; `--soa-ab` / `--soa-ab-quick` run the row-major
// vs columnar A/B and emit BENCH_soa.json; anything else goes to
// google-benchmark as usual.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") return cep2asp::RunChainAb(/*quick=*/true);
    if (arg == "--chain-ab") return cep2asp::RunChainAb(/*quick=*/false);
    if (arg == "--sched-ab") return cep2asp::RunSchedAb(/*quick=*/false);
    if (arg == "--sched-ab-quick") return cep2asp::RunSchedAb(/*quick=*/true);
    if (arg == "--expr-ab") return cep2asp::RunExprAb(/*quick=*/false);
    if (arg == "--expr-ab-quick") return cep2asp::RunExprAb(/*quick=*/true);
    if (arg == "--soa-ab") return cep2asp::RunSoaAb(/*quick=*/false);
    if (arg == "--soa-ab-quick") return cep2asp::RunSoaAb(/*quick=*/true);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
