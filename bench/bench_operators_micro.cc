// Micro-benchmarks of the engine operators on google-benchmark: the raw
// costs the cluster simulator's CostProfile abstracts (per-tuple filter
// work, per-pair join work, per-run NFA work). Useful for regression
// tracking and for sanity-checking calibration constants.

#include <benchmark/benchmark.h>

#include "asp/sliding_window_join.h"
#include "asp/interval_join.h"
#include "asp/stateless.h"
#include "cep/cep_operator.h"
#include "runtime/executor.h"
#include "runtime/vector_source.h"
#include "sea/pattern.h"

namespace cep2asp {
namespace {

std::vector<SimpleEvent> MakeEvents(EventTypeId type, int count,
                                    Timestamp step) {
  std::vector<SimpleEvent> events;
  events.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    SimpleEvent e;
    e.type = type;
    e.id = 1;
    e.ts = static_cast<Timestamp>(i) * step;
    e.value = static_cast<double>(i % 100);
    events.push_back(e);
  }
  return events;
}

EventTypeId TypeA() {
  static EventTypeId type = EventTypeRegistry::Global()->RegisterOrGet("uA");
  return type;
}
EventTypeId TypeB() {
  static EventTypeId type = EventTypeRegistry::Global()->RegisterOrGet("uB");
  return type;
}

void BM_FilterThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    JobGraph graph;
    NodeId src = graph.AddSource(
        std::make_unique<VectorSource>("s", MakeEvents(TypeA(), n, 10)));
    NodeId filter = graph.AddOperatorAfter(
        src, std::make_unique<FilterOperator>(
                 [](const Tuple& t) { return t.event(0).value < 50; }));
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(filter, std::move(sink_op));
    ExecutionResult result = RunJob(&graph, sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FilterThroughput)->Arg(100000);

void BM_SlidingWindowJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    JobGraph graph;
    NodeId l = graph.AddSource(
        std::make_unique<VectorSource>("l", MakeEvents(TypeA(), n, 100)));
    NodeId r = graph.AddSource(
        std::make_unique<VectorSource>("r", MakeEvents(TypeB(), n, 100)));
    Predicate seq;
    seq.Add(Comparison::AttrAttr({0, Attribute::kTs}, CmpOp::kLt,
                                 {1, Attribute::kTs}));
    NodeId join = graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
        SlidingWindowSpec{10000, 1000}, seq, TimestampMode::kMax));
    CEP2ASP_CHECK_OK(graph.Connect(l, join, 0));
    CEP2ASP_CHECK_OK(graph.Connect(r, join, 1));
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(join, std::move(sink_op));
    ExecutionResult result = RunJob(&graph, sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_SlidingWindowJoin)->Arg(20000);

void BM_IntervalJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    JobGraph graph;
    NodeId l = graph.AddSource(
        std::make_unique<VectorSource>("l", MakeEvents(TypeA(), n, 100)));
    NodeId r = graph.AddSource(
        std::make_unique<VectorSource>("r", MakeEvents(TypeB(), n, 100)));
    NodeId join = graph.AddOperator(std::make_unique<IntervalJoinOperator>(
        IntervalBounds::ForSequence(10000), Predicate(), TimestampMode::kMax));
    CEP2ASP_CHECK_OK(graph.Connect(l, join, 0));
    CEP2ASP_CHECK_OK(graph.Connect(r, join, 1));
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(join, std::move(sink_op));
    ExecutionResult result = RunJob(&graph, sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_IntervalJoin)->Arg(20000);

void BM_CepOperatorLowSelectivity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Pattern pattern = PatternBuilder()
                        .Seq(PatternBuilder::Atom(TypeA(), "e1"),
                             PatternBuilder::Atom(TypeB(), "e2"))
                        .Within(10000)
                        .SlideBy(1000)
                        .Build()
                        .ValueOrDie();
  // Interleave A and B sparsely: few runs alive at a time.
  std::vector<SimpleEvent> events;
  for (int i = 0; i < n; ++i) {
    SimpleEvent e;
    e.type = (i % 64 == 0) ? TypeA() : TypeB();
    e.id = 1;
    e.ts = static_cast<Timestamp>(i) * 500;
    events.push_back(e);
  }
  for (auto _ : state) {
    JobGraph graph;
    NodeId src = graph.AddSource(std::make_unique<VectorSource>("s", events));
    NodeId cep = graph.AddOperatorAfter(
        src, CepOperator::FromPattern(pattern).ValueOrDie());
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(cep, std::move(sink_op));
    ExecutionResult result = RunJob(&graph, sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CepOperatorLowSelectivity)->Arg(100000);

void BM_CepOperatorRunHeavy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Pattern pattern = PatternBuilder()
                        .Seq(PatternBuilder::Atom(TypeA(), "e1"),
                             PatternBuilder::Atom(TypeB(), "e2"))
                        .Within(60 * kMillisPerMinute)
                        .Build()
                        .ValueOrDie();
  std::vector<SimpleEvent> events = MakeEvents(TypeA(), n, 10);  // runs pile up
  for (auto _ : state) {
    JobGraph graph;
    NodeId src = graph.AddSource(std::make_unique<VectorSource>("s", events));
    NodeId cep = graph.AddOperatorAfter(
        src, CepOperator::FromPattern(pattern).ValueOrDie());
    auto sink_op = std::make_unique<CollectSink>(false);
    CollectSink* sink = sink_op.get();
    graph.AddOperatorAfter(cep, std::move(sink_op));
    ExecutionResult result = RunJob(&graph, sink);
    benchmark::DoNotOptimize(result.matches_emitted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CepOperatorRunHeavy)->Arg(3000);

}  // namespace
}  // namespace cep2asp
