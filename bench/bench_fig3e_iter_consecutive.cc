// Regenerates Figure 3e: iterations ITER^m_2 with a constraint between
// subsequent events (v_n.value < v_{n+1}.value), m = 3, 6, 9.
//
// The filter selectivity grows with m (as in the paper, which keeps the
// output selectivity roughly constant across m: longer chains need more
// relevant events in the window). Expected shape: FCEP decreases with m
// (each accepted event must be tested against its ancestor in every
// partial match), FASP stays roughly constant, FASP-O2 (UDF chain
// aggregation) leads.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bench_util.h"
#include "harness/paper_patterns.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

int Main(int argc, char** argv) {
  int scale = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--scale") scale = std::atoi(argv[i + 1]);
  }
  const int rounds = 250 * scale;
  const Timestamp window = 15 * kMin;
  const int sensors = 8;

  PaperPatterns patterns;
  PresetOptions preset;
  preset.num_sensors = sensors;
  preset.events_per_sensor = rounds;
  Workload w = MakeQnVWorkload(preset);

  ResultTable table(
      "Figure 3e: ITER^m with constraints between subsequent events",
      {"m", "approach", "throughput", "matches", "status"});

  for (int m : {3, 6, 9}) {
    // Keep roughly m+4 relevant events per window, so the output
    // selectivity stays in the same ballpark across m while longer
    // patterns still find chains (paper §5.2.2 adjusts constraint
    // selectivities the same way).
    double sel = static_cast<double>(m + 4) / (15.0 * sensors);
    Pattern p = patterns.IterConsecutive(m, sel, window, kMin).ValueOrDie();
    std::vector<ApproachResult> results;
    results.push_back(MeasureFcep(p, w));
    results.push_back(MeasureFasp(p, w, {}, "FASP"));
    TranslatorOptions o1;
    o1.use_interval_join = true;
    results.push_back(MeasureFasp(p, w, o1, "FASP-O1"));
    TranslatorOptions o2;
    o2.use_aggregation_for_iter = true;
    results.push_back(MeasureFasp(p, w, o2, "FASP-O2"));
    for (const ApproachResult& r : results) {
      table.AddRow({std::to_string(m), r.approach,
                    r.ok ? FormatTps(r.throughput_tps) : "-",
                    std::to_string(r.matches),
                    r.ok ? "ok" : ("FAIL: " + r.error)});
    }
  }

  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("fig3e_iter_consecutive"));
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main(int argc, char** argv) { return cep2asp::Main(argc, argv); }
