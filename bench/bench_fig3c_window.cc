// Regenerates Figure 3c: impact of the window size on SEQ1.
//
// W sweeps 30 -> 360 minutes at low selectivity. Expected shape: FCEP's
// throughput drops as windows grow (longer partial-match lifetimes raise
// sigma_o and state), while FASP and FASP-O1 stay roughly constant; FASP
// latency stays flat, FCEP latency grows.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bench_util.h"
#include "harness/paper_patterns.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

int Main(int argc, char** argv) {
  int scale = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--scale") scale = std::atoi(argv[i + 1]);
  }
  const int rounds = 1200 * scale;
  const double sel = 0.002;

  PaperPatterns patterns;
  PresetOptions preset;
  preset.num_sensors = 32;
  preset.events_per_sensor = rounds;
  Workload w = MakeQnVWorkload(preset);

  ResultTable table(
      "Figure 3c: SEQ1 throughput/latency under increasing window size",
      {"W (min)", "approach", "throughput", "latency(mean)", "matches",
       "peak state", "status"});

  for (Timestamp window_min : {30, 90, 360}) {
    Pattern p = patterns.Seq1(sel, window_min * kMin, kMin).ValueOrDie();
    std::vector<ApproachResult> results;
    results.push_back(MeasureFcep(p, w));
    results.push_back(MeasureFasp(p, w, {}, "FASP"));
    TranslatorOptions o1;
    o1.use_interval_join = true;
    results.push_back(MeasureFasp(p, w, o1, "FASP-O1"));
    for (const ApproachResult& r : results) {
      char lat_buf[32];
      std::snprintf(lat_buf, sizeof(lat_buf), "%.1f ms", r.latency_mean_ms);
      table.AddRow({std::to_string(window_min), r.approach,
                    r.ok ? FormatTps(r.throughput_tps) : "-",
                    r.ok ? lat_buf : "-", std::to_string(r.matches),
                    HumanBytes(static_cast<double>(r.peak_state_bytes)),
                    r.ok ? "ok" : ("FAIL: " + r.error)});
    }
  }

  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("fig3c_window"));
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main(int argc, char** argv) { return cep2asp::Main(argc, argv); }
