// Regenerates Figure 3a: elementary operator performance (baseline).
//
// Three patterns, each exercising one elementary operator, measured as
// maximum sustainable throughput on the real engine:
//   SEQ1(2)   — SEQ(Q, V) over QnV data,
//   ITER3(1)  — three iterations over V,
//   NSEQ1(3)  — SEQ(Q, !PM10, V) over QnV + AQ data,
// each with a low output selectivity and W = 15 (paper §5.2.1).
//
// Expected shape: FASP above FCEP everywhere; the NSEQ gap is largest
// (the NFA evaluates the negation retrospectively over buffered events);
// FASP-O1 tracks FASP for SEQ/ITER but drops for NSEQ (frequency skew of
// the marked stream); FASP-O2 leads for ITER.

#include <cstdio>
#include <cstdlib>

#include "harness/bench_util.h"
#include "harness/paper_patterns.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

int Main(int argc, char** argv) {
  // --scale N multiplies the workload volume (default sized for seconds-
  // long runs on one core; the paper used 10M tuples on a 16-core node).
  int scale = 1;
  for (int i = 1; i + 1 < argc + 1; ++i) {
    if (std::string(argv[i]) == "--scale" && i + 1 < argc) {
      scale = std::atoi(argv[i + 1]);
    }
  }
  const int rounds = 1200 * scale;
  const Timestamp window = 15 * kMin;
  // Low-output-selectivity baseline: ~2 relevant events per window and
  // type, so matches are rare (the paper's sigma_o = 0.00005% regime).
  const double sel = 0.002;

  PaperPatterns patterns;
  PresetOptions preset;
  preset.num_sensors = 64;  // window content ~ 15 x 64 events per type
  preset.events_per_sensor = rounds;

  ResultTable table("Figure 3a: elementary operator baseline (W=15min)",
                    StandardColumns());

  // --- SEQ1(2) -----------------------------------------------------------------
  {
    Workload w = MakeQnVWorkload(preset);
    Pattern p = patterns.Seq1(sel, window, kMin).ValueOrDie();
    table.AddRow(ResultRow("SEQ1", MeasureFcep(p, w)));
    table.AddRow(ResultRow("SEQ1", MeasureFasp(p, w, {}, "FASP")));
    TranslatorOptions o1;
    o1.use_interval_join = true;
    table.AddRow(ResultRow("SEQ1", MeasureFasp(p, w, o1, "FASP-O1")));
  }

  // --- ITER3(1) ----------------------------------------------------------------
  {
    PresetOptions iter_preset = preset;
    iter_preset.events_per_sensor = rounds;
    Workload w = MakeQnVWorkload(iter_preset);
    // Keep ~8 relevant events per window: ITER under stam enumerates
    // combinations, so the relevant count governs tractability.
    Pattern p = patterns.IterThreshold(3, 8.0 / (15 * 64), window, kMin)
                    .ValueOrDie();
    table.AddRow(ResultRow("ITER3", MeasureFcep(p, w)));
    table.AddRow(ResultRow("ITER3", MeasureFasp(p, w, {}, "FASP")));
    TranslatorOptions o1;
    o1.use_interval_join = true;
    table.AddRow(ResultRow("ITER3", MeasureFasp(p, w, o1, "FASP-O1")));
    TranslatorOptions o2;
    o2.use_aggregation_for_iter = true;
    table.AddRow(ResultRow("ITER3", MeasureFasp(p, w, o2, "FASP-O2")));
  }

  // --- NSEQ1(3) ----------------------------------------------------------------
  {
    Workload w = MakeCombinedWorkload(preset);
    Pattern p = patterns.Nseq1(sel, 0.02, window, kMin).ValueOrDie();
    table.AddRow(ResultRow("NSEQ1", MeasureFcep(p, w)));
    table.AddRow(ResultRow("NSEQ1", MeasureFasp(p, w, {}, "FASP")));
    TranslatorOptions o1;
    o1.use_interval_join = true;
    table.AddRow(ResultRow("NSEQ1", MeasureFasp(p, w, o1, "FASP-O1")));
  }

  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("fig3a_baseline"));
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main(int argc, char** argv) { return cep2asp::Main(argc, argv); }
