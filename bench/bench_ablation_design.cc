// Ablation benches for the design choices DESIGN.md calls out:
//
//  A1  Slide size: Theorem 2 demands slide <= event granularity for
//      lossless detection; larger slides are faster but lose edge matches.
//      Measures throughput AND recall (matches vs slide=1min baseline).
//  A2  Intermediate-join duplicate handling: first-window pair emission
//      (the repository's choice) vs forwarding every per-overlap duplicate
//      through the chain.
//  A3  Event-time redefinition after joins: min-timestamp (paper §4.2.2,
//      correct) vs max-timestamp for partial matches — the wrong choice
//      assigns windows that no longer witness the whole match span, so
//      pairs up to 2W apart slip through as spurious matches.

#include <cstdio>

#include "asp/sliding_window_join.h"
#include "harness/bench_util.h"
#include "harness/paper_patterns.h"
#include "runtime/vector_source.h"
#include "tests/test_util.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

void AblateSlideSize(const PaperPatterns& patterns, const Workload& w) {
  ResultTable table("A1: slide size vs throughput and recall (SEQ3, W=15min)",
                    {"slide", "throughput", "distinct matches", "recall"});
  int64_t baseline_matches = -1;
  for (Timestamp slide_min : {1, 3, 5, 15}) {
    Pattern p = patterns.SeqN(3, 0.01, 15 * kMin, slide_min * kMin).ValueOrDie();
    // Use the deduplicating final stage so "matches" counts distinct ones.
    TranslatorOptions options;
    options.deduplicate_output = true;
    ApproachResult r = MeasureFasp(p, w, options, "FASP");
    CEP2ASP_CHECK(r.ok) << r.error;
    if (baseline_matches < 0) baseline_matches = r.matches;
    char recall[32];
    std::snprintf(recall, sizeof(recall), "%.1f%%",
                  baseline_matches > 0
                      ? 100.0 * static_cast<double>(r.matches) /
                            static_cast<double>(baseline_matches)
                      : 100.0);
    table.AddRow({std::to_string(slide_min) + "min",
                  FormatTps(r.throughput_tps), std::to_string(r.matches),
                  recall});
  }
  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("ablation_slide"));
}

void AblateIntermediateDuplicates(const PaperPatterns& patterns,
                                  const Workload& w) {
  // Same SEQ4 plan built twice: once with first-window pair emission in
  // the intermediate joins (the default), once forwarding every overlap
  // duplicate (pure per-window semantics).
  ResultTable table(
      "A2: intermediate sliding joins — dedup vs per-overlap duplicates "
      "(SEQ4, W=15min)",
      {"intermediate emission", "throughput", "emissions", "status"});
  Pattern p = patterns.SeqN(4, 0.01, 15 * kMin, kMin).ValueOrDie();

  ApproachResult deduped = MeasureFasp(p, w, {}, "first-window");
  table.AddRow({"first-window (default)",
                deduped.ok ? FormatTps(deduped.throughput_tps) : "-",
                std::to_string(deduped.matches),
                deduped.ok ? "ok" : deduped.error});

  // Rebuild the same logical plan but flip every intermediate join to
  // duplicate-forwarding.
  Translator translator;
  LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
  std::function<void(LogicalOp*)> undedup = [&undedup](LogicalOp* op) {
    op->dedup_pairs = false;
    for (auto& input : op->inputs) undedup(input.get());
  };
  undedup(plan.root.get());
  auto query = CompilePlan(plan, w.MakeSourceFactory(), false);
  CEP2ASP_CHECK(query.ok()) << query.status();
  ExecutorOptions exec;
  exec.watermark_interval = 256;
  ExecutionResult result = RunJob(&query->graph, query->sink, exec);
  table.AddRow({"per-overlap duplicates",
                result.ok ? FormatTps(result.throughput_tps()) : std::string("-"),
                std::to_string(result.matches_emitted),
                result.ok ? "ok" : result.error});
  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("ablation_intermediate_dup"));
}

void AblateTimestampMode(const PaperPatterns& patterns, const Workload& w) {
  // §4.2.2: partial matches must carry the minimum constituent timestamp
  // so later window assignments witness the whole span. Using max instead
  // admits combinations whose first and last events are up to 2W apart —
  // spurious matches that violate the pairwise window constraint.
  ResultTable table(
      "A3: event-time redefinition for partial matches (SEQ3, W=15min)",
      {"partial-match ts", "distinct matches", "spurious vs min"});
  Pattern p = patterns.SeqN(3, 0.015, 15 * kMin, kMin).ValueOrDie();

  Translator translator;
  int64_t min_matches = 0;
  for (TimestampMode mode : {TimestampMode::kMin, TimestampMode::kMax}) {
    LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
    std::function<void(LogicalOp*, bool)> set_mode = [&](LogicalOp* op,
                                                         bool is_root) {
      if (op->kind == LogicalOpKind::kWindowJoin && !is_root) op->ts_mode = mode;
      for (auto& input : op->inputs) set_mode(input.get(), false);
    };
    set_mode(plan.root.get(), true);
    auto query = CompilePlan(plan, w.MakeSourceFactory(), true);
    CEP2ASP_CHECK(query.ok()) << query.status();
    ExecutionResult result = RunJob(&query->graph, query->sink);
    CEP2ASP_CHECK(result.ok) << result.error;
    int64_t distinct = static_cast<int64_t>(
        test::MatchSet(query->sink->tuples()).size());
    if (mode == TimestampMode::kMin) min_matches = distinct;
    char spurious[32];
    std::snprintf(spurious, sizeof(spurious), "+%.1f%%",
                  min_matches > 0
                      ? 100.0 * (static_cast<double>(distinct) /
                                     static_cast<double>(min_matches) -
                                 1.0)
                      : 0.0);
    table.AddRow({mode == TimestampMode::kMin ? "min (paper)" : "max (wrong)",
                  std::to_string(distinct), spurious});
  }
  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("ablation_ts_mode"));
}

int Main() {
  PaperPatterns patterns;
  PresetOptions preset;
  preset.num_sensors = 48;
  preset.events_per_sensor = 400;
  Workload w = MakeCombinedWorkload(preset);

  AblateSlideSize(patterns, w);
  AblateIntermediateDuplicates(patterns, w);
  AblateTimestampMode(patterns, w);
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main() { return cep2asp::Main(); }
