// Regenerates Figure 3f: iterations ITER^m_3 with a threshold filter,
// m = 3, 6, 9.
//
// Expected shape: FCEP decreases with m (more relevant events live in the
// operator state), but less sharply than with consecutive-event
// constraints (Figure 3e); FASP and its optimizations stay roughly
// constant, with FASP-O2 (count aggregation) on top.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bench_util.h"
#include "harness/paper_patterns.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

int Main(int argc, char** argv) {
  int scale = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--scale") scale = std::atoi(argv[i + 1]);
  }
  const int rounds = 250 * scale;
  const Timestamp window = 15 * kMin;
  const int sensors = 8;

  PaperPatterns patterns;
  PresetOptions preset;
  preset.num_sensors = sensors;
  preset.events_per_sensor = rounds;
  Workload w = MakeQnVWorkload(preset);

  ResultTable table("Figure 3f: ITER^m with threshold filters",
                    {"m", "approach", "throughput", "matches", "status"});

  for (int m : {3, 6, 9}) {
    // Hold the match combinatorics C(k, m) roughly constant across m by
    // keeping k ~ m+2 relevant events per window (the paper holds
    // sigma_o constant the same way).
    double sel = static_cast<double>(m + 2) / (15.0 * sensors);
    Pattern p = patterns.IterThreshold(m, sel, window, kMin).ValueOrDie();
    std::vector<ApproachResult> results;
    results.push_back(MeasureFcep(p, w));
    results.push_back(MeasureFasp(p, w, {}, "FASP"));
    TranslatorOptions o1;
    o1.use_interval_join = true;
    results.push_back(MeasureFasp(p, w, o1, "FASP-O1"));
    TranslatorOptions o2;
    o2.use_aggregation_for_iter = true;
    results.push_back(MeasureFasp(p, w, o2, "FASP-O2"));
    for (const ApproachResult& r : results) {
      table.AddRow({std::to_string(m), r.approach,
                    r.ok ? FormatTps(r.throughput_tps) : "-",
                    std::to_string(r.matches),
                    r.ok ? "ok" : ("FAIL: " + r.error)});
    }
  }

  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("fig3f_iter_threshold"));
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main(int argc, char** argv) { return cep2asp::Main(argc, argv); }
