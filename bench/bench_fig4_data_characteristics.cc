// Regenerates Figure 4: impact of data characteristics (number of keys).
//
// SEQ7(3) (sigma_o ~ 1%, W = 15) and ITER4(1) (sigma_o ~ 1%, W = 90) with
// Equi-Join key partitioning by sensor id (O3), on one simulated worker
// with 16 task slots. Each added sensor increases both the data volume
// and the key count (paper §5.2.3).
//
// The distributed runs use the discrete-time cluster simulator (this
// machine has a single core), with CPU cost constants calibrated against
// the real engine of this repository. Expected shape: FASP above FCEP for
// all key counts; FCEP stagnates beyond 16 keys (keys > task slots) and
// fails for ingestion rates past ~1-2M tpl/s from memory exhaustion,
// while the FASP variants sustain multi-M tpl/s; O2+O3 leads for ITER4.
//
// Additionally, a small-scale validation block runs the 16-key workloads
// on the *real* engine to confirm the ordering FASP > FCEP holds outside
// the simulator.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/calibration.h"
#include "cluster/sim.h"
#include "harness/bench_util.h"
#include "harness/paper_patterns.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

SimJobSpec MakeSeq7Spec(SimApproach approach, int keys) {
  SimJobSpec spec;
  spec.approach = approach;
  spec.pattern_length = 3;
  spec.num_streams = 3;
  spec.filter_selectivity = 0.25;
  spec.step_selectivity = 0.08;
  spec.window_ms = 15 * kMin;
  spec.slide_ms = kMin;
  spec.num_keys = keys;
  return spec;
}

SimJobSpec MakeIter4Spec(SimApproach approach, int keys) {
  SimJobSpec spec;
  spec.approach = approach;
  spec.pattern_length = 4;
  spec.num_streams = 1;
  spec.filter_selectivity = 0.25;
  spec.step_selectivity = 0.02;
  spec.window_ms = 90 * kMin;
  spec.slide_ms = kMin;
  spec.num_keys = keys;
  return spec;
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  std::printf("calibrating cost profile against the real engine...\n");
  CostProfile costs = CalibrateCostProfile();
  std::printf("calibrated: %s\n", costs.ToString().c_str());

  ClusterSpec cluster;
  cluster.num_workers = 1;
  cluster.slots_per_worker = 16;
  cluster.memory_per_worker_bytes = 200.0 * 1024 * 1024 * 1024;
  ClusterSimulator sim(cluster, costs);

  ResultTable table(
      "Figure 4: throughput vs number of keys (1 worker, 16 slots, simulated)",
      {"pattern", "keys", "approach", "max sustainable", "peak mem",
       "status"});

  const double kUpper = 64e6;
  for (int keys : {16, 32, 128}) {
    struct Row {
      const char* pattern;
      SimJobSpec spec;
    };
    std::vector<Row> rows = {
        {"SEQ7", MakeSeq7Spec(SimApproach::kFcep, keys)},
        {"SEQ7", MakeSeq7Spec(SimApproach::kFaspSliding, keys)},
        {"SEQ7", MakeSeq7Spec(SimApproach::kFaspInterval, keys)},
        {"ITER4", MakeIter4Spec(SimApproach::kFcep, keys)},
        {"ITER4", MakeIter4Spec(SimApproach::kFaspSliding, keys)},
        {"ITER4", MakeIter4Spec(SimApproach::kFaspInterval, keys)},
        {"ITER4", MakeIter4Spec(SimApproach::kFaspAggregate, keys)},
    };
    for (const Row& row : rows) {
      double tps = sim.FindMaxSustainableTps(row.spec, kUpper);
      SimResult at_peak = sim.Run(row.spec, tps, 1800.0);
      table.AddRow({row.pattern, std::to_string(keys),
                    SimApproachToString(row.spec.approach), FormatTps(tps),
                    HumanBytes(at_peak.peak_memory_bytes), "ok"});
    }
  }

  // FCEP memory-exhaustion probe: drive FCEP on SEQ7 well past its
  // sustainable rate with a realistic heap and observe the failure
  // (paper: execution failure for ingestion beyond ~1.3M tpl/s).
  {
    ClusterSpec small = cluster;
    small.memory_per_worker_bytes = 32.0 * 1024 * 1024 * 1024;
    ClusterSimulator strained(small, costs);
    SimJobSpec fcep = MakeSeq7Spec(SimApproach::kFcep, 128);
    double fail_rate = 4e6;
    SimResult result = strained.Run(fcep, fail_rate, 1800.0);
    table.AddRow({"SEQ7", "128", "FCEP @4M tpl/s, 32GB", "-",
                  HumanBytes(result.peak_memory_bytes),
                  result.failed ? "FAIL: " + result.failure_reason
                                : (result.backpressured ? "backpressure" : "ok")});
  }

  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("fig4_data_characteristics"));

  if (!quick) {
    // Real-engine validation at 16 keys (small volume, one core).
    PaperPatterns patterns;
    PresetOptions preset;
    preset.num_sensors = 16;
    preset.events_per_sensor = 400;
    Workload w = MakeCombinedWorkload(preset);
    // Sensors sample on aligned minute ticks, so the paper's one-minute
    // slide satisfies Theorem 2.
    Pattern seq7 = patterns.Seq7(0.25, 15 * kMin, kMin).ValueOrDie();

    ResultTable validation(
        "Figure 4 validation: real engine, 16 keys, small volume",
        StandardColumns());
    CepJobOptions keyed;
    keyed.keyed = true;
    validation.AddRow(ResultRow("SEQ7/16keys", MeasureFcep(seq7, w, keyed)));
    TranslatorOptions o3;
    o3.use_equi_join_keys = true;
    validation.AddRow(
        ResultRow("SEQ7/16keys", MeasureFasp(seq7, w, o3, "FASP-O3")));
    TranslatorOptions o1o3 = o3;
    o1o3.use_interval_join = true;
    validation.AddRow(
        ResultRow("SEQ7/16keys", MeasureFasp(seq7, w, o1o3, "FASP-O1+O3")));
    validation.Print();
    CEP2ASP_CHECK_OK(validation.WriteCsv("fig4_validation_real_engine"));
  }
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main(int argc, char** argv) { return cep2asp::Main(argc, argv); }
