// Regenerates Figure 5: resource utilization (memory, CPU) over time for
// SEQ7 and ITER4 with 32 and 128 keys, each approach running at its own
// maximum sustainable rate on the simulated one-worker cluster.
//
// Expected shape: FCEP's memory is equal to or higher than FASP's despite
// ingesting at a lower rate (NFA partial-match state plus lazily
// reclaimed outdated runs -> slow creep); no approach saturates the CPU
// fully; FASP-O3 (sliding windows, constantly created and recomputed)
// shows the highest CPU use among the FASP variants.

#include <cstdio>
#include <string>

#include "cluster/calibration.h"
#include "cluster/sim.h"
#include "harness/bench_util.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

SimJobSpec MakeSpec(const std::string& pattern, SimApproach approach,
                    int keys) {
  SimJobSpec spec;
  spec.approach = approach;
  if (pattern == "SEQ7") {
    spec.pattern_length = 3;
    spec.num_streams = 3;
    spec.window_ms = 15 * kMin;
    spec.step_selectivity = 0.08;
  } else {  // ITER4
    spec.pattern_length = 4;
    spec.num_streams = 1;
    spec.window_ms = 90 * kMin;
    spec.step_selectivity = 0.02;
  }
  spec.filter_selectivity = 0.25;
  spec.slide_ms = kMin;
  spec.num_keys = keys;
  return spec;
}

int Main() {
  std::printf("calibrating cost profile against the real engine...\n");
  CostProfile costs = CalibrateCostProfile();
  ClusterSpec cluster;
  cluster.num_workers = 1;
  cluster.slots_per_worker = 16;
  cluster.memory_per_worker_bytes = 200.0 * 1024 * 1024 * 1024;
  ClusterSimulator sim(cluster, costs);

  const double kDuration = 30 * 60;  // 30 minutes, as in the paper
  const double kSample = 5 * 60;     // 5-minute readout granularity

  for (const char* pattern_name : {"SEQ7", "ITER4"}) {
    const std::string pattern = pattern_name;
    ResultTable table(
        "Figure 5 (" + pattern + "): memory (GB) and CPU (%) over time",
        {"approach", "keys", "t=0m", "t=5m", "t=10m", "t=15m", "t=20m",
         "t=25m", "t=30m"});
    for (int keys : {32, 128}) {
      for (SimApproach approach :
           {SimApproach::kFcep, SimApproach::kFaspSliding,
            SimApproach::kFaspInterval, SimApproach::kFaspAggregate}) {
        if (pattern == "SEQ7" && approach == SimApproach::kFaspAggregate) {
          continue;  // O2 applies to iterations only
        }
        SimJobSpec spec = MakeSpec(pattern, approach, keys);
        double tps = sim.FindMaxSustainableTps(spec, 64e6);
        SimResult run = sim.Run(spec, tps, kDuration, kSample);

        std::vector<std::string> mem_row = {
            std::string(SimApproachToString(approach)) + " mem",
            std::to_string(keys)};
        std::vector<std::string> cpu_row = {
            std::string(SimApproachToString(approach)) + " cpu",
            std::to_string(keys)};
        for (const SimSample& sample : run.timeline) {
          char mem[32], cpu[32];
          std::snprintf(mem, sizeof(mem), "%.1f GB",
                        sample.memory_bytes / (1024.0 * 1024 * 1024));
          std::snprintf(cpu, sizeof(cpu), "%.0f%%",
                        100.0 * sample.cpu_fraction);
          mem_row.push_back(mem);
          cpu_row.push_back(cpu);
        }
        table.AddRow(mem_row);
        table.AddRow(cpu_row);
      }
    }
    table.Print();
    CEP2ASP_CHECK_OK(table.WriteCsv(
        pattern == "SEQ7" ? "fig5_resources_seq7" : "fig5_resources_iter4"));
  }
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main() { return cep2asp::Main(); }
