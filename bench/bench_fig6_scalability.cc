// Regenerates Figure 6: scale-out over 1, 2, and 4 workers (16 slots
// each) for SEQ7 and ITER4 with 128 keys — plus a measured column from
// the real threaded engine running keyed O3 plans at parallelism 1/2/4.
//
// Expected shape: both approaches scale with added workers (more slots ->
// more key parallelism, more aggregate memory); FCEP gains the larger
// factor (it starts memory/GC-bound) but never reaches the FASP variants,
// which stay on average ~60% ahead (paper §5.2.5). The measured rows
// cross-check the simulator's scaling curve: hash-partitioned subtasks on
// the threaded executor, speedup relative to parallelism 1. Actual
// speedup is bounded by the host's core count (reported below): on a
// single-core container the measured column shows ~1x and only validates
// result stability, not scale-out.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "cluster/calibration.h"
#include "cluster/sim.h"
#include "harness/bench_util.h"
#include "runtime/threaded_executor.h"
#include "translator/translator.h"
#include "workload/generator.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

SimJobSpec MakeSpec(const std::string& pattern, SimApproach approach) {
  SimJobSpec spec;
  spec.approach = approach;
  if (pattern == "SEQ7") {
    spec.pattern_length = 3;
    spec.num_streams = 3;
    spec.window_ms = 15 * kMin;
    spec.step_selectivity = 0.08;
  } else {
    spec.pattern_length = 4;
    spec.num_streams = 1;
    spec.window_ms = 90 * kMin;
    spec.step_selectivity = 0.02;
  }
  spec.filter_selectivity = 0.25;
  spec.slide_ms = kMin;
  spec.num_keys = 128;
  return spec;
}

/// SEQ(A, B, C) with equi-join id predicates: O3 extracts a by-attribute
/// key plan, so the join stages hash-partition over the 128 sensor ids.
Pattern KeyedSeq3() {
  Predicate filter;
  filter.Add(Comparison::AttrConst({0, Attribute::kValue}, CmpOp::kLt, 45));
  EventTypeId a = EventTypeRegistry::Global()->RegisterOrGet("Fig6A");
  EventTypeId b = EventTypeRegistry::Global()->RegisterOrGet("Fig6B");
  EventTypeId c = EventTypeRegistry::Global()->RegisterOrGet("Fig6C");
  return PatternBuilder()
      .Seq(PatternBuilder::Atom(a, "e1", filter),
           PatternBuilder::Atom(b, "e2", filter),
           PatternBuilder::Atom(c, "e3", filter))
      .Where(Comparison::AttrAttr({0, Attribute::kId}, CmpOp::kEq,
                                  {1, Attribute::kId}))
      .Where(Comparison::AttrAttr({1, Attribute::kId}, CmpOp::kEq,
                                  {2, Attribute::kId}))
      .Within(6 * kMin)
      .Build()
      .ValueOrDie();
}

Workload MakeKeyedWorkload(int scale) {
  Workload workload;
  EventTypeId types[3] = {
      EventTypeRegistry::Global()->RegisterOrGet("Fig6A"),
      EventTypeRegistry::Global()->RegisterOrGet("Fig6B"),
      EventTypeRegistry::Global()->RegisterOrGet("Fig6C")};
  for (EventTypeId type : types) {
    StreamSpec spec;
    spec.type = type;
    spec.num_sensors = 128;  // 128 distinct keys, as in the paper's fig6
    spec.events_per_sensor = 300 * scale;
    spec.period = kMin;
    spec.align_to_period = true;
    spec.seed = 412 + type;
    workload.AddStream(spec);
  }
  return workload;
}

int Main(int argc, char** argv) {
  int scale = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--scale") scale = std::atoi(argv[i + 1]);
  }

  std::printf("calibrating cost profile against the real engine...\n");
  CostProfile costs = CalibrateCostProfile();

  ResultTable table(
      "Figure 6: scalability over workers (128 keys; simulated + measured)",
      {"pattern", "workers", "approach", "engine", "max sustainable",
       "speedup vs 1", "skew", "status"});

  for (const char* pattern_name : {"SEQ7", "ITER4"}) {
    const std::string pattern = pattern_name;
    for (SimApproach approach :
         {SimApproach::kFcep, SimApproach::kFaspSliding,
          SimApproach::kFaspInterval, SimApproach::kFaspAggregate}) {
      if (pattern == "SEQ7" && approach == SimApproach::kFaspAggregate) {
        continue;
      }
      double base_tps = 0;
      for (int workers : {1, 2, 4}) {
        ClusterSpec cluster;
        cluster.num_workers = workers;
        cluster.slots_per_worker = 16;
        cluster.memory_per_worker_bytes = 200.0 * 1024 * 1024 * 1024;
        ClusterSimulator sim(cluster, costs);
        SimJobSpec spec = MakeSpec(pattern, approach);
        double tps = sim.FindMaxSustainableTps(spec, 256e6);
        if (workers == 1) base_tps = tps;
        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      base_tps > 0 ? tps / base_tps : 0.0);
        table.AddRow({pattern, std::to_string(workers),
                      SimApproachToString(approach), "simulated",
                      FormatTps(tps), speedup, "-", "ok"});
      }
    }
  }

  // --- measured: threaded engine, keyed O3 parallelism -----------------------
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("running measured column on the threaded engine (%u core%s)...\n",
              cores, cores == 1 ? "" : "s");
  Pattern keyed = KeyedSeq3();
  // Three engine variants per parallelism level: the task-pool scheduler
  // with chaining ("measured"), the task pool with every forward edge
  // paying a real exchange ("measured-nochain"), and the legacy
  // thread-per-subtask executor ("measured-legacy") — the scheduler A/B on
  // the same plan and data.
  struct EngineVariant {
    const char* name;
    bool chaining;
    bool task_scheduler;
  };
  constexpr EngineVariant kVariants[] = {
      {"measured", true, true},
      {"measured-nochain", false, true},
      {"measured-legacy", true, false},
  };
  double measured_base[3] = {0, 0, 0};  // indexed by variant
  double measured_p4 = 0;
  int64_t base_matches = -1;
  for (int parallelism : {1, 2, 4}) {
    for (size_t variant = 0; variant < 3; ++variant) {
      const EngineVariant& v = kVariants[variant];
      TranslatorOptions o3;
      o3.use_equi_join_keys = true;
      o3.parallelism = parallelism;
      Workload workload = MakeKeyedWorkload(scale);
      auto compiled = TranslatePattern(keyed, o3, workload.MakeSourceFactory(),
                                       /*store_matches=*/false);
      CEP2ASP_CHECK(compiled.ok()) << compiled.status();
      const char* engine = v.name;
      const bool chaining = v.chaining;
      ThreadedExecutorOptions exec_options;
      exec_options.enable_chaining = chaining;
      exec_options.use_task_scheduler = v.task_scheduler;
      ThreadedExecutor executor(&compiled->graph, exec_options);
      ExecutionResult result = executor.Run(compiled->sink);
      char speedup[32], skew[32];
      if (!result.ok) {
        table.AddRow({"SEQ3eq", std::to_string(parallelism), "FASP-O3",
                      engine, "-", "-", "-", result.error});
        continue;
      }
      double& base = measured_base[variant];
      if (parallelism == 1) {
        base = result.throughput_tps();
        if (variant == 0) base_matches = result.matches_emitted;
      }
      if (parallelism == 4 && variant == 0) {
        measured_p4 = result.throughput_tps();
      }
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    base > 0 ? result.throughput_tps() / base : 0.0);
      double max_imbalance = 0;
      for (const PartitionSkew& s : result.partition_skew) {
        max_imbalance = std::max(max_imbalance, s.imbalance());
      }
      std::snprintf(skew, sizeof(skew), "%.2f", max_imbalance);
      const bool same_matches =
          base_matches < 0 || result.matches_emitted == base_matches;
      table.AddRow({"SEQ3eq", std::to_string(parallelism), "FASP-O3", engine,
                    FormatTps(result.throughput_tps()), speedup,
                    parallelism > 1 ? skew : "-",
                    same_matches ? "ok" : "MATCH COUNT DIVERGED"});
    }
  }

  table.Print();
  if (measured_base[0] > 0 && measured_p4 > 0) {
    std::printf(
        "\nmeasured speedup P4/P1: %.2fx on %u host core%s (simulator models "
        "4 workers x 16 slots; expect ~1x when cores <= 1)\n",
        measured_p4 / measured_base[0], cores, cores == 1 ? "" : "s");
  }
  if (measured_base[0] > 0 && measured_base[1] > 0) {
    std::printf(
        "chaining delta at P1 (measured vs measured-nochain): %.2fx\n",
        measured_base[0] / measured_base[1]);
  }
  if (measured_base[0] > 0 && measured_base[2] > 0) {
    std::printf(
        "scheduler delta at P1 (task pool vs legacy threads): %.2fx\n",
        measured_base[0] / measured_base[2]);
  }
  CEP2ASP_CHECK_OK(table.WriteCsv("fig6_scalability"));
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main(int argc, char** argv) { return cep2asp::Main(argc, argv); }
