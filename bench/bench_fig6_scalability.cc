// Regenerates Figure 6: scale-out over 1, 2, and 4 workers (16 slots
// each) for SEQ7 and ITER4 with 128 keys.
//
// Expected shape: both approaches scale with added workers (more slots ->
// more key parallelism, more aggregate memory); FCEP gains the larger
// factor (it starts memory/GC-bound) but never reaches the FASP variants,
// which stay on average ~60% ahead (paper §5.2.5).

#include <cstdio>
#include <string>

#include "cluster/calibration.h"
#include "cluster/sim.h"
#include "harness/bench_util.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

SimJobSpec MakeSpec(const std::string& pattern, SimApproach approach) {
  SimJobSpec spec;
  spec.approach = approach;
  if (pattern == "SEQ7") {
    spec.pattern_length = 3;
    spec.num_streams = 3;
    spec.window_ms = 15 * kMin;
    spec.step_selectivity = 0.08;
  } else {
    spec.pattern_length = 4;
    spec.num_streams = 1;
    spec.window_ms = 90 * kMin;
    spec.step_selectivity = 0.02;
  }
  spec.filter_selectivity = 0.25;
  spec.slide_ms = kMin;
  spec.num_keys = 128;
  return spec;
}

int Main() {
  std::printf("calibrating cost profile against the real engine...\n");
  CostProfile costs = CalibrateCostProfile();

  ResultTable table(
      "Figure 6: scalability over workers (128 keys, 16 slots each, simulated)",
      {"pattern", "workers", "approach", "max sustainable", "speedup vs 1",
       "status"});

  for (const char* pattern_name : {"SEQ7", "ITER4"}) {
    const std::string pattern = pattern_name;
    for (SimApproach approach :
         {SimApproach::kFcep, SimApproach::kFaspSliding,
          SimApproach::kFaspInterval, SimApproach::kFaspAggregate}) {
      if (pattern == "SEQ7" && approach == SimApproach::kFaspAggregate) {
        continue;
      }
      double base_tps = 0;
      for (int workers : {1, 2, 4}) {
        ClusterSpec cluster;
        cluster.num_workers = workers;
        cluster.slots_per_worker = 16;
        cluster.memory_per_worker_bytes = 200.0 * 1024 * 1024 * 1024;
        ClusterSimulator sim(cluster, costs);
        SimJobSpec spec = MakeSpec(pattern, approach);
        double tps = sim.FindMaxSustainableTps(spec, 256e6);
        if (workers == 1) base_tps = tps;
        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      base_tps > 0 ? tps / base_tps : 0.0);
        table.AddRow({pattern, std::to_string(workers),
                      SimApproachToString(approach), FormatTps(tps), speedup,
                      "ok"});
      }
    }
  }

  table.Print();
  CEP2ASP_CHECK_OK(table.WriteCsv("fig6_scalability"));
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main() { return cep2asp::Main(); }
