// Regenerates Table 2: operator support of FCEP vs FASP.
//
// For every SEA operator (AND, SEQ, OR, ITER, NSEQ) a tiny pattern is
// built and handed to both engines; a check mark means the engine accepts
// and executes it. Selection policies: the mapping realizes
// skip-till-any-match; FCEP additionally offers skip-till-next-match and
// strict contiguity (paper §5.1.2).

#include <cstdio>

#include "harness/bench_util.h"
#include "harness/paper_patterns.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

Result<Pattern> BuildOperatorPattern(const std::string& op,
                                     const SensorTypes& types) {
  PatternBuilder builder;
  if (op == "AND") {
    builder.And(PatternBuilder::Atom(types.q, "e1"),
                PatternBuilder::Atom(types.v, "e2"));
  } else if (op == "SEQ") {
    builder.Seq(PatternBuilder::Atom(types.q, "e1"),
                PatternBuilder::Atom(types.v, "e2"));
  } else if (op == "OR") {
    builder.Or(PatternBuilder::Atom(types.q, "e1"),
               PatternBuilder::Atom(types.v, "e2"));
  } else if (op == "ITER") {
    builder.Root(PatternBuilder::Iter(types.v, "v", 3));
  } else {  // NSEQ
    builder.Nseq({types.q, "e1", {}}, {types.pm10, "e2", {}},
                 {types.v, "e3", {}});
  }
  return builder.Within(15 * kMin).Build();
}

bool FaspSupports(const Pattern& pattern, const Workload& workload) {
  auto compiled =
      TranslatePattern(pattern, {}, workload.MakeSourceFactory(), false);
  if (!compiled.ok()) return false;
  ExecutionResult result = RunJob(&compiled->graph, compiled->sink);
  return result.ok;
}

bool FcepSupports(const Pattern& pattern, const Workload& workload,
                  SelectionPolicy policy) {
  CepJobOptions options;
  options.policy = policy;
  options.store_matches = false;
  auto compiled = BuildCepJob(pattern, workload.MakeSourceFactory(), options);
  if (!compiled.ok()) return false;
  ExecutionResult result = RunJob(&compiled->graph, compiled->sink);
  return result.ok;
}

int Main() {
  SensorTypes types = SensorTypes::Get();
  PresetOptions preset;
  preset.num_sensors = 1;
  preset.events_per_sensor = 50;
  Workload workload = MakeCombinedWorkload(preset);

  ResultTable table("Table 2: Operator Support of FCEP and FASP",
                    {"engine", "AND", "SEQ", "OR", "ITER", "NSEQ",
                     "selection policies"});

  auto mark = [](bool ok) { return ok ? std::string("yes") : std::string("-"); };

  std::vector<std::string> fasp_row = {"FASP"};
  std::vector<std::string> fcep_row = {"FCEP"};
  for (const char* op_name : {"AND", "SEQ", "OR", "ITER", "NSEQ"}) {
    const std::string op = op_name;
    auto pattern = BuildOperatorPattern(op, types);
    if (!pattern.ok()) {
      std::fprintf(stderr, "pattern %s: %s\n", op.c_str(),
                   pattern.status().ToString().c_str());
      return 1;
    }
    fasp_row.push_back(mark(FaspSupports(*pattern, workload)));
    fcep_row.push_back(mark(FcepSupports(
        *pattern, workload, SelectionPolicy::kSkipTillAnyMatch)));
  }
  fasp_row.push_back("stam");
  fcep_row.push_back("stam, stnm, sc");
  table.AddRow(fasp_row);
  table.AddRow(fcep_row);

  // Policy probes on SEQ: all three must execute on FCEP.
  auto seq = BuildOperatorPattern("SEQ", types).ValueOrDie();
  bool stam = FcepSupports(seq, workload, SelectionPolicy::kSkipTillAnyMatch);
  bool stnm = FcepSupports(seq, workload, SelectionPolicy::kSkipTillNextMatch);
  bool sc = FcepSupports(seq, workload, SelectionPolicy::kStrictContiguity);
  table.Print();
  std::printf("FCEP policy probes on SEQ: stam=%s stnm=%s sc=%s\n",
              stam ? "ok" : "fail", stnm ? "ok" : "fail", sc ? "ok" : "fail");
  CEP2ASP_CHECK_OK(table.WriteCsv("table2_support"));
  return 0;
}

}  // namespace
}  // namespace cep2asp

int main() { return cep2asp::Main(); }
