file(REMOVE_RECURSE
  "CMakeFiles/cluster_planning.dir/cluster_planning.cpp.o"
  "CMakeFiles/cluster_planning.dir/cluster_planning.cpp.o.d"
  "cluster_planning"
  "cluster_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
