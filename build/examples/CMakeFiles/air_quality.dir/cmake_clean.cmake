file(REMOVE_RECURSE
  "CMakeFiles/air_quality.dir/air_quality.cpp.o"
  "CMakeFiles/air_quality.dir/air_quality.cpp.o.d"
  "air_quality"
  "air_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
