file(REMOVE_RECURSE
  "libcep2asp_cluster.a"
)
