file(REMOVE_RECURSE
  "CMakeFiles/cep2asp_cluster.dir/calibration.cc.o"
  "CMakeFiles/cep2asp_cluster.dir/calibration.cc.o.d"
  "CMakeFiles/cep2asp_cluster.dir/sim.cc.o"
  "CMakeFiles/cep2asp_cluster.dir/sim.cc.o.d"
  "libcep2asp_cluster.a"
  "libcep2asp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep2asp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
