# Empty dependencies file for cep2asp_cluster.
# This may be replaced when dependencies are built.
