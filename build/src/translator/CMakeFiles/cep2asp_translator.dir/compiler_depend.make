# Empty compiler generated dependencies file for cep2asp_translator.
# This may be replaced when dependencies are built.
