
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translator/logical_plan.cc" "src/translator/CMakeFiles/cep2asp_translator.dir/logical_plan.cc.o" "gcc" "src/translator/CMakeFiles/cep2asp_translator.dir/logical_plan.cc.o.d"
  "/root/repo/src/translator/sql_text.cc" "src/translator/CMakeFiles/cep2asp_translator.dir/sql_text.cc.o" "gcc" "src/translator/CMakeFiles/cep2asp_translator.dir/sql_text.cc.o.d"
  "/root/repo/src/translator/translator.cc" "src/translator/CMakeFiles/cep2asp_translator.dir/translator.cc.o" "gcc" "src/translator/CMakeFiles/cep2asp_translator.dir/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sea/CMakeFiles/cep2asp_sea.dir/DependInfo.cmake"
  "/root/repo/build/src/asp/CMakeFiles/cep2asp_asp.dir/DependInfo.cmake"
  "/root/repo/build/src/cep/CMakeFiles/cep2asp_cep.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cep2asp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/cep2asp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cep2asp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
