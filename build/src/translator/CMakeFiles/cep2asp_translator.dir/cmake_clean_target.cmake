file(REMOVE_RECURSE
  "libcep2asp_translator.a"
)
