file(REMOVE_RECURSE
  "CMakeFiles/cep2asp_translator.dir/logical_plan.cc.o"
  "CMakeFiles/cep2asp_translator.dir/logical_plan.cc.o.d"
  "CMakeFiles/cep2asp_translator.dir/sql_text.cc.o"
  "CMakeFiles/cep2asp_translator.dir/sql_text.cc.o.d"
  "CMakeFiles/cep2asp_translator.dir/translator.cc.o"
  "CMakeFiles/cep2asp_translator.dir/translator.cc.o.d"
  "libcep2asp_translator.a"
  "libcep2asp_translator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep2asp_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
