# Empty dependencies file for cep2asp_common.
# This may be replaced when dependencies are built.
