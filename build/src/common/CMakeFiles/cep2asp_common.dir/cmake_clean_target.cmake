file(REMOVE_RECURSE
  "libcep2asp_common.a"
)
