file(REMOVE_RECURSE
  "CMakeFiles/cep2asp_common.dir/clock.cc.o"
  "CMakeFiles/cep2asp_common.dir/clock.cc.o.d"
  "CMakeFiles/cep2asp_common.dir/logging.cc.o"
  "CMakeFiles/cep2asp_common.dir/logging.cc.o.d"
  "CMakeFiles/cep2asp_common.dir/status.cc.o"
  "CMakeFiles/cep2asp_common.dir/status.cc.o.d"
  "CMakeFiles/cep2asp_common.dir/strings.cc.o"
  "CMakeFiles/cep2asp_common.dir/strings.cc.o.d"
  "libcep2asp_common.a"
  "libcep2asp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep2asp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
