file(REMOVE_RECURSE
  "libcep2asp_runtime.a"
)
