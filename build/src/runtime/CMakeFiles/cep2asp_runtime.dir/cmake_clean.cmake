file(REMOVE_RECURSE
  "CMakeFiles/cep2asp_runtime.dir/executor.cc.o"
  "CMakeFiles/cep2asp_runtime.dir/executor.cc.o.d"
  "CMakeFiles/cep2asp_runtime.dir/job_graph.cc.o"
  "CMakeFiles/cep2asp_runtime.dir/job_graph.cc.o.d"
  "CMakeFiles/cep2asp_runtime.dir/metrics.cc.o"
  "CMakeFiles/cep2asp_runtime.dir/metrics.cc.o.d"
  "CMakeFiles/cep2asp_runtime.dir/threaded_executor.cc.o"
  "CMakeFiles/cep2asp_runtime.dir/threaded_executor.cc.o.d"
  "libcep2asp_runtime.a"
  "libcep2asp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep2asp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
