# Empty compiler generated dependencies file for cep2asp_runtime.
# This may be replaced when dependencies are built.
