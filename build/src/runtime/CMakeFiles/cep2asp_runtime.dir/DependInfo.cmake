
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/executor.cc" "src/runtime/CMakeFiles/cep2asp_runtime.dir/executor.cc.o" "gcc" "src/runtime/CMakeFiles/cep2asp_runtime.dir/executor.cc.o.d"
  "/root/repo/src/runtime/job_graph.cc" "src/runtime/CMakeFiles/cep2asp_runtime.dir/job_graph.cc.o" "gcc" "src/runtime/CMakeFiles/cep2asp_runtime.dir/job_graph.cc.o.d"
  "/root/repo/src/runtime/metrics.cc" "src/runtime/CMakeFiles/cep2asp_runtime.dir/metrics.cc.o" "gcc" "src/runtime/CMakeFiles/cep2asp_runtime.dir/metrics.cc.o.d"
  "/root/repo/src/runtime/threaded_executor.cc" "src/runtime/CMakeFiles/cep2asp_runtime.dir/threaded_executor.cc.o" "gcc" "src/runtime/CMakeFiles/cep2asp_runtime.dir/threaded_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/cep2asp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cep2asp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
