
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asp/interval_join.cc" "src/asp/CMakeFiles/cep2asp_asp.dir/interval_join.cc.o" "gcc" "src/asp/CMakeFiles/cep2asp_asp.dir/interval_join.cc.o.d"
  "/root/repo/src/asp/nseq_mark.cc" "src/asp/CMakeFiles/cep2asp_asp.dir/nseq_mark.cc.o" "gcc" "src/asp/CMakeFiles/cep2asp_asp.dir/nseq_mark.cc.o.d"
  "/root/repo/src/asp/sliding_window_join.cc" "src/asp/CMakeFiles/cep2asp_asp.dir/sliding_window_join.cc.o" "gcc" "src/asp/CMakeFiles/cep2asp_asp.dir/sliding_window_join.cc.o.d"
  "/root/repo/src/asp/window_aggregate.cc" "src/asp/CMakeFiles/cep2asp_asp.dir/window_aggregate.cc.o" "gcc" "src/asp/CMakeFiles/cep2asp_asp.dir/window_aggregate.cc.o.d"
  "/root/repo/src/asp/window_apply.cc" "src/asp/CMakeFiles/cep2asp_asp.dir/window_apply.cc.o" "gcc" "src/asp/CMakeFiles/cep2asp_asp.dir/window_apply.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/cep2asp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/cep2asp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cep2asp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
