file(REMOVE_RECURSE
  "CMakeFiles/cep2asp_asp.dir/interval_join.cc.o"
  "CMakeFiles/cep2asp_asp.dir/interval_join.cc.o.d"
  "CMakeFiles/cep2asp_asp.dir/nseq_mark.cc.o"
  "CMakeFiles/cep2asp_asp.dir/nseq_mark.cc.o.d"
  "CMakeFiles/cep2asp_asp.dir/sliding_window_join.cc.o"
  "CMakeFiles/cep2asp_asp.dir/sliding_window_join.cc.o.d"
  "CMakeFiles/cep2asp_asp.dir/window_aggregate.cc.o"
  "CMakeFiles/cep2asp_asp.dir/window_aggregate.cc.o.d"
  "CMakeFiles/cep2asp_asp.dir/window_apply.cc.o"
  "CMakeFiles/cep2asp_asp.dir/window_apply.cc.o.d"
  "libcep2asp_asp.a"
  "libcep2asp_asp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep2asp_asp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
