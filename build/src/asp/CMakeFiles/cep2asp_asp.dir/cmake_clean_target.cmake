file(REMOVE_RECURSE
  "libcep2asp_asp.a"
)
