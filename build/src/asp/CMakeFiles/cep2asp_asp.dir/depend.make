# Empty dependencies file for cep2asp_asp.
# This may be replaced when dependencies are built.
