# Empty compiler generated dependencies file for cep2asp_sea.
# This may be replaced when dependencies are built.
