file(REMOVE_RECURSE
  "CMakeFiles/cep2asp_sea.dir/parser.cc.o"
  "CMakeFiles/cep2asp_sea.dir/parser.cc.o.d"
  "CMakeFiles/cep2asp_sea.dir/pattern.cc.o"
  "CMakeFiles/cep2asp_sea.dir/pattern.cc.o.d"
  "CMakeFiles/cep2asp_sea.dir/semantics.cc.o"
  "CMakeFiles/cep2asp_sea.dir/semantics.cc.o.d"
  "libcep2asp_sea.a"
  "libcep2asp_sea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep2asp_sea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
