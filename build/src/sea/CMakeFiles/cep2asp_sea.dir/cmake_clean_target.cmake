file(REMOVE_RECURSE
  "libcep2asp_sea.a"
)
