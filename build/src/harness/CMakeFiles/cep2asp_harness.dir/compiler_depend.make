# Empty compiler generated dependencies file for cep2asp_harness.
# This may be replaced when dependencies are built.
