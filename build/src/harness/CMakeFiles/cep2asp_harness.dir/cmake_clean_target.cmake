file(REMOVE_RECURSE
  "libcep2asp_harness.a"
)
