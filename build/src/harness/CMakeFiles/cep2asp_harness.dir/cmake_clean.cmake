file(REMOVE_RECURSE
  "CMakeFiles/cep2asp_harness.dir/bench_util.cc.o"
  "CMakeFiles/cep2asp_harness.dir/bench_util.cc.o.d"
  "CMakeFiles/cep2asp_harness.dir/paper_patterns.cc.o"
  "CMakeFiles/cep2asp_harness.dir/paper_patterns.cc.o.d"
  "libcep2asp_harness.a"
  "libcep2asp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep2asp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
