file(REMOVE_RECURSE
  "libcep2asp_cep.a"
)
