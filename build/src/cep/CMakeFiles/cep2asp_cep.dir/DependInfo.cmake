
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cep/cep_operator.cc" "src/cep/CMakeFiles/cep2asp_cep.dir/cep_operator.cc.o" "gcc" "src/cep/CMakeFiles/cep2asp_cep.dir/cep_operator.cc.o.d"
  "/root/repo/src/cep/nfa.cc" "src/cep/CMakeFiles/cep2asp_cep.dir/nfa.cc.o" "gcc" "src/cep/CMakeFiles/cep2asp_cep.dir/nfa.cc.o.d"
  "/root/repo/src/cep/shared_buffer.cc" "src/cep/CMakeFiles/cep2asp_cep.dir/shared_buffer.cc.o" "gcc" "src/cep/CMakeFiles/cep2asp_cep.dir/shared_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sea/CMakeFiles/cep2asp_sea.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cep2asp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/asp/CMakeFiles/cep2asp_asp.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/cep2asp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cep2asp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
