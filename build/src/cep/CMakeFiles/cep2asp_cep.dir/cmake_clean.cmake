file(REMOVE_RECURSE
  "CMakeFiles/cep2asp_cep.dir/cep_operator.cc.o"
  "CMakeFiles/cep2asp_cep.dir/cep_operator.cc.o.d"
  "CMakeFiles/cep2asp_cep.dir/nfa.cc.o"
  "CMakeFiles/cep2asp_cep.dir/nfa.cc.o.d"
  "CMakeFiles/cep2asp_cep.dir/shared_buffer.cc.o"
  "CMakeFiles/cep2asp_cep.dir/shared_buffer.cc.o.d"
  "libcep2asp_cep.a"
  "libcep2asp_cep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep2asp_cep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
