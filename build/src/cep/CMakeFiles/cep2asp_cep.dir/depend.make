# Empty dependencies file for cep2asp_cep.
# This may be replaced when dependencies are built.
