# Empty dependencies file for cep2asp_event.
# This may be replaced when dependencies are built.
