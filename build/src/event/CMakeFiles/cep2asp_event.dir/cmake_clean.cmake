file(REMOVE_RECURSE
  "CMakeFiles/cep2asp_event.dir/event.cc.o"
  "CMakeFiles/cep2asp_event.dir/event.cc.o.d"
  "CMakeFiles/cep2asp_event.dir/event_type.cc.o"
  "CMakeFiles/cep2asp_event.dir/event_type.cc.o.d"
  "CMakeFiles/cep2asp_event.dir/predicate.cc.o"
  "CMakeFiles/cep2asp_event.dir/predicate.cc.o.d"
  "libcep2asp_event.a"
  "libcep2asp_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep2asp_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
