file(REMOVE_RECURSE
  "libcep2asp_event.a"
)
