# Empty dependencies file for cep2asp_workload.
# This may be replaced when dependencies are built.
