file(REMOVE_RECURSE
  "CMakeFiles/cep2asp_workload.dir/csv.cc.o"
  "CMakeFiles/cep2asp_workload.dir/csv.cc.o.d"
  "CMakeFiles/cep2asp_workload.dir/generator.cc.o"
  "CMakeFiles/cep2asp_workload.dir/generator.cc.o.d"
  "CMakeFiles/cep2asp_workload.dir/presets.cc.o"
  "CMakeFiles/cep2asp_workload.dir/presets.cc.o.d"
  "libcep2asp_workload.a"
  "libcep2asp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep2asp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
