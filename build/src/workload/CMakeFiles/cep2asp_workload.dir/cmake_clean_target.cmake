file(REMOVE_RECURSE
  "libcep2asp_workload.a"
)
