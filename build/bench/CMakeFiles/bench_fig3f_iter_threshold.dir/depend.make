# Empty dependencies file for bench_fig3f_iter_threshold.
# This may be replaced when dependencies are built.
