# Empty dependencies file for bench_fig3d_pattern_length.
# This may be replaced when dependencies are built.
