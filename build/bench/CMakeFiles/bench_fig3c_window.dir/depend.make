# Empty dependencies file for bench_fig3c_window.
# This may be replaced when dependencies are built.
