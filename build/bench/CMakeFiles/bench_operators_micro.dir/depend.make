# Empty dependencies file for bench_operators_micro.
# This may be replaced when dependencies are built.
