file(REMOVE_RECURSE
  "CMakeFiles/bench_operators_micro.dir/bench_operators_micro.cc.o"
  "CMakeFiles/bench_operators_micro.dir/bench_operators_micro.cc.o.d"
  "bench_operators_micro"
  "bench_operators_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operators_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
