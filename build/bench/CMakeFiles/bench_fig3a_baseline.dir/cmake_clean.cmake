file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a_baseline.dir/bench_fig3a_baseline.cc.o"
  "CMakeFiles/bench_fig3a_baseline.dir/bench_fig3a_baseline.cc.o.d"
  "bench_fig3a_baseline"
  "bench_fig3a_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
