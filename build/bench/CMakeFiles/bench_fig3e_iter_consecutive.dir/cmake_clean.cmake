file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3e_iter_consecutive.dir/bench_fig3e_iter_consecutive.cc.o"
  "CMakeFiles/bench_fig3e_iter_consecutive.dir/bench_fig3e_iter_consecutive.cc.o.d"
  "bench_fig3e_iter_consecutive"
  "bench_fig3e_iter_consecutive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3e_iter_consecutive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
