# Empty dependencies file for bench_fig3e_iter_consecutive.
# This may be replaced when dependencies are built.
