file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_data_characteristics.dir/bench_fig4_data_characteristics.cc.o"
  "CMakeFiles/bench_fig4_data_characteristics.dir/bench_fig4_data_characteristics.cc.o.d"
  "bench_fig4_data_characteristics"
  "bench_fig4_data_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_data_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
