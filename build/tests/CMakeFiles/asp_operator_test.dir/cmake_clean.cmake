file(REMOVE_RECURSE
  "CMakeFiles/asp_operator_test.dir/asp_operator_test.cc.o"
  "CMakeFiles/asp_operator_test.dir/asp_operator_test.cc.o.d"
  "asp_operator_test"
  "asp_operator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asp_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
