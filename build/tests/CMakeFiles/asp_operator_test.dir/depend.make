# Empty dependencies file for asp_operator_test.
# This may be replaced when dependencies are built.
