
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sql_text_test.cc" "tests/CMakeFiles/sql_text_test.dir/sql_text_test.cc.o" "gcc" "tests/CMakeFiles/sql_text_test.dir/sql_text_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/cep2asp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cep2asp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cep2asp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/translator/CMakeFiles/cep2asp_translator.dir/DependInfo.cmake"
  "/root/repo/build/src/cep/CMakeFiles/cep2asp_cep.dir/DependInfo.cmake"
  "/root/repo/build/src/sea/CMakeFiles/cep2asp_sea.dir/DependInfo.cmake"
  "/root/repo/build/src/asp/CMakeFiles/cep2asp_asp.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cep2asp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/cep2asp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cep2asp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
