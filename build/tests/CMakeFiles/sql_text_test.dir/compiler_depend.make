# Empty compiler generated dependencies file for sql_text_test.
# This may be replaced when dependencies are built.
