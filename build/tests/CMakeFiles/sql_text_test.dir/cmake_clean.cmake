file(REMOVE_RECURSE
  "CMakeFiles/sql_text_test.dir/sql_text_test.cc.o"
  "CMakeFiles/sql_text_test.dir/sql_text_test.cc.o.d"
  "sql_text_test"
  "sql_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
