# Empty compiler generated dependencies file for psl_roundtrip_test.
# This may be replaced when dependencies are built.
