file(REMOVE_RECURSE
  "CMakeFiles/psl_roundtrip_test.dir/psl_roundtrip_test.cc.o"
  "CMakeFiles/psl_roundtrip_test.dir/psl_roundtrip_test.cc.o.d"
  "psl_roundtrip_test"
  "psl_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psl_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
