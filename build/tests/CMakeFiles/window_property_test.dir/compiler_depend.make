# Empty compiler generated dependencies file for window_property_test.
# This may be replaced when dependencies are built.
