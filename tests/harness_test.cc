#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "harness/bench_util.h"
#include "harness/paper_patterns.h"
#include "tests/test_util.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

constexpr Timestamp kMin = kMillisPerMinute;

class HarnessTest : public ::testing::Test {
 protected:
  Workload SmallWorkload() {
    PresetOptions preset;
    preset.num_sensors = 4;
    preset.events_per_sensor = 60;
    return MakeCombinedWorkload(preset);
  }
};

TEST_F(HarnessTest, MeasureFaspProducesMetrics) {
  PaperPatterns patterns;
  Workload w = SmallWorkload();
  Pattern p = patterns.Seq1(0.3, 10 * kMin, kMin).ValueOrDie();
  ApproachResult result = MeasureFasp(p, w, {}, "FASP");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.throughput_tps, 0);
  // The query ingests only the pattern's streams (Q and V).
  SensorTypes types = SensorTypes::Get();
  EXPECT_EQ(result.tuples,
            static_cast<int64_t>(w.events(types.q).size() +
                                 w.events(types.v).size()));
  EXPECT_GE(result.matches, 0);
}

TEST_F(HarnessTest, MeasureFcepMatchesFaspO1MatchCount) {
  // O1 output is duplicate-free, so its count equals FCEP's.
  PaperPatterns patterns;
  Workload w = SmallWorkload();
  Pattern p = patterns.Seq1(0.3, 10 * kMin, kMin).ValueOrDie();
  ApproachResult fcep = MeasureFcep(p, w);
  TranslatorOptions o1;
  o1.use_interval_join = true;
  ApproachResult fasp = MeasureFasp(p, w, o1, "FASP-O1");
  ASSERT_TRUE(fcep.ok) << fcep.error;
  ASSERT_TRUE(fasp.ok) << fasp.error;
  EXPECT_EQ(fcep.matches, fasp.matches);
}

TEST_F(HarnessTest, MemoryLimitSurfacesAsFailure) {
  PaperPatterns patterns;
  Workload w = SmallWorkload();
  // Huge window: FCEP keeps runs alive for its entire span.
  Pattern p = patterns.Seq1(0.9, 600 * kMin, kMin).ValueOrDie();
  ApproachResult result = MeasureFcep(p, w, {}, /*memory_limit_bytes=*/1024);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("ResourceExhausted"), std::string::npos);
}

TEST_F(HarnessTest, ResultTableWritesCsv) {
  ResultTable table("test", {"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  ASSERT_TRUE(table.WriteCsv("harness_test_tmp").ok());
  std::ifstream in("bench_results/harness_test_tmp.csv");
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  in.close();
  std::remove("bench_results/harness_test_tmp.csv");
}

TEST_F(HarnessTest, PaperPatternsValidate) {
  PaperPatterns patterns;
  EXPECT_TRUE(patterns.Seq1(0.1, 15 * kMin, kMin).ok());
  EXPECT_TRUE(patterns.IterThreshold(3, 0.1, 15 * kMin, kMin).ok());
  EXPECT_TRUE(patterns.IterConsecutive(3, 0.1, 15 * kMin, kMin).ok());
  EXPECT_TRUE(patterns.Nseq1(0.1, 0.1, 15 * kMin, kMin).ok());
  for (int n = 2; n <= 6; ++n) {
    EXPECT_TRUE(patterns.SeqN(n, 0.1, 15 * kMin, kMin).ok()) << n;
  }
  EXPECT_FALSE(patterns.SeqN(7, 0.1, 15 * kMin, kMin).ok());
  EXPECT_TRUE(patterns.Seq7(0.1, 15 * kMin, kMin).ok());
  EXPECT_TRUE(patterns.Iter4(4, 0.1, 90 * kMin, kMin).ok());
}

TEST_F(HarnessTest, Seq7HasConnectedEquiJoinKeys) {
  PaperPatterns patterns;
  Pattern p = patterns.Seq7(0.2, 15 * kMin, kMin).ValueOrDie();
  TranslatorOptions o3;
  o3.use_equi_join_keys = true;
  Translator translator(o3);
  LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kKeyByAttr), 3);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kKeyByConst), 0);
}

TEST_F(HarnessTest, Iter4KeyedAggregatePlanWorks) {
  // Iter4's equalities are consumed by O3 keying, so O2 aggregation
  // applies cleanly on top (FASP-O2+O3, Figure 4).
  PaperPatterns patterns;
  Pattern p = patterns.Iter4(4, 0.2, 90 * kMin, kMin).ValueOrDie();
  TranslatorOptions options;
  options.use_equi_join_keys = true;
  options.use_aggregation_for_iter = true;
  Translator translator(options);
  LogicalPlan plan = translator.ToLogicalPlan(p).ValueOrDie();
  EXPECT_EQ(plan.root->kind, LogicalOpKind::kAggregate);
  EXPECT_EQ(plan.root->CountKind(LogicalOpKind::kKeyByAttr), 1);
}

TEST_F(HarnessTest, FormatHelpers) {
  EXPECT_EQ(FormatTps(1530000), "1.53M tpl/s");
  auto columns = StandardColumns();
  ApproachResult result;
  result.approach = "FASP";
  result.ok = true;
  auto row = ResultRow("S", result);
  EXPECT_EQ(row.size(), columns.size());
  EXPECT_EQ(row[0], "S");
  EXPECT_EQ(row[1], "FASP");
}

}  // namespace
}  // namespace cep2asp
