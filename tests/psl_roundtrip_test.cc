// PSL round-trip sweep: a catalogue of declarative pattern texts must
// parse, validate, translate, execute, and agree with the formal SEA
// semantics — the full pipeline the paper's future-work parser enables.

#include <gtest/gtest.h>

#include "sea/parser.h"
#include "tests/test_util.h"
#include "workload/presets.h"

namespace cep2asp {
namespace {

struct PslCase {
  std::string name;
  std::string text;
  bool fcep_supported;
};

class PslRoundTripTest : public ::testing::TestWithParam<PslCase> {
 protected:
  static Workload MakeWorkload() {
    PresetOptions preset;
    preset.num_sensors = 3;
    preset.events_per_sensor = 60;
    preset.seed = 77;
    return MakeCombinedWorkload(preset);
  }
};

TEST_P(PslRoundTripTest, ParseTranslateRunAgree) {
  const PslCase& param = GetParam();
  SensorTypes::Get();  // register the canonical type names for the parser
  auto pattern = sea::ParsePattern(param.text);
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  ASSERT_TRUE(pattern->Validate().ok());

  Workload w = MakeWorkload();
  auto oracle = test::OracleMatchSet(*pattern, w);

  auto fasp = test::RunFasp(*pattern, w, {});
  ASSERT_TRUE(fasp.result.ok) << fasp.result.error;
  EXPECT_EQ(fasp.match_set, oracle);

  TranslatorOptions o1;
  o1.use_interval_join = true;
  auto fasp_o1 = test::RunFasp(*pattern, w, o1);
  ASSERT_TRUE(fasp_o1.result.ok) << fasp_o1.result.error;
  EXPECT_EQ(fasp_o1.match_set, oracle);

  auto fcep = test::RunFcep(*pattern, w);
  if (param.fcep_supported) {
    ASSERT_TRUE(fcep.result.ok) << fcep.result.error;
    EXPECT_EQ(fcep.match_set, oracle);
  } else {
    EXPECT_FALSE(fcep.result.ok);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalogue, PslRoundTripTest,
    ::testing::Values(
        PslCase{"listing2",
                "PATTERN SEQ(Q q1, V v1) WHERE q1.value <= v1.value AND "
                "v1.value <= 30 WITHIN 4 MINUTES",
                true},
        PslCase{"seq3_mixed_sources",
                "PATTERN SEQ(Q q1, PM10 p1, Hum h1) WHERE q1.value <= 40 "
                "WITHIN 12 MINUTES",
                true},
        PslCase{"and_pair",
                "PATTERN AND(Q q1, Temp t1) WHERE q1.value >= 70 AND "
                "t1.value >= 70 WITHIN 6 MINUTES",
                false},
        PslCase{"or_pair",
                "PATTERN OR(PM10 p1, PM25 p2) WHERE p1.value >= 90 AND "
                "p2.value >= 90 WITHIN 5 MINUTES",
                false},
        PslCase{"iter3",
                "PATTERN ITER3(V v) WHERE v.value <= 25 WITHIN 10 MINUTES",
                true},
        PslCase{"nseq_keyword",
                "PATTERN NSEQ(Q q1, !PM10 p1, V v1) WHERE q1.value <= 35 AND "
                "v1.value <= 35 AND p1.value <= 20 WITHIN 8 MINUTES",
                true},
        PslCase{"nseq_bang_form",
                "PATTERN SEQ(Temp t1, !Hum h1, PM25 p1) WHERE t1.value >= 60 "
                "AND p1.value >= 60 AND h1.value >= 80 WITHIN 8 MINUTES",
                true},
        PslCase{"nested_seq",
                "PATTERN SEQ(Q q1, SEQ(V v1, PM10 p1)) WHERE q1.value <= 30 "
                "WITHIN 9 MINUTES",
                true},
        PslCase{"explicit_slide",
                "PATTERN SEQ(Q q1, V v1) WHERE q1.value <= 20 WITHIN 240 "
                "SECONDS SLIDE 60 SECONDS",
                true},
        PslCase{"return_clause",
                "PATTERN SEQ(Q q1, V v1) WHERE q1.value <= 20 WITHIN 4 "
                "MINUTES RETURN *",
                true}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace cep2asp
