// Failure injection: operator errors, simulated memory exhaustion, and
// mid-pipeline faults must surface as clean job failures in both
// executors (no hangs, no silent data loss).

#include <gtest/gtest.h>

#include "asp/sliding_window_join.h"
#include "asp/stateless.h"
#include "runtime/executor.h"
#include "runtime/threaded_executor.h"
#include "runtime/vector_source.h"
#include "tests/test_util.h"

namespace cep2asp {
namespace {

using test::Ev;

std::vector<SimpleEvent> MakeEvents(int count) {
  std::vector<SimpleEvent> events;
  for (int i = 0; i < count; ++i) {
    events.push_back(Ev(0, 1, i * 1000, i));
  }
  return events;
}

/// Fails after processing `fail_after` tuples.
class FaultyOperator : public Operator {
 public:
  explicit FaultyOperator(int fail_after) : fail_after_(fail_after) {}

  std::string name() const override { return "faulty"; }

  Status Process(int, Tuple tuple, Collector* out) override {
    if (++processed_ > fail_after_) {
      return Status::Internal("injected operator fault");
    }
    out->Emit(std::move(tuple));
    return Status::OK();
  }

 private:
  int fail_after_;
  int processed_ = 0;
};

/// Fails in Open().
class BadOpenOperator : public Operator {
 public:
  std::string name() const override { return "bad-open"; }
  Status Open() override { return Status::FailedPrecondition("cannot open"); }
  Status Process(int, Tuple, Collector*) override { return Status::OK(); }
};

JobGraph BuildFaultyGraph(int fail_after, CollectSink** sink_out,
                          int events = 1000) {
  JobGraph graph;
  NodeId src =
      graph.AddSource(std::make_unique<VectorSource>("s", MakeEvents(events)));
  NodeId faulty = graph.AddOperatorAfter(
      src, std::make_unique<FaultyOperator>(fail_after));
  auto sink = std::make_unique<CollectSink>();
  *sink_out = sink.get();
  graph.AddOperatorAfter(faulty, std::move(sink));
  return graph;
}

TEST(FailureTest, OperatorFaultStopsSingleThreadedRun) {
  CollectSink* sink = nullptr;
  JobGraph graph = BuildFaultyGraph(100, &sink);
  ExecutionResult result = RunJob(&graph, sink);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("injected operator fault"), std::string::npos);
  EXPECT_NE(result.error.find("faulty"), std::string::npos)
      << "error should name the failing operator";
  EXPECT_EQ(sink->count(), 100);
}

TEST(FailureTest, OperatorFaultStopsThreadedRunWithoutDeadlock) {
  CollectSink* sink = nullptr;
  JobGraph graph = BuildFaultyGraph(100, &sink, /*events=*/100000);
  ThreadedExecutorOptions options;
  options.queue_capacity = 16;  // small queues: producers block quickly
  ThreadedExecutor executor(&graph, options);
  ExecutionResult result = executor.Run(sink);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("injected operator fault"), std::string::npos);
}

TEST(FailureTest, OpenFailureReportedBeforeProcessing) {
  JobGraph graph;
  NodeId src =
      graph.AddSource(std::make_unique<VectorSource>("s", MakeEvents(10)));
  NodeId bad = graph.AddOperatorAfter(src, std::make_unique<BadOpenOperator>());
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(bad, std::move(sink_op));
  ExecutionResult result = RunJob(&graph, sink);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
  EXPECT_EQ(sink->count(), 0);
}

TEST(FailureTest, InvalidWindowSpecRejectedAtOpen) {
  JobGraph graph;
  NodeId l = graph.AddSource(std::make_unique<VectorSource>("l", MakeEvents(1)));
  NodeId r = graph.AddSource(std::make_unique<VectorSource>("r", MakeEvents(1)));
  // slide > size is invalid.
  NodeId join = graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{100, 500}, Predicate(), TimestampMode::kMax));
  CEP2ASP_CHECK_OK(graph.Connect(l, join, 0));
  CEP2ASP_CHECK_OK(graph.Connect(r, join, 1));
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(join, std::move(sink_op));
  ExecutionResult result = RunJob(&graph, sink);
  EXPECT_FALSE(result.ok);
}

TEST(FailureTest, MemoryLimitAbortsMidRun) {
  // A join with an enormous window accumulates state until the budget
  // trips — the simulated OOM of §5.2.3.
  std::vector<SimpleEvent> left, right;
  for (int i = 0; i < 50000; ++i) {
    left.push_back(Ev(0, 1, i, 1));
    right.push_back(Ev(1, 1, i, 2));
  }
  JobGraph graph;
  NodeId l = graph.AddSource(std::make_unique<VectorSource>("l", left));
  NodeId r = graph.AddSource(std::make_unique<VectorSource>("r", right));
  NodeId join = graph.AddOperator(std::make_unique<SlidingWindowJoinOperator>(
      SlidingWindowSpec{kMillisPerMinute * 60 * 24, kMillisPerMinute},
      Predicate(), TimestampMode::kMax));
  CEP2ASP_CHECK_OK(graph.Connect(l, join, 0));
  CEP2ASP_CHECK_OK(graph.Connect(r, join, 1));
  auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(join, std::move(sink_op));

  ExecutorOptions options;
  options.memory_limit_bytes = 256 * 1024;
  ExecutionResult result = RunJob(&graph, sink, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("ResourceExhausted"), std::string::npos);
  EXPECT_GT(result.peak_state_bytes, options.memory_limit_bytes);
}

TEST(FailureTest, TranslationFailuresAreStatusesNotCrashes) {
  EventTypeId t = EventTypeRegistry::Global()->RegisterOrGet("FailT");
  // Pattern without window.
  auto no_window = PatternBuilder()
                       .Seq(PatternBuilder::Atom(t, "a"),
                            PatternBuilder::Atom(t, "b"))
                       .Build();
  EXPECT_FALSE(no_window.ok());

  // FCEP on AND: Unimplemented, not a crash.
  Pattern conj = PatternBuilder()
                     .And(PatternBuilder::Atom(t, "a"),
                          PatternBuilder::Atom(t, "b"))
                     .Within(kMillisPerMinute)
                     .Build()
                     .ValueOrDie();
  auto cep = BuildCepJob(
      conj, [](EventTypeId) -> std::unique_ptr<Source> { return nullptr; });
  EXPECT_TRUE(cep.status().IsUnimplemented());
}

}  // namespace
}  // namespace cep2asp
