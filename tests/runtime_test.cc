#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "asp/stateless.h"
#include "runtime/bounded_queue.h"
#include "runtime/executor.h"
#include "runtime/job_graph.h"
#include "runtime/sink.h"
#include "runtime/threaded_executor.h"
#include "runtime/vector_source.h"
#include "tests/test_util.h"

namespace cep2asp {
namespace {

using test::Ev;

std::vector<SimpleEvent> MakeEvents(EventTypeId type, int count,
                                    Timestamp step = 1000) {
  std::vector<SimpleEvent> events;
  for (int i = 0; i < count; ++i) {
    events.push_back(Ev(type, i, static_cast<Timestamp>(i) * step,
                        static_cast<double>(i)));
  }
  return events;
}

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.Push(7);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 7);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Push(8));
}

TEST(BoundedQueueTest, BlocksProducerAtCapacity) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);
    pushed = true;
  });
  // Producer must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

// --- JobGraph ----------------------------------------------------------------

TEST(JobGraphTest, ValidatesMissingInput) {
  JobGraph graph;
  graph.AddOperator(std::make_unique<UnionOperator>(2));
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(JobGraphTest, ValidatesDoubleConnection) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 1)));
  NodeId op = graph.AddOperator(std::make_unique<UnionOperator>(1));
  ASSERT_TRUE(graph.Connect(src, op, 0).ok());
  ASSERT_TRUE(graph.Connect(src, op, 0).ok());  // second edge into port 0
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(JobGraphTest, RejectsConnectIntoSource) {
  JobGraph graph;
  NodeId a = graph.AddSource(
      std::make_unique<VectorSource>("a", MakeEvents(0, 1)));
  NodeId b = graph.AddSource(
      std::make_unique<VectorSource>("b", MakeEvents(0, 1)));
  EXPECT_FALSE(graph.Connect(a, b, 0).ok());
}

TEST(JobGraphTest, RejectsBadPort) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 1)));
  NodeId op = graph.AddOperator(std::make_unique<UnionOperator>(1));
  EXPECT_FALSE(graph.Connect(src, op, 1).ok());
}

TEST(JobGraphTest, TopologicalOrderSourcesFirst) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 1)));
  NodeId op = graph.AddOperatorAfter(src, std::make_unique<UnionOperator>(1));
  NodeId sink = graph.AddOperatorAfter(op, std::make_unique<CollectSink>());
  auto order = graph.TopologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], src);
  EXPECT_EQ(order[2], sink);
}

// --- PipelineExecutor ----------------------------------------------------------

TEST(ExecutorTest, PassthroughDeliversAllTuples) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 100)));
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(src, std::move(sink_op));
  ExecutionResult result = RunJob(&graph, sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.tuples_ingested, 100);
  EXPECT_EQ(result.matches_emitted, 100);
  EXPECT_EQ(sink->tuples().size(), 100u);
}

TEST(ExecutorTest, MergesSourcesInEventTimeOrder) {
  JobGraph graph;
  std::vector<SimpleEvent> odd, even;
  for (int i = 0; i < 10; ++i) {
    (i % 2 ? odd : even).push_back(Ev(0, i, i * 100, 0));
  }
  NodeId a = graph.AddSource(std::make_unique<VectorSource>("odd", odd));
  NodeId b = graph.AddSource(std::make_unique<VectorSource>("even", even));
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(2));
  ASSERT_TRUE(graph.Connect(a, u, 0).ok());
  ASSERT_TRUE(graph.Connect(b, u, 1).ok());
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(u, std::move(sink_op));
  ExecutionResult result = RunJob(&graph, sink);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(sink->tuples().size(), 10u);
  for (size_t i = 1; i < sink->tuples().size(); ++i) {
    EXPECT_LE(sink->tuples()[i - 1].event_time(), sink->tuples()[i].event_time());
  }
}

TEST(ExecutorTest, FilterDropsNonMatching) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 100)));
  NodeId filter = graph.AddOperatorAfter(
      src, std::make_unique<FilterOperator>(
               [](const Tuple& t) { return t.event(0).value < 10; }));
  auto sink_op = std::make_unique<CollectSink>();
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(filter, std::move(sink_op));
  ExecutionResult result = RunJob(&graph, sink);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(sink->count(), 10);
}

TEST(ExecutorTest, MemoryLimitFailsJob) {
  // A sink storing every tuple grows state beyond a tiny budget; the
  // executor reports the simulated memory exhaustion (paper §5.2.3: FCEP
  // execution failure due to memory exhaustion).
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 100000)));
  auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/true);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(src, std::move(sink_op));
  ExecutorOptions options;
  options.memory_limit_bytes = 64 * 1024;
  ExecutionResult result = RunJob(&graph, sink, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("ResourceExhausted"), std::string::npos);
}

TEST(ExecutorTest, StateTimelineSampled) {
  JobGraph graph;
  NodeId src = graph.AddSource(
      std::make_unique<VectorSource>("s", MakeEvents(0, 10000)));
  auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/true);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(src, std::move(sink_op));
  ExecutorOptions options;
  options.watermark_interval = 64;
  options.state_sample_interval = 512;
  ExecutionResult result = RunJob(&graph, sink, options);
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.state_timeline.size(), 5u);
  EXPECT_GT(result.peak_state_bytes, 0u);
}

// --- ThreadedExecutor ------------------------------------------------------------

TEST(ThreadedExecutorTest, MatchesSingleThreadedResults) {
  auto build = [](CollectSink** sink_out) {
    auto graph = std::make_unique<JobGraph>();
    NodeId src = graph->AddSource(
        std::make_unique<VectorSource>("s", MakeEvents(0, 5000)));
    NodeId filter = graph->AddOperatorAfter(
        src, std::make_unique<FilterOperator>(
                 [](const Tuple& t) { return t.event(0).value >= 100; }));
    auto sink_op = std::make_unique<CollectSink>();
    *sink_out = sink_op.get();
    graph->AddOperatorAfter(filter, std::move(sink_op));
    return graph;
  };

  CollectSink* sink1 = nullptr;
  auto graph1 = build(&sink1);
  ExecutionResult r1 = RunJob(graph1.get(), sink1);

  CollectSink* sink2 = nullptr;
  auto graph2 = build(&sink2);
  ThreadedExecutor threaded(graph2.get());
  ExecutionResult r2 = threaded.Run(sink2);

  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r1.matches_emitted, r2.matches_emitted);
  EXPECT_EQ(test::MatchSet(sink1->tuples()), test::MatchSet(sink2->tuples()));
}

TEST(ThreadedExecutorTest, TwoSourceUnion) {
  JobGraph graph;
  NodeId a = graph.AddSource(
      std::make_unique<VectorSource>("a", MakeEvents(0, 1000)));
  NodeId b = graph.AddSource(
      std::make_unique<VectorSource>("b", MakeEvents(1, 1000)));
  NodeId u = graph.AddOperator(std::make_unique<UnionOperator>(2));
  ASSERT_TRUE(graph.Connect(a, u, 0).ok());
  ASSERT_TRUE(graph.Connect(b, u, 1).ok());
  auto sink_op = std::make_unique<CollectSink>(/*store_tuples=*/false);
  CollectSink* sink = sink_op.get();
  graph.AddOperatorAfter(u, std::move(sink_op));
  ThreadedExecutor executor(&graph);
  ExecutionResult result = executor.Run(sink);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.matches_emitted, 2000);
}

// --- Metrics ----------------------------------------------------------------------

TEST(MetricsTest, LatencyStatsFromSamples) {
  std::vector<int64_t> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  LatencyStats stats = LatencyStats::FromSamples(samples);
  EXPECT_EQ(stats.count, 100);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 50.5);
  EXPECT_DOUBLE_EQ(stats.max_ms, 100.0);
  EXPECT_NEAR(stats.p50_ms, 50.0, 1.0);
  EXPECT_NEAR(stats.p99_ms, 99.0, 1.0);
}

TEST(MetricsTest, EmptySamples) {
  LatencyStats stats = LatencyStats::FromSamples({});
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 0.0);
}

TEST(MetricsTest, ThroughputFromResult) {
  ExecutionResult result;
  result.tuples_ingested = 1000;
  result.elapsed_seconds = 2.0;
  EXPECT_DOUBLE_EQ(result.throughput_tps(), 500.0);
}

}  // namespace
}  // namespace cep2asp
